#!/usr/bin/env python
"""Built-in self-test end to end: LFSR -> coverage curve -> signature.

A hardware BIST controller needs no stored test set: a maximal-length
LFSR expands a tiny seed into a pseudorandom pattern stream, the
circuit's responses compact into a MISR signature, and one register
compare at the end replaces bit-by-bit response checking.  This
script runs that flow in software on the c880-scale suite circuit:

1. build the LFSR from the primitive-polynomial table and watch the
   slab generator emit thousands of patterns as packed uint64 lane
   planes (no per-pattern Python loop),
2. grade the full stuck-at fault list with fault dropping and print
   the coverage curve — the classic steep-then-flat pseudorandom
   profile,
3. read the golden MISR signature and its aliasing bound,
4. rerun through the high-level ``AtpgSession.bist`` facade under a
   fused execution strategy and confirm the curve and signature are
   bit-identical (the kernel contract: speed never changes results).

Usage::

    PYTHONPATH=src python examples/bist_demo.py
"""

from repro.api import AtpgSession, Options
from repro.bist import LFSR, MISR, run_bist
from repro.circuit.suites import suite_circuit
from repro.core.stuck_at import all_stuck_at_faults


def main() -> None:
    circuit = suite_circuit("c880")
    faults = all_stuck_at_faults(circuit)
    print(f"{circuit.name}: {len(circuit.inputs)} inputs, "
          f"{len(faults)} stuck-at faults")

    # -- 1. the pattern generator ------------------------------------
    lfsr = LFSR(32, kind="fibonacci", seed=0xC0FFEE, phase_spread=1)
    print(f"LFSR: width=32 poly={lfsr.polynomial:#x} "
          f"seed={lfsr.state:#x} (period 2**32 - 1)")
    slab = lfsr.take(4096, len(circuit.inputs))
    print(f"one take(): {slab.n_patterns} patterns as "
          f"{slab.v2.shape} uint64 lane planes\n")

    # -- 2. + 3. the coverage loop and the signature -----------------
    lfsr = LFSR(32, kind="fibonacci", seed=0xC0FFEE)  # fresh stream
    misr = MISR(32)
    result = run_bist(
        circuit, lfsr, misr, faults,
        fault_model="stuck_at", window=64, max_patterns=1024,
    )
    print("coverage curve (patterns applied -> faults detected):")
    for applied, detected in result.curve:
        bar = "#" * int(50 * detected / len(faults))
        print(f"  {applied:5d}  {detected:4d}/{len(faults)}  {bar}")
    print(f"stop: {result.stop_reason} after {result.windows} windows")
    print(f"golden signature: {result.signature:#010x} "
          f"(aliasing <= {misr.aliasing_probability:.2e})\n")

    # -- 4. the session facade, fused backend, same bits -------------
    session = AtpgSession(
        circuit,
        options=Options(
            fusion="auto",
            bist_seed=0xC0FFEE,
            bist_window=64,
            bist_max_patterns=1024,
        ),
    )
    report = session.bist(fault_model="stuck_at")
    assert report.curve == result.curve
    assert report.signature == result.signature
    print("AtpgSession.bist (fused) reproduced the curve and signature")
    print(report.summary())


if __name__ == "__main__":
    main()
