#!/usr/bin/env python
"""Robust vs nonrobust tests, demonstrated with the timing oracle.

The paper generates both classes; this example makes the difference
*observable*.  For the path b-p-x (rising) of the example circuit the
off-path input ``s`` must be 1:

* a pattern holding ``s`` stable at 1 is a **robust** test — it keeps
  detecting the slow path no matter how the other gate delays vary;
* a pattern where ``s`` rises together with the path (d rising) only
  satisfies the **nonrobust** condition — the 7-valued logic cannot
  prove stability, and the classification matters in silicon.

The event-driven timing simulator then slows the target path and
samples the output over randomized delay assignments.

Usage::

    python examples/robust_vs_nonrobust.py
"""

from repro.circuit.library import paper_example
from repro.core import TestPattern, generate_tests
from repro.paths import PathDelayFault, TestClass, Transition, all_faults
from repro.sim import DelayFaultSimulator, robust_timing_holds, timing_detects


def classify_two_patterns() -> None:
    circuit = paper_example()
    fault = PathDelayFault.from_names(circuit, ("b", "p", "x"), Transition.RISING)
    robust_sim = DelayFaultSimulator(circuit, TestClass.ROBUST)
    nonrobust_sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)

    # inputs are (a, b, c, d)
    stable_side = TestPattern((0, 0, 0, 1), (0, 1, 0, 1), fault)  # d stable 1
    rising_side = TestPattern((0, 0, 0, 0), (0, 1, 0, 1), fault)  # d rises too

    print(f"Target fault: {fault.describe(circuit)}")
    for label, pattern in (("s stable", stable_side), ("s rising", rising_side)):
        robust = robust_sim.detects(pattern, fault)
        nonrobust = nonrobust_sim.detects(pattern, fault)
        print(
            f"  {label:9s} {pattern.describe(circuit)}"
            f" -> robust: {robust}, nonrobust: {nonrobust}"
        )
    print()

    print("Timing-oracle check (path slowed, delays randomized):")
    for label, pattern in (("s stable", stable_side), ("s rising", rising_side)):
        nominal = timing_detects(circuit, pattern, fault)
        randomized = robust_timing_holds(circuit, pattern, fault, samples=32, seed=7)
        print(
            f"  {label:9s} detects at nominal delays: {nominal}; "
            f"under all 32 randomized delay maps: {randomized}"
        )
    print()


def class_statistics() -> None:
    circuit = paper_example()
    faults = all_faults(circuit)
    nonrobust = generate_tests(circuit, faults, TestClass.NONROBUST)
    robust = generate_tests(circuit, faults, TestClass.ROBUST)
    print("Whole-circuit comparison (robust detection implies nonrobust):")
    print(f"  faults            : {len(faults)}")
    print(f"  nonrobust testable: {nonrobust.n_tested}")
    print(f"  robust testable   : {robust.n_tested}")
    only = sum(
        1
        for nr, r in zip(nonrobust.records, robust.records)
        if nr.is_detected and not r.is_detected
    )
    print(f"  nonrobust-only    : {only}")


def main() -> None:
    classify_two_patterns()
    class_statistics()


if __name__ == "__main__":
    main()
