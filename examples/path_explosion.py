#!/usr/bin/env python
"""Path explosion and non-enumerative counting (the c6288 phenomenon).

The paper excludes c6288 from its tables because the multiplier has
~1e20 structural paths.  This example reproduces the phenomenon with
the array-multiplier generator, shows that exact *counting* stays
instant while *enumeration* becomes impossible, and uses the NEST-like
estimator to measure what a few patterns cover — all without listing
a single path.

Usage::

    python examples/path_explosion.py
"""

import time

from repro.baselines import NestEstimator
from repro.circuit.generators import array_multiplier, reconvergent_ladder
from repro.core import TestPattern
from repro.paths import TestClass, count_paths


def multiplier_growth() -> None:
    print("Array multiplier path counts (the c6288 phenomenon):")
    print(f"  {'width':>5s}  {'gates':>6s}  {'paths':>24s}  {'count time':>10s}")
    for width in (2, 3, 4, 6, 8, 10, 12):
        circuit = array_multiplier(width)
        t0 = time.perf_counter()
        paths = count_paths(circuit)
        elapsed = time.perf_counter() - t0
        print(
            f"  {width:5d}  {circuit.num_gates:6d}  {paths:24,d}  {elapsed:9.4f}s"
        )
    print()


def xor_ladder(stages: int):
    """An all-XOR reconvergent ladder: 2^stages paths from the seed,
    and every edge sensitizes (XOR never blocks a transition)."""
    from repro.circuit import CircuitBuilder

    b = CircuitBuilder(f"xor_ladder{stages}")
    b.inputs("seed", *[f"c{k}" for k in range(stages)])
    v = "seed"
    for k in range(stages):
        b.xor(f"u{k}", v, f"c{k}")
        b.xor(f"w{k}", v, f"c{k}")
        b.xor(f"v{k}", f"u{k}", f"w{k}")
        v = f"v{k}"
    b.outputs(v)
    return b.build()


def nest_on_explosive_circuit() -> None:
    stages = 30
    circuit = xor_ladder(stages)
    total = count_paths(circuit)
    print(
        f"All-XOR reconvergent ladder, {stages} stages: {total:,} structural "
        f"paths ({circuit.num_gates} gates)"
    )

    estimator = NestEstimator(circuit, TestClass.NONROBUST)
    n = len(circuit.inputs)
    patterns = [
        # launch at the seed: every path from it is detected at once
        TestPattern((0,) + (0,) * (n - 1), (1,) + (0,) * (n - 1)),
        # launch at a middle control input
        TestPattern((0,) * n, tuple(1 if k == 10 else 0 for k in range(n))),
    ]
    t0 = time.perf_counter()
    estimate = estimator.estimate(patterns)
    elapsed = time.perf_counter() - t0
    print(f"  detected-path counts per pattern: "
          f"{[f'{c:,}' for c in estimate.per_pattern]}")
    print(f"  coverage lower bound: {estimate.lower_bound:,}")
    print(f"  coverage upper bound: {estimate.upper_bound:,}")
    print(f"  counted non-enumeratively in {elapsed:.4f}s")


def main() -> None:
    multiplier_growth()
    nest_on_explosive_circuit()


if __name__ == "__main__":
    main()
