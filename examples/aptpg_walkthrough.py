#!/usr/bin/env python
"""The paper's Figure 2, step by step: alternative-parallel TPG (APTPG).

One hard fault (path a-p-x, falling transition at a) occupies all four
bit levels; the backtrace identifies the primary inputs c and d, and
*all four* value alternatives are examined at once — one per bit
level.  Exactly one alternative (c = 0, d = 0) conflicts; "as there is
at least one bit level without conflict the path is tested".

The script shows both the literal enumeration of the figure and the
production engine (whose unique backward implications solve the
justification with a single lane split).

Usage::

    python examples/aptpg_walkthrough.py
"""

from repro.analysis import run_figure2
from repro.circuit.library import paper_example
from repro.core.sensitize import sensitize_nonrobust
from repro.core.state import THREE_VALUED, TpgState
from repro.paths import PathDelayFault, Transition


def literal_enumeration() -> None:
    """Replay the figure: split both c and d across the four lanes."""
    circuit = paper_example()
    fault = PathDelayFault.from_names(circuit, ("a", "p", "x"), Transition.FALLING)
    state = TpgState(circuit, THREE_VALUED, 4)
    for signal, planes in sensitize_nonrobust(circuit, fault, 0b1111):
        state.assign(signal, planes)
    state.imply()

    # enumerate all four (c, d) alternatives across the lanes
    state.assign(circuit.index_of("c"), (0b0011, 0b1100))  # c = 0,0,1,1
    state.assign(circuit.index_of("d"), (0b0101, 0b1010))  # d = 0,1,0,1
    state.imply()

    print("Literal Figure 2 enumeration (lane 3 left .. lane 0 right):")
    for name in ("a", "b", "c", "d", "p", "q", "r", "s", "x"):
        print(f"  {name}: {state.format_lane_word(name)}")
    conflicted = state.conflict_mask
    justified = state.all_justified_mask()
    print(f"  conflicted lanes: {conflicted:04b}  (only c=0, d=0 fails)")
    print(f"  justified lanes : {justified:04b}  -> the path is tested")
    print()


def production_engine() -> None:
    result = run_figure2()
    print("Production APTPG on the same fault:")
    print(f"  status: {result['status']}")
    print(
        f"  lane splits used: {result['splits_used']} "
        "(backward implications resolve the other input)"
    )
    print(f"  backtracks: {result['backtracks']}")
    circuit = result["circuit"]
    print(f"  pattern: {result['pattern'].describe(circuit)}")


def main() -> None:
    literal_enumeration()
    production_engine()


if __name__ == "__main__":
    main()
