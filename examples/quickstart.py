#!/usr/bin/env python
"""Quickstart: generate path delay fault tests for a small circuit.

Runs the full pipeline on the ISCAS85 c17 benchmark: enumerate the
fault universe, generate robust and nonrobust tests with the
bit-parallel engine, verify every pattern with the independent fault
simulator, and print the results.

Usage::

    python examples/quickstart.py
"""

from repro import circuit, core, paths
from repro.analysis import render_table
from repro.paths import TestClass
from repro.sim import DelayFaultSimulator


def main() -> None:
    c17 = circuit.library.c17()
    print(f"Circuit: {c17.name} — {c17.stats()}")
    print(f"Structural paths: {paths.count_paths(c17)}")

    faults = paths.all_faults(c17)
    print(f"Path delay faults (2 transitions per path): {len(faults)}\n")

    rows = []
    for test_class in (TestClass.NONROBUST, TestClass.ROBUST):
        report = core.generate_tests(c17, faults, test_class)
        rows.append(report.summary())

        # never trust a generator: re-verify with the simulator
        simulator = DelayFaultSimulator(c17, test_class)
        for record in report.records:
            if record.pattern is not None:
                assert simulator.detects(record.pattern, record.fault)

    print(render_table(rows, title="ATPG summary (both test classes)"))

    print("\nFirst five robust patterns:")
    report = core.generate_tests(c17, faults, TestClass.ROBUST)
    for record in report.records[:5]:
        if record.pattern is not None:
            print(f"  {record.pattern.describe(c17)}")


if __name__ == "__main__":
    main()
