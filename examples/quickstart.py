#!/usr/bin/env python
"""Quickstart: generate path delay fault tests through the front door.

Runs the full pipeline on the ISCAS85 c17 benchmark via
``repro.api.AtpgSession`` — one session owns the circuit and its
compiled kernel, and every workload (generation, simulation, grading,
path statistics) runs behind it.

Usage::

    python examples/quickstart.py
"""

from repro.api import AtpgSession, Options
from repro.analysis import render_table
from repro.paths import TestClass
from repro.sim import DelayFaultSimulator


def main() -> None:
    # Every hot simulation loop runs on fused execution plans by
    # default (Options(fusion="auto")): level-vectorized numpy kernels
    # for bulk passes, straight-line compiled bodies for int-word and
    # implication-engine work.  Pass Options(fusion="interp") to pin
    # the per-gate oracle loop, or "vector"/"codegen" to pin one
    # strategy — results are bit-identical either way.
    session = AtpgSession.open("c17", options=Options(fusion="auto"))
    c17 = session.circuit
    print(f"Circuit: {c17.name} — {c17.stats()}")
    print(f"Structural paths: {session.paths()['paths']}")

    from repro.paths import all_faults

    faults = all_faults(c17)
    print(f"Path delay faults (2 transitions per path): {len(faults)}\n")

    rows = []
    for test_class in (TestClass.NONROBUST, TestClass.ROBUST):
        report = session.generate(faults, test_class=test_class)
        rows.append(report.summary())

        # never trust a generator: re-verify with the simulator
        simulator = DelayFaultSimulator(c17, test_class)
        for record in report.records:
            if record.pattern is not None:
                assert simulator.detects(record.pattern, record.fault)

        # ...or grade the whole set in one batched PPSFP pass
        grade = session.grade(report.patterns, faults, test_class=test_class)
        print(
            f"{test_class.value}: {grade['detected']}/{grade['faults']} "
            f"faults covered by {grade['patterns']} patterns"
        )

    print()
    print(render_table(rows, title="ATPG summary (both test classes)"))

    print("\nFirst five robust patterns:")
    report = session.generate(faults, test_class=TestClass.ROBUST)
    for record in report.records[:5]:
        if record.pattern is not None:
            print(f"  {record.pattern.describe(c17)}")


if __name__ == "__main__":
    main()
