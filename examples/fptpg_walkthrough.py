#!/usr/bin/env python
"""The paper's Figure 1, step by step: fault-parallel TPG (FPTPG).

Four paths of the example circuit are treated simultaneously on bit
levels 0 through 3 of one machine word.  The run reproduces the
published narrative exactly:

* bit levels 2 and 3: all values justified — the paths are tested,
* bit level 1: a conflict with no optional assignments — the path is
  redundant, and so is every path containing the subpath b-q-s with a
  rising transition at b,
* bit level 0: one unjustified value (s = 1); a single backtrace
  assigns d = 1 and the pattern is found.

Usage::

    python examples/fptpg_walkthrough.py
"""

from repro.analysis import run_figure1
from repro.core import FaultStatus
from repro.core.aptpg import run_aptpg
from repro.paths import PathDelayFault, TestClass, Transition


def main() -> None:
    result = run_figure1()
    circuit = result["circuit"]

    print("Example circuit (reconstruction of the paper's Figures 1/2):")
    for gate in circuit.gates:
        if gate.is_input:
            continue
        fanin = ", ".join(circuit.signal_name(f) for f in gate.fanin)
        print(f"  {gate.name} = {gate.gate_type.value}({fanin})")
    print()

    print("FPTPG for 4 paths in parallel (bit levels 0..3, rising):")
    for lane, (fault, status) in enumerate(
        zip(result["faults"], result["statuses"])
    ):
        print(f"  level {lane}: {fault.describe(circuit):18s} -> {status}")
    print(f"  backtrace decisions: {result['decisions']} (assigning d = 1)")
    print()

    print("Resulting lane words (bit level 3 on the left, as the paper draws):")
    for name, word in result["lane_words"].items():
        print(f"  {name}: {word}")
    print()

    pattern = result["patterns"][0]
    print(f"Level-0 test pattern for b-p-x: {pattern.describe(circuit)}")
    print()

    print("Generalizing the redundancy: every path containing b-q-s rising")
    fault = PathDelayFault.from_names(circuit, ("b", "q", "s", "y"), Transition.RISING)
    outcome = run_aptpg(circuit, fault, TestClass.NONROBUST, width=4)
    assert outcome.status is FaultStatus.REDUNDANT
    print(f"  {fault.describe(circuit)} -> {outcome.status.value} (as claimed)")


if __name__ == "__main__":
    main()
