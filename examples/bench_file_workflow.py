#!/usr/bin/env python
"""Working with ISCAS ``.bench`` netlists end to end.

Writes a small sequential netlist to disk, loads it back (flip-flops
are cut into pseudo inputs/outputs — "only the combinational part is
considered", as the paper does for the ISCAS89 circuits), runs the
bit-parallel generator, and emits the test set.

Usage::

    python examples/bench_file_workflow.py
"""

import tempfile
from pathlib import Path

from repro.analysis import render_table
from repro.circuit import load_bench, write_bench
from repro.core import generate_tests
from repro.paths import TestClass, all_faults, count_paths

SEQUENTIAL_BENCH = """\
# A tiny sequential design: 2-bit counter-ish next-state logic
INPUT(enable)
INPUT(clear)
OUTPUT(rollover)
q0 = DFF(d0)
q1 = DFF(d1)
nclear = NOT(clear)
t0 = XOR(q0, enable)
d0 = AND(t0, nclear)
carry = AND(q0, enable)
t1 = XOR(q1, carry)
d1 = AND(t1, nclear)
rollover = AND(q0, q1, enable)
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "counter.bench"
        path.write_text(SEQUENTIAL_BENCH)

        circuit = load_bench(path)
        input_names = [circuit.signal_name(i) for i in circuit.inputs]
        output_names = [circuit.signal_name(o) for o in circuit.outputs]
        print(f"Loaded {circuit.name}: {circuit.stats()}")
        print(f"  pseudo inputs  (incl. flip-flop outputs): {input_names}")
        print(f"  pseudo outputs (incl. flip-flop inputs) : {output_names}")
        print(f"  structural paths: {count_paths(circuit)}\n")

        faults = all_faults(circuit)
        report = generate_tests(circuit, faults, TestClass.ROBUST)
        print(render_table([report.summary()], title="Robust ATPG"))

        print("\nGenerated two-vector tests:")
        for record in report.records:
            if record.pattern is not None:
                print(f"  {record.pattern.describe(circuit)}")

        # the circuit round-trips through the writer unchanged
        again = load_bench(path)
        assert write_bench(again) == write_bench(circuit)
        print("\n.bench round-trip: OK")


if __name__ == "__main__":
    main()
