#!/usr/bin/env python
"""The paper's future work, realized: bit-parallel stuck-at ATPG.

"Our future research activity concentrates on ... the application of
bit-parallel test generation to further fault models, first of all the
stuck-at fault model."  This example runs the same FPTPG/APTPG split
on stuck-at faults: L faults in parallel lanes, decision alternatives
in lanes for the hard ones, fault dropping by parallel-pattern
simulation in between.

Usage::

    python examples/stuck_at_extension.py
"""

from repro.analysis import render_table
from repro.circuit.generators import ripple_carry_adder
from repro.circuit.library import c17, redundant_and_chain
from repro.core import generate_stuck_at_tests
from repro.core.stuck_at import StuckAtStatus, all_stuck_at_faults
from repro.sim.stuck_at_sim import StuckAtSimulator


def main() -> None:
    rows = []
    for circuit in (c17(), redundant_and_chain(), ripple_carry_adder(4)):
        report = generate_stuck_at_tests(circuit)
        rows.append(report.summary())

        # verify every emitted vector with the independent simulator
        simulator = StuckAtSimulator(circuit)
        for record in report.records:
            if record.vector is not None:
                assert simulator.detects(record.vector, record.fault)
    print(render_table(rows, title="Bit-parallel stuck-at ATPG"))

    circuit = redundant_and_chain()
    report = generate_stuck_at_tests(circuit)
    print("\nVerdicts on the redundant example (x = AND(a, NOT a)):")
    for record in report.records:
        if record.status is StuckAtStatus.REDUNDANT:
            print(f"  {record.fault.describe(circuit):22s} -> redundant")

    circuit = c17()
    report = generate_stuck_at_tests(circuit)
    vectors = [r.vector for r in report.records if r.vector is not None]
    coverage = StuckAtSimulator(circuit).coverage(
        vectors, all_stuck_at_faults(circuit)
    )
    print(f"\nc17 stuck-at coverage of the emitted vectors: {coverage:.1%}")


if __name__ == "__main__":
    main()
