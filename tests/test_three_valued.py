"""Tests of the 3-valued bit-plane logic (paper Table 1).

The forward rules are checked exhaustively against the 3-valued
semantics (output bit known iff every completion of the X inputs
agrees); the backward rules are checked against brute-force "forced in
all consistent completions" computation, so unique implications are
proven both sound and complete for this logic.
"""

import itertools

import pytest

from repro.circuit import GateType
from repro.circuit.gates import evaluate
from repro.logic import three_valued as tv

GATES_2IN = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]

VALUES = ["0", "1", "X"]


def planes_of(symbols, width=None):
    """Build plane words from per-lane value letters ('0', '1', 'X')."""
    z = o = 0
    for lane, s in enumerate(symbols):
        if s == "0":
            z |= 1 << lane
        elif s == "1":
            o |= 1 << lane
    return (z, o)


def completions(symbols):
    """All 0/1 tuples consistent with per-input value letters."""
    choices = [(0, 1) if s == "X" else (int(s),) for s in symbols]
    return list(itertools.product(*choices))


class TestEncoding:
    def test_paper_table1_exact(self):
        # logic value / 0-bit / 1-bit rows of Table 1
        assert tv.encode(0) == (1, 0)
        assert tv.encode(1) == (0, 1)
        assert tv.X == (0, 0)
        # conflict row: (1, 1) is not a value and flags a conflict
        assert tv.conflict((1, 1)) == 1
        assert tv.conflict((1, 0)) == 0
        assert tv.conflict((0, 1)) == 0
        assert tv.conflict((0, 0)) == 0

    def test_encode_rejects_non_binary(self):
        with pytest.raises(ValueError):
            tv.encode(2)

    def test_encode_word(self):
        assert tv.encode_word(1, 0b101) == (0, 0b101)
        assert tv.encode_word(0, 0b011) == (0b011, 0)

    def test_decode_lane(self):
        planes = (0b0101, 0b0110)
        assert tv.decode_lane(planes, 0) == "0"
        assert tv.decode_lane(planes, 1) == "1"
        assert tv.decode_lane(planes, 2) == "C"
        assert tv.decode_lane(planes, 3) == "X"

    def test_known_and_merge(self):
        a = tv.encode_word(0, 0b01)
        b = tv.encode_word(1, 0b10)
        merged = tv.merge(a, b)
        assert tv.known(merged) == 0b11
        assert tv.conflict(merged) == 0


class TestForward:
    @pytest.mark.parametrize("gate_type", GATES_2IN)
    def test_exhaustive_two_inputs(self, gate_type):
        """Forward must be exactly the 3-valued gate function, per lane."""
        combos = list(itertools.product(VALUES, repeat=2))
        width = len(combos)
        mask = (1 << width) - 1
        a = planes_of([c[0] for c in combos])
        b = planes_of([c[1] for c in combos])
        out = tv.forward(gate_type, [a, b], mask)
        for lane, combo in enumerate(combos):
            outcomes = {
                evaluate(gate_type, list(bits)) for bits in completions(combo)
            }
            want = str(outcomes.pop()) if len(outcomes) == 1 else "X"
            assert tv.decode_lane(out, lane) == want, (gate_type, combo)

    @pytest.mark.parametrize("gate_type", [GateType.AND, GateType.OR, GateType.XOR])
    def test_exhaustive_three_inputs(self, gate_type):
        combos = list(itertools.product(VALUES, repeat=3))
        width = len(combos)
        mask = (1 << width) - 1
        planes = [planes_of([c[k] for c in combos]) for k in range(3)]
        out = tv.forward(gate_type, planes, mask)
        for lane, combo in enumerate(combos):
            outcomes = {
                evaluate(gate_type, list(bits)) for bits in completions(combo)
            }
            want = str(outcomes.pop()) if len(outcomes) == 1 else "X"
            assert tv.decode_lane(out, lane) == want, (gate_type, combo)

    def test_not_and_buf(self):
        planes = planes_of(["0", "1", "X"])
        assert tv.forward(GateType.NOT, [planes], 0b111) == (planes[1], planes[0])
        assert tv.forward(GateType.BUF, [planes], 0b111) == planes


class TestBackward:
    @pytest.mark.parametrize("gate_type", GATES_2IN)
    @pytest.mark.parametrize("n_inputs", [2, 3])
    def test_unique_implications_sound_and_complete(self, gate_type, n_inputs):
        """Backward == bits forced in every consistent completion."""
        for in_combo in itertools.product(VALUES, repeat=n_inputs):
            for out_value in (0, 1):
                inputs = [planes_of([s]) for s in in_combo]
                output = tv.encode(out_value)
                additions = tv.backward(gate_type, output, inputs, 1)
                consistent = [
                    bits
                    for bits in completions(in_combo)
                    if evaluate(gate_type, list(bits)) == out_value
                ]
                if not consistent:
                    continue  # contradictory: any implication is moot
                for i in range(n_inputs):
                    observed = {bits[i] for bits in consistent}
                    add_z, add_o = additions[i]
                    implied = None
                    if add_o & 1:
                        implied = 1
                    if add_z & 1:
                        implied = 0 if implied is None else "C"
                    if len(observed) == 1 and in_combo[i] == "X":
                        forced = observed.pop()
                        assert implied == forced, (
                            gate_type,
                            in_combo,
                            out_value,
                            i,
                        )
                    elif in_combo[i] == "X":
                        assert implied is None, (gate_type, in_combo, out_value, i)

    def test_not_backward(self):
        adds = tv.backward(GateType.NOT, tv.encode(1), [tv.X], 1)
        assert adds == [(1, 0)]  # output 1 -> input 0

    def test_buf_backward(self):
        adds = tv.backward(GateType.BUF, tv.encode(0), [tv.X], 1)
        assert adds == [(1, 0)]

    def test_and_all_ones(self):
        inputs = [tv.X, tv.X, tv.X]
        adds = tv.backward(GateType.AND, tv.encode(1), inputs, 1)
        assert all(a == (0, 1) for a in adds)

    def test_and_last_free_input_forced_zero(self):
        inputs = [tv.encode(1), tv.encode(1), tv.X]
        adds = tv.backward(GateType.AND, tv.encode(0), inputs, 1)
        assert adds[2] == (1, 0)

    def test_xor_parity_completion(self):
        inputs = [tv.encode(1), tv.encode(0), tv.X]
        adds = tv.backward(GateType.XOR, tv.encode(0), inputs, 1)
        assert adds[2] == (0, 1)  # 1 ^ 0 ^ x = 0 -> x = 1


class TestUnjustified:
    def test_and_output_one_unjustified_until_inputs_known(self):
        a, b = tv.X, tv.X
        out = tv.encode(1)
        assert tv.unjustified(GateType.AND, out, [a, b], 1) == 1
        assert tv.unjustified(GateType.AND, out, [tv.encode(1), tv.encode(1)], 1) == 0

    def test_or_output_one_justified_by_single_one(self):
        out = tv.encode(1)
        assert tv.unjustified(GateType.OR, out, [tv.encode(1), tv.X], 1) == 0
        assert tv.unjustified(GateType.OR, out, [tv.encode(0), tv.X], 1) == 1

    def test_unassigned_output_is_justified(self):
        assert tv.unjustified(GateType.AND, tv.X, [tv.X, tv.X], 1) == 0

    def test_per_lane_masking(self):
        width = 2
        mask = 0b11
        out = (0, 0b11)  # output 1 in both lanes
        a = (0, 0b01)  # input a known 1 only in lane 0
        b = (0, 0b01)
        assert tv.unjustified(GateType.AND, out, [a, b], mask) == 0b10
