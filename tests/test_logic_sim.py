"""Unit tests for the bit-parallel two-valued logic simulators."""

import random

import numpy as np
import pytest

from repro.circuit.generators import random_dag, ripple_carry_adder
from repro.circuit.library import c17, paper_example
from repro.sim.logic_sim import (
    pack_vectors,
    simulate_array,
    simulate_batch,
    simulate_words,
)


class TestPackVectors:
    def test_lane_layout(self):
        words = pack_vectors([[1, 0], [0, 1], [1, 1]])
        assert words == [0b101, 0b110]

    def test_empty(self):
        assert pack_vectors([]) == []

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            pack_vectors([[1, 0], [1]])


class TestSimulateWords:
    @pytest.mark.parametrize("factory", [c17, paper_example])
    def test_matches_reference_per_lane(self, factory):
        circuit = factory()
        rng = random.Random(1)
        vectors = [
            [rng.randint(0, 1) for _ in circuit.inputs] for _ in range(32)
        ]
        words = pack_vectors(vectors)
        values = simulate_words(circuit, words, len(vectors))
        for lane, vector in enumerate(vectors):
            reference = circuit.evaluate(vector)
            for gate in circuit.gates:
                assert (values[gate.index] >> lane) & 1 == reference[gate.name], (
                    gate.name,
                    lane,
                )

    def test_wrong_input_count(self):
        with pytest.raises(ValueError):
            simulate_words(c17(), [0, 0], 1)

    def test_batch_matches_outputs(self):
        circuit = ripple_carry_adder(4)
        rng = random.Random(2)
        vectors = [
            [rng.randint(0, 1) for _ in circuit.inputs] for _ in range(300)
        ]
        outputs = simulate_batch(circuit, vectors)
        for vector, outs in zip(vectors[:20], outputs[:20]):
            assert outs == circuit.output_values(vector)


class TestSimulateArray:
    def test_matches_word_simulation(self):
        circuit = random_dag(10, 50, seed=3)
        rng = random.Random(4)
        vectors = [
            [rng.randint(0, 1) for _ in circuit.inputs] for _ in range(128)
        ]
        # numpy layout: 2 words of 64 lanes
        bits = np.zeros((len(circuit.inputs), 2), dtype=np.uint64)
        for lane, vector in enumerate(vectors):
            word, offset = divmod(lane, 64)
            for i, bit in enumerate(vector):
                if bit:
                    bits[i, word] |= np.uint64(1) << np.uint64(offset)
        array_values = simulate_array(circuit, bits)
        words0 = pack_vectors(vectors[:64])
        int_values = simulate_words(circuit, words0, 64)
        for gate in circuit.gates:
            assert int(array_values[gate.index, 0]) == int_values[gate.index]

    def test_shape_check(self):
        with pytest.raises(ValueError):
            simulate_array(c17(), np.zeros((2, 1), dtype=np.uint64))

    def test_not_gate_masking(self):
        # inverted values must not leak beyond 64 bits (uint64 wraps)
        circuit = paper_example()
        bits = np.zeros((4, 1), dtype=np.uint64)
        values = simulate_array(circuit, bits)
        t = circuit.index_of("t")  # NOT of p, p = OR(a,b) = 0 -> t = all ones
        assert int(values[t, 0]) == 0xFFFFFFFFFFFFFFFF
