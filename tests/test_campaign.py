"""Tests for the staged ATPG campaign pipeline.

The load-bearing invariant: the campaign schedule is a pure function
of its options, never of worker count or timing — so a multi-process
campaign produces *bit-identical* per-fault statuses to the serial
engine (which is a 1-worker campaign by construction).  The tests
assert that equivalence on the c880-scale suite and on random
circuits (property-based), plus the streaming window bound,
checkpoint/resume, incremental compaction, and the fault universe's
filtering/dedup/budget semantics.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignOptions,
    CampaignReport,
    FaultUniverse,
    run_campaign,
)
from repro.campaign.runner import _Campaign
from repro.circuit import CircuitBuilder
from repro.circuit.generators import random_dag, ripple_carry_adder
from repro.circuit.suites import suite_circuit
from repro.core import FaultStatus, TpgOptions, generate_tests
from repro.paths import TestClass, all_faults, fault_list
from repro.sim import DelayFaultSimulator


def campaign_statuses(report: CampaignReport):
    return [report.statuses[i] for i in range(report.n_faults)]


def engine_statuses(report):
    return [record.status for record in report.records]


def detected_set(report):
    return {
        i
        for i, record in enumerate(report.records)
        if record.is_detected
    }


class TestSerialEquivalence:
    """campaign(workers=k) == serial engine, for every k."""

    @pytest.mark.parametrize("test_class", [TestClass.NONROBUST, TestClass.ROBUST])
    def test_c880_scale_workers2_identical(self, test_class):
        circuit = suite_circuit("c880", 1)
        faults = fault_list(circuit, cap=160, strategy="all")
        serial = generate_tests(circuit, faults, test_class, TpgOptions(width=16))
        campaign = run_campaign(
            circuit,
            faults=faults,
            test_class=test_class,
            options=CampaignOptions(width=16, workers=2),
        )
        assert campaign_statuses(campaign) == engine_statuses(serial)
        assert set(campaign.detected_indices()) == detected_set(serial)
        # post-simulation coverage of the generated sets is identical
        sim = DelayFaultSimulator(circuit, test_class)
        assert sim.coverage(campaign.patterns, faults) == pytest.approx(
            sim.coverage(serial.patterns, faults)
        )

    def test_workers_do_not_change_statuses_with_drops(self):
        # this workload exercises SIMULATED, REDUNDANT and TESTED at once
        circuit = random_dag(10, 40, seed=7)
        faults = all_faults(circuit, cap=200)
        reports = [
            run_campaign(
                circuit,
                faults=faults,
                options=CampaignOptions(width=4, workers=workers),
            )
            for workers in (1, 2)
        ]
        assert campaign_statuses(reports[0]) == campaign_statuses(reports[1])
        statuses = set(campaign_statuses(reports[0]))
        assert FaultStatus.SIMULATED in statuses  # drops really happened

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        width=st.sampled_from([2, 4, 8]),
        robust=st.booleans(),
    )
    def test_property_random_circuits(self, seed, width, robust):
        circuit = random_dag(8, 30, seed=seed)
        faults = all_faults(circuit, cap=80)
        test_class = TestClass.ROBUST if robust else TestClass.NONROBUST
        serial = generate_tests(
            circuit, faults, test_class, TpgOptions(width=width)
        )
        campaign = run_campaign(
            circuit,
            faults=faults,
            test_class=test_class,
            options=CampaignOptions(width=width, workers=2),
        )
        assert campaign_statuses(campaign) == engine_statuses(serial)
        assert set(campaign.detected_indices()) == detected_set(serial)


class TestStreaming:
    def test_window_bounds_pending_set(self):
        circuit = suite_circuit("c880", 1)
        universe = FaultUniverse.from_circuit(circuit, max_faults=300)
        report = run_campaign(
            circuit,
            universe=universe,
            options=CampaignOptions(width=16, window=48),
        )
        assert report.n_faults == 300
        assert report.stats.peak_pending <= 48
        assert report.complete

    def test_windowed_detection_matches_serial(self):
        circuit = random_dag(10, 40, seed=7)
        faults = all_faults(circuit, cap=200)
        serial = generate_tests(
            circuit, faults, TestClass.NONROBUST, TpgOptions(width=4)
        )
        windowed = run_campaign(
            circuit,
            universe=FaultUniverse.from_faults(faults),
            options=CampaignOptions(width=4, window=16),
        )
        # the drop schedule differs under a bounded window, so statuses
        # may trade TESTED for SIMULATED — but detection must agree
        assert set(windowed.detected_indices()) == detected_set(serial)
        assert windowed.stats.peak_pending <= 16

    def test_admission_dropping(self):
        # two outputs behind one buffer: once the o1 paths are tested,
        # the o2 faults are covered before they are ever scheduled
        b = CircuitBuilder("fanout")
        b.inputs("a")
        b.buf("x", "a")
        b.buf("o1", "x")
        b.buf("o2", "x")
        b.outputs("o1", "o2")
        circuit = b.build()
        faults = all_faults(circuit)
        report = run_campaign(
            circuit,
            universe=FaultUniverse.from_faults(faults),
            options=CampaignOptions(width=1, shards=2, window=2),
        )
        assert report.count(FaultStatus.SIMULATED) > 0
        assert report.stats.admitted_dropped > 0


class TestFaultUniverse:
    def test_budget_and_filters(self):
        circuit = ripple_carry_adder(4)
        universe = FaultUniverse.from_circuit(
            circuit, max_faults=10, min_length=2, max_length=5
        )
        faults = universe.head(100)
        assert len(faults) == 10
        assert all(2 <= f.length <= 5 for f in faults)

    def test_predicate_filter(self):
        circuit = ripple_carry_adder(3)
        output = circuit.outputs[0]
        universe = FaultUniverse.from_circuit(
            circuit, predicate=lambda f: f.output_signal == output
        )
        faults = universe.head(50)
        assert faults and all(f.output_signal == output for f in faults)

    def test_stream_resumes_by_position(self):
        circuit = ripple_carry_adder(3)
        universe = FaultUniverse.from_circuit(circuit, max_faults=40)
        full = list(universe.stream())
        tail = list(universe.stream(start=25))
        assert tail == full[25:]
        assert [i for i, _f in full] == list(range(len(full)))

    def test_dedup(self):
        circuit = ripple_carry_adder(2)
        faults = all_faults(circuit, cap=10)
        universe = FaultUniverse.from_faults(faults + faults, dedup=True)
        assert len(universe.head(100)) == len(faults)


class TestCheckpointResume:
    def test_interrupted_campaign_resumes_identically(self, tmp_path):
        circuit = random_dag(10, 40, seed=7)
        faults = all_faults(circuit, cap=120)
        options = CampaignOptions(width=4, window=32)
        baseline = run_campaign(
            circuit, universe=FaultUniverse.from_faults(faults), options=options
        )

        # run a few rounds by hand, checkpoint, and abandon the run
        path = str(tmp_path / "campaign.json")
        partial_options = CampaignOptions(
            width=4, window=32, checkpoint=path, resume=True
        )
        partial = _Campaign(
            circuit,
            FaultUniverse.from_faults(faults),
            TestClass.NONROBUST,
            partial_options,
        )
        from repro.campaign.scheduler import make_executor

        executor = make_executor(circuit, TestClass.NONROBUST, 4, True, 64, 1)
        stream = partial.universe.stream()
        for _round in range(3):
            partial.pull(stream)
            partial.fptpg_round(executor)
        executor.close()
        partial.save_checkpoint()
        settled_at_interrupt = len(partial.report.statuses)
        assert 0 < settled_at_interrupt < len(faults)

        resumed = run_campaign(
            circuit,
            universe=FaultUniverse.from_faults(faults),
            options=partial_options,
        )
        assert resumed.complete
        assert campaign_statuses(resumed) == campaign_statuses(baseline)
        assert len(resumed.patterns) == len(baseline.patterns)

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        interrupt_after=st.integers(min_value=1, max_value=4),
    )
    def test_property_mid_round_resume_matches_uninterrupted(
        self, seed, interrupt_after
    ):
        """Interrupt after any round count -> resume is bit-identical.

        The property behind crash recovery: wherever a run dies, the
        checkpointed prefix plus the resumed suffix must detect
        exactly the faults an uninterrupted run detects.
        """
        import tempfile

        circuit = random_dag(9, 35, seed=seed)
        faults = all_faults(circuit, cap=100)
        baseline = run_campaign(
            circuit,
            universe=FaultUniverse.from_faults(faults),
            options=CampaignOptions(width=4),
        )
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "campaign.json")
            options = CampaignOptions(width=4, checkpoint=path, resume=True)
            partial = _Campaign(
                circuit,
                FaultUniverse.from_faults(faults),
                TestClass.NONROBUST,
                options,
            )
            from repro.campaign.scheduler import make_executor

            executor = make_executor(circuit, TestClass.NONROBUST, 4, True, 64, 1)
            stream = partial.universe.stream()
            for _round in range(interrupt_after):
                partial.pull(stream)
                if not partial.fptpg_round(executor):
                    break
            executor.close()
            partial.save_checkpoint()

            resumed = run_campaign(
                circuit,
                universe=FaultUniverse.from_faults(faults),
                options=options,
            )
        assert resumed.complete
        assert campaign_statuses(resumed) == campaign_statuses(baseline)
        assert set(resumed.detected_indices()) == set(
            baseline.detected_indices()
        )

    def test_completed_checkpoint_short_circuits(self, tmp_path):
        circuit = ripple_carry_adder(3)
        path = str(tmp_path / "done.json")
        options = CampaignOptions(
            width=8, checkpoint=path, checkpoint_every=1, resume=True
        )
        first = run_campaign(
            circuit,
            universe=FaultUniverse.from_circuit(circuit, max_faults=60),
            options=options,
        )
        again = run_campaign(
            circuit,
            universe=FaultUniverse.from_circuit(circuit, max_faults=60),
            options=options,
        )
        assert campaign_statuses(again) == campaign_statuses(first)
        assert again.complete

    def test_mismatched_checkpoint_rejected(self, tmp_path):
        circuit = ripple_carry_adder(3)
        path = str(tmp_path / "ckpt.json")
        run_campaign(
            circuit,
            universe=FaultUniverse.from_circuit(circuit, max_faults=20),
            options=CampaignOptions(width=8, checkpoint=path),
        )
        with pytest.raises(ValueError, match="width"):
            run_campaign(
                circuit,
                universe=FaultUniverse.from_circuit(circuit, max_faults=20),
                options=CampaignOptions(width=16, checkpoint=path, resume=True),
            )

    def test_mismatched_universe_rejected(self, tmp_path):
        """Different stream filters renumber the faults — resuming
        under them must be refused, not silently merged."""
        circuit = ripple_carry_adder(3)
        path = str(tmp_path / "ckpt.json")
        options = CampaignOptions(width=8, checkpoint=path, resume=True)
        run_campaign(
            circuit,
            universe=FaultUniverse.from_circuit(circuit, max_faults=20),
            options=options,
        )
        with pytest.raises(ValueError, match="universe"):
            run_campaign(
                circuit,
                universe=FaultUniverse.from_circuit(
                    circuit, max_faults=20, min_length=3
                ),
                options=options,
            )

    def test_checkpoint_is_json(self, tmp_path):
        circuit = ripple_carry_adder(3)
        path = str(tmp_path / "ckpt.json")
        run_campaign(
            circuit,
            universe=FaultUniverse.from_circuit(circuit, max_faults=30),
            options=CampaignOptions(width=4, checkpoint=path),
        )
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["complete"] is True
        assert payload["circuit"] == circuit.name
        assert len(payload["settled"]) == 30


class TestIncrementalCompaction:
    def test_compaction_bounds_patterns_and_keeps_target_coverage(self):
        circuit = ripple_carry_adder(5)
        faults = all_faults(circuit, cap=240)
        plain = run_campaign(
            circuit,
            faults=faults,
            options=CampaignOptions(width=8),
        )
        compacted = run_campaign(
            circuit,
            faults=faults,
            options=CampaignOptions(width=8, compact_every=32),
        )
        assert compacted.stats.compactions > 0
        assert len(compacted.patterns) <= len(plain.patterns)
        # every detected fault is still covered by the compacted set
        sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        detected = [faults[i] for i in compacted.detected_indices()]
        assert sim.coverage(compacted.patterns, detected) == pytest.approx(1.0)

    @pytest.mark.parametrize("seed", [0, 3, 7, 11])
    def test_compaction_preserves_collateral_coverage(self, seed):
        """Drop-heavy workloads: SIMULATED faults have no pattern of
        their own, but the compacted set must still detect them."""
        circuit = random_dag(10, 40, seed=seed)
        faults = all_faults(circuit, cap=150)
        report = run_campaign(
            circuit,
            faults=faults,
            options=CampaignOptions(width=4, compact_every=4),
        )
        sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        detected = [faults[i] for i in report.detected_indices()]
        assert sim.coverage(report.patterns, detected) == pytest.approx(1.0)

    def test_compaction_after_resume_preserves_coverage(self, tmp_path):
        """Pre-resume patterns and obligations survive the checkpoint,
        so post-resume compaction cannot discard claimed coverage."""
        circuit = random_dag(10, 40, seed=7)
        faults = all_faults(circuit, cap=150)
        path = str(tmp_path / "compact.json")
        options = CampaignOptions(
            width=4, compact_every=8, checkpoint=path, resume=True
        )
        partial = _Campaign(
            circuit,
            FaultUniverse.from_faults(faults),
            TestClass.NONROBUST,
            options,
        )
        from repro.campaign.scheduler import make_executor

        executor = make_executor(circuit, TestClass.NONROBUST, 4, True, 64, 1)
        stream = partial.universe.stream()
        for _round in range(6):
            partial.pull(stream)
            partial.fptpg_round(executor)
        executor.close()
        partial.save_checkpoint()
        assert 0 < len(partial.report.statuses) < len(faults)

        resumed = run_campaign(
            circuit, universe=FaultUniverse.from_faults(faults), options=options
        )
        assert resumed.stats.compactions > 0
        sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        detected = [faults[i] for i in resumed.detected_indices()]
        assert sim.coverage(resumed.patterns, detected) == pytest.approx(1.0)


class TestReportAdapters:
    def test_as_tpg_report_round_trip(self):
        circuit = ripple_carry_adder(3)
        faults = all_faults(circuit, cap=60)
        campaign = run_campaign(circuit, faults=faults)
        tpg = campaign.as_tpg_report()
        assert tpg.n_faults == len(faults)
        assert engine_statuses(tpg) == campaign_statuses(campaign)
        assert tpg.summary()["efficiency_%"] == pytest.approx(
            campaign.efficiency, abs=1e-4
        )

    def test_summary_shape(self):
        circuit = ripple_carry_adder(3)
        report = run_campaign(
            circuit, universe=FaultUniverse.from_circuit(circuit, max_faults=40)
        )
        summary = report.summary()
        assert summary["faults"] == 40
        assert (
            summary["tested"]
            + summary["simulated"]
            + summary["redundant"]
            + summary["aborted"]
            == 40
        )

    def test_keep_records_false(self):
        circuit = ripple_carry_adder(3)
        report = run_campaign(
            circuit,
            universe=FaultUniverse.from_circuit(circuit, max_faults=40),
            options=CampaignOptions(keep_records=False),
        )
        assert report.records is None
        assert report.n_faults == 40
        with pytest.raises(ValueError, match="keep_records"):
            report.as_tpg_report()


class TestDetectionMasks:
    def test_masks_align_with_detected_faults(self):
        from repro.core.patterns import random_patterns

        circuit = ripple_carry_adder(4)
        faults = all_faults(circuit, cap=50)
        patterns = random_patterns(circuit, 96, seed=3)
        sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        masks = sim.detection_masks(patterns, faults)
        by_fault = sim.detected_faults(patterns, faults)
        assert masks == [by_fault[f] for f in faults]
