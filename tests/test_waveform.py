"""Unit tests for the waveform representation."""

import pytest

from repro.sim.waveform import Waveform


class TestConstruction:
    def test_constant(self):
        w = Waveform.constant(1)
        assert w.initial == 1
        assert w.final == 1
        assert w.is_stable

    def test_step(self):
        w = Waveform.step(0, 1, 2.5)
        assert w.initial == 0
        assert w.final == 1
        assert w.events == ((2.5, 1),)

    def test_step_same_value_is_constant(self):
        w = Waveform.step(1, 1, 2.0)
        assert w.is_stable

    def test_unsorted_events_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Waveform(0, ((2.0, 1), (1.0, 0)))

    def test_non_changing_event_rejected(self):
        with pytest.raises(ValueError, match="change"):
            Waveform(0, ((1.0, 0),))

    def test_from_changes_deduplicates(self):
        w = Waveform.from_changes(0, [(1.0, 1), (2.0, 1), (3.0, 0)])
        assert w.events == ((1.0, 1), (3.0, 0))

    def test_from_changes_sorts(self):
        w = Waveform.from_changes(0, [(3.0, 0), (1.0, 1)])
        assert w.events == ((1.0, 1), (3.0, 0))
        w = Waveform.from_changes(0, [(3.0, 1), (1.0, 1)])
        assert w.events == ((1.0, 1),)


class TestQueries:
    def test_value_at(self):
        w = Waveform(0, ((1.0, 1), (2.0, 0), (4.0, 1)))
        assert w.value_at(0.5) == 0
        assert w.value_at(1.0) == 1
        assert w.value_at(3.0) == 0
        assert w.value_at(10.0) == 1

    def test_transition_count_and_times(self):
        w = Waveform(0, ((1.0, 1), (2.0, 0)))
        assert w.transition_count() == 2
        assert w.last_event_time() == 2.0
        assert Waveform.constant(0).last_event_time() == 0.0

    def test_shifted(self):
        w = Waveform(0, ((1.0, 1),)).shifted(2.0)
        assert w.events == ((3.0, 1),)

    def test_describe(self):
        w = Waveform(1, ((1.5, 0),))
        assert w.describe() == "1-(1.5)->0"
