"""Property tests of the versioned wire format (repro.api.serde).

The round-trip law — ``from_payload(to_payload(x)) == x`` — is
asserted for every artifact codec, with hypothesis-generated faults,
patterns, options, and reports.  Envelope handling (unknown kinds,
unknown ``schema_version``, shape drift) must be rejected loudly.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Options, serde
from repro.api.schemas import SchemaError, stamp, validate, validate_file
from repro.circuit.generators import random_dag, ripple_carry_adder
from repro.circuit.library import c17
from repro.core.patterns import TestPattern
from repro.core.results import FaultRecord, FaultStatus, TpgReport
from repro.paths import PathDelayFault, TestClass, Transition

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

transitions = st.sampled_from([Transition.RISING, Transition.FALLING])

faults = st.builds(
    PathDelayFault,
    signals=st.lists(
        st.integers(min_value=0, max_value=500), min_size=1, max_size=12
    ).map(tuple),
    transition=transitions,
)

bits = st.integers(min_value=0, max_value=1)


@st.composite
def patterns(draw):
    n = draw(st.integers(min_value=1, max_value=10))
    v1 = tuple(draw(bits) for _ in range(n))
    v2 = tuple(draw(bits) for _ in range(n))
    fault = draw(st.none() | faults)
    return TestPattern(v1, v2, fault)


options_strategy = st.builds(
    Options,
    width=st.integers(min_value=1, max_value=256),
    backtrack_limit=st.integers(min_value=0, max_value=512),
    drop_faults=st.booleans(),
    use_fptpg=st.booleans(),
    use_aptpg=st.booleans(),
    unique_backward=st.booleans(),
    sim_backend=st.sampled_from(["auto", "int", "numpy"]),
    shards=st.integers(min_value=1, max_value=8),
    window=st.none() | st.integers(min_value=256, max_value=10_000),
    workers=st.integers(min_value=1, max_value=8),
    checkpoint=st.none() | st.text(min_size=1, max_size=20),
    checkpoint_every=st.integers(min_value=1, max_value=64),
    resume=st.booleans(),
    compact_every=st.none() | st.integers(min_value=1, max_value=64),
    keep_records=st.booleans(),
)

records = st.builds(
    FaultRecord,
    fault=faults,
    status=st.sampled_from(list(FaultStatus)),
    pattern=st.none() | patterns(),
    mode=st.sampled_from(["fptpg", "aptpg", "simulation", ""]),
)

tpg_reports = st.builds(
    TpgReport,
    circuit_name=st.text(min_size=1, max_size=16),
    test_class=st.sampled_from(list(TestClass)),
    width=st.integers(min_value=1, max_value=128),
    records=st.lists(records, max_size=8),
    seconds_sensitize=st.floats(min_value=0, max_value=1e3),
    seconds_generate=st.floats(min_value=0, max_value=1e3),
    seconds_simulate=st.floats(min_value=0, max_value=1e3),
    decisions=st.integers(min_value=0, max_value=10**9),
    backtracks=st.integers(min_value=0, max_value=10**9),
    implication_passes=st.integers(min_value=0, max_value=10**9),
)


def json_round(payload):
    """Force a real JSON round-trip (catches non-serializable values)."""
    return json.loads(json.dumps(payload))


# ---------------------------------------------------------------------------
# round-trip laws
# ---------------------------------------------------------------------------


class TestRoundTrips:
    @given(fault=faults)
    def test_fault(self, fault):
        payload = json_round(serde.fault_to_payload(fault))
        assert serde.fault_from_payload(payload) == fault
        assert serde.load(payload) == fault

    @given(pattern=patterns())
    def test_pattern(self, pattern):
        payload = json_round(serde.pattern_to_payload(pattern))
        assert serde.pattern_from_payload(payload) == pattern
        assert serde.load(payload) == pattern

    @given(options=options_strategy)
    def test_options(self, options):
        payload = json_round(serde.options_to_payload(options))
        assert serde.options_from_payload(payload) == options

    @settings(max_examples=25)
    @given(report=tpg_reports)
    def test_tpg_report(self, report):
        payload = json_round(serde.tpg_report_to_payload(report))
        assert serde.tpg_report_from_payload(payload) == report

    @pytest.mark.parametrize(
        "circuit", [c17(), ripple_carry_adder(3), random_dag(6, 20, seed=3)]
    )
    def test_circuit(self, circuit):
        payload = json_round(serde.circuit_to_payload(circuit))
        rebuilt = serde.circuit_from_payload(payload)
        assert rebuilt == circuit
        # derived views recompute identically
        assert rebuilt.topological_order() == circuit.topological_order()
        assert rebuilt.depth == circuit.depth

    def test_campaign_report(self):
        from repro.api import AtpgSession

        session = AtpgSession(ripple_carry_adder(3))
        report = session.campaign(
            universe=None, test_class="nonrobust", width=4, compact_every=8
        )
        payload = json_round(serde.campaign_report_to_payload(report))
        rebuilt = serde.campaign_report_from_payload(payload)
        assert rebuilt == report
        assert serde.load(payload) == report

    def test_campaign_report_without_records(self):
        from repro.api import AtpgSession

        session = AtpgSession(ripple_carry_adder(2))
        report = session.campaign(keep_records=False, width=4)
        rebuilt = serde.campaign_report_from_payload(
            json_round(serde.campaign_report_to_payload(report))
        )
        assert rebuilt == report
        assert rebuilt.records is None

    @given(fault=faults)
    def test_generic_dump_dispatch(self, fault):
        assert serde.load(serde.dump(fault)) == fault


# ---------------------------------------------------------------------------
# envelope rejection
# ---------------------------------------------------------------------------


class TestEnvelope:
    def setup_method(self):
        self.fault = PathDelayFault((0, 1, 2), Transition.RISING)

    def test_unknown_schema_version_rejected(self):
        payload = serde.fault_to_payload(self.fault)
        payload["schema_version"] = 99
        with pytest.raises(SchemaError, match="unknown schema_version 99"):
            serde.fault_from_payload(payload)
        with pytest.raises(SchemaError, match="unknown schema_version"):
            serde.load(payload)

    def test_unknown_kind_rejected(self):
        payload = serde.fault_to_payload(self.fault)
        payload["schema"] = "repro/not-a-thing"
        with pytest.raises(SchemaError, match="unknown schema kind"):
            serde.load(payload)

    def test_missing_envelope_rejected(self):
        with pytest.raises(SchemaError, match="envelope"):
            validate({"signals": [1], "transition": "R"})

    def test_kind_mismatch_rejected(self):
        payload = serde.fault_to_payload(self.fault)
        with pytest.raises(SchemaError, match="expected schema"):
            validate(payload, kind="repro/pattern")

    def test_shape_drift_rejected(self):
        payload = serde.fault_to_payload(self.fault)
        payload["surprise"] = 1
        with pytest.raises(SchemaError, match="drift"):
            validate(payload)

    def test_wrong_types_rejected(self):
        payload = stamp("repro/fault", {"signals": ["a"], "transition": "R"})
        with pytest.raises(SchemaError, match="expected int"):
            validate(payload)


# ---------------------------------------------------------------------------
# checked-in artifacts
# ---------------------------------------------------------------------------


class TestArtifacts:
    @pytest.mark.parametrize("name", ["BENCH_kernel.json", "BENCH_tpg.json"])
    def test_checked_in_benchmarks_validate(self, name):
        import os

        path = os.path.join(os.path.dirname(__file__), "..", name)
        kind, version = validate_file(path)
        assert kind.startswith("repro/bench-")
        from repro.api.schemas import latest_version

        assert version == latest_version(kind)

    def test_checkpoint_validates(self, tmp_path):
        from repro.api import AtpgSession

        path = tmp_path / "ckpt.json"
        session = AtpgSession(ripple_carry_adder(2))
        session.campaign(width=4, checkpoint=str(path))
        kind, version = validate_file(str(path))
        assert kind == "repro/campaign-checkpoint"
        assert version == 3
