"""Tests for the NEST-like non-enumerative coverage estimator."""

import itertools

import pytest

from repro.baselines import NestEstimator
from repro.circuit.generators import reconvergent_ladder, ripple_carry_adder
from repro.circuit.library import c17, paper_example
from repro.core import TestPattern, generate_tests
from repro.paths import TestClass, all_faults, count_paths
from repro.sim import DelayFaultSimulator


def exhaustive_detected_count(circuit, pattern, test_class):
    """Ground truth: count faults detected by enumerating all of them."""
    sim = DelayFaultSimulator(circuit, test_class)
    hits = sim.detected_faults([pattern], all_faults(circuit))
    return sum(1 for mask in hits.values() if mask)


class TestPerPatternCount:
    @pytest.mark.parametrize("factory", [c17, paper_example])
    @pytest.mark.parametrize("test_class", [TestClass.NONROBUST, TestClass.ROBUST])
    def test_count_matches_enumeration(self, factory, test_class):
        """The DP count must equal the enumerative ground truth."""
        circuit = factory()
        estimator = NestEstimator(circuit, test_class)
        vectors = list(itertools.product((0, 1), repeat=len(circuit.inputs)))
        checked = 0
        for v2 in vectors[:12]:
            for flip in range(len(circuit.inputs)):
                v1 = list(v2)
                v1[flip] = 1 - v1[flip]
                pattern = TestPattern(tuple(v1), v2)
                dp = estimator.count_detected_paths(pattern)
                truth = exhaustive_detected_count(circuit, pattern, test_class)
                assert dp == truth, (v1, v2)
                checked += 1
        assert checked > 0

    def test_no_transition_no_detection(self):
        circuit = c17()
        estimator = NestEstimator(circuit)
        pattern = TestPattern((0, 0, 0, 0, 0), (0, 0, 0, 0, 0))
        assert estimator.count_detected_paths(pattern) == 0

    def test_multi_input_change_counts_all_launches(self):
        circuit = ripple_carry_adder(2)
        estimator = NestEstimator(circuit)
        n = len(circuit.inputs)
        pattern = TestPattern((0,) * n, (1,) * n)
        truth = exhaustive_detected_count(circuit, pattern, TestClass.NONROBUST)
        assert estimator.count_detected_paths(pattern) == truth


class TestEstimate:
    def test_bounds_bracket_exact_union(self):
        circuit = paper_example()
        estimator = NestEstimator(circuit)
        patterns = []
        for v2 in itertools.product((0, 1), repeat=4):
            v1 = (1 - v2[0],) + v2[1:]
            patterns.append(TestPattern(v1, v2))
        estimate = estimator.estimate(patterns, exact_cap=1000)
        assert estimate.exact_union is not None
        assert estimate.lower_bound <= estimate.exact_union <= estimate.upper_bound
        assert estimate.n_patterns == len(patterns)

    def test_exact_union_skipped_over_cap(self):
        circuit = reconvergent_ladder(10)  # 2^10 paths from the seed
        estimator = NestEstimator(circuit)
        n = len(circuit.inputs)
        pattern = TestPattern((0,) * n, (1,) + (0,) * (n - 1))
        estimate = estimator.estimate([pattern], exact_cap=10)
        assert estimate.exact_union is None

    def test_scales_to_explosive_circuits(self):
        """The point of NEST: counting works where enumeration cannot."""
        circuit = reconvergent_ladder(24)
        assert count_paths(circuit) > 16_000_000
        estimator = NestEstimator(circuit)
        n = len(circuit.inputs)
        # seed rising, all controls at 1: every stage's AND sees ctl=1
        pattern = TestPattern((0,) + (1,) * (n - 1), (1,) * n)
        count = estimator.count_detected_paths(pattern)
        assert count > 0  # counted without enumerating

    def test_atpg_patterns_cover_what_they_promise(self):
        circuit = paper_example()
        faults = all_faults(circuit)
        report = generate_tests(circuit, faults, TestClass.NONROBUST)
        estimator = NestEstimator(circuit)
        estimate = estimator.estimate(report.patterns, exact_cap=1000)
        # the union of detected paths must cover every tested fault's path
        assert estimate.exact_union is not None
        assert estimate.exact_union >= report.n_tested // 2
