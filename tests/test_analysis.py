"""Tests of the metrics, table rendering and experiment runners."""

import pytest

from repro.analysis import (
    geometric_mean,
    render_comparison,
    render_table,
    run_ablation_implications,
    run_ablation_modes,
    run_ablation_word_length,
    run_figure1,
    run_figure2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
    speedup_row,
)
from repro.core import TpgOptions, generate_tests, generate_tests_single_bit
from repro.circuit.library import c17
from repro.paths import TestClass, all_faults


class TestMetrics:
    def test_speedup_row(self):
        circuit = c17()
        faults = all_faults(circuit)
        single = generate_tests_single_bit(circuit, faults, TestClass.NONROBUST)
        parallel = generate_tests(circuit, faults, TestClass.NONROBUST)
        row = speedup_row("c17", single, parallel)
        assert row.circuit == "c17"
        assert row.speedup > 0
        assert row.seconds_single >= 0

    def test_geometric_mean(self):
        assert geometric_mean([2, 8]) == pytest.approx(4.0)
        assert geometric_mean([]) is None
        assert geometric_mean([5]) == pytest.approx(5.0)


class TestRendering:
    def test_render_table_alignment(self):
        rows = [
            {"circuit": "c17", "time_s": 0.5},
            {"circuit": "c432-like", "time_s": 12.25},
        ]
        text = render_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "circuit" in lines[1] and "time_s" in lines[1]
        assert len(lines) == 5
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_render_comparison_selects_columns(self):
        rows = [
            {
                "circuit": "x",
                "TIP_tested": 5,
                "TIP_time_s": 0.1,
                "extra": "hidden",
            }
        ]
        text = render_comparison(rows, tools=["TIP"])
        assert "extra" not in text
        assert "TIP_tested" in text


class TestRunners:
    """Smoke runs at minimal scale: shapes and invariants only."""

    def test_table3_and_4_rows(self):
        rows3 = run_table3(circuits=["c432"], fault_cap=32)
        rows4 = run_table4(circuits=["c432"], fault_cap=32)
        assert rows3[0]["circuit"] == "c432-like"
        assert rows4[0]["efficiency_%"] == 100.0
        assert rows3[0]["faults"] == rows4[0]["faults"]

    def test_table5_and_6_speedups(self):
        rows = run_table6(circuits=["s713"], fault_cap=64)
        assert set(rows[0]) >= {"t_sens", "t_single", "t_parallel", "speedup"}
        rows = run_table5(circuits=["s713"], fault_cap=32)
        assert rows[0]["aborted_parallel"] <= rows[0]["aborted_single"]

    def test_table7_and_8_columns(self):
        rows = run_table7(circuits=["s641"], fault_cap=32)
        assert rows[0]["TIP_tested"] >= rows[0]["DYNAMITE_tested"]
        rows = run_table8(circuits=["s641"], fault_cap=24)
        assert "TSUNAMI_tested" in rows[0]

    def test_campaign_scaling_rows(self):
        from repro.analysis import run_campaign_scaling

        rows = run_campaign_scaling(
            circuit_name="s838", fault_cap=48, workers_list=(1, 2), width=16
        )
        assert [row["runner"] for row in rows] == [
            "engine(serial)",
            "campaign(workers=1)",
            "campaign(workers=2)",
        ]
        # the schedule is worker-invariant: identical detection everywhere
        assert len({row["detected"] for row in rows}) == 1
        assert all(row["faults_per_s"] > 0 for row in rows)

    def test_figures(self):
        fig1 = run_figure1()
        assert fig1["statuses"] == ["tested", "redundant", "tested", "tested"]
        fig2 = run_figure2()
        assert fig2["status"] == "tested"

    def test_ablation_word_length_monotone_verdicts(self):
        rows = run_ablation_word_length(widths=(1, 8), fault_cap=48)
        by_width = {row["L"]: row for row in rows}
        assert by_width[8]["tested"] == by_width[1]["tested"]

    def test_ablation_modes_complete(self):
        rows = run_ablation_modes(fault_cap=48)
        assert {row["mode"] for row in rows} == {
            "fptpg_only",
            "aptpg_only",
            "combined",
        }

    def test_ablation_implications_strength(self):
        rows = run_ablation_implications(fault_cap=48)
        by_kind = {row["implications"]: row for row in rows}
        strong = by_kind["with_backward"]
        weak = by_kind["forward_only"]
        assert (
            strong["tested"] + strong["redundant"]
            >= weak["tested"] + weak["redundant"]
        )
