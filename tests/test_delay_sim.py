"""Unit tests for the PPSFP path delay fault simulator."""

import itertools
import random

import pytest

from repro.circuit import CircuitBuilder
from repro.circuit.library import c17, paper_example
from repro.core import TestPattern
from repro.paths import PathDelayFault, TestClass, Transition, all_faults
from repro.sim import DelayFaultSimulator
from repro.sim.delay_sim import pack_patterns, simulate_planes
from repro.logic import seven_valued as sv


class TestPackPatterns:
    def test_transition_classification(self):
        c = paper_example()
        patterns = [
            TestPattern((0, 0, 0, 0), (0, 1, 0, 0)),  # b rises
            TestPattern((1, 1, 1, 1), (1, 1, 1, 1)),  # all stable
        ]
        planes, width = pack_patterns(c, patterns)
        assert width == 2
        b_planes = planes[1]
        assert sv.decode_lane(b_planes, 0) == "R"
        assert sv.decode_lane(b_planes, 1) == "S1"
        a_planes = planes[0]
        assert sv.decode_lane(a_planes, 0) == "S0"
        assert sv.decode_lane(a_planes, 1) == "S1"

    def test_empty(self):
        planes, width = pack_patterns(paper_example(), [])
        assert width == 0 and planes == []


class TestDetectionSemantics:
    def test_known_nonrobust_detection(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        sim = DelayFaultSimulator(c, TestClass.NONROBUST)
        # a=0 (off-path at p), s must be 1: d=1 provides it
        good = TestPattern((0, 0, 0, 1), (0, 1, 0, 1))
        assert sim.detects(good, fault)
        # without d=1 (and with c=0), s=0: not sensitized
        bad = TestPattern((0, 0, 0, 0), (0, 1, 0, 0))
        assert not sim.detects(bad, fault)
        # no launch (b stable): never a test
        no_launch = TestPattern((0, 1, 0, 1), (0, 1, 0, 1))
        assert not sim.detects(no_launch, fault)

    def test_robust_needs_stable_side_input(self):
        c = paper_example()
        # rising b through p=OR then x=AND: s must be STABLE 1 for a
        # robust test; d rising gives s final 1 but unstable
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        robust = DelayFaultSimulator(c, TestClass.ROBUST)
        nonrobust = DelayFaultSimulator(c, TestClass.NONROBUST)
        s_stable = TestPattern((0, 0, 0, 1), (0, 1, 0, 1))  # d stable 1
        s_unstable = TestPattern((0, 0, 0, 0), (0, 1, 0, 1))  # d rises with b
        assert robust.detects(s_stable, fault)
        assert nonrobust.detects(s_unstable, fault)
        assert not robust.detects(s_unstable, fault)

    def test_robust_detection_implies_nonrobust(self):
        c = c17()
        rng = random.Random(9)
        faults = all_faults(c)
        robust = DelayFaultSimulator(c, TestClass.ROBUST)
        nonrobust = DelayFaultSimulator(c, TestClass.NONROBUST)
        patterns = [
            TestPattern(
                tuple(rng.randint(0, 1) for _ in c.inputs),
                tuple(rng.randint(0, 1) for _ in c.inputs),
            )
            for _ in range(48)
        ]
        robust_hits = robust.detected_faults(patterns, faults)
        nonrobust_hits = nonrobust.detected_faults(patterns, faults)
        for fault in faults:
            # per-lane containment: a robust detection is nonrobust too
            assert robust_hits[fault] & ~nonrobust_hits[fault] == 0

    def test_xor_path_no_nonrobust_side_condition(self):
        b = CircuitBuilder("xorp")
        b.inputs("a", "b")
        b.xor("y", "a", "b")
        b.outputs("y")
        c = b.build()
        fault = PathDelayFault.from_names(c, ("a", "y"), Transition.RISING)
        nonrobust = DelayFaultSimulator(c, TestClass.NONROBUST)
        robust = DelayFaultSimulator(c, TestClass.ROBUST)
        # b may even transition: nonrobust does not care, robust does
        both_change = TestPattern((0, 0), (1, 1))
        assert nonrobust.detects(both_change, fault)
        assert not robust.detects(both_change, fault)
        side_stable = TestPattern((0, 1), (1, 1))
        assert robust.detects(side_stable, fault)

    def test_lane_mask_positions(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        sim = DelayFaultSimulator(c, TestClass.NONROBUST)
        patterns = [
            TestPattern((0, 1, 0, 1), (0, 1, 0, 1)),  # no launch
            TestPattern((0, 0, 0, 1), (0, 1, 0, 1)),  # detecting
        ]
        hits = sim.detected_faults(patterns, [fault])
        assert hits[fault] == 0b10


class TestCoverage:
    def test_coverage_counts(self):
        c = paper_example()
        faults = all_faults(c)
        sim = DelayFaultSimulator(c, TestClass.NONROBUST)
        # exhaustive single-input-change patterns give good coverage
        vectors = list(itertools.product((0, 1), repeat=4))
        patterns = []
        for v2 in vectors:
            for flip in range(4):
                v1 = list(v2)
                v1[flip] = 1 - v1[flip]
                patterns.append(TestPattern(tuple(v1), v2))
        coverage = sim.coverage(patterns, faults)
        # 8 of the 26 faults are redundant (cf. engine tests)
        assert coverage == pytest.approx(18 / 26)

    def test_empty_faults(self):
        sim = DelayFaultSimulator(paper_example(), TestClass.NONROBUST)
        assert sim.coverage([], []) == 1.0
