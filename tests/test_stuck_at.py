"""Tests for the stuck-at extension (the paper's stated future work).

Ground truth on small circuits comes from exhaustive enumeration: a
stuck-at fault is testable iff some input vector makes a primary
output differ between the good and the faulted circuit.
"""

import itertools

import pytest

from repro.circuit import CircuitBuilder
from repro.circuit.generators import random_dag, ripple_carry_adder
from repro.circuit.library import c17, paper_example, redundant_and_chain
from repro.core.stuck_at import (
    StuckAtFault,
    StuckAtStatus,
    all_stuck_at_faults,
    generate_stuck_at_tests,
    run_stuck_at_aptpg,
    run_stuck_at_fptpg,
)
from repro.sim.stuck_at_sim import StuckAtSimulator


def faulted_output(circuit, fault, vector):
    """Evaluate with the fault injected (reference semantics)."""
    values = {}
    for pi, bit in zip(circuit.inputs, vector):
        values[pi] = bit
    if fault.signal in values:
        values[fault.signal] = fault.value
    for index in circuit.topological_order():
        gate = circuit.gates[index]
        if gate.is_input:
            if index == fault.signal:
                values[index] = fault.value
            continue
        from repro.circuit.gates import evaluate

        value = evaluate(gate.gate_type, [values[f] for f in gate.fanin])
        values[index] = fault.value if index == fault.signal else value
    return tuple(values[o] for o in circuit.outputs)


def exhaustively_testable(circuit, fault):
    n = len(circuit.inputs)
    for vector in itertools.product((0, 1), repeat=n):
        if circuit.output_values(vector) != faulted_output(circuit, fault, vector):
            return True
    return False


class TestFaultModel:
    def test_all_faults_count(self):
        c = c17()
        faults = all_stuck_at_faults(c)
        assert len(faults) == 2 * c.num_signals

    def test_describe(self):
        c = c17()
        fault = StuckAtFault(c.index_of("10"), 1)
        assert fault.describe(c) == "10 stuck-at-1"

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError):
            StuckAtFault(0, 2)


class TestSimulator:
    @pytest.mark.parametrize("factory", [c17, paper_example])
    def test_simulator_matches_reference(self, factory):
        circuit = factory()
        simulator = StuckAtSimulator(circuit)
        faults = all_stuck_at_faults(circuit)
        n = len(circuit.inputs)
        vectors = list(itertools.product((0, 1), repeat=n))[:8]
        hits = simulator.detected_faults(vectors, faults)
        for fault in faults:
            for lane, vector in enumerate(vectors):
                expected = circuit.output_values(vector) != faulted_output(
                    circuit, fault, vector
                )
                assert bool((hits[fault] >> lane) & 1) == expected, (
                    fault.describe(circuit),
                    vector,
                )

    def test_coverage(self):
        circuit = c17()
        simulator = StuckAtSimulator(circuit)
        faults = all_stuck_at_faults(circuit)
        vectors = list(itertools.product((0, 1), repeat=5))
        assert simulator.coverage(vectors, faults) == 1.0
        assert simulator.coverage([], faults) == 0.0


class TestGeneration:
    @pytest.mark.parametrize("factory", [c17, paper_example, redundant_and_chain])
    def test_verdicts_match_exhaustive_truth(self, factory):
        circuit = factory()
        faults = all_stuck_at_faults(circuit)
        report = generate_stuck_at_tests(circuit, faults)
        simulator = StuckAtSimulator(circuit)
        for record in report.records:
            truth = exhaustively_testable(circuit, record.fault)
            if record.status in (StuckAtStatus.TESTED, StuckAtStatus.SIMULATED):
                assert truth, record.fault.describe(circuit)
                if record.vector is not None:
                    assert simulator.detects(record.vector, record.fault)
            elif record.status is StuckAtStatus.REDUNDANT:
                assert not truth, record.fault.describe(circuit)

    def test_c17_fully_testable(self):
        """Every stuck-at fault of c17 is testable (classic fact)."""
        circuit = c17()
        report = generate_stuck_at_tests(circuit)
        assert report.count(StuckAtStatus.REDUNDANT) == 0
        assert report.count(StuckAtStatus.ABORTED) == 0
        assert report.n_tested == report.n_faults

    def test_redundant_chain_has_untestable_faults(self):
        """x = AND(a, NOT(a)) is constant 0: x stuck-at-0 is untestable."""
        circuit = redundant_and_chain()
        x = circuit.index_of("x")
        report = generate_stuck_at_tests(circuit, [StuckAtFault(x, 0)])
        assert report.records[0].status is StuckAtStatus.REDUNDANT

    def test_fptpg_handles_full_word(self):
        circuit = ripple_carry_adder(3)
        faults = all_stuck_at_faults(circuit)[:32]
        statuses, vectors, _state = run_stuck_at_fptpg(circuit, faults, 32)
        tested = statuses.count(StuckAtStatus.TESTED)
        assert tested > len(faults) // 2
        simulator = StuckAtSimulator(circuit)
        for fault, status, vector in zip(faults, statuses, vectors):
            if status is StuckAtStatus.TESTED:
                assert simulator.detects(vector, fault)

    def test_aptpg_single_fault(self):
        circuit = paper_example()
        fault = StuckAtFault(circuit.index_of("s"), 0)
        status, vector, _bt = run_stuck_at_aptpg(circuit, fault, 8)
        assert status is StuckAtStatus.TESTED
        assert StuckAtSimulator(circuit).detects(vector, fault)

    def test_dropping_accelerates(self):
        circuit = random_dag(8, 40, seed=3)
        faults = all_stuck_at_faults(circuit)
        report = generate_stuck_at_tests(circuit, faults, width=16)
        assert report.count(StuckAtStatus.SIMULATED) > 0
        # dropped means really detected by an emitted vector
        simulator = StuckAtSimulator(circuit)
        vectors = [r.vector for r in report.records if r.vector is not None]
        for record in report.records:
            if record.status is StuckAtStatus.SIMULATED:
                hits = simulator.detected_faults(vectors, [record.fault])
                assert hits[record.fault]

    def test_report_summary(self):
        circuit = c17()
        report = generate_stuck_at_tests(circuit)
        summary = report.summary()
        assert summary["faults"] == 2 * circuit.num_signals
        assert summary["efficiency_%"] == 100.0

    def test_random_dag_verdicts_sound(self):
        circuit = random_dag(6, 20, seed=9)
        faults = all_stuck_at_faults(circuit)
        report = generate_stuck_at_tests(circuit, faults)
        for record in report.records:
            truth = exhaustively_testable(circuit, record.fault)
            if record.status is StuckAtStatus.REDUNDANT:
                assert not truth, record.fault.describe(circuit)
            if record.status in (StuckAtStatus.TESTED, StuckAtStatus.SIMULATED):
                assert truth, record.fault.describe(circuit)
