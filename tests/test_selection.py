"""Unit tests for fault-list construction strategies."""

import pytest

from repro.circuit.generators import ripple_carry_adder
from repro.circuit.library import c17
from repro.paths import (
    all_faults,
    count_faults,
    describe_fault_universe,
    fault_list,
    longest_path_faults,
    sampled_faults,
)


class TestStrategies:
    def test_all_faults_uncapped(self):
        c = c17()
        assert len(all_faults(c)) == count_faults(c)

    def test_all_faults_capped(self):
        c = c17()
        assert len(all_faults(c, cap=4)) == 4

    def test_longest_path_faults(self):
        c = ripple_carry_adder(4)
        faults = longest_path_faults(c, 5)
        assert len(faults) == 10  # two transitions per path
        lengths = [f.length for f in faults[::2]]
        assert lengths == sorted(lengths, reverse=True)

    def test_sampled_faults_deterministic(self):
        c = ripple_carry_adder(4)
        a = sampled_faults(c, 20, seed=3)
        b = sampled_faults(c, 20, seed=3)
        assert a == b
        assert len(a) == 20

    def test_sampled_faults_different_seeds(self):
        c = ripple_carry_adder(4)
        assert sampled_faults(c, 20, seed=1) != sampled_faults(c, 20, seed=2)

    def test_sample_smaller_than_pool_returns_all(self):
        c = c17()
        total = count_faults(c)
        assert len(sampled_faults(c, total + 50)) == total

    def test_fault_list_dispatch(self):
        c = c17()
        assert len(fault_list(c, strategy="all")) == count_faults(c)
        assert len(fault_list(c, cap=6, strategy="sample")) == 6
        longest = fault_list(c, cap=6, strategy="longest")
        assert len(longest) == 6

    def test_fault_list_needs_cap_for_non_all(self):
        c = c17()
        with pytest.raises(ValueError, match="requires a cap"):
            fault_list(c, strategy="sample")

    def test_unknown_strategy(self):
        c = c17()
        with pytest.raises(ValueError, match="unknown strategy"):
            fault_list(c, cap=4, strategy="bogus")

    def test_describe_universe(self):
        c = c17()
        info = describe_fault_universe(c, cap=5)
        assert info["total_faults"] == count_faults(c)
        assert info["listed_faults"] == 5
        assert info["capped"] is True
        info = describe_fault_universe(c)
        assert info["capped"] is False
