"""Tests of the command-line interface."""

import pytest

from repro.circuit.library import C17_BENCH
from repro.cli import (
    main_atpg,
    main_bench_sim,
    main_campaign,
    main_experiments,
    main_paths,
    resolve_circuit,
)


class TestResolveCircuit:
    def test_embedded(self):
        assert resolve_circuit("c17").name == "c17"

    def test_suite(self):
        assert resolve_circuit("s713").name == "s713_like"

    def test_bench_file(self, tmp_path):
        path = tmp_path / "mini.bench"
        path.write_text(C17_BENCH)
        assert resolve_circuit(str(path)).name == "mini"

    def test_unknown(self):
        with pytest.raises(SystemExit, match="unknown circuit"):
            resolve_circuit("not_a_circuit")


class TestAtpgCommand:
    def test_basic_run(self, capsys):
        assert main_atpg(["c17"]) == 0
        out = capsys.readouterr().out
        assert "ATPG summary" in out
        assert "c17" in out

    def test_robust_with_patterns(self, capsys):
        assert main_atpg(["paper_example", "--class", "robust", "--patterns"]) == 0
        out = capsys.readouterr().out
        assert "V1=" in out and "V2=" in out

    def test_single_bit_and_caps(self, capsys):
        assert main_atpg(["c17", "--single-bit", "--max-faults", "6"]) == 0
        out = capsys.readouterr().out
        assert " 6" in out  # the capped fault count appears in the table


class TestPathsCommand:
    def test_counts(self, capsys):
        assert main_paths(["paper_example"]) == 0
        out = capsys.readouterr().out
        assert "paths     : 13" in out
        assert "faults    : 26" in out

    def test_histogram_and_list(self, capsys):
        assert main_paths(["paper_example", "--histogram", "--list", "3"]) == 0
        out = capsys.readouterr().out
        assert "path length histogram" in out
        assert out.count("-") > 5  # some paths got listed


class TestCampaignCommand:
    def test_basic_run_with_workers(self, capsys):
        assert (
            main_campaign(
                [
                    "c880",
                    "--width", "16",
                    "--workers", "2",
                    "--max-faults", "120",
                    "--window", "64",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "campaign summary" in out
        assert "peak pending" in out

    def test_checkpoint_resume_and_json(self, capsys, tmp_path):
        ckpt = tmp_path / "campaign.ckpt.json"
        summary = tmp_path / "summary.json"
        argv = [
            "s838",
            "--width", "8",
            "--max-paths", "40",
            "--checkpoint", str(ckpt),
            "--checkpoint-every", "1",
            "--json", str(summary),
        ]
        assert main_campaign(argv) == 0
        first = capsys.readouterr().out
        assert ckpt.exists()
        import json

        payload = json.loads(summary.read_text())
        assert payload["summary"]["faults"] == 80  # 40 paths x 2 transitions
        # resuming a completed campaign reports the same summary
        assert main_campaign(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[2] == second.splitlines()[2]

    def test_min_length_filter(self, capsys):
        assert (
            main_campaign(
                ["c17", "--min-length", "3", "--no-records", "--no-drop"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "campaign summary" in out


class TestBenchSimCommand:
    def test_reports_throughput_and_writes_json(self, capsys, tmp_path):
        out_path = tmp_path / "bench.json"
        assert (
            main_bench_sim(
                [
                    "c499",
                    "--patterns", "96",
                    "--fault-cap", "8",
                    "--repeat", "1",
                    "--json", str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Simulation throughput" in out
        assert "c499_like" in out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "fused_kernel_throughput"
        row = payload["rows"][0]
        assert row["workload"] == "ppsfp"
        assert row["patterns"] == 96
        assert row["interp_throughput"] > 0
        assert row["seed_throughput"] > 0
        assert row["vector_throughput"] > 0
        assert row["codegen_throughput"] > 0
        assert row["best_fused"] in ("vector", "codegen")
        assert row["fused_speedup"] > 0

        from repro.api.schemas import validate_file

        assert validate_file(str(out_path)) == ("repro/bench-kernel", 5)

    def test_all_workloads_cover_grading_and_stuck_at(self, capsys, tmp_path):
        out_path = tmp_path / "bench_all.json"
        assert (
            main_bench_sim(
                [
                    "c499",
                    "--workload", "all",
                    "--patterns", "96",
                    "--fault-cap", "8",
                    "--repeat", "1",
                    "--no-seed",
                    "--json", str(out_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        import json

        payload = json.loads(out_path.read_text())
        workloads = [row["workload"] for row in payload["rows"]]
        assert workloads == ["ppsfp", "grade10", "stuck_at", "bist"]
        for row in payload["rows"]:
            assert row["interp_throughput"] > 0
            assert row["fused_speedup"] > 0

        from repro.api.schemas import validate_file

        assert validate_file(str(out_path)) == ("repro/bench-kernel", 5)


class TestExperimentsCommand:
    def test_figure1(self, capsys):
        assert main_experiments(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "redundant" in out
        assert "lane words" in out

    def test_figure2(self, capsys):
        assert main_experiments(["figure2"]) == 0
        out = capsys.readouterr().out
        assert "status: tested" in out

    def test_table_run(self, capsys):
        assert main_experiments(["table4", "--fault-cap", "24"]) == 0
        out = capsys.readouterr().out
        assert "table4 (reproduction)" in out
        assert "c432-like" in out

    def test_invalid_choice(self):
        with pytest.raises(SystemExit):
            main_experiments(["table9"])
