"""Unit tests for the path delay fault model and path enumeration."""

import pytest

from repro.circuit import CircuitBuilder
from repro.circuit.library import c17, paper_example, redundant_and_chain
from repro.circuit.generators import reconvergent_ladder, ripple_carry_adder
from repro.paths import (
    PathDelayFault,
    Transition,
    both_transitions,
    collect_faults,
    count_faults,
    count_paths,
    iter_faults,
    iter_paths,
    longest_paths,
    path_length_histogram,
    paths_per_signal,
)


class TestTransition:
    def test_rising(self):
        assert Transition.RISING.initial == 0
        assert Transition.RISING.final == 1

    def test_falling(self):
        assert Transition.FALLING.initial == 1
        assert Transition.FALLING.final == 0

    def test_inverted(self):
        assert Transition.RISING.inverted() is Transition.FALLING
        assert Transition.FALLING.inverted() is Transition.RISING


class TestPathDelayFault:
    def test_from_names_validates(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        assert fault.length == 2
        assert fault.input_signal == c.index_of("b")
        assert fault.output_signal == c.index_of("x")

    def test_validate_rejects_non_path(self):
        c = paper_example()
        with pytest.raises(ValueError, match="does not feed"):
            PathDelayFault.from_names(c, ("b", "r", "x"), Transition.RISING)

    def test_validate_rejects_internal_start(self):
        c = paper_example()
        with pytest.raises(ValueError, match="primary input"):
            PathDelayFault.from_names(c, ("p", "x"), Transition.RISING)

    def test_validate_rejects_internal_end(self):
        c = paper_example()
        with pytest.raises(ValueError, match="primary output"):
            PathDelayFault.from_names(c, ("b", "p"), Transition.RISING)

    def test_final_values_follow_parity(self):
        c = paper_example()
        # b -> p (OR, non-inverting) -> x (AND, non-inverting)
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        assert fault.final_values(c) == (1, 1, 1)
        # a -> p -> t (NOT: inverts) -> y (AND)
        fault = PathDelayFault.from_names(c, ("a", "p", "t", "y"), Transition.RISING)
        assert fault.final_values(c) == (1, 1, 0, 0)

    def test_transition_at(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("a", "p", "t", "y"), Transition.RISING)
        assert fault.transition_at(c, 0) is Transition.RISING
        assert fault.transition_at(c, 1) is Transition.RISING
        assert fault.transition_at(c, 2) is Transition.FALLING
        assert fault.transition_at(c, 3) is Transition.FALLING

    def test_describe(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.FALLING)
        assert fault.describe(c) == "F: b-p-x"

    def test_both_transitions(self):
        rising, falling = both_transitions((0, 1, 2))
        assert rising.transition is Transition.RISING
        assert falling.transition is Transition.FALLING
        assert rising.signals == falling.signals

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            PathDelayFault((), Transition.RISING)


class TestEnumeration:
    def test_paper_example_paths(self):
        c = paper_example()
        paths = {tuple(c.signal_name(s) for s in p) for p in iter_paths(c)}
        assert ("b", "p", "x") in paths
        assert ("b", "q", "s", "x") in paths
        assert ("c", "r", "s", "x") in paths
        assert ("c", "r", "s", "y") in paths
        assert ("a", "p", "x") in paths

    def test_count_matches_enumeration(self):
        for circuit in (c17(), paper_example(), redundant_and_chain(),
                        ripple_carry_adder(4), reconvergent_ladder(5)):
            enumerated = sum(1 for _ in iter_paths(circuit))
            assert enumerated == count_paths(circuit), circuit.name

    def test_max_paths_cap(self):
        c = ripple_carry_adder(6)
        assert sum(1 for _ in iter_paths(c, max_paths=10)) == 10

    def test_restricted_endpoints(self):
        c = paper_example()
        b = c.index_of("b")
        x = c.index_of("x")
        paths = list(iter_paths(c, from_inputs=[b], to_outputs=[x]))
        names = {tuple(c.signal_name(s) for s in p) for p in paths}
        assert names == {("b", "p", "x"), ("b", "q", "s", "x")}
        assert count_paths(c, from_inputs=[b], to_outputs=[x]) == 2

    def test_deterministic_order(self):
        c = c17()
        assert list(iter_paths(c)) == list(iter_paths(c))

    def test_faults_are_two_per_path(self):
        c = c17()
        assert len(collect_faults(c)) == 2 * count_paths(c)
        assert count_faults(c) == 2 * count_paths(c)

    def test_fault_cap(self):
        c = c17()
        assert len(collect_faults(c, max_faults=5)) == 5

    def test_all_enumerated_faults_validate(self):
        c = paper_example()
        for fault in iter_faults(c):
            fault.validate(c)


class TestLongestPaths:
    def test_rca_longest_is_carry_chain(self):
        width = 5
        c = ripple_carry_adder(width)
        (longest,) = longest_paths(c, 1)
        # the longest path threads every carry stage
        names = [c.signal_name(s) for s in longest]
        assert len(longest) - 1 == c.depth
        assert names[-1] in {f"c{width-1}", f"sum{width-1}"}

    def test_returns_requested_count(self):
        c = ripple_carry_adder(4)
        paths = longest_paths(c, 7)
        assert len(paths) == 7
        lengths = [len(p) - 1 for p in paths]
        assert lengths == sorted(lengths, reverse=True)

    def test_no_shorter_path_beats_them(self):
        c = c17()
        top = longest_paths(c, 3)
        cutoff = min(len(p) for p in top)
        all_lengths = sorted((len(p) for p in iter_paths(c)), reverse=True)
        assert [len(p) for p in top] == all_lengths[:3]
        assert cutoff >= all_lengths[2]


class TestCounting:
    def test_paths_per_signal_input_sum(self):
        c = c17()
        through = paths_per_signal(c)
        total = count_paths(c)
        input_sum = sum(through[i] for i in c.inputs)
        assert input_sum == total

    def test_histogram_total(self):
        for circuit in (c17(), paper_example(), ripple_carry_adder(4)):
            histogram = path_length_histogram(circuit)
            assert sum(histogram.values()) == count_paths(circuit)

    def test_histogram_matches_enumeration(self):
        c = paper_example()
        histogram = path_length_histogram(c)
        observed = {}
        for p in iter_paths(c):
            observed[len(p) - 1] = observed.get(len(p) - 1, 0) + 1
        assert histogram == observed

    def test_ladder_counts(self):
        c = reconvergent_ladder(8)
        seed_paths = count_paths(c, from_inputs=[c.index_of("seed")])
        assert seed_paths == 256
