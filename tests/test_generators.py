"""Unit tests for the synthetic circuit generators: every generated
circuit must be structurally valid *and* functionally correct."""

import random

import pytest

from repro.circuit import validate_circuit
from repro.circuit.generators import (
    PROFILES,
    array_multiplier,
    carry_lookahead_adder,
    comparator,
    decoder,
    mux_tree,
    parity_tree,
    random_dag,
    reconvergent_ladder,
    ripple_carry_adder,
)
from repro.circuit.bench_parser import write_bench
from repro.paths import count_paths


def to_bits(value, width):
    return [(value >> k) & 1 for k in range(width)]


def from_bits(bits):
    return sum(b << k for k, b in enumerate(bits))


class TestRippleCarryAdder:
    def test_valid(self):
        assert validate_circuit(ripple_carry_adder(6)) == []

    @pytest.mark.parametrize("width", [1, 3, 5])
    def test_adds_correctly(self, width):
        c = ripple_carry_adder(width)
        rng = random.Random(width)
        for _ in range(20):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            cin = rng.randint(0, 1)
            vec = to_bits(a, width) + to_bits(b, width) + [cin]
            outs = c.output_values(vec)
            assert from_bits(outs) == a + b + cin

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ripple_carry_adder(0)


class TestCarryLookaheadAdder:
    def test_valid(self):
        assert validate_circuit(carry_lookahead_adder(8)) == []

    def test_matches_ripple(self):
        width = 6
        rca = ripple_carry_adder(width)
        cla = carry_lookahead_adder(width)
        rng = random.Random(7)
        for _ in range(30):
            vec = [rng.randint(0, 1) for _ in range(2 * width + 1)]
            assert from_bits(cla.output_values(vec)) == from_bits(
                rca.output_values(vec)
            )


class TestArrayMultiplier:
    def test_valid(self):
        assert validate_circuit(array_multiplier(4)) == []

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_multiplies_correctly(self, width):
        c = array_multiplier(width)
        rng = random.Random(width)
        for _ in range(15):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            vec = to_bits(a, width) + to_bits(b, width)
            outs = c.output_values(vec)
            # product is in the first 2*width outputs; extra carries are 0
            assert from_bits(outs[: 2 * width]) == a * b
            assert all(bit == 0 for bit in outs[2 * width :])

    def test_path_explosion(self):
        # the c6288 phenomenon: path count grows much faster than size
        small = count_paths(array_multiplier(3))
        large = count_paths(array_multiplier(5))
        assert large > 20 * small


class TestParityTree:
    def test_valid(self):
        assert validate_circuit(parity_tree(9)) == []

    def test_computes_parity(self):
        width = 7
        c = parity_tree(width)
        rng = random.Random(3)
        for _ in range(20):
            vec = [rng.randint(0, 1) for _ in range(width)]
            assert c.output_values(vec) == (sum(vec) & 1,)


class TestMuxTree:
    def test_valid(self):
        assert validate_circuit(mux_tree(3)) == []

    def test_selects(self):
        depth = 3
        c = mux_tree(depth)
        rng = random.Random(5)
        for _ in range(20):
            data = [rng.randint(0, 1) for _ in range(1 << depth)]
            sel = rng.randrange(1 << depth)
            vec = data + to_bits(sel, depth)
            assert c.output_values(vec) == (data[sel],)


class TestReconvergentLadder:
    def test_valid(self):
        assert validate_circuit(reconvergent_ladder(5)) == []

    def test_path_count_doubles_per_stage(self):
        for stages in (2, 4, 6):
            c = reconvergent_ladder(stages)
            # the seed input alone contributes 2^stages paths
            seed_paths = count_paths(c, from_inputs=[c.index_of("seed")])
            assert seed_paths == 2 ** stages

    def test_identity_function(self):
        # u XOR w == (v | ctl) XOR (v & ~ctl) == v XOR ctl: staged XOR
        c = reconvergent_ladder(3)
        rng = random.Random(11)
        for _ in range(10):
            vec = [rng.randint(0, 1) for _ in range(4)]
            seed, ctls = vec[0], vec[1:]
            expected = seed
            for bit in ctls:
                expected ^= bit
            assert c.output_values(vec) == (expected,)


class TestComparator:
    def test_valid(self):
        assert validate_circuit(comparator(4)) == []

    def test_compares(self):
        width = 4
        c = comparator(width)
        rng = random.Random(13)
        for _ in range(30):
            a = rng.randrange(1 << width)
            b = rng.randrange(1 << width)
            eq, gt = c.output_values(to_bits(a, width) + to_bits(b, width))
            assert eq == int(a == b)
            assert gt == int(a > b)


class TestDecoder:
    def test_valid(self):
        assert validate_circuit(decoder(3)) == []

    def test_one_hot(self):
        width = 3
        c = decoder(width)
        for code in range(1 << width):
            outs = c.output_values(to_bits(code, width))
            assert sum(outs) == 1
            assert outs[code] == 1


class TestRandomDag:
    def test_valid_across_profiles(self):
        for profile in PROFILES:
            c = random_dag(8, 40, seed=1, profile=profile)
            assert validate_circuit(c) == [], profile

    def test_deterministic(self):
        a = random_dag(10, 60, seed=42)
        b = random_dag(10, 60, seed=42)
        assert write_bench(a) == write_bench(b)

    def test_different_seeds_differ(self):
        a = random_dag(10, 60, seed=1)
        b = random_dag(10, 60, seed=2)
        assert write_bench(a) != write_bench(b)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            random_dag(4, 4, seed=0, profile="nope")

    def test_sizes(self):
        c = random_dag(12, 100, seed=9)
        assert len(c.inputs) == 12
        assert c.num_gates == 100
