"""Unit tests for the ISCAS-like benchmark suites."""

import pytest

from repro.circuit import validate_circuit, write_bench
from repro.circuit.suites import (
    TABLE34_CIRCUITS,
    TABLE56_CIRCUITS,
    TABLE78_CIRCUITS,
    iscas85_like,
    iscas89_like,
    suite_circuit,
)


class TestSuiteResolution:
    def test_table_lists_resolve(self):
        for name in TABLE34_CIRCUITS:
            assert iscas85_like(name).frozen
        for name in set(TABLE56_CIRCUITS) | set(TABLE78_CIRCUITS):
            assert iscas89_like(name).frozen

    def test_suite_circuit_dispatches(self):
        assert suite_circuit("c432").name == "c432_like"
        assert suite_circuit("s713").name == "s713_like"

    def test_unknown_names(self):
        with pytest.raises(ValueError, match="unknown"):
            iscas85_like("c999")
        with pytest.raises(ValueError, match="unknown"):
            iscas89_like("s0")
        with pytest.raises(ValueError, match="unknown"):
            suite_circuit("b17")

    def test_c6288_is_a_multiplier(self):
        c = iscas85_like("c6288")
        assert c.name == "c6288_like"


class TestSuiteProperties:
    @pytest.mark.parametrize("name", TABLE34_CIRCUITS)
    def test_iscas85_members_valid(self, name):
        assert validate_circuit(iscas85_like(name)) == []

    @pytest.mark.parametrize("name", TABLE56_CIRCUITS)
    def test_iscas89_members_valid(self, name):
        assert validate_circuit(iscas89_like(name)) == []

    def test_deterministic(self):
        a = suite_circuit("s1423")
        b = suite_circuit("s1423")
        assert write_bench(a) == write_bench(b)

    def test_scale_grows_circuits(self):
        small = suite_circuit("c432", scale=1)
        big = suite_circuit("c432", scale=3)
        assert big.num_gates > small.num_gates

    def test_relative_ordering_held(self):
        """Bigger paper circuits map to bigger substitutes."""
        assert (
            suite_circuit("c432").num_gates
            < suite_circuit("c3540").num_gates
            < suite_circuit("c7552").num_gates
        )
