"""Tests of the repro.api front door: session, unified options, shims.

The load-bearing acceptance property: ``AtpgSession.generate`` is
bit-identical to the legacy ``generate_tests`` (same engine-mode
campaign underneath), and the deprecated names keep working while
warning.
"""

import warnings

import pytest

import repro
from repro.api import (
    AtpgSession,
    GenerationOptions,
    Options,
    ResolutionError,
    resolve_circuit,
    resolve_test_class,
)
from repro.api.resolve import circuit_fingerprint
from repro.circuit.generators import random_dag, ripple_carry_adder
from repro.circuit.suites import suite_circuit
from repro.paths import TestClass, all_faults, fault_list
from repro.sim import DelayFaultSimulator


def _legacy_generate(circuit, faults, test_class, **options):
    """Call the deprecated path with its warning silenced."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.core import TpgOptions, generate_tests

        return generate_tests(circuit, faults, test_class, TpgOptions(**options))


class TestSessionGenerate:
    @pytest.mark.parametrize("test_class", [TestClass.NONROBUST, TestClass.ROBUST])
    def test_c880_bit_identical_to_legacy_generate_tests(self, test_class):
        circuit = suite_circuit("c880", 1)
        faults = fault_list(circuit, cap=160, strategy="all")
        legacy = _legacy_generate(circuit, faults, test_class, width=16)

        session = AtpgSession(suite_circuit("c880", 1))
        report = session.generate(faults, test_class=test_class, width=16)
        assert [r.status for r in report.records] == [
            r.status for r in legacy.records
        ]
        assert [r.pattern for r in report.records] == [
            r.pattern for r in legacy.records
        ]

    def test_default_fault_list_materialization(self):
        session = AtpgSession(ripple_carry_adder(2))
        report = session.generate(test_class="robust")
        assert report.n_faults == len(all_faults(session.circuit))
        capped = session.generate(max_faults=4)
        assert capped.n_faults == 4

    def test_session_options_merged_with_call_overrides(self):
        session = AtpgSession(
            ripple_carry_adder(2), options=Options(width=4, drop_faults=False)
        )
        report = session.generate()
        assert report.width == 4
        assert report.count(repro.FaultStatus.SIMULATED) == 0
        # per-call override wins without mutating the session default
        assert session.generate(width=2).width == 2
        assert session.options.width == 4

    def test_engine_mode_ignores_parallel_fields(self):
        # generate() must behave as a 1-worker unbounded-window campaign
        # even when the session defaults say otherwise
        session = AtpgSession(
            ripple_carry_adder(2), options=Options(workers=4, window=64)
        )
        report = session.generate(width=4)
        baseline = AtpgSession(ripple_carry_adder(2)).generate(width=4)
        assert [r.status for r in report.records] == [
            r.status for r in baseline.records
        ]


class TestSessionCampaign:
    def test_campaign_equals_run_campaign(self):
        circuit = random_dag(10, 40, seed=7)
        faults = all_faults(circuit, cap=120)
        session = AtpgSession(random_dag(10, 40, seed=7))
        report = session.campaign(faults=faults, width=4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.campaign import run_campaign, CampaignOptions

            legacy = run_campaign(
                circuit, faults=faults, options=CampaignOptions(width=4)
            )
        assert report.statuses == legacy.statuses
        assert report.patterns == legacy.patterns


class TestSessionSimulateGradePaths:
    def test_simulate_masks_match_simulator(self):
        circuit = ripple_carry_adder(3)
        session = AtpgSession(circuit)
        faults = all_faults(circuit, cap=30)
        patterns = session.generate(faults, width=8).patterns
        masks = session.simulate(patterns, faults, test_class="nonrobust")
        expected = DelayFaultSimulator(
            session.circuit, TestClass.NONROBUST
        ).detection_masks(patterns, faults)
        assert masks == expected

    def test_grade_reports_coverage(self):
        session = AtpgSession(ripple_carry_adder(3))
        faults = all_faults(session.circuit, cap=40)
        report = session.generate(faults, width=8)
        grade = session.grade(report.patterns, faults)
        assert grade["faults"] == 40
        assert grade["patterns"] == len(report.patterns)
        assert 0.0 < grade["coverage"] <= 1.0
        assert sum(grade["detected_flags"]) == grade["detected"]
        # every TESTED fault is detected by the set that tested it
        for index, record in enumerate(report.records):
            if record.status is repro.FaultStatus.TESTED:
                assert grade["detected_flags"][index]

    def test_paths_statistics(self):
        session = AtpgSession.open("paper_example")
        result = session.paths(histogram=True, limit=3)
        assert result["paths"] == 13
        assert result["faults"] == 26
        assert sum(count for _length, count in result["histogram"]) == 13
        assert len(result["listed"]) == 3
        assert all("-" in p for p in result["listed"])

    def test_simulator_cache_reused(self):
        session = AtpgSession(ripple_carry_adder(2))
        faults = all_faults(session.circuit, cap=8)
        patterns = session.generate(faults).patterns
        session.simulate(patterns, faults, test_class="robust")
        first = dict(session._simulators)
        session.simulate(patterns, faults, test_class="robust")
        assert dict(session._simulators) == first  # no rebuild


class TestUnifiedOptions:
    def test_adopt_lifts_generation_layer(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.core import TpgOptions

            legacy = TpgOptions(width=8, drop_faults=False)
        options = Options.adopt(legacy)
        assert options.width == 8
        assert options.drop_faults is False
        assert options.workers == 1  # defaulted, TpgOptions never had it

    def test_adopt_overrides_win(self):
        assert Options.adopt(Options(width=8), width=2).width == 2

    def test_engine_mode_view(self):
        options = Options(width=8, workers=4, window=32, checkpoint="x.json")
        engine = options.engine_mode()
        assert engine.workers == 1
        assert engine.window is None
        assert engine.checkpoint is None
        assert engine.width == 8

    def test_layers_round_trip(self):
        options = Options(width=8, shards=3, workers=2, compact_every=16)
        assert Options.from_layers(options.layers()) == options

    def test_from_layers_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown options layer"):
            Options.from_layers({"nonsense": {}})
        with pytest.raises(ValueError, match="unknown option"):
            Options.from_layers({"generation": {"wat": 1}})

    def test_validate(self):
        with pytest.raises(ValueError, match="width"):
            Options(width=0).validate()
        with pytest.raises(ValueError, match="window"):
            Options(width=32, window=8).validate()
        with pytest.raises(ValueError, match="workers"):
            Options(workers=0).validate()


class TestDeprecationShims:
    def test_tpg_options_warns(self):
        from repro.core import TpgOptions

        with pytest.warns(DeprecationWarning, match="TpgOptions"):
            options = TpgOptions(width=8)
        assert isinstance(options, GenerationOptions)

    def test_campaign_options_warns(self):
        from repro.campaign import CampaignOptions

        with pytest.warns(DeprecationWarning, match="CampaignOptions"):
            options = CampaignOptions(width=8)
        assert isinstance(options, Options)

    def test_generate_tests_warns_and_matches(self):
        from repro.core import generate_tests

        circuit = ripple_carry_adder(2)
        faults = all_faults(circuit, cap=10)
        with pytest.warns(DeprecationWarning, match="AtpgSession.generate"):
            legacy = generate_tests(circuit, faults)
        session_report = AtpgSession(circuit).generate(faults)
        assert [r.status for r in legacy.records] == [
            r.status for r in session_report.records
        ]

    def test_run_campaign_warns(self):
        from repro.campaign import run_campaign

        circuit = ripple_carry_adder(2)
        with pytest.warns(DeprecationWarning, match="AtpgSession.campaign"):
            report = run_campaign(circuit)
        assert report.complete


class TestResolution:
    def test_shared_resolver(self):
        assert resolve_circuit("c17").name == "c17"
        assert resolve_circuit("s713").name == "s713_like"
        with pytest.raises(ResolutionError, match="unknown circuit"):
            resolve_circuit("nope")

    def test_test_class_resolution(self):
        assert resolve_test_class("robust") is TestClass.ROBUST
        assert resolve_test_class("NONROBUST") is TestClass.NONROBUST
        assert resolve_test_class(TestClass.ROBUST) is TestClass.ROBUST
        assert resolve_test_class(None) is TestClass.NONROBUST
        with pytest.raises(ResolutionError, match="test class"):
            resolve_test_class("maybe")

    def test_fingerprint_is_structural(self):
        a = circuit_fingerprint(ripple_carry_adder(3))
        b = circuit_fingerprint(ripple_carry_adder(3))
        c = circuit_fingerprint(ripple_carry_adder(4))
        assert a == b != c


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.7.0"

    def test_all_is_authoritative(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
        # the front-door names are exported
        for name in ("api", "AtpgSession", "AtpgService", "Options"):
            assert name in repro.__all__
        # deprecated names stay listed
        for name in ("TpgOptions", "CampaignOptions", "generate_tests"):
            assert name in repro.__all__


class TestTipDispatcher:
    def test_subcommand_dispatch(self, capsys):
        from repro.cli import main

        assert main(["atpg", "c17", "--max-faults", "6"]) == 0
        assert "ATPG summary" in capsys.readouterr().out

    def test_paths_alias_equivalence(self, capsys):
        from repro.cli import main, main_paths

        assert main(["paths", "paper_example"]) == 0
        via_tip = capsys.readouterr().out
        assert main_paths(["paper_example"]) == 0
        assert capsys.readouterr().out == via_tip

    def test_unknown_command(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown command"):
            main(["frobnicate"])

    def test_help(self, capsys):
        from repro.cli import main

        assert main([]) == 0
        out = capsys.readouterr().out
        for command in ("atpg", "campaign", "serve", "validate"):
            assert command in out

    def test_validate_subcommand(self, capsys, tmp_path):
        from repro.cli import main

        good = tmp_path / "ok.json"
        good.write_text(
            '{"schema": "repro/fault", "schema_version": 1, '
            '"signals": [0, 1], "transition": "R"}\n'
        )
        assert main(["validate", str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro/fault", "schema_version": 7}\n')
        assert main(["validate", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "unknown schema_version" in out
