"""Unit tests for the gate primitive definitions."""

import itertools

import pytest

from repro.circuit.gates import (
    GateType,
    controlling_value,
    evaluate,
    evaluate_word,
    gate_type_from_name,
    inversion_parity,
    inverts,
    max_fanin,
    min_fanin,
    noncontrolling_value,
)

MULTI_INPUT = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]


class TestNames:
    def test_roundtrip_names(self):
        for t in GateType:
            assert gate_type_from_name(t.value) is t

    def test_case_insensitive(self):
        assert gate_type_from_name("nand") is GateType.NAND
        assert gate_type_from_name(" Or ") is GateType.OR

    def test_aliases(self):
        assert gate_type_from_name("INV") is GateType.NOT
        assert gate_type_from_name("BUFF") is GateType.BUF
        assert gate_type_from_name("BUFFER") is GateType.BUF

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown gate type"):
            gate_type_from_name("FROB")


class TestControllingValues:
    def test_and_family_controlled_by_zero(self):
        assert controlling_value(GateType.AND) == 0
        assert controlling_value(GateType.NAND) == 0

    def test_or_family_controlled_by_one(self):
        assert controlling_value(GateType.OR) == 1
        assert controlling_value(GateType.NOR) == 1

    def test_xor_family_has_none(self):
        assert controlling_value(GateType.XOR) is None
        assert controlling_value(GateType.XNOR) is None
        assert noncontrolling_value(GateType.XNOR) is None

    def test_noncontrolling_complements(self):
        for t in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
            assert noncontrolling_value(t) == 1 - controlling_value(t)


class TestInversion:
    def test_inverting_set(self):
        assert inverts(GateType.NOT)
        assert inverts(GateType.NAND)
        assert inverts(GateType.NOR)
        assert inverts(GateType.XNOR)
        assert not inverts(GateType.AND)
        assert not inverts(GateType.BUF)

    def test_parity(self):
        assert inversion_parity([GateType.AND, GateType.OR]) == 0
        assert inversion_parity([GateType.NAND]) == 1
        assert inversion_parity([GateType.NAND, GateType.NOR]) == 0
        assert inversion_parity([GateType.NOT, GateType.NAND, GateType.XNOR]) == 1


class TestFaninBounds:
    def test_input(self):
        assert min_fanin(GateType.INPUT) == 0
        assert max_fanin(GateType.INPUT) == 0

    def test_single_input_gates(self):
        for t in (GateType.BUF, GateType.NOT):
            assert min_fanin(t) == 1
            assert max_fanin(t) == 1

    def test_multi_input_gates(self):
        for t in MULTI_INPUT:
            assert min_fanin(t) == 2
            assert max_fanin(t) is None


class TestEvaluate:
    def test_truth_tables_two_inputs(self):
        expected = {
            GateType.AND: [0, 0, 0, 1],
            GateType.NAND: [1, 1, 1, 0],
            GateType.OR: [0, 1, 1, 1],
            GateType.NOR: [1, 0, 0, 0],
            GateType.XOR: [0, 1, 1, 0],
            GateType.XNOR: [1, 0, 0, 1],
        }
        for t, table in expected.items():
            for code, want in enumerate(table):
                a, b = code >> 1, code & 1
                assert evaluate(t, [a, b]) == want, (t, a, b)

    def test_single_input(self):
        assert evaluate(GateType.BUF, [0]) == 0
        assert evaluate(GateType.BUF, [1]) == 1
        assert evaluate(GateType.NOT, [0]) == 1
        assert evaluate(GateType.NOT, [1]) == 0

    def test_three_input_gates(self):
        for t in MULTI_INPUT:
            for bits in itertools.product((0, 1), repeat=3):
                via_pairs = evaluate(t, list(bits))
                if t in (GateType.AND, GateType.NAND):
                    raw = int(all(bits))
                elif t in (GateType.OR, GateType.NOR):
                    raw = int(any(bits))
                else:
                    raw = sum(bits) & 1
                want = 1 - raw if inverts(t) else raw
                assert via_pairs == want

    def test_input_gate_rejects_evaluation(self):
        with pytest.raises(ValueError):
            evaluate(GateType.INPUT, [])


class TestEvaluateWord:
    """evaluate_word must agree with evaluate on every lane."""

    @pytest.mark.parametrize("gate_type", MULTI_INPUT)
    def test_matches_scalar_two_inputs(self, gate_type):
        width = 4
        mask = (1 << width) - 1
        # lanes enumerate all four input combinations
        a_word = 0b0011
        b_word = 0b0101
        word = evaluate_word(gate_type, [a_word, b_word], mask)
        for lane in range(width):
            a = (a_word >> lane) & 1
            b = (b_word >> lane) & 1
            assert (word >> lane) & 1 == evaluate(gate_type, [a, b])

    def test_not_and_buf(self):
        mask = 0b1111
        assert evaluate_word(GateType.NOT, [0b0101], mask) == 0b1010
        assert evaluate_word(GateType.BUF, [0b0110], mask) == 0b0110

    def test_three_inputs_all_lanes(self):
        width = 8
        mask = (1 << width) - 1
        a, b, c = 0b00001111, 0b00110011, 0b01010101
        for t in MULTI_INPUT:
            word = evaluate_word(t, [a, b, c], mask)
            for lane in range(width):
                bits = [(a >> lane) & 1, (b >> lane) & 1, (c >> lane) & 1]
                assert (word >> lane) & 1 == evaluate(t, bits)
