"""Tests for the ten-valued hazard-aware logic and detection grading.

The hazard-free plane carries a strong semantic claim — at most one
value change under *every* delay assignment — which is validated
against enumerated waveforms exactly like the 7-valued calculus.
"""

import itertools

import pytest

from repro.circuit import CircuitBuilder, GateType
from repro.circuit.library import paper_example
from repro.core import TestPattern, generate_tests
from repro.logic import seven_valued as sv
from repro.logic import ten_valued as xv
from repro.paths import PathDelayFault, TestClass, Transition, all_faults
from repro.sim import detection_strength, simulate_planes10, strength_masks
from repro.sim.event_sim import TimingSimulator
from repro.sim.waveform import Waveform

GATES_2IN = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]

#: Adversarial waveform families; hazard-free names only get clean
#: waveforms, others include glitches.
CONCRETIZATIONS = {
    "S0": [Waveform.constant(0)],
    "S1": [Waveform.constant(1)],
    "HR": [Waveform.step(0, 1, 1.0), Waveform.step(0, 1, 2.5)],
    "HF": [Waveform.step(1, 0, 1.0), Waveform.step(1, 0, 2.5)],
    "R": [Waveform.step(0, 1, 1.5), Waveform(1, ((1.0, 0), (2.0, 1)))],
    "F": [Waveform.step(1, 0, 1.5), Waveform(0, ((1.0, 1), (2.0, 0)))],
    "M0": [Waveform.constant(0), Waveform.step(1, 0, 2.0)],
    "M1": [Waveform.constant(1), Waveform.step(0, 1, 2.0)],
    "U0": [
        Waveform.constant(0),
        Waveform.step(1, 0, 2.0),
        Waveform(0, ((1.0, 1), (2.5, 0))),
    ],
    "U1": [
        Waveform.constant(1),
        Waveform.step(0, 1, 2.0),
        Waveform(1, ((1.0, 0), (2.5, 1))),
    ],
    "X": [
        Waveform.constant(0),
        Waveform.step(0, 1, 2.0),
        Waveform(0, ((1.0, 1), (2.5, 0))),
        Waveform(1, ((1.0, 0), (2.5, 1))),
    ],
}


def planes_for(names):
    acc = [0] * 5
    for lane, name in enumerate(names):
        pattern = xv.encode(name)
        for k in range(5):
            if pattern[k]:
                acc[k] |= 1 << lane
    return tuple(acc)


class TestEncoding:
    def test_named_values_consistent(self):
        for name, bits in xv.VALUES.items():
            assert xv.conflict(bits) == 0, name
            assert xv.decode_lane(bits, 0) == name

    def test_stable_implies_hazard_free(self):
        assert xv.conflict((0, 1, 1, 0, 0)) == 1  # stable without h

    def test_seven_valued_lifting(self):
        for name in ("S0", "S1", "R", "F", "U0", "U1", "X"):
            lifted = xv.from_seven(sv.encode(name))
            assert xv.to_seven(lifted) == sv.encode(name)
        # stable values lift to hazard-free
        assert xv.from_seven(sv.encode("S1"))[4] == 1
        assert xv.from_seven(sv.encode("R"))[4] == 0


class TestForwardSemantics:
    @pytest.mark.parametrize("gate_type", GATES_2IN)
    def test_hazard_claims_hold_on_waveforms(self, gate_type):
        names = list(xv.VALUES)
        combos = list(itertools.product(names, repeat=2))
        width = len(combos)
        mask = (1 << width) - 1
        a = planes_for([c[0] for c in combos])
        b = planes_for([c[1] for c in combos])
        out = xv.forward(gate_type, [a, b], mask)
        for lane, combo in enumerate(combos):
            bits = tuple((p >> lane) & 1 for p in out)
            claims_h = bool(bits[4])
            claims_final = 1 if bits[1] else (0 if bits[0] else None)
            families = [CONCRETIZATIONS[name] for name in combo]
            for waves in itertools.product(*families):
                result = TimingSimulator._evaluate_gate(gate_type, list(waves), 0.0)
                if claims_h:
                    assert result.transition_count() <= 1, (gate_type, combo, waves)
                if claims_final is not None:
                    assert result.final == claims_final, (gate_type, combo)

    def test_value_planes_match_seven_valued(self):
        names = ["S0", "S1", "R", "F", "U0", "U1", "X"]
        combos = list(itertools.product(names, repeat=2))
        width = len(combos)
        mask = (1 << width) - 1
        for gate_type in GATES_2IN:
            a10 = planes_for([c[0] for c in combos])
            b10 = planes_for([c[1] for c in combos])
            out10 = xv.forward(gate_type, [a10, b10], mask)
            a7 = xv.to_seven(a10)
            b7 = xv.to_seven(b10)
            out7 = sv.forward(gate_type, [a7, b7], mask)
            assert xv.to_seven(out10) == out7, gate_type

    def test_known_hazard_examples(self):
        mask = 1
        # same-direction inputs keep AND hazard-free
        out = xv.forward(GateType.AND, [xv.encode("HR"), xv.encode("HR")], mask)
        assert xv.decode_lane(out, 0) == "HR"
        # opposite directions can glitch
        out = xv.forward(GateType.AND, [xv.encode("HR"), xv.encode("HF")], mask)
        assert out[4] == 0
        # a stable controlling input freezes everything
        out = xv.forward(GateType.AND, [xv.encode("R"), xv.encode("S0")], mask)
        assert xv.decode_lane(out, 0) == "S0"
        # XOR of two clean transitions may still glitch
        out = xv.forward(GateType.XOR, [xv.encode("HR"), xv.encode("HR")], mask)
        assert out[4] == 0
        # XOR with a stable side passes the clean transition
        out = xv.forward(GateType.XOR, [xv.encode("HR"), xv.encode("S0")], mask)
        assert xv.decode_lane(out, 0) == "HR"


class TestDetectionStrength:
    def test_hierarchy_on_paper_example(self):
        circuit = paper_example()
        fault = PathDelayFault.from_names(circuit, ("b", "p", "x"), Transition.RISING)
        # stable side: the strongest class
        strong = TestPattern((0, 0, 0, 1), (0, 1, 0, 1), fault)
        assert detection_strength(circuit, strong, fault) == "hazard_free_robust"
        # rising side input: nonrobust only
        weak = TestPattern((0, 0, 0, 0), (0, 1, 0, 1), fault)
        assert detection_strength(circuit, weak, fault) == "nonrobust"
        # no launch: no detection
        none = TestPattern((0, 1, 0, 1), (0, 1, 0, 1), fault)
        assert detection_strength(circuit, none, fault) is None

    def test_containment_property(self):
        import random

        circuit = paper_example()
        faults = all_faults(circuit)
        rng = random.Random(5)
        patterns = [
            TestPattern(
                tuple(rng.randint(0, 1) for _ in circuit.inputs),
                tuple(rng.randint(0, 1) for _ in circuit.inputs),
            )
            for _ in range(32)
        ]
        values, width = simulate_planes10(circuit, patterns)
        for fault in faults:
            nonrobust, robust, strong = strength_masks(circuit, fault, values, width)
            assert strong & ~robust == 0
            assert robust & ~nonrobust == 0

    def test_robust_but_not_hazard_free(self):
        """A side input that is final-1 via a glitchy cone: robust per
        the classic table (ends controlling: U_nc suffices) but not in
        the hazard-free class."""
        b = CircuitBuilder("glitchy_side")
        b.inputs("a", "u", "v")
        b.xor("side", "u", "v")  # two changing inputs: can glitch
        b.not_("n", "a")
        b.and_("z", "n", "side")
        b.outputs("z")
        circuit = b.build()
        # path a-n-z, rising a: n falls (ends controlling for AND),
        # side needs final 1 only
        fault = PathDelayFault.from_names(circuit, ("a", "n", "z"), Transition.RISING)
        # u rises, v falls: side final 1 but hazard-possible
        pattern = TestPattern((0, 0, 1), (1, 1, 0), fault)
        assert detection_strength(circuit, pattern, fault) == "robust"
