"""Deterministic chaos: fault injection, recovery, and bit-identity.

Resilience claims only count if the failure paths actually execute,
so every test here *injects* the failure deterministically
(:mod:`repro.chaos`: seeded occurrence schedules, no sleeps, no
randomness) and then asserts the strongest available postcondition —
usually that the recovered run is **bit-identical** to an undisturbed
one.  Covered: worker crash / hang / error recovery in the campaign
scheduler, poison-shard quarantine, checksummed checkpoint rotation
with corruption fallback, the session circuit breaker demoting
native→numpy→interp on kernel faults, and service job-worker thread
resurrection.
"""

import json
import os

import pytest

from repro import chaos
from repro.api import AtpgService, ServiceOptions, integrity, serde
from repro.api.schemas import stamp, validate
from repro.api.session import AtpgSession
from repro.campaign import CampaignOptions, FaultUniverse, run_campaign
from repro.circuit.generators import random_dag
from repro.circuit.suites import suite_circuit
from repro.core import FaultStatus
from repro.paths import TestClass, all_faults, fault_list


@pytest.fixture(autouse=True)
def _clean_controller():
    """No chaos schedule leaks between tests (process-global state)."""
    chaos.uninstall()
    yield
    chaos.uninstall()


def campaign_statuses(report):
    return [report.statuses[i] for i in range(report.n_faults)]


def spec(*points) -> str:
    return json.dumps(
        {"seed": 1995, "points": [{"site": s, "at": list(at)} for s, at in points]}
    )


# ---------------------------------------------------------------------------
# the controller itself
# ---------------------------------------------------------------------------


class TestChaosController:
    def test_same_schedule_fires_identically(self):
        for _ in range(2):
            controller = chaos.ChaosController(
                spec(("kernel_fault", [0, 2]), ("torn_checkpoint", [1]))
            )
            hits = [controller.should_fire("kernel_fault") for _ in range(4)]
            assert hits == [True, False, True, False]
            assert not controller.should_fire("torn_checkpoint")
            assert controller.should_fire("torn_checkpoint")
            assert controller.fired() == [
                {"site": "kernel_fault", "occurrence": 0},
                {"site": "kernel_fault", "occurrence": 2},
                {"site": "torn_checkpoint", "occurrence": 1},
            ]

    def test_unknown_site_rejected_up_front(self):
        with pytest.raises(ValueError, match="unknown chaos site"):
            chaos.ChaosController(spec(("shard_cresh", [0])))

    def test_shard_sites_share_one_submission_counter(self):
        controller = chaos.ChaosController(
            spec(("shard_crash", [1]), ("shard_error", [2]))
        )
        assert [controller.shard_action() for _ in range(4)] == [
            None, "shard_crash", "shard_error", None,
        ]

    def test_spec_round_trips(self):
        controller = chaos.ChaosController(spec(("shard_hang", [3, 1])))
        again = chaos.ChaosController(controller.spec())
        assert again.spec() == controller.spec()
        assert again.seed == 1995

    def test_env_var_is_read_lazily_once(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, spec(("kernel_fault", [0])))
        chaos.uninstall()  # re-arm the lazy read
        assert chaos.should_fire("kernel_fault")
        monkeypatch.delenv(chaos.ENV_VAR)
        assert not chaos.should_fire("kernel_fault")  # cached controller

    def test_install_overrides_env(self, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, spec(("kernel_fault", [0])))
        chaos.install(None)
        assert not chaos.should_fire("kernel_fault")


# ---------------------------------------------------------------------------
# checkpoint integrity: checksums, rotation, corruption fallback
# ---------------------------------------------------------------------------


class TestIntegrity:
    def test_round_trip_verifies(self, tmp_path):
        path = str(tmp_path / "state.json")
        integrity.write_json_rotated(path, {"value": 42})
        payload, used_previous = integrity.load_json_verified(path)
        assert payload["value"] == 42
        assert integrity.CHECKSUM_KEY in payload
        assert not used_previous

    def test_rotation_keeps_the_previous_generation(self, tmp_path):
        path = str(tmp_path / "state.json")
        integrity.write_json_rotated(path, {"generation": 1})
        integrity.write_json_rotated(path, {"generation": 2})
        assert integrity.load_json_verified(path)[0]["generation"] == 2
        prev, _ = integrity.load_json_verified(integrity.previous_path(path))
        assert prev["generation"] == 1

    def test_corrupted_primary_falls_back_to_previous(self, tmp_path):
        path = str(tmp_path / "state.json")
        integrity.write_json_rotated(path, {"generation": 1})
        integrity.write_json_rotated(path, {"generation": 2})
        with open(path) as handle:
            text = handle.read()
        with open(path, "w") as handle:
            handle.write(text[: len(text) // 2])  # torn write
        payload, used_previous = integrity.load_json_verified(path)
        assert used_previous
        assert payload["generation"] == 1

    def test_bit_flip_is_detected_not_trusted(self, tmp_path):
        path = str(tmp_path / "state.json")
        integrity.write_json_rotated(path, {"value": 42})
        with open(path) as handle:
            payload = json.load(handle)
        payload["value"] = 43  # tampered, checksum now stale
        with open(path, "w") as handle:
            json.dump(payload, handle)
        with pytest.raises(integrity.IntegrityError):
            integrity.load_json_verified(path, fallback=False)

    def test_missing_checksum_passes_legacy_tolerance(self, tmp_path):
        path = str(tmp_path / "legacy.json")
        with open(path, "w") as handle:
            json.dump({"value": 1}, handle)
        payload, used_previous = integrity.load_json_verified(path)
        assert payload["value"] == 1 and not used_previous

    def test_torn_checkpoint_site_corrupts_exactly_on_schedule(self, tmp_path):
        chaos.install(spec(("torn_checkpoint", [1])))
        path = str(tmp_path / "state.json")
        integrity.write_json_rotated(path, {"generation": 1})  # occurrence 0
        integrity.write_json_rotated(path, {"generation": 2})  # torn
        payload, used_previous = integrity.load_json_verified(path)
        assert used_previous
        assert payload["generation"] == 1


# ---------------------------------------------------------------------------
# campaign supervision: retry, crash, hang, quarantine — bit-identical
# ---------------------------------------------------------------------------


class TestSerialSupervision:
    def test_shard_error_retries_to_identical_statuses(self):
        circuit = random_dag(10, 40, seed=7)
        faults = all_faults(circuit, cap=120)
        baseline = run_campaign(
            circuit, faults=faults, options=CampaignOptions(width=4)
        )
        injected = run_campaign(
            circuit,
            faults=faults,
            options=CampaignOptions(
                width=4, chaos=spec(("shard_error", [0, 3]))
            ),
        )
        assert campaign_statuses(injected) == campaign_statuses(baseline)
        assert injected.stats.shard_retries == 2
        assert injected.stats.quarantined_shards == 0
        assert chaos.get_controller() is None  # scoped install cleaned up

    def test_poison_shard_quarantines_with_error_envelope(self):
        circuit = random_dag(10, 40, seed=7)
        faults = all_faults(circuit, cap=120)
        # drop_faults=False keeps shard membership independent of
        # detection order, so "every fault outside the poisoned shard"
        # settles exactly as in the baseline
        options = CampaignOptions(width=4, drop_faults=False)
        baseline = run_campaign(circuit, faults=faults, options=options)
        injected = run_campaign(
            circuit,
            faults=faults,
            options=CampaignOptions(
                width=4,
                drop_faults=False,
                shard_attempts=3,
                # every attempt of the first shard fails -> quarantine
                chaos=spec(("shard_error", [0, 1, 2])),
            ),
        )
        assert injected.stats.quarantined_shards == 1
        assert injected.errors, "quarantine must record an error envelope"
        envelope = next(iter(injected.errors.values()))
        assert envelope["error"] == "ChaosError"
        assert envelope["attempts"] == 3
        skipped = {
            i
            for i, status in enumerate(campaign_statuses(injected))
            if status is FaultStatus.SKIPPED_ERROR
        }
        assert skipped, "the poisoned shard's faults settle skipped_error"
        base = campaign_statuses(baseline)
        hurt = campaign_statuses(injected)
        for index in range(len(faults)):
            if index not in skipped:
                assert hurt[index] == base[index]
        # skipped faults never count as detected
        assert set(injected.detected_indices()).isdisjoint(skipped)

    def test_errors_round_trip_through_checkpoint_and_serde(self, tmp_path):
        circuit = random_dag(10, 40, seed=7)
        faults = all_faults(circuit, cap=80)
        path = str(tmp_path / "campaign.json")
        report = run_campaign(
            circuit,
            faults=faults,
            options=CampaignOptions(
                width=4,
                drop_faults=False,
                checkpoint=path,
                chaos=spec(("shard_error", [0, 1, 2])),
            ),
        )
        assert report.errors
        payload = serde.campaign_report_to_payload(report)
        validate(payload, kind="repro/campaign-report")
        again = serde.campaign_report_from_payload(payload)
        assert again.errors == report.errors
        assert campaign_statuses(again) == campaign_statuses(report)
        # and through the rotated checkpoint
        restored, _ = integrity.load_json_verified(path)
        validate(restored, kind="repro/campaign-checkpoint")


class TestPoolSupervision:
    def test_worker_crash_recovers_bit_identically(self):
        circuit = suite_circuit("c880", 1)
        faults = fault_list(circuit, cap=96, strategy="all")
        serial = run_campaign(
            circuit, faults=faults, options=CampaignOptions(width=16)
        )
        crashed = run_campaign(
            circuit,
            faults=faults,
            options=CampaignOptions(
                width=16,
                workers=2,
                shard_deadline_s=5.0,
                chaos=spec(("shard_crash", [1])),
            ),
        )
        assert campaign_statuses(crashed) == campaign_statuses(serial)
        assert crashed.stats.worker_restarts >= 1

    def test_hung_shard_hits_the_deadline_and_recovers(self):
        circuit = suite_circuit("c880", 1)
        faults = fault_list(circuit, cap=96, strategy="all")
        serial = run_campaign(
            circuit, faults=faults, options=CampaignOptions(width=16)
        )
        hung = run_campaign(
            circuit,
            faults=faults,
            options=CampaignOptions(
                width=16,
                workers=2,
                shard_deadline_s=1.0,
                chaos=spec(("shard_hang", [0])),
            ),
        )
        assert campaign_statuses(hung) == campaign_statuses(serial)
        assert hung.stats.worker_restarts >= 1


# ---------------------------------------------------------------------------
# campaign checkpoint corruption -> resume from the previous generation
# ---------------------------------------------------------------------------


class TestCheckpointRecovery:
    def test_corrupted_checkpoint_resumes_from_previous(self, tmp_path):
        circuit = random_dag(10, 40, seed=7)
        faults = all_faults(circuit, cap=120)
        baseline = run_campaign(
            circuit, faults=faults, options=CampaignOptions(width=4)
        )
        path = str(tmp_path / "campaign.json")
        options = CampaignOptions(
            width=4, checkpoint=path, checkpoint_every=1, resume=True
        )
        run_campaign(circuit, faults=faults, options=options)
        # tear the final checkpoint; the one-generation-older .prev
        # (mid-campaign) must carry the resume
        assert os.path.exists(integrity.previous_path(path))
        with open(path, "w") as handle:
            handle.write('{"version": 3, "torn": ')
        with pytest.warns(RuntimeWarning, match="previous"):
            resumed = run_campaign(circuit, faults=faults, options=options)
        assert resumed.complete
        assert campaign_statuses(resumed) == campaign_statuses(baseline)

    def test_torn_write_during_campaign_is_self_healing(self, tmp_path):
        circuit = random_dag(10, 40, seed=7)
        faults = all_faults(circuit, cap=120)
        baseline = run_campaign(
            circuit, faults=faults, options=CampaignOptions(width=4)
        )
        path = str(tmp_path / "campaign.json")
        first = run_campaign(
            circuit,
            faults=faults,
            options=CampaignOptions(
                width=4,
                checkpoint=path,
                checkpoint_every=1,
                resume=True,
                # tear a mid-campaign write (never the final flush)
                chaos=spec(("torn_checkpoint", [1])),
            ),
        )
        assert campaign_statuses(first) == campaign_statuses(baseline)
        # the torn generation was later overwritten by good ones;
        # a resume over the same path short-circuits to complete
        resumed = run_campaign(
            circuit,
            faults=faults,
            options=CampaignOptions(
                width=4, checkpoint=path, checkpoint_every=1, resume=True
            ),
        )
        assert campaign_statuses(resumed) == campaign_statuses(baseline)


# ---------------------------------------------------------------------------
# the session circuit breaker: native -> numpy -> interp
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def _patterns_and_faults(self, session):
        report = session.generate()
        patterns = [
            record.pattern
            for record in report.records
            if record.pattern is not None
        ]
        return patterns, list(all_faults(session.circuit))

    def test_kernel_fault_degrades_and_stays_bit_identical(self):
        session = AtpgSession(suite_circuit("c880", 1))
        patterns, faults = self._patterns_and_faults(session)
        baseline = session.simulate(patterns, faults)
        assert not session.degraded
        # scattered occurrences: each fires on a fresh call, so one
        # retry ladder never exhausts all tiers
        chaos.install(spec(("kernel_fault", [0, 2])))
        first = session.simulate(patterns, faults)
        assert session.degrade_level == 1  # numpy/auto absorbed it
        second = session.simulate(patterns, faults)  # occurrence 1: clean
        third = session.simulate(patterns, faults)  # occurrence 2: fires
        assert session.degrade_level == 2  # numpy/interp floor
        assert first == baseline
        assert second == baseline
        assert third == baseline
        assert [e["error"] for e in session.degrade_events] == [
            "ChaosError", "ChaosError",
        ]

    def test_input_errors_are_not_kernel_faults(self):
        from repro.core.patterns import TestPattern

        session = AtpgSession(suite_circuit("c880", 1))
        _, faults = self._patterns_and_faults(session)
        with pytest.raises((ValueError, TypeError)):
            # wrong input-plane count: a client error no backend fixes
            session.simulate([TestPattern((0,), (1,))], faults)
        assert not session.degraded  # rejection, not demotion

    def test_consecutive_faults_exhaust_the_chain_and_raise(self):
        session = AtpgSession(suite_circuit("c880", 1))
        patterns, faults = self._patterns_and_faults(session)
        chaos.install(spec(("kernel_fault", [0, 1, 2])))
        with pytest.raises(chaos.ChaosError):
            session.simulate(patterns, faults)
        assert session.degrade_level == 2


# ---------------------------------------------------------------------------
# service: job-worker resurrection + metrics v3
# ---------------------------------------------------------------------------


class TestServiceRecovery:
    def _poll_until(self, service, job_id, states, tries=2000):
        import time

        for _ in range(tries):
            record = service.job_response(job_id).payload
            if record["state"] in states:
                return record
            time.sleep(0.005)
        raise AssertionError(f"job stuck in state {record['state']!r}")

    def test_dead_job_worker_is_resurrected_and_job_completes(self):
        from repro.api import CampaignRequest

        service = AtpgService(config=ServiceOptions(workers=1))
        sync = service.handle(CampaignRequest(circuit="c17", max_faults=8))
        assert sync.ok
        chaos.install(spec(("job_worker_death", [0])))
        submitted = service.submit_campaign(
            stamp("repro/request.campaign", {"circuit": "c17", "max_faults": 8})
        )
        assert submitted.ok
        record = self._poll_until(
            service, submitted.payload["id"], ("done", "failed")
        )
        chaos.uninstall()
        assert record["state"] == "done"
        assert record["result"]["statuses"] == sync.payload["statuses"]
        metrics = service.metrics()
        validate(metrics, kind="repro/metrics")
        assert metrics["schema_version"] == 3
        assert metrics["worker_restarts"] == 1
        assert metrics["jobs"]["done"] == 1
        assert metrics["jobs"]["failed"] == 0
        service.shutdown()

    def test_metrics_v3_reports_degraded_circuits(self):
        from repro.api import GradeRequest

        session_circuit = suite_circuit("c880", 1)
        service = AtpgService()
        session = AtpgSession(session_circuit)
        report = session.generate()
        patterns = [
            r.pattern for r in report.records if r.pattern is not None
        ]
        faults = list(all_faults(session_circuit))
        baseline = service.handle(
            GradeRequest(circuit="c880", patterns=patterns, faults=faults)
        )
        assert baseline.ok
        chaos.install(spec(("kernel_fault", [0])))
        degraded = service.handle(
            GradeRequest(circuit="c880", patterns=patterns, faults=faults)
        )
        chaos.uninstall()
        assert degraded.ok
        assert (
            degraded.payload["detected_flags"]
            == baseline.payload["detected_flags"]
        )
        metrics = service.metrics()
        validate(metrics, kind="repro/metrics")
        assert metrics["degraded_circuits"] == 1
        assert metrics["requests_failed"] == 0

    def test_quarantined_shards_surface_in_metrics(self):
        from repro.api import CampaignRequest
        from repro.api.options import Options

        service = AtpgService()
        response = service.handle(
            CampaignRequest(
                circuit="c17",
                options=Options(
                    width=4,
                    drop_faults=False,
                    chaos=spec(("shard_error", [0, 1, 2])),
                ),
            )
        )
        # the service scrubs wire-supplied chaos: the request runs
        # clean and nothing is quarantined
        assert response.ok
        metrics = service.metrics()
        assert metrics["quarantined_shards"] == 0
        assert metrics["shard_retries"] == 0
