"""Tests of the 7-valued bit-plane logic (paper Table 2).

The forward rules form a conservative hazard calculus; their claims
are validated *semantically*: each 7-value denotes a family of
concrete waveforms, and for every gate type and every combination of
input values, each claim of the evaluated output value (final value,
stability, instability) must hold for every sampled combination of
concretization waveforms — including glitchy ones.
"""

import itertools

import pytest

from repro.circuit import GateType
from repro.logic import seven_valued as sv
from repro.sim.event_sim import TimingSimulator
from repro.sim.waveform import Waveform

GATES_2IN = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]

VALUE_NAMES = ["S0", "S1", "R", "F", "U0", "U1", "X"]

#: Adversarial concrete waveforms per 7-value: the calculus must be
#: sound for *all* of them (times are arbitrary positive reals).
CONCRETIZATIONS = {
    "S0": [Waveform.constant(0)],
    "S1": [Waveform.constant(1)],
    "R": [Waveform.step(0, 1, 1.0), Waveform.step(0, 1, 3.0)],
    "F": [Waveform.step(1, 0, 1.0), Waveform.step(1, 0, 3.0)],
    "U0": [
        Waveform.constant(0),
        Waveform.step(1, 0, 2.0),
        Waveform(0, ((1.0, 1), (2.5, 0))),  # 0-1-0 glitch
    ],
    "U1": [
        Waveform.constant(1),
        Waveform.step(0, 1, 2.0),
        Waveform(1, ((1.0, 0), (2.5, 1))),  # 1-0-1 glitch
    ],
    "X": [
        Waveform.constant(0),
        Waveform.constant(1),
        Waveform.step(0, 1, 2.0),
        Waveform.step(1, 0, 2.0),
        Waveform(0, ((1.0, 1), (2.5, 0))),
        Waveform(1, ((1.0, 0), (2.5, 1))),
    ],
}


def planes_for(names):
    """Pack one named value per lane."""
    acc = [0, 0, 0, 0]
    for lane, name in enumerate(names):
        pattern = sv.encode(name)
        for k in range(4):
            if pattern[k]:
                acc[k] |= 1 << lane
    return tuple(acc)


class TestEncoding:
    def test_paper_table2_exact(self):
        # rows of Table 2: value / 0-bit / 1-bit / stable-bit / instable-bit
        assert sv.encode("S0") == (1, 0, 1, 0)
        assert sv.encode("S1") == (0, 1, 1, 0)
        assert sv.encode("F") == (1, 0, 0, 1)
        assert sv.encode("R") == (0, 1, 0, 1)
        assert sv.encode("U0") == (1, 0, 0, 0)
        assert sv.encode("U1") == (0, 1, 0, 0)
        assert sv.encode("X") == (0, 0, 0, 0)

    def test_conflict_rows(self):
        # 0-bit & 1-bit set, or stable & instable set
        assert sv.conflict((1, 1, 0, 0)) == 1
        assert sv.conflict((0, 1, 1, 1)) == 1
        assert sv.conflict((0, 1, 1, 0)) == 0

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            sv.encode("S2")

    def test_decode_roundtrip(self):
        for name in VALUE_NAMES:
            assert sv.decode_lane(sv.encode(name), 0) == name

    def test_decode_conflict(self):
        assert sv.decode_lane((1, 1, 0, 0), 0) == "C"

    def test_init_planes(self):
        # S1 starts at 1, F starts at 1, R starts at 0, U0 unknown
        i0, i1 = sv.init_planes(sv.encode("S1"))
        assert (i0, i1) == (0, 1)
        i0, i1 = sv.init_planes(sv.encode("F"))
        assert (i0, i1) == (0, 1)
        i0, i1 = sv.init_planes(sv.encode("R"))
        assert (i0, i1) == (1, 0)
        i0, i1 = sv.init_planes(sv.encode("U0"))
        assert (i0, i1) == (0, 0)


class TestForwardSemantics:
    """Every claim of forward() must hold on all concretizations."""

    @pytest.mark.parametrize("gate_type", GATES_2IN)
    def test_two_input_gates(self, gate_type):
        combos = list(itertools.product(VALUE_NAMES, repeat=2))
        width = len(combos)
        mask = (1 << width) - 1
        a = planes_for([c[0] for c in combos])
        b = planes_for([c[1] for c in combos])
        out = sv.forward(gate_type, [a, b], mask)
        for lane, combo in enumerate(combos):
            self._check_claims(gate_type, combo, out, lane)

    @pytest.mark.parametrize("gate_type", [GateType.AND, GateType.OR])
    def test_three_input_gates(self, gate_type):
        subset = ["S0", "S1", "R", "F", "U1", "X"]
        combos = list(itertools.product(subset, repeat=3))
        width = len(combos)
        mask = (1 << width) - 1
        planes = [planes_for([c[k] for c in combos]) for k in range(3)]
        out = sv.forward(gate_type, planes, mask)
        for lane, combo in enumerate(combos):
            self._check_claims(gate_type, combo, out, lane, max_samples=2)

    @staticmethod
    def _check_claims(gate_type, combo, out, lane, max_samples=None):
        bits = tuple((p >> lane) & 1 for p in out)
        claims_final = 1 if bits[1] else (0 if bits[0] else None)
        claims_stable = bool(bits[2])
        claims_instable = bool(bits[3])
        assert not (bits[0] and bits[1]), (gate_type, combo)
        assert not (bits[2] and bits[3]), (gate_type, combo)
        families = [
            CONCRETIZATIONS[name][:max_samples] if max_samples else CONCRETIZATIONS[name]
            for name in combo
        ]
        for waves in itertools.product(*families):
            result = TimingSimulator._evaluate_gate(gate_type, list(waves), 0.0)
            if claims_final is not None:
                assert result.final == claims_final, (gate_type, combo, waves)
            if claims_stable:
                assert result.is_stable, (gate_type, combo, waves)
            if claims_instable:
                assert result.initial != result.final, (gate_type, combo, waves)

    def test_not_inverts_value_keeps_stability(self):
        for name, want in [("S0", "S1"), ("R", "F"), ("U1", "U0"), ("X", "X")]:
            out = sv.forward(GateType.NOT, [sv.encode(name)], 1)
            assert sv.decode_lane(out, 0) == want

    def test_known_examples(self):
        mask = 1
        # AND(R, S1) propagates the rise
        out = sv.forward(GateType.AND, [sv.encode("R"), sv.encode("S1")], mask)
        assert sv.decode_lane(out, 0) == "R"
        # AND(F, U1): final 0 but the transition is not provable
        out = sv.forward(GateType.AND, [sv.encode("F"), sv.encode("U1")], mask)
        assert sv.decode_lane(out, 0) == "U0"
        # AND(anything, S0) is stable 0
        for name in VALUE_NAMES:
            out = sv.forward(GateType.AND, [sv.encode(name), sv.encode("S0")], mask)
            assert sv.decode_lane(out, 0) == "S0"
        # XOR(R, F): both change, final 1^0=... init 0^1=1, final 1^0=1,
        # but a race can glitch: value is U1, never stable
        out = sv.forward(GateType.XOR, [sv.encode("R"), sv.encode("F")], mask)
        assert sv.decode_lane(out, 0) == "U1"
        # XOR(R, R): init 0, final 0, possible pulse: U0
        out = sv.forward(GateType.XOR, [sv.encode("R"), sv.encode("R")], mask)
        assert sv.decode_lane(out, 0) == "U0"


class TestForwardAgreesWithThreeValued:
    """The final-value planes must match the 3-valued logic exactly."""

    @pytest.mark.parametrize("gate_type", GATES_2IN)
    def test_value_planes_match(self, gate_type):
        from repro.logic import three_valued as tv

        combos = list(itertools.product(VALUE_NAMES, repeat=2))
        width = len(combos)
        mask = (1 << width) - 1
        a = planes_for([c[0] for c in combos])
        b = planes_for([c[1] for c in combos])
        out7 = sv.forward(gate_type, [a, b], mask)
        out3 = tv.forward(gate_type, [(a[0], a[1]), (b[0], b[1])], mask)
        assert out7[0] == out3[0]
        assert out7[1] == out3[1]


class TestBackward:
    def test_and_stable_one_forces_stable_one_inputs(self):
        out = sv.encode("S1")
        adds = sv.backward(GateType.AND, out, [sv.X, sv.X], 1)
        for add in adds:
            assert add[1] == 1 and add[2] == 1  # final 1 + stable

    def test_and_stable_zero_unique_implication(self):
        # one input is rising (cannot be stable-0): the other must be S0
        out = sv.encode("S0")
        adds = sv.backward(GateType.AND, out, [sv.encode("R"), sv.X], 1)
        assert adds[1][0] == 1 and adds[1][2] == 1

    def test_and_falling_output_constrains_initials(self):
        # output falls => all inputs initially 1: a known-final-0 input
        # must be falling, a known-final-1 input must be stable
        out = sv.encode("F")
        adds = sv.backward(
            GateType.AND, out, [sv.encode("U0"), sv.encode("U1")], 1
        )
        assert adds[0][3] == 1  # instable (falling)
        assert adds[1][2] == 1  # stable at 1

    def test_and_rising_output_with_stable_sibling(self):
        out = sv.encode("R")
        adds = sv.backward(GateType.AND, out, [sv.X, sv.encode("S1")], 1)
        assert adds[0][1] == 1 and adds[0][3] == 1  # must rise

    def test_or_stable_zero_forces_all(self):
        out = sv.encode("S0")
        adds = sv.backward(GateType.OR, out, [sv.X, sv.X], 1)
        for add in adds:
            assert add[0] == 1 and add[2] == 1

    def test_nand_swaps_output_planes(self):
        # NAND output S0 behaves like AND output S1
        out = sv.encode("S0")
        adds = sv.backward(GateType.NAND, out, [sv.X, sv.X], 1)
        for add in adds:
            assert add[1] == 1 and add[2] == 1

    def test_xor_stable_output_forces_stable_inputs(self):
        out = sv.encode("S1")
        adds = sv.backward(GateType.XOR, out, [sv.X, sv.X], 1)
        for add in adds:
            assert add[2] == 1

    def test_xor_instable_with_stable_sibling(self):
        out = sv.encode("R")
        adds = sv.backward(GateType.XOR, out, [sv.X, sv.encode("S0")], 1)
        assert adds[0][3] == 1  # the free input carries the transition
        assert adds[0][1] == 1  # and must end at 1 (parity completion)

    def test_backward_consistent_with_forward(self):
        """Re-implying the forward result must never create conflicts."""
        for gate_type in GATES_2IN:
            for a_name, b_name in itertools.product(VALUE_NAMES, repeat=2):
                a = sv.encode(a_name)
                b = sv.encode(b_name)
                out = sv.forward(gate_type, [a, b], 1)
                adds = sv.backward(gate_type, out, [a, b], 1)
                merged_a = sv.merge(a, adds[0])
                merged_b = sv.merge(b, adds[1])
                assert sv.conflict(merged_a) == 0, (gate_type, a_name, b_name)
                assert sv.conflict(merged_b) == 0, (gate_type, a_name, b_name)


class TestUnjustified:
    def test_stable_requirement_counts(self):
        # output required S1, inputs only final-1: the stable bit is
        # assigned but not implied -> unjustified
        out = sv.encode("S1")
        ins = [sv.encode("U1"), sv.encode("U1")]
        assert sv.unjustified(GateType.AND, out, ins, 1) == 1
        ins = [sv.encode("S1"), sv.encode("S1")]
        assert sv.unjustified(GateType.AND, out, ins, 1) == 0

    def test_value_only_requirement(self):
        out = sv.encode("U0")
        assert sv.unjustified(GateType.AND, out, [sv.X, sv.X], 1) == 1
        assert sv.unjustified(GateType.AND, out, [sv.encode("U0"), sv.X], 1) == 0
