"""Tests of the compiled netlist kernel (repro.kernel).

The kernel is the single execution substrate behind every simulator,
so these tests pin it from three directions:

* **structure** — the lowered arrays (gate codes, CSR fanin/fanout,
  levels, topological order, I/O vectors) are a faithful image of the
  frozen circuit, and the compiled form is cached on the circuit;
* **two-valued semantics** — both word backends agree with the naive
  per-vector :meth:`Circuit.evaluate` reference and with each other on
  randomly generated circuits (property-based);
* **seven-valued PPSFP semantics** — the numpy multi-word batch path
  reproduces the seed object-graph implementation
  (:mod:`repro.sim.reference`) lane-for-lane, for both test classes,
  across batches larger than one machine word.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import Circuit, CircuitError
from repro.circuit.generators import random_dag
from repro.core.patterns import random_patterns as _shared_random_patterns
from repro.kernel import (
    CODE_INPUT,
    GATE_CODES,
    CompiledCircuit,
    IntWordBackend,
    NumpyWordBackend,
    PackedPatterns,
    compile_circuit,
    int_to_words,
    pack_bits,
    words_to_int,
)
from repro.paths import TestClass, fault_list
from repro.sim import DelayFaultSimulator
from repro.sim.logic_sim import pack_vectors, simulate_array, simulate_words
from repro.sim.reference import detected_faults_reference
from repro.sim.stuck_at_sim import StuckAtSimulator
from repro.core.stuck_at import all_stuck_at_faults

PROFILES = ["balanced", "xor_rich", "nand_heavy"]


def make_circuit(seed: int) -> Circuit:
    rng = random.Random(seed)
    return random_dag(
        n_inputs=rng.randint(3, 8),
        n_gates=rng.randint(5, 40),
        seed=seed,
        profile=rng.choice(PROFILES),
        reconvergence=rng.uniform(0.1, 0.5),
    )


def random_patterns(circuit: Circuit, count: int, seed: int):
    return _shared_random_patterns(circuit, count, seed)


# ---------------------------------------------------------------------------
# structure
# ---------------------------------------------------------------------------


class TestCompiledStructure:
    @given(st.integers(0, 10_000))
    @settings(deadline=None, max_examples=30,
              suppress_health_check=[HealthCheck.too_slow])
    def test_lowering_is_faithful(self, seed):
        circuit = make_circuit(seed)
        compiled = circuit.compiled()
        assert isinstance(compiled, CompiledCircuit)
        assert compiled.n_signals == circuit.num_signals
        assert list(compiled.input_index) == circuit.inputs
        assert list(compiled.output_index) == circuit.outputs
        assert list(compiled.order) == circuit.topological_order()
        assert list(compiled.level) == circuit.levels
        for gate in circuit.gates:
            i = gate.index
            assert compiled.py_codes[i] == GATE_CODES[gate.gate_type]
            assert compiled.gate_types[i] is gate.gate_type
            lo, hi = compiled.fanin_offsets[i], compiled.fanin_offsets[i + 1]
            assert tuple(compiled.fanin_index[lo:hi]) == gate.fanin
            assert compiled.fanin_of(i) == gate.fanin
            lo, hi = compiled.fanout_offsets[i], compiled.fanout_offsets[i + 1]
            assert tuple(compiled.fanout_index[lo:hi]) == circuit.fanout(i)
            assert compiled.fanout_of(i) == circuit.fanout(i)
        # the plan covers every non-input signal exactly once, topo order
        planned = [out for _c, out, _f, _t in compiled.plan]
        assert sorted(planned) == sorted(
            g.index for g in circuit.gates if not g.is_input
        )
        seen = set(circuit.inputs)
        for _c, out, fanin, _t in compiled.plan:
            assert all(f in seen for f in fanin)
            seen.add(out)

    def test_level_buckets_partition_the_order(self):
        circuit = make_circuit(7)
        compiled = circuit.compiled()
        collected = []
        for lvl in range(compiled.depth + 1):
            bucket = compiled.level_bucket(lvl)
            assert all(compiled.level[s] == lvl for s in bucket)
            collected.extend(int(s) for s in bucket)
        assert collected == circuit.topological_order()

    def test_input_codes(self):
        circuit = make_circuit(3)
        compiled = circuit.compiled()
        for pi in circuit.inputs:
            assert compiled.py_codes[pi] == CODE_INPUT
            assert compiled.is_input[pi]

    def test_cone_of_contains_fanout_closure(self):
        circuit = make_circuit(11)
        compiled = circuit.compiled()
        site = circuit.inputs[0]
        cone = set(compiled.cone_of(site))
        assert site in cone
        # closure: every fanout of a cone member is in the cone
        for s in list(cone):
            for f in compiled.fanout_of(s):
                assert f in cone

    def test_compiled_is_cached_on_the_circuit(self):
        circuit = make_circuit(1)
        assert circuit.compiled() is circuit.compiled()

    def test_circuit_equality_survives_compilation(self):
        # regression: the _compiled cache must stay out of Circuit.__eq__
        # (CompiledCircuit back-references the circuit, so a generated
        # comparison would recurse; numpy fields have no truth value)
        a, b = make_circuit(6), make_circuit(6)
        assert a == b
        a.compiled()
        b.compiled()
        assert a == b
        assert a.compiled() != b.compiled()  # identity comparison only
        assert a.compiled() == a.compiled()

    def test_compile_requires_freeze(self):
        circuit = Circuit("open")
        circuit.add_input("a")
        with pytest.raises(CircuitError):
            circuit.compiled()
        with pytest.raises(CircuitError):
            compile_circuit(circuit)

    def test_mutation_after_freeze_still_raises(self):
        """Freezing memoizes topo/levels/compiled and seals the circuit."""
        circuit = make_circuit(2)
        order = circuit.topological_order()
        assert circuit.topological_order() is order  # memoized, not recomputed
        assert circuit.levels is circuit.levels
        circuit.compiled()
        with pytest.raises(CircuitError):
            circuit.add_input("late_pi")
        with pytest.raises(CircuitError):
            circuit.add_gate("late", "AND", [0, 1])
        with pytest.raises(CircuitError):
            circuit.mark_output(0)


# ---------------------------------------------------------------------------
# packed patterns
# ---------------------------------------------------------------------------


class TestPackedPatterns:
    @given(st.integers(1, 200), st.integers(0, 10_000))
    @settings(deadline=None, max_examples=30)
    def test_pack_bits_matches_pack_vectors(self, count, seed):
        rng = random.Random(seed)
        vectors = [[rng.randint(0, 1) for _ in range(5)] for _ in range(count)]
        words = pack_bits(np.asarray(vectors, dtype=np.uint8))
        expected = pack_vectors(vectors)
        for column in range(5):
            assert words_to_int(words[column]) == expected[column]

    def test_int_words_roundtrip(self):
        value = (1 << 130) | (1 << 64) | 0b1011
        assert words_to_int(int_to_words(value, 3)) == value

    def test_lane_valid_masks_the_tail(self):
        patterns = random_patterns(make_circuit(5), 70, seed=1)
        packed = PackedPatterns.from_patterns(patterns)
        assert packed.n_words == 2
        valid = packed.lane_valid()
        assert valid[0] == np.uint64(0xFFFFFFFFFFFFFFFF)
        assert valid[1] == np.uint64((1 << 6) - 1)

    def test_planes7_encodes_transitions(self):
        circuit = make_circuit(5)
        patterns = random_patterns(circuit, 100, seed=2)
        packed = PackedPatterns.from_patterns(patterns)
        planes = packed.planes7()
        for position in range(len(circuit.inputs)):
            z, o, s, i = (words_to_int(p) for p in planes[position])
            for lane, pattern in enumerate(patterns):
                bit = 1 << lane
                assert bool(o & bit) == bool(pattern.v2[position])
                assert bool(z & bit) == (not pattern.v2[position])
                assert bool(i & bit) == (pattern.v1[position] != pattern.v2[position])
                assert bool(s & bit) == (pattern.v1[position] == pattern.v2[position])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            PackedPatterns.from_patterns([])
        with pytest.raises(ValueError):
            PackedPatterns.from_vectors([])


# ---------------------------------------------------------------------------
# two-valued semantics
# ---------------------------------------------------------------------------


class TestTwoValuedBackends:
    @given(st.integers(0, 10_000))
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    def test_backends_match_naive_reference(self, seed):
        circuit = make_circuit(seed)
        rng = random.Random(seed + 1)
        vectors = [
            [rng.randint(0, 1) for _ in circuit.inputs] for _ in range(96)
        ]
        # int backend (one 96-lane word)
        int_values = simulate_words(circuit, pack_vectors(vectors), len(vectors))
        # numpy backend (two uint64 words)
        packed = PackedPatterns.from_vectors(vectors)
        array_values = simulate_array(circuit, packed.v2)
        for lane, vector in enumerate(vectors):
            expected = circuit.evaluate(vector)
            for gate in circuit.gates:
                want = expected[gate.name]
                assert (int_values[gate.index] >> lane) & 1 == want
                word, bit = divmod(lane, 64)
                got = int(array_values[gate.index, word] >> np.uint64(bit)) & 1
                assert got == want

    def test_int_backend_validates_input_count(self):
        circuit = make_circuit(9)
        with pytest.raises(ValueError):
            IntWordBackend(4).simulate_logic(circuit.compiled(), [0])
        with pytest.raises(ValueError):
            NumpyWordBackend(4).simulate_logic(
                circuit.compiled(), np.zeros((1, 1), dtype=np.uint64)
            )


# ---------------------------------------------------------------------------
# seven-valued PPSFP semantics
# ---------------------------------------------------------------------------


class TestBatchedPpsfp:
    @given(st.integers(0, 10_000), st.sampled_from(list(TestClass)))
    @settings(deadline=None, max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    def test_numpy_batches_match_seed_reference(self, seed, test_class):
        circuit = make_circuit(seed)
        faults = fault_list(circuit, cap=24, strategy="all")
        if not faults:
            return
        patterns = random_patterns(circuit, 150, seed + 2)
        simulator = DelayFaultSimulator(circuit, test_class, backend="numpy")
        got = simulator.detected_faults(patterns, faults)
        want = {fault: 0 for fault in faults}
        for start in range(0, len(patterns), 64):
            chunk = patterns[start : start + 64]
            hits = detected_faults_reference(circuit, chunk, faults, test_class)
            for fault, lanes in hits.items():
                want[fault] |= lanes << start
        assert got == want

    @given(st.integers(0, 10_000), st.sampled_from(list(TestClass)))
    @settings(deadline=None, max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    def test_int_path_matches_seed_reference(self, seed, test_class):
        circuit = make_circuit(seed)
        faults = fault_list(circuit, cap=24, strategy="all")
        if not faults:
            return
        patterns = random_patterns(circuit, 48, seed + 3)
        simulator = DelayFaultSimulator(circuit, test_class, backend="int")
        assert simulator.detected_faults(patterns, faults) == (
            detected_faults_reference(circuit, patterns, faults, test_class)
        )

    def test_auto_backend_picks_numpy_past_one_word(self):
        from repro.kernel import NativeWordBackend, NumpyWordBackend, backend_for

        assert not isinstance(backend_for(64, "auto"), NumpyWordBackend)
        assert isinstance(backend_for(65, "auto"), NumpyWordBackend)
        assert isinstance(backend_for(1, "numpy"), NumpyWordBackend)
        # auto never opts into the C build cost on its own
        assert not isinstance(backend_for(65, "auto"), NativeWordBackend)
        with pytest.raises(ValueError):
            backend_for(8, "gpu")

    def test_unknown_backend_error_enumerates_choices(self):
        from repro.kernel import backend_for

        with pytest.raises(ValueError, match=r"choose from.*native"):
            backend_for(8, "gpu")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            DelayFaultSimulator(make_circuit(4), TestClass.ROBUST, backend="gpu")

    def test_coverage_batches_beyond_one_word(self):
        circuit = make_circuit(21)
        faults = fault_list(circuit, cap=16, strategy="all")
        patterns = random_patterns(circuit, 300, seed=5)
        simulator = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        big = simulator.coverage(patterns, faults, batch=256)
        small = simulator.coverage(patterns, faults, batch=32)
        assert big == small


# ---------------------------------------------------------------------------
# stuck-at path through the kernel
# ---------------------------------------------------------------------------


class TestStuckAtOnKernel:
    @given(st.integers(0, 10_000))
    @settings(deadline=None, max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cone_resimulation_matches_full_resimulation(self, seed):
        circuit = make_circuit(seed)
        rng = random.Random(seed + 4)
        vectors = [
            [rng.randint(0, 1) for _ in circuit.inputs] for _ in range(32)
        ]
        faults = all_stuck_at_faults(circuit)[:30]
        simulator = StuckAtSimulator(circuit)
        hits = simulator.detected_faults(vectors, faults)
        # independent check: force the site, full naive resimulation
        for fault in faults:
            for lane, vector in enumerate(vectors):
                good = circuit.evaluate(vector)
                faulty = _evaluate_with_forced(circuit, vector, fault)
                differs = any(
                    good[circuit.signal_name(o)] != faulty[o]
                    for o in circuit.outputs
                )
                assert bool(hits[fault] >> lane & 1) == differs


def _evaluate_with_forced(circuit, vector, fault):
    """Naive per-vector evaluation with one signal forced."""
    from repro.circuit.gates import evaluate

    values = {}
    for position, pi in enumerate(circuit.inputs):
        values[pi] = vector[position]
    values[fault.signal] = fault.value
    for index in circuit.topological_order():
        gate = circuit.gates[index]
        if gate.is_input or index == fault.signal:
            continue
        values[index] = evaluate(gate.gate_type, [values[f] for f in gate.fanin])
    return values


# ---------------------------------------------------------------------------
# native backend selection, fallback, and caching hygiene
# ---------------------------------------------------------------------------


class TestNativeSelection:
    def test_fallback_warns_once_and_returns_numpy(self, monkeypatch):
        """Without a toolchain, prefer="native" degrades with one warning."""
        import warnings

        from repro.kernel import NativeBackendUnavailableWarning, backend_for
        from repro.kernel import native as native_mod

        monkeypatch.setattr(
            native_mod, "_probe_result", (False, "forced by test")
        )
        monkeypatch.setattr(native_mod, "_warned_fallback", False)
        with pytest.warns(NativeBackendUnavailableWarning, match="forced by test"):
            backend = backend_for(8, "native")
        assert isinstance(backend, NumpyWordBackend)
        assert type(backend) is NumpyWordBackend
        # one-time: a second request stays silent
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            backend = backend_for(200, "native")
        assert type(backend) is NumpyWordBackend

    @pytest.mark.skipif(
        not pytest.importorskip("repro.kernel.native").native_available(),
        reason="no C toolchain: native word backend unavailable",
    )
    def test_native_preference_selects_native_at_any_width(self):
        from repro.kernel import NativeWordBackend, backend_for

        assert isinstance(backend_for(8, "native"), NativeWordBackend)
        assert isinstance(backend_for(200, "native"), NativeWordBackend)

    @pytest.mark.skipif(
        not pytest.importorskip("repro.kernel.native").native_available(),
        reason="no C toolchain: native word backend unavailable",
    )
    def test_compiled_circuit_pickles_after_native_build(self):
        """The module memo lives in _fusion_cache, which pickling drops."""
        import pickle

        from repro.kernel import NativeWordBackend, native_module, plan_hash

        circuit = make_circuit(23)
        compiled = circuit.compiled()
        module = native_module(compiled)
        assert compiled._fusion_cache["native_module"] is module
        # same structural hash -> the very same in-process module object
        assert native_module(circuit.compiled()) is module
        clone = pickle.loads(pickle.dumps(compiled))
        assert "native_module" not in clone._fusion_cache
        assert plan_hash(clone) == plan_hash(compiled)
        # the clone rebuilds/reloads and simulates identically
        vectors = [[lane & 1 for _ in circuit.inputs] for lane in range(8)]
        bits = pack_bits(np.asarray(vectors, dtype=np.uint8))
        values = NativeWordBackend(8).simulate_logic(clone, bits)
        oracle = IntWordBackend(8).simulate_logic(compiled, pack_vectors(vectors))
        valid = (1 << 8) - 1
        assert [int(row[0]) & valid for row in values] == [
            word & valid for word in oracle
        ]


# ---------------------------------------------------------------------------
# lane-slab merge / demultiplex (the request-coalescing primitives)
# ---------------------------------------------------------------------------


class TestLaneSlab:
    """PackedPatterns.concat + words.extract_lanes round-trip."""

    def _patterns(self, n_inputs, n, seed):
        rng = random.Random(seed)
        from repro.core.patterns import TestPattern

        return [
            TestPattern(
                tuple(rng.randint(0, 1) for _ in range(n_inputs)),
                tuple(rng.randint(0, 1) for _ in range(n_inputs)),
            )
            for _ in range(n)
        ]

    def test_concat_places_batches_at_word_boundaries(self):
        batches = [
            PackedPatterns.from_patterns(self._patterns(5, n, seed))
            for seed, n in enumerate((3, 64, 70))
        ]
        merged, offsets = PackedPatterns.concat(batches)
        # 3 lanes -> 1 word, 64 -> 1 word, 70 -> 2 words
        assert offsets == [0, 64, 128]
        assert merged.n_words == 4
        assert len(merged) == 128 + 70

    def test_concat_rejects_mismatched_inputs_and_empty(self):
        import pytest as _pytest

        a = PackedPatterns.from_patterns(self._patterns(4, 2, 0))
        b = PackedPatterns.from_patterns(self._patterns(5, 2, 0))
        with _pytest.raises(ValueError):
            PackedPatterns.concat([a, b])
        with _pytest.raises(ValueError):
            PackedPatterns.concat([])

    def test_extract_lanes_rebases_and_masks(self):
        from repro.logic.words import extract_lanes

        word = (0b1011 << 64) | 0b0110
        assert extract_lanes(word, 0, 64) == 0b0110
        assert extract_lanes(word, 64, 4) == 0b1011
        assert extract_lanes(word, 64, 2) == 0b11
        with pytest.raises(ValueError):
            extract_lanes(word, -1, 4)

    def test_merged_slab_detection_is_lane_identical(self):
        """Simulating the merged slab == simulating each batch alone."""
        from repro.logic.words import extract_lanes

        circuit = random_dag(n_inputs=8, n_gates=40, seed=11)
        faults = fault_list(circuit, cap=12)
        sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        n_inputs = len(circuit.inputs)
        batches = [
            self._patterns(n_inputs, n, seed=40 + k)
            for k, n in enumerate((10, 64, 33))
        ]
        packed = [PackedPatterns.from_patterns(b) for b in batches]
        merged, offsets = PackedPatterns.concat(packed)
        merged_masks = sim.detection_masks(merged, faults)
        for batch, one, offset in zip(batches, packed, offsets):
            alone = sim.detection_masks(one, faults)
            for fault_index in range(len(faults)):
                assert (
                    extract_lanes(merged_masks[fault_index], offset, len(one))
                    == alone[fault_index]
                )
