"""Tests of the service endpoint (repro.api.service).

The smoke contract from the issue: a POSTed c17/c880 generate request
must return, through the JSON schema round-trip, exactly the per-fault
statuses the legacy ``generate_tests`` produces — the server is the
same engine behind a wire format, never a reimplementation.
"""

import json
import threading
import urllib.error
import urllib.request
import warnings

import pytest

from repro.api import (
    AtpgService,
    GenerateRequest,
    GradeRequest,
    PathsRequest,
    SimulateRequest,
    make_server,
    serde,
)
from repro.api.schemas import stamp, validate
from repro.circuit.library import C17_BENCH, c17
from repro.paths import TestClass, all_faults


def legacy_statuses(circuit, faults, test_class):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.core import generate_tests

        report = generate_tests(circuit, faults, test_class)
    return [record.status.value for record in report.records]


# ---------------------------------------------------------------------------
# the dispatcher, transport-free
# ---------------------------------------------------------------------------


class TestDispatcher:
    def test_generate_matches_legacy_engine(self):
        service = AtpgService()
        response = service.handle(
            GenerateRequest(circuit="c17", test_class="robust")
        )
        assert response.ok
        validate(response.payload, kind="repro/tpg-report")
        circuit = c17()
        expected = legacy_statuses(circuit, all_faults(circuit), TestClass.ROBUST)
        assert [r["status"] for r in response.payload["records"]] == expected

    def test_inline_bench_and_session_cache(self):
        service = AtpgService()
        for _ in range(3):
            response = service.handle(PathsRequest(bench=C17_BENCH))
            assert response.ok
        # one structure -> one lowering, however many requests
        assert service.sessions_opened == 1
        assert service.requests_served == 3

    def test_fingerprint_observes_the_name(self):
        # the same netlist under a different name is a different session
        # (reports carry circuit_name, so sharing would mislabel them)
        service = AtpgService()
        assert service.handle(PathsRequest(circuit="c17")).ok
        assert service.handle(PathsRequest(bench=C17_BENCH)).ok
        assert service.sessions_opened == 2

    def test_lru_eviction(self):
        service = AtpgService(max_sessions=1)
        assert service.handle(PathsRequest(circuit="c17")).ok
        assert service.handle(PathsRequest(circuit="paper_example")).ok
        assert service.handle(PathsRequest(circuit="c17")).ok
        assert service.sessions_opened == 3  # c17 was evicted, re-opened

    def test_simulate_and_grade(self):
        circuit = c17()
        faults = all_faults(circuit)
        service = AtpgService()
        generate = service.handle(
            GenerateRequest(circuit="c17", include_patterns=True)
        )
        patterns = [
            serde.pattern_from_payload(r["pattern"], envelope=False)
            for r in generate.payload["records"]
            if r["pattern"] is not None
        ]
        simulate = service.handle(
            SimulateRequest(circuit="c17", patterns=patterns, faults=faults)
        )
        assert simulate.ok
        validate(simulate.payload, kind="repro/simulate-report")
        masks = [int(m, 16) for m in simulate.payload["masks"]]
        assert len(masks) == len(faults)
        grade = service.handle(
            GradeRequest(circuit="c17", patterns=patterns, faults=faults)
        )
        assert grade.ok
        validate(grade.payload, kind="repro/grade-report")
        assert grade.payload["detected_flags"] == [bool(m) for m in masks]

    def test_partial_options_on_the_wire(self):
        # clients may send only the knobs they override
        service = AtpgService()
        response = service.handle_json(
            "generate",
            stamp(
                "repro/request.generate",
                {"circuit": "c17", "options": {"generation": {"width": 8}}},
            ),
        )
        assert response.ok
        assert response.payload["width"] == 8

    def test_wire_options_cannot_steer_server_files(self, tmp_path):
        # checkpoint/resume are host decisions, never request parameters
        from repro.api import Options

        path = tmp_path / "evil.ckpt.json"
        service = AtpgService()
        from repro.api import CampaignRequest

        response = service.handle(
            CampaignRequest(
                circuit="c17",
                max_faults=8,
                options=Options(width=4, checkpoint=str(path), resume=True),
            )
        )
        assert response.ok
        assert not path.exists()

    def test_bad_circuit_is_a_clean_error(self):
        response = AtpgService().handle(GenerateRequest(circuit="nope"))
        assert not response.ok
        assert response.status == 400
        assert "unknown circuit" in response.payload["detail"]

    def test_requires_exactly_one_circuit_transport(self):
        response = AtpgService().handle(GenerateRequest())
        assert not response.ok
        assert "exactly one" in response.payload["detail"]


# ---------------------------------------------------------------------------
# the HTTP transport
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    server = make_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def _post(server, verb, payload, timeout=60):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/{verb}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get(server, endpoint, timeout=10):
    port = server.server_address[1]
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/v1/{endpoint}", timeout=timeout
    ) as response:
        return json.loads(response.read())


class TestHttpEndpoint:
    def test_generate_smoke_c17(self, server):
        request = stamp(
            "repro/request.generate", {"circuit": "c17", "test_class": "robust"}
        )
        envelope = _post(server, "generate", request)
        validate(envelope, kind="repro/response")
        assert envelope["ok"]
        result = envelope["result"]
        validate(result, kind="repro/tpg-report")
        circuit = c17()
        assert [r["status"] for r in result["records"]] == legacy_statuses(
            circuit, all_faults(circuit), TestClass.ROBUST
        )

    def test_unknown_schema_version_is_400(self, server):
        request = stamp("repro/request.generate", {"circuit": "c17"})
        request["schema_version"] = 99
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "generate", request)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "unknown schema_version" in body["error"]["detail"]

    def test_unknown_verb_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "transmogrify", stamp("repro/request.generate", {}))
        assert excinfo.value.code == 400

    def test_health_and_schemas(self, server):
        health = _get(server, "health")
        assert health["status"] == "ok"
        assert health["version"]
        schemas = _get(server, "schemas")["schemas"]
        kinds = {row["kind"] for row in schemas}
        assert "repro/tpg-report" in kinds
        assert "repro/request.generate" in kinds

    def test_paths_over_http(self, server):
        request = stamp(
            "repro/request.paths",
            {"circuit": "paper_example", "histogram": True},
        )
        envelope = _post(server, "paths", request)
        assert envelope["ok"]
        assert envelope["result"]["paths"] == 13
        assert envelope["result"]["faults"] == 26


class TestAcceptanceCriterion:
    """c880 through the wire == c880 through the legacy engine."""

    def test_c880_statuses_round_trip_through_service(self, server):
        from repro.circuit.suites import suite_circuit
        from repro.paths import fault_list

        circuit = suite_circuit("c880", 1)
        faults = fault_list(circuit, cap=96, strategy="all")
        expected = legacy_statuses(circuit, faults, TestClass.NONROBUST)

        request = stamp(
            "repro/request.generate",
            {
                "circuit": "c880",
                "test_class": "nonrobust",
                "max_faults": 96,
                "strategy": "all",
            },
        )
        envelope = _post(server, "generate", request, timeout=300)
        assert envelope["ok"]
        report = serde.tpg_report_from_payload(envelope["result"])
        assert [record.status.value for record in report.records] == expected
