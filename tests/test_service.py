"""Tests of the service endpoint (repro.api.service).

The smoke contract from the issue: a POSTed c17/c880 generate request
must return, through the JSON schema round-trip, exactly the per-fault
statuses the legacy ``generate_tests`` produces — the server is the
same engine behind a wire format, never a reimplementation.
"""

import json
import threading
import urllib.error
import urllib.request
import warnings

import pytest

from repro.api import (
    AtpgService,
    GenerateRequest,
    GradeRequest,
    PathsRequest,
    SimulateRequest,
    make_server,
    serde,
)
from repro.api.schemas import stamp, validate
from repro.circuit.library import C17_BENCH, c17
from repro.paths import TestClass, all_faults


def legacy_statuses(circuit, faults, test_class):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        from repro.core import generate_tests

        report = generate_tests(circuit, faults, test_class)
    return [record.status.value for record in report.records]


# ---------------------------------------------------------------------------
# the dispatcher, transport-free
# ---------------------------------------------------------------------------


class TestDispatcher:
    def test_generate_matches_legacy_engine(self):
        service = AtpgService()
        response = service.handle(
            GenerateRequest(circuit="c17", test_class="robust")
        )
        assert response.ok
        validate(response.payload, kind="repro/tpg-report")
        circuit = c17()
        expected = legacy_statuses(circuit, all_faults(circuit), TestClass.ROBUST)
        assert [r["status"] for r in response.payload["records"]] == expected

    def test_inline_bench_and_session_cache(self):
        service = AtpgService()
        for _ in range(3):
            response = service.handle(PathsRequest(bench=C17_BENCH))
            assert response.ok
        # one structure -> one lowering, however many requests
        assert service.sessions_opened == 1
        assert service.requests_served == 3

    def test_fingerprint_observes_the_name(self):
        # the same netlist under a different name is a different session
        # (reports carry circuit_name, so sharing would mislabel them)
        service = AtpgService()
        assert service.handle(PathsRequest(circuit="c17")).ok
        assert service.handle(PathsRequest(bench=C17_BENCH)).ok
        assert service.sessions_opened == 2

    def test_lru_eviction(self):
        service = AtpgService(max_sessions=1)
        assert service.handle(PathsRequest(circuit="c17")).ok
        assert service.handle(PathsRequest(circuit="paper_example")).ok
        assert service.handle(PathsRequest(circuit="c17")).ok
        assert service.sessions_opened == 3  # c17 was evicted, re-opened

    def test_simulate_and_grade(self):
        circuit = c17()
        faults = all_faults(circuit)
        service = AtpgService()
        generate = service.handle(
            GenerateRequest(circuit="c17", include_patterns=True)
        )
        patterns = [
            serde.pattern_from_payload(r["pattern"], envelope=False)
            for r in generate.payload["records"]
            if r["pattern"] is not None
        ]
        simulate = service.handle(
            SimulateRequest(circuit="c17", patterns=patterns, faults=faults)
        )
        assert simulate.ok
        validate(simulate.payload, kind="repro/simulate-report")
        masks = [int(m, 16) for m in simulate.payload["masks"]]
        assert len(masks) == len(faults)
        grade = service.handle(
            GradeRequest(circuit="c17", patterns=patterns, faults=faults)
        )
        assert grade.ok
        validate(grade.payload, kind="repro/grade-report")
        assert grade.payload["detected_flags"] == [bool(m) for m in masks]

    def test_partial_options_on_the_wire(self):
        # clients may send only the knobs they override
        service = AtpgService()
        response = service.handle_json(
            "generate",
            stamp(
                "repro/request.generate",
                {"circuit": "c17", "options": {"generation": {"width": 8}}},
            ),
        )
        assert response.ok
        assert response.payload["width"] == 8

    def test_wire_options_cannot_steer_server_files(self, tmp_path):
        # checkpoint/resume are host decisions, never request parameters
        from repro.api import Options

        path = tmp_path / "evil.ckpt.json"
        service = AtpgService()
        from repro.api import CampaignRequest

        response = service.handle(
            CampaignRequest(
                circuit="c17",
                max_faults=8,
                options=Options(width=4, checkpoint=str(path), resume=True),
            )
        )
        assert response.ok
        assert not path.exists()

    def test_bad_circuit_is_a_clean_error(self):
        response = AtpgService().handle(GenerateRequest(circuit="nope"))
        assert not response.ok
        assert response.status == 400
        assert "unknown circuit" in response.payload["detail"]

    def test_requires_exactly_one_circuit_transport(self):
        response = AtpgService().handle(GenerateRequest())
        assert not response.ok
        assert "exactly one" in response.payload["detail"]


# ---------------------------------------------------------------------------
# the HTTP transport
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def server():
    server = make_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()


def _post(server, verb, payload, timeout=60):
    port = server.server_address[1]
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/{verb}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _get(server, endpoint, timeout=10):
    port = server.server_address[1]
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}/v1/{endpoint}", timeout=timeout
    ) as response:
        return json.loads(response.read())


def _post_port(port, verb, payload, timeout=60):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/{verb}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read())


def _maybe_post_port(port, verb, payload):
    try:
        return _post_port(port, verb, payload, timeout=30)
    except (OSError, urllib.error.URLError):
        return None  # a drain may close the socket first; that's fine


class TestHttpEndpoint:
    def test_generate_smoke_c17(self, server):
        request = stamp(
            "repro/request.generate", {"circuit": "c17", "test_class": "robust"}
        )
        envelope = _post(server, "generate", request)
        validate(envelope, kind="repro/response")
        assert envelope["ok"]
        result = envelope["result"]
        validate(result, kind="repro/tpg-report")
        circuit = c17()
        assert [r["status"] for r in result["records"]] == legacy_statuses(
            circuit, all_faults(circuit), TestClass.ROBUST
        )

    def test_unknown_schema_version_is_400(self, server):
        request = stamp("repro/request.generate", {"circuit": "c17"})
        request["schema_version"] = 99
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "generate", request)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert "unknown schema_version" in body["error"]["detail"]

    def test_unknown_verb_is_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, "transmogrify", stamp("repro/request.generate", {}))
        assert excinfo.value.code == 400

    def test_health_and_schemas(self, server):
        health = _get(server, "health")
        assert health["status"] == "ok"
        assert health["version"]
        schemas = _get(server, "schemas")["schemas"]
        kinds = {row["kind"] for row in schemas}
        assert "repro/tpg-report" in kinds
        assert "repro/request.generate" in kinds

    def test_paths_over_http(self, server):
        request = stamp(
            "repro/request.paths",
            {"circuit": "paper_example", "histogram": True},
        )
        envelope = _post(server, "paths", request)
        assert envelope["ok"]
        assert envelope["result"]["paths"] == 13
        assert envelope["result"]["faults"] == 26


class TestAcceptanceCriterion:
    """c880 through the wire == c880 through the legacy engine."""

    def test_c880_statuses_round_trip_through_service(self, server):
        from repro.circuit.suites import suite_circuit
        from repro.paths import fault_list

        circuit = suite_circuit("c880", 1)
        faults = fault_list(circuit, cap=96, strategy="all")
        expected = legacy_statuses(circuit, faults, TestClass.NONROBUST)

        request = stamp(
            "repro/request.generate",
            {
                "circuit": "c880",
                "test_class": "nonrobust",
                "max_faults": 96,
                "strategy": "all",
            },
        )
        envelope = _post(server, "generate", request, timeout=300)
        assert envelope["ok"]
        report = serde.tpg_report_from_payload(envelope["result"])
        assert [record.status.value for record in report.records] == expected


# ---------------------------------------------------------------------------
# concurrency: single-flight sessions + request coalescing
# ---------------------------------------------------------------------------


class TestConcurrency:
    def test_thread_hammer_lowers_each_circuit_once(self):
        """N threads x M circuits: one lowering per circuit, no more."""
        circuits = ["c17", "paper_example", "c880"]
        service = AtpgService()
        errors = []

        def hammer(seed):
            rng = __import__("random").Random(seed)
            order = circuits * 2
            rng.shuffle(order)
            for spec in order:
                response = service.handle(PathsRequest(circuit=spec))
                if not response.ok:
                    errors.append(response.payload)

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.sessions_opened <= len(circuits)
        assert service.requests_served == 8 * len(circuits) * 2

    def test_coalesced_grades_are_bit_identical_to_serial(self):
        """Concurrent same-circuit grades merge yet demux per request."""
        from repro.api import ServiceOptions
        from repro.core.patterns import random_patterns

        circuit = c17()
        faults = all_faults(circuit)
        requests = [
            GradeRequest(
                circuit="c17",
                patterns=random_patterns(circuit, 8, seed=seed),
                faults=faults,
            )
            for seed in range(6)
        ]
        serial = AtpgService()
        expected = [
            serial.handle(request).payload["detected_flags"]
            for request in requests
        ]

        service = AtpgService(
            config=ServiceOptions(coalesce_window_ms=50.0)
        )
        service.handle(PathsRequest(circuit="c17"))  # pre-lower
        results = [None] * len(requests)
        barrier = threading.Barrier(len(requests))

        def grade(index):
            barrier.wait()
            results[index] = service.handle(requests[index])

        threads = [
            threading.Thread(target=grade, args=(k,))
            for k in range(len(requests))
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for index, response in enumerate(results):
            assert response.ok
            assert response.payload["detected_flags"] == expected[index]
        stats = service.coalescer.stats()
        # the barrier + window guarantee at least one real merge
        assert stats["merged_requests"] >= 2
        assert stats["batches"] < stats["requests"]


# ---------------------------------------------------------------------------
# the async job queue
# ---------------------------------------------------------------------------


def _poll_until(service, job_id, states, deadline=120.0):
    import time as _time

    end = _time.monotonic() + deadline
    while _time.monotonic() < end:
        payload = service.job_response(job_id).payload
        if payload["state"] in states:
            return payload
        _time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {states}")


class TestJobQueue:
    def test_submit_poll_result_matches_sync_campaign(self):
        from repro.api import CampaignRequest

        service = AtpgService()
        sync = service.handle(CampaignRequest(circuit="c17", max_faults=8))
        assert sync.ok

        request = stamp(
            "repro/request.campaign", {"circuit": "c17", "max_faults": 8}
        )
        submitted = service.submit_campaign(request, tenant="alice")
        assert submitted.ok and submitted.status == 202
        validate(submitted.payload, kind="repro/job")
        job_id = submitted.payload["id"]
        record = _poll_until(service, job_id, ("done", "failed"))
        assert record["state"] == "done"
        assert record["tenant"] == "alice"
        result = record["result"]
        assert result["statuses"] == sync.payload["statuses"]
        service.shutdown()

    def test_malformed_submission_fails_fast_before_the_queue(self):
        service = AtpgService()
        response = service.submit_campaign(
            stamp("repro/request.campaign", {"circuit": "c17", "bogus": 1})
        )
        assert not response.ok
        assert response.status == 400

    def test_unknown_circuit_becomes_a_failed_job(self):
        # resolution happens on the worker (it may construct a large
        # circuit), so a bad spec is an async failure, not a 400
        service = AtpgService()
        submitted = service.submit_campaign(
            stamp("repro/request.campaign", {"circuit": "nope"})
        )
        assert submitted.ok
        record = _poll_until(service, submitted.payload["id"], ("failed",))
        assert "unknown circuit" in record["error"]["detail"]
        service.shutdown()

    def test_cancel_and_unknown_job_are_clean(self):
        service = AtpgService()
        assert service.job_response("missing").status == 404
        assert service.cancel_job("missing").status == 404

    def test_backpressure_is_429_with_retry_after(self, monkeypatch):
        """Queue full -> 429 + Retry-After, nothing lost."""
        from repro.api import ServiceOptions

        release = threading.Event()
        started = threading.Event()

        def stall(self, job, control):
            started.set()
            release.wait(timeout=30)
            return {"stalled": True}

        monkeypatch.setattr(AtpgService, "_run_job", stall)
        service = AtpgService(
            config=ServiceOptions(workers=1, max_queue=1)
        )
        request = stamp("repro/request.campaign", {"circuit": "c17"})
        first = service.submit_campaign(request)
        assert first.ok
        assert started.wait(timeout=30)  # worker is now busy
        second = service.submit_campaign(request)  # fills the queue
        assert second.ok
        third = service.submit_campaign(request)
        assert not third.ok
        assert third.status == 429
        assert third.retry_after is not None
        assert "queue" in third.payload["detail"]
        release.set()
        service.shutdown()

    def test_tenant_quota_only_counts_that_tenant(self, monkeypatch):
        from repro.api import ServiceOptions

        release = threading.Event()

        def stall(self, job, control):
            release.wait(timeout=30)
            return {}

        monkeypatch.setattr(AtpgService, "_run_job", stall)
        service = AtpgService(
            config=ServiceOptions(
                workers=1, max_queue=8, max_jobs_per_tenant=1
            )
        )
        request = stamp("repro/request.campaign", {"circuit": "c17"})
        assert service.submit_campaign(request, tenant="alice").ok
        blocked = service.submit_campaign(request, tenant="alice")
        assert blocked.status == 429
        assert "alice" in blocked.payload["detail"]
        assert service.submit_campaign(request, tenant="bob").ok
        release.set()
        service.shutdown()

    def test_cancelled_queued_job_never_runs(self, monkeypatch):
        """Cancelling a still-queued job settles it immediately.

        The worker is pinned on a gated first job, so the second job
        is provably queued when cancelled — it must flip to
        ``cancelled`` right away (not linger ``queued`` until a worker
        looks at it) and its payload must never execute.
        """
        from repro.api import ServiceOptions

        release = threading.Event()
        started = threading.Event()
        executed = []

        def gated(self, job, control):
            executed.append(job.id)
            started.set()
            release.wait(timeout=30)
            return {}

        monkeypatch.setattr(AtpgService, "_run_job", gated)
        service = AtpgService(config=ServiceOptions(workers=1, max_queue=8))
        request = stamp("repro/request.campaign", {"circuit": "c17"})
        first = service.submit_campaign(request)
        assert first.ok
        assert started.wait(timeout=30)  # worker is pinned on job 1
        second = service.submit_campaign(request)
        assert second.ok
        cancelled = service.cancel_job(second.payload["id"])
        assert cancelled.ok
        assert cancelled.payload["state"] == "cancelled"
        release.set()
        service.shutdown()
        assert second.payload["id"] not in executed
        final = service.job_response(second.payload["id"]).payload
        assert final["state"] == "cancelled"

    def test_shutdown_drains_under_concurrent_load(self, tmp_path):
        """Drain while grades are in flight and jobs are queued.

        Every synchronous request issued before the drain gets a real
        answer, the queued/running campaign parks resumably, and a
        second service over the same jobs directory finishes it with
        statuses bit-identical to the synchronous run.
        """
        from repro.api import CampaignRequest, ServiceOptions

        config = ServiceOptions(workers=1, jobs_dir=str(tmp_path))
        service = AtpgService(config=config)
        request = stamp(
            "repro/request.campaign", {"circuit": "c880", "max_faults": 96}
        )
        submitted = service.submit_campaign(request)
        assert submitted.ok
        job_id = submitted.payload["id"]

        results = []
        lock = threading.Lock()

        def hammer():
            response = service.handle(PathsRequest(circuit="c17"))
            with lock:
                results.append(response.ok)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        service.shutdown(timeout=60)  # drain races the worker + hammer
        for thread in threads:
            thread.join(timeout=30)
        assert results == [True] * 6  # sync requests all answered
        state = service.job_response(job_id).payload["state"]
        assert state in ("queued", "interrupted", "done")

        second = AtpgService(config=config)
        record = _poll_until(second, job_id, ("done", "failed"))
        assert record["state"] == "done"
        sync = AtpgService().handle(
            CampaignRequest(circuit="c880", max_faults=96)
        )
        assert record["result"]["statuses"] == sync.payload["statuses"]
        second.shutdown()

    def test_sigterm_drains_the_real_server_process(self, tmp_path):
        """SIGTERM to a live ``tip serve`` process drains gracefully.

        The process must exit cleanly (code 0) with the submitted
        campaign persisted resumably in the jobs directory; a fresh
        in-process service over the same directory completes it.
        """
        import os
        import signal
        import subprocess
        import sys
        import time

        from repro.api import CampaignRequest, ServiceOptions

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH")) if p
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--workers", "1",
                "--jobs-dir", str(tmp_path), "--quiet",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "listening on" in line, line
            import re

            port = int(re.search(r":(\d+)/v1/", line).group(1))
            request = stamp(
                "repro/request.campaign", {"circuit": "c880", "max_faults": 96}
            )
            envelope = _post_port(port, "campaign", request)
            assert envelope["ok"]
            job_id = envelope["result"]["id"]
            # a concurrent sync request is in flight as the signal lands
            hammer = threading.Thread(
                target=lambda: _maybe_post_port(
                    port, "paths", stamp("repro/request.paths", {"circuit": "c17"})
                )
            )
            hammer.start()
            process.send_signal(signal.SIGTERM)
            hammer.join(timeout=30)
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)

        resumed = AtpgService(
            config=ServiceOptions(workers=1, jobs_dir=str(tmp_path))
        )
        record = _poll_until(resumed, job_id, ("done", "failed"))
        assert record["state"] == "done"
        sync = AtpgService().handle(CampaignRequest(circuit="c880", max_faults=96))
        assert record["result"]["statuses"] == sync.payload["statuses"]
        resumed.shutdown()

    def test_restart_resume_completes_the_campaign(self, tmp_path):
        """A job parked by shutdown is re-run by the next service."""
        from repro.api import CampaignRequest, ServiceOptions

        config = ServiceOptions(workers=1, jobs_dir=str(tmp_path))
        first = AtpgService(config=config)
        request = stamp(
            "repro/request.campaign", {"circuit": "c880", "max_faults": 64}
        )
        submitted = first.submit_campaign(request)
        assert submitted.ok
        job_id = submitted.payload["id"]
        # drain immediately: the job is parked resumable (queued /
        # interrupted) or, if the worker outraced us, already done
        first.shutdown(timeout=60)
        state = first.job_response(job_id).payload["state"]
        assert state in ("queued", "interrupted", "done")

        second = AtpgService(config=config)
        record = _poll_until(second, job_id, ("done", "failed"))
        assert record["state"] == "done"
        result = record["result"]
        assert result["complete"] is True
        sync = AtpgService().handle(
            CampaignRequest(circuit="c880", max_faults=64)
        )
        assert result["statuses"] == sync.payload["statuses"]
        second.shutdown()


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------


class TestObservability:
    def test_metrics_validate_and_count(self):
        service = AtpgService()
        service.handle(PathsRequest(circuit="c17"))
        service.handle(GenerateRequest(circuit="nope"))
        metrics = service.metrics()
        validate(metrics, kind="repro/metrics")
        assert metrics["requests_ok"] == 1
        assert metrics["requests_failed"] == 1
        assert metrics["sessions_opened"] == 1
        assert metrics["queue_depth"] == 0
        assert set(metrics["jobs"]) == {
            "queued", "running", "done", "failed", "cancelled", "interrupted"
        }

    def test_health_splits_ok_and_failed(self):
        service = AtpgService()
        service.handle(PathsRequest(circuit="c17"))
        service.handle(GenerateRequest(circuit="nope"))
        health = service.health()
        assert health["requests_ok"] == 1
        assert health["requests_failed"] == 1
        assert health["requests_served"] == 2
        assert health["sessions_opened"] == 1
        assert health["queue_depth"] == 0

    def test_metrics_and_healthz_over_http(self, server):
        assert _get(server, "healthz")["status"] == "ok"
        metrics = _get(server, "metrics")
        validate(metrics, kind="repro/metrics")
        assert metrics["uptime_seconds"] >= 0
