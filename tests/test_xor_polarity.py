"""Regression tests: XOR side-input polarity enumeration.

Off-path inputs of on-path XOR gates are free polarity choices.  The
original convention (all sides 0) silently turned "unsensitizable
under one polarity" into "redundant", which the PPSFP simulator — a
polarity-free, independent implementation — exposed.  These tests pin
the fix.
"""

import pytest

from repro.baselines import generate_tests_bdd
from repro.circuit import CircuitBuilder
from repro.circuit.suites import suite_circuit
from repro.core import FaultStatus, TpgOptions, generate_tests
from repro.core.aptpg import run_aptpg
from repro.core.sensitize import path_final_values, xor_side_signals
from repro.paths import PathDelayFault, TestClass, Transition, fault_list
from repro.sim import DelayFaultSimulator


@pytest.fixture
def polarity_circuit():
    """y = XOR(a, b), z = AND(y, b): the path a-y-z is sensitizable
    only with the XOR side b = 1 (the AND requires b = 1)."""
    b = CircuitBuilder("xor_polarity")
    b.inputs("a", "b")
    b.xor("y", "a", "b")
    b.and_("z", "y", "b")
    b.outputs("z")
    return b.build()


class TestSideSignals:
    def test_side_signal_discovery(self, polarity_circuit):
        c = polarity_circuit
        fault = PathDelayFault.from_names(c, ("a", "y", "z"), Transition.RISING)
        assert xor_side_signals(c, fault) == [c.index_of("b")]

    def test_no_sides_on_plain_paths(self):
        from repro.circuit.library import paper_example

        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        assert xor_side_signals(c, fault) == []

    def test_path_finals_flip_with_polarity(self, polarity_circuit):
        c = polarity_circuit
        fault = PathDelayFault.from_names(c, ("a", "y", "z"), Transition.RISING)
        b_index = c.index_of("b")
        assert path_final_values(c, fault, {b_index: 0}) == (1, 1, 1)
        # side 1 inverts downstream of the XOR: y falls, z falls
        assert path_final_values(c, fault, {b_index: 1}) == (1, 0, 0)


class TestVerdicts:
    @pytest.mark.parametrize(
        "transition", [Transition.RISING, Transition.FALLING]
    )
    def test_polarity_path_is_tested(self, polarity_circuit, transition):
        c = polarity_circuit
        fault = PathDelayFault.from_names(c, ("a", "y", "z"), transition)
        report = generate_tests(c, [fault], TestClass.NONROBUST)
        record = report.records[0]
        assert record.status in (FaultStatus.TESTED, FaultStatus.SIMULATED)
        sim = DelayFaultSimulator(c, TestClass.NONROBUST)
        assert sim.detects(record.pattern, fault)

    def test_robust_polarity_path(self, polarity_circuit):
        c = polarity_circuit
        fault = PathDelayFault.from_names(c, ("a", "y", "z"), Transition.RISING)
        outcome = run_aptpg(c, fault, TestClass.ROBUST, width=8)
        assert outcome.status is FaultStatus.TESTED
        sim = DelayFaultSimulator(c, TestClass.ROBUST)
        assert sim.detects(outcome.pattern, fault)

    def test_bdd_baseline_agrees(self, polarity_circuit):
        c = polarity_circuit
        fault = PathDelayFault.from_names(c, ("a", "y", "z"), Transition.RISING)
        for test_class in (TestClass.NONROBUST, TestClass.ROBUST):
            report = generate_tests_bdd(c, [fault], test_class)
            assert report.records[0].status is FaultStatus.TESTED, test_class

    def test_truly_redundant_xor_path_still_found(self):
        """With the side pinned by a constant-like structure both
        polarities conflict: redundancy must still be provable."""
        b = CircuitBuilder("xor_redundant")
        b.inputs("a", "b")
        b.not_("nb", "b")
        b.xor("y", "a", "b")
        b.and_("z", "y", "b", "nb")  # b AND NOT b: z needs both at 1
        b.outputs("z")
        c = b.build()
        fault = PathDelayFault.from_names(c, ("a", "y", "z"), Transition.RISING)
        outcome = run_aptpg(c, fault, TestClass.NONROBUST, width=8)
        assert outcome.status is FaultStatus.REDUNDANT


class TestWidthIndependence:
    def test_verdicts_independent_of_word_length(self):
        """The tested/redundant classification must not depend on L."""
        circuit = suite_circuit("s1423", 1)
        faults = fault_list(circuit, cap=96, strategy="all")
        reports = {
            width: generate_tests(
                circuit, faults, TestClass.NONROBUST, TpgOptions(width=width)
            )
            for width in (1, 4, 64)
        }
        baseline = reports[1]
        for width, report in reports.items():
            for a, b in zip(baseline.records, report.records):
                assert a.is_detected == b.is_detected, (width, a.fault)
