"""Unit tests for path sensitization (nonrobust and robust)."""

import pytest

from repro.circuit import CircuitBuilder
from repro.circuit.library import paper_example
from repro.core.sensitize import (
    sensitization_is_trivial,
    sensitize_nonrobust,
    sensitize_robust,
)
from repro.logic import seven_valued as sv
from repro.logic import three_valued as tv
from repro.paths import PathDelayFault, Transition


def as_dict(assignments):
    merged = {}
    for signal, planes in assignments:
        if signal in merged:
            merged[signal] = tuple(a | b for a, b in zip(merged[signal], planes))
        else:
            merged[signal] = planes
    return merged


class TestNonrobust:
    def test_on_path_final_values(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        values = as_dict(sensitize_nonrobust(c, fault, 1))
        assert values[c.index_of("b")] == tv.encode(1)
        assert values[c.index_of("p")] == tv.encode(1)
        assert values[c.index_of("x")] == tv.encode(1)

    def test_off_path_noncontrolling(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        values = as_dict(sensitize_nonrobust(c, fault, 1))
        # p = OR(a, b): off-path a must be 0; x = AND(p, s): s must be 1
        assert values[c.index_of("a")] == tv.encode(0)
        assert values[c.index_of("s")] == tv.encode(1)

    def test_falling_inverts_finals(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.FALLING)
        values = as_dict(sensitize_nonrobust(c, fault, 1))
        assert values[c.index_of("b")] == tv.encode(0)
        assert values[c.index_of("x")] == tv.encode(0)

    def test_inverting_gate_flips_parity(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("a", "p", "t", "y"), Transition.RISING)
        values = as_dict(sensitize_nonrobust(c, fault, 1))
        assert values[c.index_of("p")][1] == 1  # rising through OR: final 1
        assert values[c.index_of("t")][0] == 1  # NOT inverts: final 0
        assert values[c.index_of("y")][0] == 1

    def test_lane_masking(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        values = as_dict(sensitize_nonrobust(c, fault, 0b100))
        assert values[c.index_of("b")] == (0, 0b100)

    def test_xor_off_path_fixed_to_zero(self):
        b = CircuitBuilder("xor_path")
        b.inputs("a", "b")
        b.xor("y", "a", "b")
        b.outputs("y")
        c = b.build()
        fault = PathDelayFault.from_names(c, ("a", "y"), Transition.RISING)
        values = as_dict(sensitize_nonrobust(c, fault, 1))
        assert values[c.index_of("b")] == tv.encode(0)


class TestRobust:
    def test_launch_value(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        values = as_dict(sensitize_robust(c, fault, 1))
        assert values[c.index_of("b")] == sv.encode("R")

    def test_off_path_stable_when_on_path_ends_noncontrolling(self):
        c = paper_example()
        # rising b through p = OR(a, b): on-path final 1 = controlling
        # for OR -> off-path a needs only final 0 (U0)
        # x = AND(p, s): on-path p final 1 = non-controlling -> s must
        # be stable 1 (S1)
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        values = as_dict(sensitize_robust(c, fault, 1))
        assert values[c.index_of("a")] == sv.encode("U0")
        assert values[c.index_of("s")] == sv.encode("S1")

    def test_off_path_final_when_on_path_ends_controlling(self):
        c = paper_example()
        # falling b through p = OR: final 0 = non-controlling for OR ->
        # off-path a must be stable 0; x = AND(p, s): p final 0 =
        # controlling -> s needs final 1 only
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.FALLING)
        values = as_dict(sensitize_robust(c, fault, 1))
        assert values[c.index_of("a")] == sv.encode("S0")
        assert values[c.index_of("s")] == sv.encode("U1")

    def test_on_path_internal_signals_carry_final_value_only(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        values = as_dict(sensitize_robust(c, fault, 1))
        assert values[c.index_of("p")] == sv.encode("U1")
        assert values[c.index_of("x")] == sv.encode("U1")

    def test_xor_off_path_stable_zero(self):
        b = CircuitBuilder("xor_path")
        b.inputs("a", "b")
        b.xor("y", "a", "b")
        b.outputs("y")
        c = b.build()
        fault = PathDelayFault.from_names(c, ("a", "y"), Transition.RISING)
        values = as_dict(sensitize_robust(c, fault, 1))
        assert values[c.index_of("b")] == sv.encode("S0")


class TestTrivial:
    def test_wire_chain_is_trivial(self):
        b = CircuitBuilder("wires")
        b.inputs("a")
        b.not_("n", "a")
        b.buf("y", "n")
        b.outputs("y")
        c = b.build()
        fault = PathDelayFault.from_names(c, ("a", "n", "y"), Transition.RISING)
        assert sensitization_is_trivial(c, fault)

    def test_gate_path_is_not_trivial(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        assert not sensitization_is_trivial(c, fault)
