"""Tests for the BDD-based and structural ATPG baselines.

The key property: on circuits small enough for exact analysis, all
three generators (TIP bit-parallel, BDD-based, structural) must agree
on which faults are testable — they implement the same fault model.
"""

import pytest

from repro.baselines import (
    BddPathAtpg,
    generate_tests_bdd,
    generate_tests_structural,
)
from repro.circuit.generators import random_dag
from repro.circuit.library import c17, paper_example, redundant_and_chain
from repro.core import FaultStatus, TpgOptions, generate_tests
from repro.paths import PathDelayFault, TestClass, Transition, all_faults
from repro.sim import DelayFaultSimulator


class TestBddAtpgNonrobust:
    @pytest.mark.parametrize("factory", [c17, paper_example, redundant_and_chain])
    def test_agrees_with_main_engine(self, factory):
        circuit = factory()
        faults = all_faults(circuit)
        tip = generate_tests(
            circuit, faults, TestClass.NONROBUST, TpgOptions(drop_faults=False)
        )
        bdd = generate_tests_bdd(circuit, faults, TestClass.NONROBUST)
        for a, b in zip(tip.records, bdd.records):
            assert (a.status is FaultStatus.TESTED) == (
                b.status is FaultStatus.TESTED
            ), a.fault.describe(circuit)
            assert (a.status is FaultStatus.REDUNDANT) == (
                b.status is FaultStatus.REDUNDANT
            ), a.fault.describe(circuit)

    def test_patterns_detect(self):
        circuit = paper_example()
        faults = all_faults(circuit)
        report = generate_tests_bdd(circuit, faults, TestClass.NONROBUST)
        sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        for record in report.records:
            if record.status is FaultStatus.TESTED:
                assert sim.detects(record.pattern, record.fault)

    def test_redundant_example(self):
        circuit = paper_example()
        fault = PathDelayFault.from_names(
            circuit, ("b", "q", "s", "x"), Transition.RISING
        )
        atpg = BddPathAtpg(circuit)
        status, pattern = atpg.generate(fault, TestClass.NONROBUST)
        assert status is FaultStatus.REDUNDANT
        assert pattern is None


class TestBddAtpgRobust:
    def test_robust_class_is_superset_static(self):
        """The BDD baseline's static-stability robust class admits at
        least everything the hazard-aware engine admits (the paper's
        'slightly deviated test class' note about TSUNAMI-D)."""
        circuit = paper_example()
        faults = all_faults(circuit)
        tip = generate_tests(
            circuit, faults, TestClass.ROBUST, TpgOptions(drop_faults=False)
        )
        bdd = generate_tests_bdd(circuit, faults, TestClass.ROBUST)
        for a, b in zip(tip.records, bdd.records):
            if a.status is FaultStatus.TESTED:
                assert b.status is FaultStatus.TESTED, a.fault.describe(circuit)

    def test_robust_patterns_launch(self):
        circuit = c17()
        faults = all_faults(circuit)
        report = generate_tests_bdd(circuit, faults, TestClass.ROBUST)
        for record in report.records:
            if record.status is FaultStatus.TESTED:
                launch = circuit.inputs.index(record.fault.input_signal)
                assert record.pattern.v1[launch] != record.pattern.v2[launch]

    def test_blowup_aborts(self):
        circuit = random_dag(12, 60, seed=77, profile="xor_rich")
        faults = all_faults(circuit, cap=10)
        report = generate_tests_bdd(
            circuit, faults, TestClass.ROBUST, node_limit=50
        )
        assert report.count(FaultStatus.ABORTED) == len(faults)


class TestStructuralBaseline:
    @pytest.mark.parametrize("test_class", [TestClass.NONROBUST, TestClass.ROBUST])
    def test_agrees_on_paper_example(self, test_class):
        circuit = paper_example()
        faults = all_faults(circuit)
        tip = generate_tests(
            circuit, faults, test_class, TpgOptions(drop_faults=False)
        )
        structural = generate_tests_structural(
            circuit, faults, test_class, drop_faults=False
        )
        for a, b in zip(tip.records, structural.records):
            if b.status is FaultStatus.ABORTED:
                continue  # the weaker engine may give up; never lies
            assert a.is_detected == b.is_detected, a.fault.describe(circuit)

    def test_patterns_detect(self):
        circuit = c17()
        faults = all_faults(circuit)
        report = generate_tests_structural(circuit, faults, TestClass.NONROBUST)
        sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        for record in report.records:
            if record.status is FaultStatus.TESTED:
                assert sim.detects(record.pattern, record.fault)

    def test_never_claims_false_redundancy(self):
        """Redundancy claims of the weak engine must match the strong
        engine's ground truth (conflicts are sound either way)."""
        circuit = random_dag(8, 30, seed=21)
        faults = all_faults(circuit, cap=80)
        strong = generate_tests(
            circuit, faults, TestClass.NONROBUST, TpgOptions(drop_faults=False)
        )
        weak = generate_tests_structural(
            circuit, faults, TestClass.NONROBUST, drop_faults=False
        )
        for a, b in zip(strong.records, weak.records):
            if b.status is FaultStatus.REDUNDANT:
                assert a.status is FaultStatus.REDUNDANT, a.fault.describe(circuit)
