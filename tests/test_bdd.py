"""Unit tests for the ROBDD package."""

import itertools

import pytest

from repro.baselines.bdd import FALSE, TRUE, Bdd, BddLimitExceeded


class TestBasics:
    def test_terminals(self):
        bdd = Bdd(2)
        assert bdd.const(True) == TRUE
        assert bdd.const(False) == FALSE

    def test_var_bounds(self):
        bdd = Bdd(2)
        with pytest.raises(ValueError):
            bdd.var(2)

    def test_canonicity(self):
        """Equal functions share one node (hash consing)."""
        bdd = Bdd(2)
        a, b = bdd.var(0), bdd.var(1)
        f1 = bdd.and_(a, b)
        f2 = bdd.not_(bdd.or_(bdd.not_(a), bdd.not_(b)))  # De Morgan
        assert f1 == f2

    def test_reduction(self):
        bdd = Bdd(2)
        a = bdd.var(0)
        assert bdd.or_(a, bdd.not_(a)) == TRUE
        assert bdd.and_(a, bdd.not_(a)) == FALSE
        assert bdd.xor(a, a) == FALSE


class TestSemantics:
    """Every connective must match its truth table on all assignments."""

    def test_connectives_exhaustive(self):
        bdd = Bdd(3)
        variables = [bdd.var(k) for k in range(3)]
        cases = {
            "and": (lambda f, g: bdd.and_(f, g), lambda x, y: x and y),
            "or": (lambda f, g: bdd.or_(f, g), lambda x, y: x or y),
            "xor": (lambda f, g: bdd.xor(f, g), lambda x, y: x != y),
            "xnor": (lambda f, g: bdd.xnor(f, g), lambda x, y: x == y),
            "implies": (lambda f, g: bdd.implies(f, g), lambda x, y: (not x) or y),
        }
        f = bdd.xor(variables[0], variables[2])
        g = bdd.and_(variables[1], variables[2])
        for name, (op, ref) in cases.items():
            node = op(f, g)
            for bits in itertools.product((0, 1), repeat=3):
                env = dict(enumerate(bits))
                want = ref(
                    bits[0] != bits[2], bool(bits[1] and bits[2])
                )
                assert bdd.evaluate(node, env) == want, (name, bits)

    def test_ite_general(self):
        bdd = Bdd(3)
        a, b, c = (bdd.var(k) for k in range(3))
        node = bdd.ite(a, b, c)  # a ? b : c
        for bits in itertools.product((0, 1), repeat=3):
            env = dict(enumerate(bits))
            want = bool(bits[1] if bits[0] else bits[2])
            assert bdd.evaluate(node, env) == want

    def test_restrict(self):
        bdd = Bdd(2)
        a, b = bdd.var(0), bdd.var(1)
        f = bdd.and_(a, b)
        assert bdd.restrict(f, 0, 1) == b
        assert bdd.restrict(f, 0, 0) == FALSE
        assert bdd.restrict(f, 1, 1) == a


class TestQueries:
    def test_satisfy_one(self):
        bdd = Bdd(3)
        a, b, c = (bdd.var(k) for k in range(3))
        f = bdd.and_(bdd.and_(a, bdd.not_(b)), c)
        model = bdd.satisfy_one(f)
        assert model == {0: 1, 1: 0, 2: 1}
        assert bdd.satisfy_one(FALSE) is None
        assert bdd.satisfy_one(TRUE) == {}

    def test_count_sat(self):
        bdd = Bdd(3)
        a, b, c = (bdd.var(k) for k in range(3))
        assert bdd.count_sat(TRUE) == 8
        assert bdd.count_sat(FALSE) == 0
        assert bdd.count_sat(a) == 4
        assert bdd.count_sat(bdd.and_(a, b)) == 2
        assert bdd.count_sat(bdd.xor(a, c)) == 4
        assert bdd.count_sat(bdd.or_(a, bdd.or_(b, c))) == 7

    def test_count_matches_enumeration(self):
        bdd = Bdd(4)
        vs = [bdd.var(k) for k in range(4)]
        f = bdd.or_(bdd.and_(vs[0], vs[2]), bdd.xor(vs[1], vs[3]))
        expected = sum(
            1
            for bits in itertools.product((0, 1), repeat=4)
            if (bits[0] and bits[2]) or (bits[1] != bits[3])
        )
        assert bdd.count_sat(f) == expected

    def test_iter_models(self):
        bdd = Bdd(2)
        a, b = bdd.var(0), bdd.var(1)
        f = bdd.xor(a, b)
        models = list(bdd.iter_models(f))
        assert len(models) == 2
        for model in models:
            assert bdd.evaluate(f, model)

    def test_size_of(self):
        bdd = Bdd(2)
        a, b = bdd.var(0), bdd.var(1)
        f = bdd.and_(a, b)
        assert bdd.size_of(f) == 4  # two decision nodes + two terminals


class TestNodeLimit:
    def test_limit_raises(self):
        bdd = Bdd(16, node_limit=8)
        with pytest.raises(BddLimitExceeded):
            f = bdd.var(0)
            for k in range(1, 16):
                f = bdd.xor(f, bdd.var(k))

    def test_limit_allows_small(self):
        bdd = Bdd(4, node_limit=64)
        f = bdd.var(0)
        for k in range(1, 4):
            f = bdd.xor(f, bdd.var(k))
        assert bdd.count_sat(f) == 8
