"""Unit tests for the ISCAS .bench parser and writer."""

import pytest

from repro.circuit import (
    BenchFormatError,
    GateType,
    load_bench,
    parse_bench,
    save_bench,
    write_bench,
)
from repro.circuit.library import C17_BENCH, c17


class TestParse:
    def test_c17_structure(self):
        c = c17()
        assert len(c.inputs) == 5
        assert len(c.outputs) == 2
        assert c.num_gates == 6
        assert all(
            g.gate_type is GateType.NAND for g in c.gates if not g.is_input
        )

    def test_c17_function(self):
        c = c17()
        # 22 = NAND(10, 16); spot-check a couple of vectors by hand
        values = c.evaluate({"1": 0, "2": 0, "3": 0, "6": 0, "7": 0})
        assert values["10"] == 1 and values["11"] == 1
        assert values["16"] == 1 and values["19"] == 1
        assert values["22"] == 0 and values["23"] == 0
        values = c.evaluate({"1": 1, "2": 1, "3": 1, "6": 1, "7": 1})
        assert values["10"] == 0 and values["11"] == 0
        assert values["16"] == 1
        assert values["22"] == 1

    def test_comments_and_blank_lines(self):
        text = """
        # a comment
        INPUT(a)

        OUTPUT(y)
        y = NOT(a)  # trailing comment
        """
        c = parse_bench(text)
        assert c.gate("y").gate_type is GateType.NOT

    def test_gate_declared_before_fanin(self):
        text = """
        INPUT(a)
        OUTPUT(y)
        y = NOT(m)
        m = BUFF(a)
        """
        c = parse_bench(text)
        assert c.evaluate({"a": 1})["y"] == 0

    def test_dff_cut_into_pseudo_io(self):
        text = """
        INPUT(a)
        OUTPUT(y)
        q = DFF(d)
        d = AND(a, q)
        y = NOT(q)
        """
        c = parse_bench(text)
        input_names = {c.signal_name(i) for i in c.inputs}
        output_names = {c.signal_name(o) for o in c.outputs}
        assert input_names == {"a", "q"}  # DFF output becomes pseudo input
        assert "d" in output_names  # DFF input becomes pseudo output

    def test_single_input_and_becomes_buf(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a)\n")
        assert c.gate("y").gate_type is GateType.BUF

    def test_single_input_nor_becomes_not(self):
        c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOR(a)\n")
        assert c.gate("y").gate_type is GateType.NOT


class TestParseErrors:
    def test_unparseable_line(self):
        with pytest.raises(BenchFormatError, match="line 2"):
            parse_bench("INPUT(a)\nwhat is this\n")

    def test_unknown_gate(self):
        with pytest.raises(BenchFormatError, match="unknown gate"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = MAJ3(a, a, a)\n")

    def test_double_drive(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUFF(a)\n"
        with pytest.raises(BenchFormatError, match="driven twice"):
            parse_bench(text)

    def test_undriven_signal(self):
        with pytest.raises(BenchFormatError, match="never driven"):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n")

    def test_cycle(self):
        text = "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = OR(x, a)\n"
        with pytest.raises(BenchFormatError, match="cycle"):
            parse_bench(text)

    def test_dff_arity(self):
        with pytest.raises(BenchFormatError, match="DFF"):
            parse_bench("INPUT(a)\nOUTPUT(q)\nq = DFF(a, a)\n")


class TestRoundTrip:
    def test_c17_roundtrip(self):
        original = parse_bench(C17_BENCH, name="c17")
        again = parse_bench(write_bench(original), name="c17")
        assert [g.name for g in again.gates] == [g.name for g in original.gates]
        assert [g.gate_type for g in again.gates] == [
            g.gate_type for g in original.gates
        ]
        assert again.outputs == original.outputs
        # behaviour identical on every vector (5 inputs -> 32 vectors)
        for code in range(32):
            vec = [(code >> k) & 1 for k in range(5)]
            assert original.output_values(vec) == again.output_values(vec)

    def test_file_io(self, tmp_path):
        c = c17()
        path = tmp_path / "c17.bench"
        save_bench(c, path)
        back = load_bench(path)
        assert back.name == "c17"
        assert back.num_gates == c.num_gates
