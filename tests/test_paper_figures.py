"""Reproduction fixtures for the paper's Figures 1 and 2.

These tests pin the published walkthroughs: FPTPG on four paths of the
example circuit (bit levels 0..3) and APTPG on path a-p-x with four
alternatives.  They are the ground truth the examples print.
"""

import pytest

from repro.circuit.library import paper_example
from repro.core import FaultStatus
from repro.core.aptpg import run_aptpg
from repro.core.fptpg import run_fptpg
from repro.core.sensitize import sensitize_nonrobust
from repro.core.state import THREE_VALUED, TpgState
from repro.paths import PathDelayFault, TestClass, Transition
from repro.sim import DelayFaultSimulator


@pytest.fixture
def circuit():
    return paper_example()


@pytest.fixture
def figure1_faults(circuit):
    """The four paths of Figure 1, bit levels 0 through 3."""
    return [
        PathDelayFault.from_names(circuit, ("b", "p", "x"), Transition.RISING),
        PathDelayFault.from_names(circuit, ("b", "q", "s", "x"), Transition.RISING),
        PathDelayFault.from_names(circuit, ("c", "r", "s", "x"), Transition.RISING),
        PathDelayFault.from_names(circuit, ("c", "r", "s", "y"), Transition.RISING),
    ]


class TestFigure1:
    """FPTPG for 4 paths in parallel on bit levels 0..3 (L = 4)."""

    def test_lane_outcomes_match_paper(self, circuit, figure1_faults):
        out = run_fptpg(circuit, figure1_faults, TestClass.NONROBUST, width=4)
        # "On bit level 2 and 3 all signal values are justified.
        #  Hence, the two corresponding paths are tested."
        assert out.statuses[2] is FaultStatus.TESTED
        assert out.statuses[3] is FaultStatus.TESTED
        # "On bit level 1 a conflict occurred ... the path is redundant."
        assert out.statuses[1] is FaultStatus.REDUNDANT
        # "On bit level 0 no conflict occurred, but the value 1 at
        #  signal s is not yet justified ... a test pattern for path
        #  b-p-x is found."
        assert out.statuses[0] is FaultStatus.TESTED

    def test_level0_backtrace_assigns_d(self, circuit, figure1_faults):
        """'The result of the backtrace procedure is to assign a 1 to
        input d.'"""
        out = run_fptpg(circuit, figure1_faults, TestClass.NONROBUST, width=4)
        pattern = out.patterns[0]
        d_position = circuit.inputs.index(circuit.index_of("d"))
        assert pattern.v2[d_position] == 1
        assert out.decisions == 1  # a single backtrace suffced

    def test_level1_conflict_before_decisions(self, circuit, figure1_faults):
        """The redundancy proof must not rest on optional assignments."""
        out = run_fptpg(circuit, figure1_faults, TestClass.NONROBUST, width=4)
        assert out.state.conflict_mask & 0b0010
        # the conflict emerged during the initial implications: the
        # conflicting lane is exactly the redundant one
        assert out.statuses[1] is FaultStatus.REDUNDANT

    def test_subpath_redundancy_generalizes(self, circuit):
        """'all paths containing this subpath are proved to be
        redundant, too' — b-q-s with a rising b also dies via y."""
        fault = PathDelayFault.from_names(
            circuit, ("b", "q", "s", "y"), Transition.RISING
        )
        out = run_aptpg(circuit, fault, TestClass.NONROBUST, width=4)
        assert out.status is FaultStatus.REDUNDANT

    def test_all_patterns_detect_their_faults(self, circuit, figure1_faults):
        out = run_fptpg(circuit, figure1_faults, TestClass.NONROBUST, width=4)
        sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        for fault, status, pattern in zip(
            figure1_faults, out.statuses, out.patterns
        ):
            if status is FaultStatus.TESTED:
                assert sim.detects(pattern, fault), fault.describe(circuit)

    def test_unused_lanes_do_not_disturb(self, circuit, figure1_faults):
        """Running the same 4 faults in a 64-lane word changes nothing."""
        out4 = run_fptpg(circuit, figure1_faults, TestClass.NONROBUST, width=4)
        out64 = run_fptpg(circuit, figure1_faults, TestClass.NONROBUST, width=64)
        assert out4.statuses == out64.statuses


class TestFigure2:
    """APTPG for path a-p-x with a falling transition at a (L = 4)."""

    @pytest.fixture
    def fault(self, circuit):
        return PathDelayFault.from_names(circuit, ("a", "p", "x"), Transition.FALLING)

    def test_path_is_tested(self, circuit, fault):
        out = run_aptpg(circuit, fault, TestClass.NONROBUST, width=4)
        assert out.status is FaultStatus.TESTED
        assert out.backtracks == 0
        sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        assert sim.detects(out.pattern, fault)

    def test_four_alternatives_enumeration(self, circuit, fault):
        """The literal figure: split both c and d over four lanes;
        exactly the (c=0, d=0) alternative conflicts and the other
        three levels are conflict-free — 'as there is at least one bit
        level without conflict the path is tested'."""
        state = TpgState(circuit, THREE_VALUED, 4)
        for signal, planes in sensitize_nonrobust(circuit, fault, 0b1111):
            state.assign(signal, planes)
        state.imply()
        assert state.conflict_mask == 0
        state.assign(circuit.index_of("c"), (0b0011, 0b1100))
        state.assign(circuit.index_of("d"), (0b0101, 0b1010))
        state.imply()
        assert state.conflict_mask == 0b0001  # only c=0, d=0 fails
        assert state.all_justified_mask() == 0b1110

    def test_single_bit_also_finds_it(self, circuit, fault):
        out = run_aptpg(circuit, fault, TestClass.NONROBUST, width=1)
        assert out.status is FaultStatus.TESTED


class TestFigureRobustVariants:
    """The same walkthroughs hold for robust generation."""

    def test_figure1_robust(self, circuit, figure1_faults):
        out = run_fptpg(circuit, figure1_faults, TestClass.ROBUST, width=4)
        assert out.statuses[1] is FaultStatus.REDUNDANT
        sim = DelayFaultSimulator(circuit, TestClass.ROBUST)
        for fault, status, pattern in zip(
            figure1_faults, out.statuses, out.patterns
        ):
            if status is FaultStatus.TESTED:
                assert sim.detects(pattern, fault), fault.describe(circuit)

    def test_figure2_robust(self, circuit):
        fault = PathDelayFault.from_names(circuit, ("a", "p", "x"), Transition.FALLING)
        out = run_aptpg(circuit, fault, TestClass.ROBUST, width=4)
        assert out.status is FaultStatus.TESTED
        sim = DelayFaultSimulator(circuit, TestClass.ROBUST)
        assert sim.detects(out.pattern, fault)
