"""Unit tests for test patterns and lane extraction."""

import pytest

from repro.circuit.library import paper_example
from repro.core import TestPattern, TestSet
from repro.core.patterns import extract_pattern
from repro.core.sensitize import sensitize_nonrobust, sensitize_robust
from repro.core.state import SEVEN_VALUED, THREE_VALUED, TpgState
from repro.paths import PathDelayFault, Transition


class TestTestPattern:
    def test_as_dicts(self):
        c = paper_example()
        pattern = TestPattern((0, 1, 0, 1), (1, 1, 0, 0))
        v1, v2 = pattern.as_dicts(c)
        assert v1 == {"a": 0, "b": 1, "c": 0, "d": 1}
        assert v2 == {"a": 1, "b": 1, "c": 0, "d": 0}

    def test_transitions(self):
        pattern = TestPattern((0, 1, 0, 1), (1, 1, 0, 0))
        assert pattern.transitions() == (0, 3)

    def test_describe(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        pattern = TestPattern((0, 0, 0, 0), (0, 1, 0, 0), fault)
        assert pattern.describe(c) == "V1=0000 V2=0100 (R: b-p-x)"


class TestExtraction:
    def test_nonrobust_extraction_flips_path_input(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        state = TpgState(c, THREE_VALUED, 4)
        for signal, planes in sensitize_nonrobust(c, fault, 0b1):
            state.assign(signal, planes)
        state.assign(c.index_of("d"), (0, 0b1))
        state.imply()
        pattern = extract_pattern(state, 0, fault)
        b_pos = c.inputs.index(c.index_of("b"))
        assert pattern.v2[b_pos] == 1  # rising: final 1
        assert pattern.v1[b_pos] == 0  # launched
        # all other inputs are steady between the vectors
        for k, (x, y) in enumerate(zip(pattern.v1, pattern.v2)):
            if k != b_pos:
                assert x == y

    def test_robust_extraction_reads_stability(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        state = TpgState(c, SEVEN_VALUED, 1)
        for signal, planes in sensitize_robust(c, fault, 0b1):
            state.assign(signal, planes)
        state.assign(c.index_of("d"), (0, 1, 1, 0))  # S1
        state.imply()
        pattern = extract_pattern(state, 0, fault)
        b_pos = c.inputs.index(c.index_of("b"))
        d_pos = c.inputs.index(c.index_of("d"))
        assert (pattern.v1[b_pos], pattern.v2[b_pos]) == (0, 1)
        assert (pattern.v1[d_pos], pattern.v2[d_pos]) == (1, 1)

    def test_unassigned_inputs_fill_stable_zero(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("c", "r", "s", "y"), Transition.RISING)
        state = TpgState(c, THREE_VALUED, 1)
        state.assign(c.index_of("c"), (0, 1))
        pattern = extract_pattern(state, 0, fault)
        a_pos = c.inputs.index(c.index_of("a"))
        assert pattern.v1[a_pos] == 0 and pattern.v2[a_pos] == 0


class TestTestSet:
    def test_dedup(self):
        ts = TestSet()
        ts.add(TestPattern((0,), (1,)))
        ts.add(TestPattern((0,), (1,)))
        ts.add(TestPattern((1,), (0,)))
        assert len(ts) == 3
        assert len(ts.unique_vectors()) == 2
        assert ts.compaction_ratio() == pytest.approx(2 / 3)

    def test_empty(self):
        ts = TestSet()
        assert ts.compaction_ratio() == 1.0
        assert list(ts) == []
