"""Integration tests for the combined FPTPG + APTPG engine.

The central invariants:

* every TESTED pattern really detects its fault (checked by the
  independent PPSFP simulator),
* every REDUNDANT verdict is true (checked by exhaustive two-vector
  enumeration on small circuits),
* robust-testable faults are a subset of nonrobust-testable faults,
* the single-bit engine classifies faults identically (same algorithm,
  fewer lanes).
"""

import itertools

import pytest

from repro.circuit.generators import random_dag, ripple_carry_adder
from repro.circuit.library import c17, paper_example, redundant_and_chain
from repro.core import (
    FaultStatus,
    TestPattern,
    TpgOptions,
    generate_tests,
    generate_tests_single_bit,
)
from repro.paths import TestClass, all_faults
from repro.sim import DelayFaultSimulator

CIRCUITS = [c17, paper_example, redundant_and_chain]


def exhaustive_detectable(circuit, fault, test_class):
    """Ground truth by enumerating every (V1, V2) pair (small inputs)."""
    n = len(circuit.inputs)
    sim = DelayFaultSimulator(circuit, test_class)
    vectors = list(itertools.product((0, 1), repeat=n))
    patterns = [
        TestPattern(v1, v2, fault) for v1 in vectors for v2 in vectors
    ]
    hits = sim.detected_faults(patterns, [fault])
    return bool(hits[fault])


class TestGeneratedPatternsDetect:
    @pytest.mark.parametrize("factory", CIRCUITS)
    @pytest.mark.parametrize("test_class", [TestClass.NONROBUST, TestClass.ROBUST])
    def test_every_pattern_detects_its_fault(self, factory, test_class):
        circuit = factory()
        faults = all_faults(circuit)
        report = generate_tests(circuit, faults, test_class)
        sim = DelayFaultSimulator(circuit, test_class)
        for record in report.records:
            if record.status is FaultStatus.TESTED:
                assert sim.detects(record.pattern, record.fault), record.fault.describe(
                    circuit
                )

    def test_generated_dag_patterns_detect(self):
        circuit = random_dag(8, 30, seed=5)
        faults = all_faults(circuit, cap=120)
        for test_class in (TestClass.NONROBUST, TestClass.ROBUST):
            report = generate_tests(circuit, faults, test_class)
            sim = DelayFaultSimulator(circuit, test_class)
            for record in report.records:
                if record.status is FaultStatus.TESTED:
                    assert sim.detects(record.pattern, record.fault)


class TestRedundancyVerdicts:
    @pytest.mark.parametrize("factory", [paper_example, redundant_and_chain])
    @pytest.mark.parametrize("test_class", [TestClass.NONROBUST, TestClass.ROBUST])
    def test_redundant_faults_have_no_test(self, factory, test_class):
        circuit = factory()
        faults = all_faults(circuit)
        report = generate_tests(circuit, faults, test_class)
        for record in report.records:
            if record.status is FaultStatus.REDUNDANT:
                assert not exhaustive_detectable(circuit, record.fault, test_class), (
                    record.fault.describe(circuit)
                )

    def test_no_aborts_and_verdicts_are_complete(self):
        """On the small circuits every fault must be settled, and the
        testable set must match the exhaustive ground truth."""
        circuit = paper_example()
        faults = all_faults(circuit)
        report = generate_tests(circuit, faults, TestClass.NONROBUST)
        assert report.n_aborted == 0
        for record in report.records:
            truth = exhaustive_detectable(circuit, record.fault, TestClass.NONROBUST)
            assert record.is_detected == truth, record.fault.describe(circuit)

    def test_constant_zero_cone_verdicts(self):
        """x = AND(a, NOT(a)) is *statically* constant 0, yet half of
        its path delay faults are testable via the transient pulse
        (the late inverter leaves x at 1 at sampling time).  The
        verdicts depend on the transition direction; the timing oracle
        confirms the tested ones really work."""
        from repro.paths import Transition
        from repro.sim import timing_detects

        circuit = redundant_and_chain()
        faults = all_faults(circuit)
        report = generate_tests(circuit, faults, TestClass.NONROBUST)
        n_idx = circuit.index_of("n")
        x_idx = circuit.index_of("x")
        expected = {
            # (goes through n, transition) -> detected?
            (True, Transition.RISING): True,  # pulse forms: testable
            (True, Transition.FALLING): False,  # needs a=1 and a=0
            (False, Transition.RISING): False,  # off-path n=1 needs a=0
            (False, Transition.FALLING): True,  # consistent: testable
        }
        for record in report.records:
            if x_idx not in record.fault.signals:
                continue
            through_n = n_idx in record.fault.signals
            want = expected[(through_n, record.fault.transition)]
            assert record.is_detected == want, record.fault.describe(circuit)
            if not want:
                assert record.status is FaultStatus.REDUNDANT
            if record.pattern is not None:
                assert timing_detects(circuit, record.pattern, record.fault)


class TestClassContainment:
    @pytest.mark.parametrize("factory", CIRCUITS)
    def test_robust_testable_subset_of_nonrobust(self, factory):
        circuit = factory()
        faults = all_faults(circuit)
        nonrobust = generate_tests(circuit, faults, TestClass.NONROBUST)
        robust = generate_tests(circuit, faults, TestClass.ROBUST)
        for nr, r in zip(nonrobust.records, robust.records):
            if r.is_detected:
                assert nr.is_detected or nr.status is FaultStatus.ABORTED


class TestSingleBitEquivalence:
    @pytest.mark.parametrize("test_class", [TestClass.NONROBUST, TestClass.ROBUST])
    def test_same_verdicts(self, test_class):
        circuit = paper_example()
        faults = all_faults(circuit)
        parallel = generate_tests(
            circuit, faults, test_class, TpgOptions(width=64, drop_faults=False)
        )
        single = generate_tests_single_bit(
            circuit, faults, test_class, drop_faults=False
        )
        for p, s in zip(parallel.records, single.records):
            detected_p = p.status is FaultStatus.TESTED
            detected_s = s.status is FaultStatus.TESTED
            assert detected_p == detected_s, p.fault.describe(circuit)
            assert (p.status is FaultStatus.REDUNDANT) == (
                s.status is FaultStatus.REDUNDANT
            )

    def test_single_bit_patterns_detect(self):
        circuit = c17()
        faults = all_faults(circuit)
        report = generate_tests_single_bit(circuit, faults, TestClass.ROBUST)
        sim = DelayFaultSimulator(circuit, TestClass.ROBUST)
        for record in report.records:
            if record.status is FaultStatus.TESTED:
                assert sim.detects(record.pattern, record.fault)


class TestFaultDropping:
    def test_dropping_preserves_detected_set(self):
        circuit = ripple_carry_adder(3)
        faults = all_faults(circuit, cap=80)
        dropped = generate_tests(
            circuit, faults, TestClass.NONROBUST, TpgOptions(drop_faults=True)
        )
        undropped = generate_tests(
            circuit, faults, TestClass.NONROBUST, TpgOptions(drop_faults=False)
        )
        for d, u in zip(dropped.records, undropped.records):
            assert d.is_detected == u.is_detected

    @staticmethod
    def _fanout_tree():
        """Two outputs behind one buffer: patterns for one path detect
        the sibling path for free (guaranteed collateral coverage)."""
        from repro.circuit import CircuitBuilder

        b = CircuitBuilder("fanout")
        b.inputs("a")
        b.buf("x", "a")
        b.buf("o1", "x")
        b.buf("o2", "x")
        b.outputs("o1", "o2")
        return b.build()

    def test_dropping_produces_simulated_status(self):
        # single-lane batches force one fault per round, so the second
        # round sees faults already covered by the first pattern
        circuit = self._fanout_tree()
        faults = all_faults(circuit)
        report = generate_tests(
            circuit, faults, TestClass.NONROBUST, TpgOptions(width=1)
        )
        assert report.count(FaultStatus.SIMULATED) > 0

    def test_dropped_faults_detected_by_existing_patterns(self):
        circuit = self._fanout_tree()
        faults = all_faults(circuit)
        report = generate_tests(
            circuit, faults, TestClass.NONROBUST, TpgOptions(width=1)
        )
        sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        patterns = report.patterns
        for record in report.records:
            if record.status is FaultStatus.SIMULATED:
                hits = sim.detected_faults(patterns, [record.fault])
                assert hits[record.fault]


class TestOptions:
    def test_empty_fault_list(self):
        report = generate_tests(c17(), [], TestClass.NONROBUST)
        assert report.n_faults == 0
        assert report.efficiency == 100.0

    def test_aptpg_disabled_leaves_deferred(self):
        circuit = random_dag(8, 30, seed=5)
        faults = all_faults(circuit, cap=60)
        options = TpgOptions(use_aptpg=False, drop_faults=False)
        report = generate_tests(circuit, faults, TestClass.ROBUST, options)
        assert report.count(FaultStatus.ABORTED) == 0
        # deferred faults may exist and count against efficiency
        assert report.n_aborted == report.count(FaultStatus.DEFERRED)

    def test_fptpg_disabled_still_complete(self):
        circuit = paper_example()
        faults = all_faults(circuit)
        options = TpgOptions(use_fptpg=False, drop_faults=False)
        report = generate_tests(circuit, faults, TestClass.NONROBUST, options)
        combined = generate_tests(
            circuit, faults, TestClass.NONROBUST, TpgOptions(drop_faults=False)
        )
        for a, b in zip(report.records, combined.records):
            assert (a.status is FaultStatus.TESTED) == (b.status is FaultStatus.TESTED)

    def test_report_summary_shape(self):
        circuit = c17()
        faults = all_faults(circuit)
        report = generate_tests(circuit, faults, TestClass.NONROBUST)
        summary = report.summary()
        assert summary["faults"] == len(faults)
        assert summary["tested"] + summary["redundant"] + summary["aborted"] == len(
            faults
        )
        assert 0.0 <= summary["efficiency_%"] <= 100.0
