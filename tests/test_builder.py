"""Unit tests for the fluent CircuitBuilder."""

import pytest

from repro.circuit import CircuitBuilder, CircuitError, GateType


class TestBuilder:
    def test_out_of_order_declaration(self):
        b = CircuitBuilder("ooo")
        b.outputs("y")
        b.gate("y", "AND", ["m", "n"])  # m, n declared later
        b.gate("m", "NOT", ["a"])
        b.gate("n", "OR", ["a", "b"])
        b.inputs("a", "b")
        c = b.build()
        assert c.gate("y").gate_type is GateType.AND
        assert c.evaluate({"a": 0, "b": 1})["y"] == 1

    def test_cycle_detected(self):
        b = CircuitBuilder()
        b.inputs("a")
        b.gate("x", "AND", ["a", "y"])
        b.gate("y", "OR", ["x", "a"])
        b.outputs("y")
        with pytest.raises(CircuitError, match="cycle"):
            b.build()

    def test_missing_driver_detected(self):
        b = CircuitBuilder()
        b.inputs("a")
        b.gate("x", "AND", ["a", "ghost"])
        b.outputs("x")
        with pytest.raises(CircuitError, match="never driven"):
            b.build()

    def test_duplicate_rejected(self):
        b = CircuitBuilder()
        b.inputs("a")
        with pytest.raises(CircuitError, match="duplicate"):
            b.inputs("a")
        b.gate("x", "NOT", ["a"])
        with pytest.raises(CircuitError, match="duplicate"):
            b.gate("x", "BUF", ["a"])

    def test_convenience_helpers(self):
        b = CircuitBuilder("conv")
        b.inputs("a", "b")
        b.and_("g1", "a", "b")
        b.or_("g2", "a", "b")
        b.nand("g3", "a", "b")
        b.nor("g4", "a", "b")
        b.xor("g5", "a", "b")
        b.xnor("g6", "a", "b")
        b.not_("g7", "a")
        b.buf("g8", "b")
        b.outputs(*[f"g{i}" for i in range(1, 9)])
        c = b.build()
        values = c.evaluate({"a": 1, "b": 0})
        assert values["g1"] == 0 and values["g2"] == 1
        assert values["g3"] == 1 and values["g4"] == 0
        assert values["g5"] == 1 and values["g6"] == 0
        assert values["g7"] == 0 and values["g8"] == 0

    def test_deep_chain_no_recursion_error(self):
        b = CircuitBuilder("deep")
        b.inputs("a")
        prev = "a"
        for k in range(5000):
            b.not_(f"n{k}", prev)
            prev = f"n{k}"
        b.outputs(prev)
        c = b.build()
        assert c.depth == 5000
        assert c.evaluate({"a": 0})[prev] == 0  # even number of inverters
