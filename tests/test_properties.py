"""Property-based tests (hypothesis) for the core invariants.

These exercise the load-bearing algebraic properties under randomized
inputs:

* the 3-valued and 7-valued forward rules are monotone in the
  information order and never invent conflicts from consistent data,
* bit-parallel simulation agrees with the scalar reference on random
  circuits and vectors,
* path counting agrees with enumeration on random DAGs,
* every test the engine generates for a random circuit is confirmed by
  the independent PPSFP simulator, and robust tests additionally
  survive the randomized-delay timing oracle.
"""

import itertools

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import GateType
from repro.circuit.generators import random_dag
from repro.core import FaultStatus, TpgOptions, generate_tests
from repro.logic import seven_valued as sv
from repro.logic import three_valued as tv
from repro.paths import TestClass, all_faults, count_paths, iter_paths
from repro.sim import DelayFaultSimulator, robust_timing_holds
from repro.sim.logic_sim import pack_vectors, simulate_words

MULTI_GATES = [
    GateType.AND,
    GateType.NAND,
    GateType.OR,
    GateType.NOR,
    GateType.XOR,
    GateType.XNOR,
]

three_values = st.sampled_from(["0", "1", "X"])
seven_values = st.sampled_from(list(sv.VALUES))
gate_types = st.sampled_from(MULTI_GATES)


def tv_planes(symbol):
    return {"0": (1, 0), "1": (0, 1), "X": (0, 0)}[symbol]


def tv_leq(weak, strong):
    """Information order: every bit of *weak* is present in *strong*."""
    return all((w & ~s) == 0 for w, s in zip(weak, strong))


class TestThreeValuedProperties:
    @given(gate_types, st.lists(three_values, min_size=2, max_size=4))
    def test_forward_never_conflicts_on_consistent_inputs(self, gate, symbols):
        planes = [tv_planes(s) for s in symbols]
        out = tv.forward(gate, planes, 1)
        assert tv.conflict(out) == 0

    @given(gate_types, st.lists(three_values, min_size=2, max_size=3))
    def test_forward_monotone(self, gate, symbols):
        """Refining an X input can only add output information."""
        planes = [tv_planes(s) for s in symbols]
        weak_out = tv.forward(gate, planes, 1)
        for i, s in enumerate(symbols):
            if s != "X":
                continue
            for refined in ("0", "1"):
                stronger = list(planes)
                stronger[i] = tv_planes(refined)
                strong_out = tv.forward(gate, stronger, 1)
                assert tv_leq(weak_out, strong_out), (gate, symbols, i, refined)

    @given(gate_types, st.lists(three_values, min_size=2, max_size=3),
           st.sampled_from([0, 1]))
    def test_backward_is_sound(self, gate, symbols, out_value):
        """Backward additions hold in every consistent completion."""
        from repro.circuit.gates import evaluate

        planes = [tv_planes(s) for s in symbols]
        additions = tv.backward(gate, tv_planes(str(out_value)), planes, 1)
        choices = [(0, 1) if s == "X" else (int(s),) for s in symbols]
        consistent = [
            bits
            for bits in itertools.product(*choices)
            if evaluate(gate, list(bits)) == out_value
        ]
        if not consistent:
            return  # contradictory requirement: nothing to check
        for i, (add_z, add_o) in enumerate(additions):
            if add_o & 1:
                assert all(bits[i] == 1 for bits in consistent)
            if add_z & 1:
                assert all(bits[i] == 0 for bits in consistent)


class TestSevenValuedProperties:
    @given(gate_types, st.lists(seven_values, min_size=2, max_size=4))
    def test_forward_never_conflicts_on_consistent_inputs(self, gate, names):
        planes = [sv.encode(n) for n in names]
        out = sv.forward(gate, planes, 1)
        assert sv.conflict(out) == 0

    @given(gate_types, st.lists(seven_values, min_size=2, max_size=3))
    def test_value_planes_agree_with_three_valued(self, gate, names):
        planes7 = [sv.encode(n) for n in names]
        planes3 = [(p[0], p[1]) for p in planes7]
        out7 = sv.forward(gate, planes7, 1)
        out3 = tv.forward(gate, planes3, 1)
        assert (out7[0], out7[1]) == out3

    #: refinement order of the seven values (weak -> strong choices)
    REFINEMENTS = {
        "X": ["U0", "U1", "S0", "S1", "R", "F"],
        "U0": ["S0", "F"],
        "U1": ["S1", "R"],
    }

    @given(gate_types, st.lists(seven_values, min_size=2, max_size=3))
    def test_forward_monotone(self, gate, names):
        planes = [sv.encode(n) for n in names]
        weak_out = sv.forward(gate, planes, 1)
        for i, name in enumerate(names):
            for refined in self.REFINEMENTS.get(name, []):
                stronger = list(planes)
                stronger[i] = sv.encode(refined)
                strong_out = sv.forward(gate, stronger, 1)
                assert tv_leq(weak_out, strong_out), (gate, names, i, refined)


class TestSimulationProperties:
    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=5, max_value=40),
    )
    def test_word_simulation_matches_reference(self, seed, n_inputs, n_gates):
        import random as stdlib_random

        circuit = random_dag(n_inputs, n_gates, seed=seed)
        rng = stdlib_random.Random(seed + 1)
        vectors = [
            [rng.randint(0, 1) for _ in circuit.inputs] for _ in range(16)
        ]
        words = pack_vectors(vectors)
        values = simulate_words(circuit, words, len(vectors))
        for lane in (0, len(vectors) - 1):
            reference = circuit.evaluate(vectors[lane])
            for gate in circuit.gates:
                assert (values[gate.index] >> lane) & 1 == reference[gate.name]

    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=3, max_value=7),
        st.integers(min_value=4, max_value=30),
    )
    def test_count_matches_enumeration(self, seed, n_inputs, n_gates):
        circuit = random_dag(n_inputs, n_gates, seed=seed)
        enumerated = sum(1 for _ in iter_paths(circuit, max_paths=20_000))
        if enumerated < 20_000:
            assert enumerated == count_paths(circuit)


class TestGenerationProperties:
    @settings(deadline=None, max_examples=12,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000))
    def test_generated_tests_verified_by_simulator(self, seed):
        circuit = random_dag(6, 18, seed=seed)
        faults = all_faults(circuit, cap=40)
        for test_class in (TestClass.NONROBUST, TestClass.ROBUST):
            report = generate_tests(
                circuit, faults, test_class, TpgOptions(drop_faults=False)
            )
            simulator = DelayFaultSimulator(circuit, test_class)
            for record in report.records:
                if record.status is FaultStatus.TESTED:
                    assert simulator.detects(record.pattern, record.fault), (
                        seed,
                        test_class,
                        record.fault.describe(circuit),
                    )

    @settings(deadline=None, max_examples=8,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.integers(min_value=0, max_value=10_000))
    def test_robust_tests_survive_random_delays(self, seed):
        """Scoped to prefix-independent faults: there the lumped path
        fault model and the physical first-edge injection coincide, so
        the classic robust conditions must guarantee detection under
        every sampled delay map (see prefix_independent's docstring
        for the reconvergence gap that excludes the other faults)."""
        from repro.sim import prefix_independent

        circuit = random_dag(5, 14, seed=seed)
        faults = all_faults(circuit, cap=20)
        report = generate_tests(
            circuit, faults, TestClass.ROBUST, TpgOptions(drop_faults=False)
        )
        for record in report.records:
            if record.status is not FaultStatus.TESTED or record.fault.length < 1:
                continue
            if not prefix_independent(circuit, record.fault):
                continue
            assert robust_timing_holds(
                circuit, record.pattern, record.fault, samples=6, seed=seed
            ), (seed, record.fault.describe(circuit))
