"""End-to-end integration tests: the full flow on suite circuits.

Each scenario chains the subsystems the way a user would: build a
suite circuit, enumerate faults, generate tests, verify each pattern
with the PPSFP simulator, grade its strength with the ten-valued
logic, compact the test set, estimate coverage non-enumeratively, and
cross-check the tool baselines — asserting the global invariants at
every step.
"""

import pytest

from repro.baselines import NestEstimator, generate_tests_bdd
from repro.circuit.suites import suite_circuit
from repro.circuit.validate import validate_circuit
from repro.core import (
    FaultStatus,
    TpgOptions,
    generate_tests,
    generate_tests_single_bit,
)
from repro.core.compaction import greedy_compaction
from repro.paths import TestClass, fault_list
from repro.sim import DelayFaultSimulator, detection_strength


@pytest.fixture(scope="module", params=["s713", "s991", "c432"])
def workload(request):
    circuit = suite_circuit(request.param, scale=1)
    assert validate_circuit(circuit) == []
    faults = fault_list(circuit, cap=120, strategy="all")
    return circuit, faults


class TestFullFlow:
    def test_generate_verify_grade_compact(self, workload):
        circuit, faults = workload
        report = generate_tests(circuit, faults, TestClass.ROBUST)

        # 1. every fault settled
        assert report.n_faults == len(faults)
        statuses = {r.status for r in report.records}
        assert FaultStatus.DEFERRED not in statuses

        # 2. every pattern verified by the independent simulator
        simulator = DelayFaultSimulator(circuit, TestClass.ROBUST)
        patterns = []
        for record in report.records:
            if record.pattern is not None:
                assert simulator.detects(record.pattern, record.fault)
                patterns.append(record.pattern)

        # 3. every robust pattern grades at least 'robust'
        for record in report.records:
            if record.status is FaultStatus.TESTED:
                strength = detection_strength(circuit, record.pattern, record.fault)
                assert strength in ("robust", "hazard_free_robust"), (
                    record.fault.describe(circuit),
                    strength,
                )

        # 4. compaction preserves coverage
        if patterns:
            compacted = greedy_compaction(
                circuit, patterns, faults, TestClass.ROBUST
            )
            assert len(compacted) <= len(patterns)
            assert simulator.coverage(compacted, faults) == pytest.approx(
                simulator.coverage(patterns, faults)
            )

    def test_nonrobust_flow_with_nest(self, workload):
        circuit, faults = workload
        report = generate_tests(circuit, faults, TestClass.NONROBUST)
        assert report.efficiency == 100.0  # the paper's Table-4 claim

        patterns = report.patterns
        estimator = NestEstimator(circuit, TestClass.NONROBUST)
        estimate = estimator.estimate(patterns)
        # each pattern detects at least its own target path
        detected = sum(1 for r in report.records if r.status is FaultStatus.TESTED)
        assert estimate.upper_bound >= detected

    def test_single_bit_and_bdd_agree_on_verdicts(self, workload):
        circuit, faults = workload
        sample = faults[:60]
        parallel = generate_tests(
            circuit, sample, TestClass.NONROBUST, TpgOptions(drop_faults=False)
        )
        single = generate_tests_single_bit(
            circuit, sample, TestClass.NONROBUST, drop_faults=False
        )
        bdd = generate_tests_bdd(circuit, sample, TestClass.NONROBUST)
        for p, s, b in zip(parallel.records, single.records, bdd.records):
            assert (p.status is FaultStatus.TESTED) == (
                s.status is FaultStatus.TESTED
            ), p.fault.describe(circuit)
            if b.status is not FaultStatus.ABORTED:
                assert (p.status is FaultStatus.TESTED) == (
                    b.status is FaultStatus.TESTED
                ), p.fault.describe(circuit)

    def test_report_accounting(self, workload):
        circuit, faults = workload
        report = generate_tests(circuit, faults, TestClass.NONROBUST)
        total = (
            report.count(FaultStatus.TESTED)
            + report.count(FaultStatus.SIMULATED)
            + report.count(FaultStatus.REDUNDANT)
            + report.count(FaultStatus.ABORTED)
            + report.count(FaultStatus.DEFERRED)
        )
        assert total == report.n_faults
        assert report.seconds_total >= 0
