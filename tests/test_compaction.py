"""Tests for test-set compaction."""

import pytest

from repro.circuit.generators import ripple_carry_adder
from repro.circuit.library import c17, paper_example
from repro.core import generate_tests
from repro.core.compaction import (
    compaction_report,
    greedy_compaction,
    reverse_order_compaction,
)
from repro.paths import TestClass, all_faults
from repro.sim import DelayFaultSimulator


@pytest.fixture(params=[c17, paper_example])
def setup(request):
    circuit = request.param()
    faults = all_faults(circuit)
    report = generate_tests(circuit, faults, TestClass.NONROBUST)
    return circuit, faults, report.patterns


class TestReverseOrder:
    def test_preserves_coverage(self, setup):
        circuit, faults, patterns = setup
        compacted = reverse_order_compaction(circuit, patterns, faults)
        sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        assert sim.coverage(compacted, faults) == pytest.approx(
            sim.coverage(patterns, faults)
        )

    def test_never_grows(self, setup):
        circuit, faults, patterns = setup
        compacted = reverse_order_compaction(circuit, patterns, faults)
        assert len(compacted) <= len(patterns)

    def test_keeps_original_order(self, setup):
        circuit, faults, patterns = setup
        compacted = reverse_order_compaction(circuit, patterns, faults)
        positions = [patterns.index(p) for p in compacted]
        assert positions == sorted(positions)


class TestGreedy:
    def test_preserves_coverage(self, setup):
        circuit, faults, patterns = setup
        compacted = greedy_compaction(circuit, patterns, faults)
        sim = DelayFaultSimulator(circuit, TestClass.NONROBUST)
        assert sim.coverage(compacted, faults) == pytest.approx(
            sim.coverage(patterns, faults)
        )

    def test_not_larger_than_reverse(self, setup):
        circuit, faults, patterns = setup
        greedy = greedy_compaction(circuit, patterns, faults)
        reverse = reverse_order_compaction(circuit, patterns, faults)
        assert len(greedy) <= len(reverse)


class TestReport:
    def test_report_shape(self):
        circuit = ripple_carry_adder(3)
        faults = all_faults(circuit, cap=60)
        patterns = generate_tests(circuit, faults, TestClass.NONROBUST).patterns
        report = compaction_report(circuit, patterns, faults)
        assert report["reverse_order"] <= report["patterns"]
        assert report["greedy"] <= report["reverse_order"]
        assert report["coverage_greedy"] == pytest.approx(report["coverage_full"])

    def test_actually_compacts(self):
        """On the adder, many early patterns are subsumed by later ones."""
        circuit = ripple_carry_adder(4)
        faults = all_faults(circuit, cap=100)
        patterns = generate_tests(circuit, faults, TestClass.NONROBUST).patterns
        compacted = greedy_compaction(circuit, patterns, faults)
        assert len(compacted) < len(patterns)

    def test_empty_patterns(self):
        circuit = c17()
        assert reverse_order_compaction(circuit, [], []) == []
        assert greedy_compaction(circuit, [], []) == []


class TestBackendThreading:
    """Both word backends must compact to the identical pattern set."""

    def test_backends_agree_beyond_one_word(self):
        # > 64 patterns so the numpy path really runs multi-word
        circuit = ripple_carry_adder(5)
        faults = all_faults(circuit, cap=200)
        patterns = generate_tests(circuit, faults, TestClass.NONROBUST).patterns
        assert len(patterns) > 64
        for strategy in (reverse_order_compaction, greedy_compaction):
            via_int = strategy(
                circuit, patterns, faults, TestClass.NONROBUST, backend="int"
            )
            via_numpy = strategy(
                circuit, patterns, faults, TestClass.NONROBUST, backend="numpy"
            )
            assert via_int == via_numpy

    def test_report_accepts_backend(self):
        circuit = ripple_carry_adder(3)
        faults = all_faults(circuit, cap=40)
        patterns = generate_tests(circuit, faults, TestClass.NONROBUST).patterns
        report = compaction_report(
            circuit, patterns, faults, TestClass.NONROBUST, backend="numpy"
        )
        assert report["coverage_reverse"] == pytest.approx(
            report["coverage_full"]
        )
