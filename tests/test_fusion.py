"""Fused execution strategies are bit-identical to the interpreter.

The contract of the plan-fusion layer: ``interp`` (the per-gate
oracle loop), ``vector`` (level-vectorized numpy groups), ``codegen``
(straight-line compiled bodies) and the compiled-C ``native`` word
backend may differ only in speed.  These tests assert bit-identity on
randomized circuits and inputs for two-valued, seven-valued, and
ten-valued simulation, for detection masks and detection-strength
grading across both test classes, for stuck-at cone resimulation, for
the TPG implication engine's forward and backward tables, and for
end-to-end generation / grading / stuck-at coverage on c880.  The
native classes are skip-marked cleanly on hosts without a C
toolchain; the fallback path itself is covered in ``test_kernel.py``.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import AtpgSession, Options
from repro.circuit.generators import random_dag
from repro.circuit.suites import suite_circuit
from repro.core.patterns import random_patterns
from repro.core.state import SEVEN_VALUED, THREE_VALUED, TpgState
from repro.core.stuck_at import all_stuck_at_faults
from repro.kernel import (
    IntWordBackend,
    NativeWordBackend,
    NumpyWordBackend,
    PackedPatterns,
    fused_plan,
    native_available,
    words_to_int,
)
from repro.kernel.codegen import gate_backward_fn
from repro.logic import seven_valued, three_valued
from repro.logic.words import mask_for
from repro.paths import TestClass, fault_list
from repro.sim import DelayFaultSimulator, StuckAtSimulator
from repro.sim.delay_sim import (
    pack_patterns,
    simulate_planes10,
    strength_masks,
    strength_masks_all,
)
from repro.sim.logic_sim import pack_vectors

circuit_params = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=3, max_value=8),  # inputs
    st.integers(min_value=5, max_value=40),  # gates
)


def _int_rows(array_values, valid_int=None):
    rows = [words_to_int(np.ascontiguousarray(row)) for row in array_values]
    if valid_int is not None:
        rows = [row & valid_int for row in rows]
    return rows


class TestLogicStrategies:
    @settings(max_examples=40, deadline=None)
    @given(circuit_params, st.integers(min_value=1, max_value=130))
    def test_two_valued_bit_identity(self, params, n_vectors):
        seed, n_inputs, n_gates = params
        circuit = random_dag(n_inputs, n_gates, seed=seed)
        compiled = circuit.compiled()
        rng = random.Random(seed + 1)
        vectors = [
            [rng.randint(0, 1) for _ in circuit.inputs]
            for _ in range(n_vectors)
        ]
        words = pack_vectors(vectors)
        oracle = IntWordBackend(n_vectors, fusion="interp").simulate_logic(
            compiled, words
        )
        assert (
            IntWordBackend(n_vectors, fusion="codegen").simulate_logic(
                compiled, words
            )
            == oracle
        )
        packed = PackedPatterns.from_vectors(vectors)
        valid = words_to_int(packed.lane_valid())
        masked_oracle = [word & valid for word in oracle]
        for fusion in ("interp", "vector", "codegen"):
            values = NumpyWordBackend(
                n_vectors, fusion=fusion
            ).simulate_logic(compiled, packed.v2)
            assert _int_rows(np.asarray(values), valid) == masked_oracle, fusion

    @settings(max_examples=40, deadline=None)
    @given(circuit_params, st.integers(min_value=1, max_value=130))
    def test_seven_valued_bit_identity(self, params, n_patterns):
        seed, n_inputs, n_gates = params
        circuit = random_dag(n_inputs, n_gates, seed=seed)
        compiled = circuit.compiled()
        patterns = random_patterns(circuit, n_patterns, seed + 2)
        input_planes, width = pack_patterns(circuit, patterns)
        oracle = IntWordBackend(width, fusion="interp").simulate_planes7(
            compiled, input_planes
        )
        assert (
            IntWordBackend(width, fusion="codegen").simulate_planes7(
                compiled, input_planes
            )
            == oracle
        )
        packed = PackedPatterns.from_patterns(patterns)
        for fusion in ("interp", "vector", "codegen"):
            values = NumpyWordBackend(width, fusion=fusion).simulate_planes7(
                compiled, packed.planes7()
            )
            as_ints = [
                tuple(words_to_int(np.ascontiguousarray(p)) for p in planes)
                for planes in values
            ]
            assert as_ints == oracle, fusion


class TestTenValuedStrategies:
    @settings(max_examples=30, deadline=None)
    @given(circuit_params, st.integers(min_value=1, max_value=130))
    def test_ten_valued_bit_identity(self, params, n_patterns):
        seed, n_inputs, n_gates = params
        circuit = random_dag(n_inputs, n_gates, seed=seed)
        compiled = circuit.compiled()
        patterns = random_patterns(circuit, n_patterns, seed + 6)
        oracle, width = simulate_planes10(circuit, patterns, fusion="interp")
        fused, _ = simulate_planes10(circuit, patterns, fusion="codegen")
        assert fused == oracle
        packed = PackedPatterns.from_patterns(patterns)
        valid = packed.lane_valid()
        inputs10 = [(z, o, s, i, valid) for z, o, s, i in packed.planes7()]
        for fusion in ("interp", "vector", "codegen"):
            values = NumpyWordBackend(width, fusion=fusion).simulate_planes10(
                compiled, inputs10
            )
            as_ints = [
                tuple(words_to_int(np.ascontiguousarray(p)) for p in planes)
                for planes in values
            ]
            assert as_ints == oracle, fusion

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(circuit_params, st.integers(min_value=1, max_value=130))
    def test_strength_grading_bit_identical_across_strategies(
        self, params, n_patterns
    ):
        seed, n_inputs, n_gates = params
        circuit = random_dag(n_inputs, n_gates, seed=seed)
        faults = fault_list(circuit, cap=16, strategy="all")
        patterns = random_patterns(circuit, n_patterns, seed + 7)
        # per-fault oracle walk over the interpreted int-word pass
        values, width = simulate_planes10(circuit, patterns, fusion="interp")
        reference = [
            strength_masks(circuit, fault, values, width) for fault in faults
        ]
        for backend in ("int", "numpy"):
            for fusion in ("interp", "vector", "codegen", "auto"):
                triples = strength_masks_all(
                    circuit, patterns, faults, backend=backend, fusion=fusion
                )
                assert triples == reference, (backend, fusion)
        # containment: strong <= robust <= nonrobust, lane-wise
        for nonrobust, robust, strong in reference:
            assert strong & ~robust == 0
            assert robust & ~nonrobust == 0


class TestStuckAtStrategies:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(circuit_params, st.integers(min_value=1, max_value=130))
    def test_cone_resim_bit_identical_across_strategies(self, params, n_vectors):
        seed, n_inputs, n_gates = params
        circuit = random_dag(n_inputs, n_gates, seed=seed)
        rng = random.Random(seed + 8)
        vectors = [
            [rng.randint(0, 1) for _ in circuit.inputs]
            for _ in range(n_vectors)
        ]
        faults = all_stuck_at_faults(circuit)
        oracle = StuckAtSimulator(circuit, fusion="interp").detected_faults(
            vectors, faults
        )
        for fusion in ("codegen", "auto"):
            sim = StuckAtSimulator(circuit, fusion=fusion)
            assert sim.detected_faults(vectors, faults) == oracle, fusion
            # repeated calls serve from the same memoized cone bodies
            assert sim.detected_faults(vectors, faults) == oracle, fusion

    def test_interp_cone_plans_cached_across_calls(self):
        circuit = random_dag(5, 20, seed=11)
        sim = StuckAtSimulator(circuit, fusion="interp")
        faults = all_stuck_at_faults(circuit)
        vectors = [[lane & 1 for _ in circuit.inputs] for lane in range(8)]
        sim.detected_faults(vectors, faults)
        plans = {site: plan for site, plan in sim._cone_plans.items()}
        sim.detected_faults(vectors, faults)
        for site, plan in sim._cone_plans.items():
            assert plans[site] is plan  # rebuilt nothing


class TestDetectionMasks:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(circuit_params, st.sampled_from(list(TestClass)))
    def test_masks_bit_identical_across_strategies(self, params, test_class):
        seed, n_inputs, n_gates = params
        circuit = random_dag(n_inputs, n_gates, seed=seed)
        faults = fault_list(circuit, cap=24, strategy="all")
        patterns = random_patterns(circuit, 100, seed + 3)
        reference = None
        for backend in ("int", "numpy"):
            for fusion in ("interp", "vector", "codegen"):
                sim = DelayFaultSimulator(
                    circuit, test_class, backend=backend, fusion=fusion
                )
                masks = sim.detection_masks(patterns, faults)
                if reference is None:
                    reference = masks
                else:
                    assert masks == reference, (backend, fusion)


class TestImplicationForwardTable:
    @settings(max_examples=30, deadline=None)
    @given(circuit_params, st.sampled_from(["three", "seven"]))
    def test_imply_matches_interp(self, params, algebra_name):
        seed, n_inputs, n_gates = params
        circuit = random_dag(n_inputs, n_gates, seed=seed)
        algebra = THREE_VALUED if algebra_name == "three" else SEVEN_VALUED
        logic = three_valued if algebra_name == "three" else seven_valued
        width = 8
        rng = random.Random(seed + 4)
        assignments = [
            (
                rng.randrange(circuit.num_signals),
                logic.encode_word(
                    rng.choice(["0", "1"])
                    if algebra_name == "three"
                    else rng.choice(["S0", "S1", "R", "F"]),
                    1 << rng.randrange(width),
                )
                if algebra_name == "seven"
                else logic.encode_word(rng.randint(0, 1), 1 << rng.randrange(width)),
            )
            for _ in range(6)
        ]
        states = {}
        for fusion in ("interp", "codegen"):
            state = TpgState(circuit, algebra, width, fusion=fusion)
            for signal, planes in assignments:
                state.assign(signal, planes)
            state.imply()
            states[fusion] = state
        assert states["interp"].planes == states["codegen"].planes
        assert (
            states["interp"].conflict_mask == states["codegen"].conflict_mask
        )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_backward_bodies_match_interp_on_arbitrary_planes(self, seed):
        """The unrolled backward bodies equal ``Algebra.backward`` for
        every gate shape, on arbitrary (not only consistent) planes."""
        circuit = random_dag(5, 22, seed=seed)
        compiled = circuit.compiled()
        rng = random.Random(seed + 9)
        mask = mask_for(8)
        for algebra in (THREE_VALUED, SEVEN_VALUED):
            for s in range(compiled.n_signals):
                if compiled.is_input[s]:
                    continue
                fanin = compiled.py_fanin[s]
                out = tuple(
                    rng.randint(0, mask) for _ in range(algebra.n_planes)
                )
                ins = [
                    tuple(rng.randint(0, mask) for _ in range(algebra.n_planes))
                    for _ in fanin
                ]
                gate_type = compiled.gate_types[s]
                reference = algebra.backward(gate_type, out, ins, mask)
                fn = gate_backward_fn(
                    algebra.name, compiled.py_codes[s], len(fanin)
                )
                assert list(fn(out, ins, mask)) == list(reference), (
                    algebra.name,
                    gate_type,
                )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_dirty_scan_matches_direct_computation(self, seed):
        """The cached justification scan equals per-signal recomputation,
        through assign/imply/rollback/flatten sequences."""
        circuit = random_dag(5, 18, seed=seed)
        state = TpgState(circuit, SEVEN_VALUED, 8)
        rng = random.Random(seed + 5)

        def assert_scan_consistent():
            scanned = dict(state.scan_unjustified())
            live = state.mask & ~state.conflict_mask
            direct = {}
            for index in range(circuit.num_signals):
                m = state.unjustified_lanes(index) & live
                if m:
                    direct[index] = m
            assert scanned == direct
            expected_all = live
            for m in direct.values():
                expected_all &= ~m
            assert state.all_justified_mask() == expected_all

        token = None
        for step in range(12):
            signal = rng.randrange(circuit.num_signals)
            planes = seven_valued.encode_word(
                rng.choice(["S0", "S1", "R", "F"]), 1 << rng.randrange(8)
            )
            if step == 4:
                token = state.mark()
            state.assign(signal, planes)
            if rng.random() < 0.5:
                state.imply()
            assert_scan_consistent()
        if token is not None:
            state.rollback(token)
            assert_scan_consistent()
        state.flatten_lane(2)
        assert_scan_consistent()


class TestEndToEnd:
    @pytest.mark.parametrize("test_class", list(TestClass))
    def test_c880_statuses_identical_under_auto_fusion(self, test_class):
        statuses = {}
        for fusion in ("interp", "auto"):
            session = AtpgSession.open(
                "c880", options=Options(width=16, fusion=fusion)
            )
            report = session.generate(test_class=test_class, max_faults=96)
            statuses[fusion] = [record.status for record in report.records]
        assert statuses["interp"] == statuses["auto"]

    @pytest.mark.parametrize("test_class", list(TestClass))
    def test_c880_grade_identical_under_auto_fusion(self, test_class):
        session = AtpgSession.open("c880")
        faults = fault_list(session.circuit, cap=64, strategy="all")
        patterns = random_patterns(session.circuit, 100, 13)
        reports = {
            fusion: session.grade(
                patterns,
                faults,
                test_class=test_class,
                fusion=fusion,
                strength=True,
            )
            for fusion in ("interp", "auto")
        }
        assert reports["interp"] == reports["auto"]
        report = reports["auto"]
        assert len(report["strengths"]) == len(faults)
        assert sum(report["strength_counts"].values()) == sum(
            1 for label in report["strengths"] if label is not None
        )
        # the strength path derives detection from the 10-valued pass;
        # it must agree with the plain 7-valued grading flags
        plain = session.grade(patterns, faults, test_class=test_class)
        assert report["detected_flags"] == plain["detected_flags"]

    def test_c880_stuck_at_coverage_identical_under_auto_fusion(self):
        circuit = suite_circuit("c880")
        faults = all_stuck_at_faults(circuit)[:120]
        rng = random.Random(17)
        vectors = [
            [rng.randint(0, 1) for _ in circuit.inputs] for _ in range(100)
        ]
        interp = StuckAtSimulator(circuit, fusion="interp")
        fused = StuckAtSimulator(circuit, fusion="auto")
        assert fused.detected_faults(vectors, faults) == interp.detected_faults(
            vectors, faults
        )
        assert fused.coverage(vectors, faults) == interp.coverage(
            vectors, faults
        )

    def test_bulk2k_suite_circuit_is_large(self):
        circuit = suite_circuit("bulk2k")
        assert circuit.num_signals - len(circuit.inputs) >= 2000

    def test_fused_plan_covers_every_gate_once(self):
        circuit = suite_circuit("bulk2k")
        compiled = circuit.compiled()
        plan = fused_plan(compiled)
        outs = np.concatenate([group.outs for group in plan.groups])
        assert len(outs) == plan.n_gates == len(compiled.plan)
        assert len(np.unique(outs)) == len(outs)
        # every fanin is strictly below its group's outputs in level
        for group in plan.groups:
            out_levels = compiled.level[group.outs]
            fanin_levels = compiled.level[group.fanins]
            assert (fanin_levels < out_levels[:, None]).all()


# ---------------------------------------------------------------------------
# the compiled-C native backend
# ---------------------------------------------------------------------------

needs_toolchain = pytest.mark.skipif(
    not native_available(),
    reason="no C toolchain: native word backend unavailable",
)


@needs_toolchain
class TestNativeBackend:
    """Native vs the interpreted oracle, every covered pass per example.

    One hypothesis example costs one cffi module build, so this suite
    runs few examples but checks all native entry points — 2-valued,
    7-valued and 10-valued passes, PPSFP detection masks in both
    classes, strength triples, and stuck-at cone resimulation — on
    each random circuit.
    """

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(circuit_params, st.integers(min_value=1, max_value=130))
    def test_native_bit_identical_to_interp_on_every_pass(
        self, params, n_patterns
    ):
        seed, n_inputs, n_gates = params
        circuit = random_dag(n_inputs, n_gates, seed=seed)
        compiled = circuit.compiled()
        rng = random.Random(seed + 10)
        n_vectors = n_patterns

        # --- two-valued full pass
        vectors = [
            [rng.randint(0, 1) for _ in circuit.inputs]
            for _ in range(n_vectors)
        ]
        packed = PackedPatterns.from_vectors(vectors)
        valid = words_to_int(packed.lane_valid())
        oracle2 = IntWordBackend(n_vectors, fusion="interp").simulate_logic(
            compiled, pack_vectors(vectors)
        )
        native2 = NativeWordBackend(n_vectors).simulate_logic(
            compiled, packed.v2
        )
        assert _int_rows(np.asarray(native2), valid) == [
            word & valid for word in oracle2
        ]

        # --- seven-valued full pass
        patterns = random_patterns(circuit, n_patterns, seed + 11)
        input_planes, width = pack_patterns(circuit, patterns)
        oracle7 = IntWordBackend(width, fusion="interp").simulate_planes7(
            compiled, input_planes
        )
        packed = PackedPatterns.from_patterns(patterns)
        native7 = NativeWordBackend(width).simulate_planes7(
            compiled, packed.planes7()
        )
        assert [
            tuple(words_to_int(np.ascontiguousarray(p)) for p in planes)
            for planes in native7
        ] == oracle7

        # --- ten-valued full pass
        oracle10, _ = simulate_planes10(circuit, patterns, fusion="interp")
        lane_valid = packed.lane_valid()
        inputs10 = [(z, o, s, i, lane_valid) for z, o, s, i in packed.planes7()]
        native10 = NativeWordBackend(width).simulate_planes10(
            compiled, inputs10
        )
        assert [
            tuple(words_to_int(np.ascontiguousarray(p)) for p in planes)
            for planes in native10
        ] == oracle10

        # --- PPSFP detection masks, both classes, walk inside C
        faults = fault_list(circuit, cap=12, strategy="all")
        for test_class in TestClass:
            interp_sim = DelayFaultSimulator(
                circuit, test_class, backend="numpy", fusion="interp"
            )
            native_sim = DelayFaultSimulator(
                circuit, test_class, backend="native"
            )
            assert native_sim.detection_masks(
                patterns, faults
            ) == interp_sim.detection_masks(patterns, faults), test_class

        # --- 10-valued strength triples, walk inside C
        assert strength_masks_all(
            circuit, patterns, faults, backend="native"
        ) == strength_masks_all(
            circuit, patterns, faults, backend="int", fusion="interp"
        )

        # --- stuck-at cone resimulation inside C
        sa_faults = all_stuck_at_faults(circuit)
        assert StuckAtSimulator(circuit, backend="native").detected_faults(
            vectors, sa_faults
        ) == StuckAtSimulator(circuit, fusion="interp").detected_faults(
            vectors, sa_faults
        )

    def test_empty_fault_batch(self):
        circuit = random_dag(4, 12, seed=3)
        patterns = random_patterns(circuit, 10, 4)
        sim = DelayFaultSimulator(
            circuit, TestClass.ROBUST, backend="native"
        )
        assert sim.detection_masks(patterns, []) == []
        assert strength_masks_all(circuit, patterns, [], backend="native") == []


@needs_toolchain
class TestNativeEndToEnd:
    @pytest.mark.parametrize("test_class", list(TestClass))
    def test_c880_statuses_identical_under_native_backend(self, test_class):
        statuses = {}
        for sim_backend in ("auto", "native"):
            session = AtpgSession.open(
                "c880", options=Options(width=16, sim_backend=sim_backend)
            )
            report = session.generate(test_class=test_class, max_faults=96)
            statuses[sim_backend] = [
                record.status for record in report.records
            ]
        assert statuses["auto"] == statuses["native"]

    def test_c880_grade_identical_under_native_backend(self):
        session = AtpgSession.open("c880")
        faults = fault_list(session.circuit, cap=64, strategy="all")
        patterns = random_patterns(session.circuit, 100, 13)
        reports = {
            backend: session.grade(
                patterns, faults, backend=backend, strength=True
            )
            for backend in ("auto", "native")
        }
        assert reports["auto"] == reports["native"]

    def test_c880_stuck_at_coverage_identical_under_native_backend(self):
        circuit = suite_circuit("c880")
        faults = all_stuck_at_faults(circuit)[:120]
        rng = random.Random(17)
        vectors = [
            [rng.randint(0, 1) for _ in circuit.inputs] for _ in range(100)
        ]
        interp = StuckAtSimulator(circuit, fusion="interp")
        native = StuckAtSimulator(circuit, backend="native")
        assert native.detected_faults(vectors, faults) == (
            interp.detected_faults(vectors, faults)
        )
        assert native.coverage(vectors, faults) == interp.coverage(
            vectors, faults
        )
