"""Unit tests for the backtrace procedure."""

from repro.circuit import CircuitBuilder
from repro.core.backtrace import PiObjective, backtrace
from repro.core.controllability import compute_controllability
from repro.core.state import SEVEN_VALUED, THREE_VALUED, TpgState
from repro.logic import seven_valued as sv
from repro.logic import three_valued as tv


def chain_circuit():
    b = CircuitBuilder("chain")
    b.inputs("a", "b", "c", "d")
    b.and_("g1", "a", "b")
    b.or_("g2", "g1", "c")
    b.not_("g3", "g2")
    b.and_("y", "g3", "d")
    b.outputs("y")
    return b.build()


class TestBacktraceWalk:
    def test_walks_to_pi_through_or(self):
        c = chain_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        cc = compute_controllability(c)
        # objective: g2 = 1; the OR picks the cheapest 1-controllable
        # input, which is the primary input c (cost 1) over g1 (cost 3)
        result = backtrace(st, cc, c.index_of("g2"), 1, False, 0)
        assert result == PiObjective(c.index_of("c"), 1, False)

    def test_inversion_flips_objective(self):
        c = chain_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        cc = compute_controllability(c)
        # g3 = NOT(g2): objective g3=0 becomes g2=1 becomes c=1
        result = backtrace(st, cc, c.index_of("g3"), 0, False, 0)
        assert result == PiObjective(c.index_of("c"), 1, False)

    def test_and_output_one_walks_hardest_first(self):
        c = chain_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        cc = compute_controllability(c)
        # y = AND(g3, d) = 1: both needed; g3 (deep) is harder than d
        result = backtrace(st, cc, c.index_of("y"), 1, False, 0)
        # g3=1 -> g2=0 -> both g1 and c must be 0, hardest-first picks
        # g1 (cost CC0=2) over c (cost 1)... then g1=0 picks min CC0 in {a,b}
        assert result is not None
        assert c.gates[result.signal].is_input
        assert result.signal in (c.index_of("a"), c.index_of("b"))
        assert result.value == 0

    def test_avoids_assigned_inputs(self):
        c = chain_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        cc = compute_controllability(c)
        # pre-assign c=0: the OR objective g2=1 must avoid it
        st.assign(c.index_of("c"), tv.encode(0))
        result = backtrace(st, cc, c.index_of("g2"), 1, False, 0)
        assert result is not None
        assert result.signal in (c.index_of("a"), c.index_of("b"))
        assert result.value == 1

    def test_returns_none_when_no_candidate(self):
        c = chain_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        cc = compute_controllability(c)
        st.assign(c.index_of("c"), tv.encode(0))
        st.assign(c.index_of("a"), tv.encode(0))
        st.assign(c.index_of("b"), tv.encode(0))
        result = backtrace(st, cc, c.index_of("g2"), 1, False, 0)
        assert result is None

    def test_contradicting_pi_assignment_returns_none(self):
        c = chain_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        cc = compute_controllability(c)
        st.assign(c.index_of("d"), tv.encode(0))
        result = backtrace(st, cc, c.index_of("d"), 1, False, 0)
        assert result is None

    def test_lane_sensitivity(self):
        c = chain_circuit()
        st = TpgState(c, THREE_VALUED, 2)
        cc = compute_controllability(c)
        st.assign(c.index_of("c"), tv.encode_word(0, 0b01))  # lane 0 only
        in_lane0 = backtrace(st, cc, c.index_of("g2"), 1, False, 0)
        in_lane1 = backtrace(st, cc, c.index_of("g2"), 1, False, 1)
        assert in_lane0.signal != c.index_of("c")
        assert in_lane1.signal == c.index_of("c")


class TestXorObjectives:
    def test_parity_completion(self):
        b = CircuitBuilder("xor")
        b.inputs("a", "b")
        b.xor("y", "a", "b")
        b.outputs("y")
        c = b.build()
        st = TpgState(c, THREE_VALUED, 1)
        cc = compute_controllability(c)
        st.assign(c.index_of("a"), tv.encode(1))
        # y = 1 with a = 1 forces b = 0
        result = backtrace(st, cc, c.index_of("y"), 1, False, 0)
        assert result == PiObjective(c.index_of("b"), 0, False)


class TestStabilityObjectives:
    def test_stable_objective_reaches_pi_with_stable_flag(self):
        c = chain_circuit()
        st = TpgState(c, SEVEN_VALUED, 1)
        cc = compute_controllability(c)
        result = backtrace(st, cc, c.index_of("g2"), 1, True, 0)
        assert result is not None
        assert result.stable

    def test_stability_chase_when_value_known(self):
        c = chain_circuit()
        st = TpgState(c, SEVEN_VALUED, 1)
        cc = compute_controllability(c)
        # c already final-1 but not stable: the walk should still find
        # an assignment that can stabilize the cone
        st.assign(c.index_of("c"), sv.encode("U1"))
        result = backtrace(st, cc, c.index_of("g2"), 1, True, 0)
        assert result is not None

    def test_instable_input_not_a_stability_candidate(self):
        b = CircuitBuilder("buf")
        b.inputs("a")
        b.buf("y", "a")
        b.outputs("y")
        c = b.build()
        st = TpgState(c, SEVEN_VALUED, 1)
        cc = compute_controllability(c)
        st.assign(c.index_of("a"), sv.encode("R"))
        result = backtrace(st, cc, c.index_of("y"), 1, True, 0)
        assert result is None  # a is known-instable: cannot stabilize
