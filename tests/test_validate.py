"""Unit tests for circuit validation."""

import pytest

from repro.circuit import CircuitBuilder, CircuitError, assert_valid, validate_circuit
from repro.circuit.library import EMBEDDED


class TestValidate:
    def test_all_embedded_circuits_valid(self):
        for name, factory in EMBEDDED.items():
            assert validate_circuit(factory()) == [], name

    def test_unfrozen_flagged(self):
        from repro.circuit import Circuit

        c = Circuit()
        c.add_input("a")
        assert validate_circuit(c) == ["circuit is not frozen"]

    def test_dangling_gate_flagged(self):
        b = CircuitBuilder("dangle")
        b.inputs("a", "b")
        b.and_("used", "a", "b")
        b.or_("unused", "a", "b")  # never feeds an output
        b.outputs("used")
        c = b.build()
        problems = validate_circuit(c)
        assert any("unused" in p and "output" in p for p in problems)

    def test_assert_valid_passes_good(self):
        c = EMBEDDED["c17"]()
        assert assert_valid(c) is c

    def test_assert_valid_raises_on_bad(self):
        b = CircuitBuilder("dangle")
        b.inputs("a", "b")
        b.and_("used", "a", "b")
        b.or_("unused", "a", "b")
        b.outputs("used")
        with pytest.raises(CircuitError, match="failed validation"):
            assert_valid(b.build())
