"""Unit tests for the event-driven timing simulator and fault oracle."""

import random

import pytest

from repro.circuit import CircuitBuilder
from repro.circuit.generators import random_dag, ripple_carry_adder
from repro.circuit.library import c17, paper_example
from repro.core import TestPattern, generate_tests
from repro.core.results import FaultStatus
from repro.paths import PathDelayFault, TestClass, Transition, all_faults
from repro.sim import (
    TimingSimulator,
    fault_injection,
    robust_timing_holds,
    slowed_delays,
    timing_detects,
)


class TestTimingSimulation:
    @pytest.mark.parametrize("factory", [c17, paper_example])
    def test_final_values_match_static_evaluation(self, factory):
        """After settling, the timing sim must agree with V2 statics."""
        circuit = factory()
        rng = random.Random(7)
        sim = TimingSimulator(circuit)
        for _ in range(25):
            v1 = [rng.randint(0, 1) for _ in circuit.inputs]
            v2 = [rng.randint(0, 1) for _ in circuit.inputs]
            result = sim.simulate(v1, v2)
            expected = circuit.output_values(v2)
            assert result.final_outputs() == expected

    def test_initial_values_match_v1(self):
        circuit = paper_example()
        sim = TimingSimulator(circuit)
        v1 = [1, 0, 1, 0]
        result = sim.simulate(v1, [0, 1, 0, 1])
        expected = circuit.evaluate(v1)
        for gate in circuit.gates:
            assert result.waveforms[gate.index].initial == expected[gate.name]

    def test_random_delays_do_not_change_final_values(self):
        circuit = random_dag(8, 30, seed=11)
        rng = random.Random(12)
        delays = {
            g.index: rng.uniform(0.2, 3.0) for g in circuit.gates if not g.is_input
        }
        sim = TimingSimulator(circuit, delays)
        for _ in range(10):
            v1 = [rng.randint(0, 1) for _ in circuit.inputs]
            v2 = [rng.randint(0, 1) for _ in circuit.inputs]
            result = sim.simulate(v1, v2)
            assert result.final_outputs() == circuit.output_values(v2)

    def test_settle_bound_covers_settle_time(self):
        circuit = ripple_carry_adder(4)
        rng = random.Random(13)
        sim = TimingSimulator(circuit)
        for _ in range(10):
            v1 = [rng.randint(0, 1) for _ in circuit.inputs]
            v2 = [rng.randint(0, 1) for _ in circuit.inputs]
            assert sim.simulate(v1, v2).settle_time() <= sim.settle_bound() + 1e-9

    def test_glitch_is_observable(self):
        """a AND NOT(a) pulses when a rises — transport delays keep it."""
        b = CircuitBuilder("glitch")
        b.inputs("a")
        b.not_("n", "a")
        b.and_("x", "a", "n")
        b.outputs("x")
        circuit = b.build()
        sim = TimingSimulator(circuit)
        result = sim.simulate([0], [1])
        x = result.waveforms[circuit.index_of("x")]
        assert x.transition_count() == 2  # 0 -> 1 -> 0 pulse
        assert x.initial == 0 and x.final == 0

    def test_edge_delay_shifts_only_that_edge(self):
        b = CircuitBuilder("edge")
        b.inputs("a")
        b.buf("y", "a")
        b.buf("z", "a")
        b.outputs("y", "z")
        circuit = b.build()
        edge = (circuit.index_of("a"), circuit.index_of("y"))
        sim = TimingSimulator(circuit, edge_delays={edge: 5.0})
        result = sim.simulate([0], [1])
        y = result.waveforms[circuit.index_of("y")]
        z = result.waveforms[circuit.index_of("z")]
        assert y.events[0][0] == 6.0  # 5.0 edge + 1.0 gate
        assert z.events[0][0] == 1.0


class TestInjection:
    def test_fault_injection_first_edge(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        inj = fault_injection(fault, 7.0)
        assert inj == {(c.index_of("b"), c.index_of("p")): 7.0}

    def test_fault_injection_rejects_gateless_path(self):
        fault = PathDelayFault((0,), Transition.RISING)
        with pytest.raises(ValueError):
            fault_injection(fault, 1.0)

    def test_slowed_delays_variants(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        spread = slowed_delays({}, fault, 4.0, where="spread")
        assert spread[c.index_of("p")] == 3.0  # 1.0 + 4.0/2
        first = slowed_delays({}, fault, 4.0, where="first")
        assert first[c.index_of("p")] == 5.0
        last = slowed_delays({}, fault, 4.0, where="last")
        assert last[c.index_of("x")] == 5.0
        with pytest.raises(ValueError):
            slowed_delays({}, fault, 1.0, where="middle")

    def test_path_arrival_includes_edges(self):
        c = paper_example()
        fault = PathDelayFault.from_names(c, ("b", "p", "x"), Transition.RISING)
        sim = TimingSimulator(c, edge_delays=fault_injection(fault, 10.0))
        assert sim.path_arrival(fault) == 12.0  # 2 gates + 10 edge


class TestOracle:
    def test_generated_nonrobust_tests_pass_nominal_oracle(self):
        circuit = paper_example()
        faults = all_faults(circuit)
        report = generate_tests(circuit, faults, TestClass.NONROBUST)
        for record in report.records:
            if record.status is FaultStatus.TESTED and record.fault.length >= 1:
                assert timing_detects(circuit, record.pattern, record.fault), (
                    record.fault.describe(circuit)
                )

    def test_generated_robust_tests_pass_randomized_oracle(self):
        from repro.sim import prefix_independent

        circuit = paper_example()
        faults = all_faults(circuit)
        report = generate_tests(circuit, faults, TestClass.ROBUST)
        checked = 0
        for record in report.records:
            if record.status is not FaultStatus.TESTED or record.fault.length < 1:
                continue
            if not prefix_independent(circuit, record.fault):
                continue
            assert robust_timing_holds(
                circuit, record.pattern, record.fault, samples=12, seed=3
            ), record.fault.describe(circuit)
            checked += 1
        assert checked > 0

    def test_c17_robust_tests_pass_randomized_oracle(self):
        from repro.sim import prefix_independent

        circuit = c17()
        faults = all_faults(circuit)
        report = generate_tests(circuit, faults, TestClass.ROBUST)
        checked = 0
        for record in report.records:
            if record.status is not FaultStatus.TESTED:
                continue
            if not prefix_independent(circuit, record.fault):
                continue
            assert robust_timing_holds(
                circuit, record.pattern, record.fault, samples=8, seed=17
            ), record.fault.describe(circuit)
            checked += 1
        assert checked > 0

    def test_reconvergence_model_gap_documented(self):
        """The known gap between the lumped path fault model and
        physical edge injection: an off-path input reconverging from
        the path prefix settles late in the faulty circuit, so the
        classic (Lin & Reddy) robust conditions do not guarantee
        detection under physical injection.  prefix_independent
        identifies exactly these faults."""
        from repro.circuit.generators import random_dag
        from repro.paths import PathDelayFault, Transition
        from repro.sim import prefix_independent

        circuit = random_dag(5, 14, seed=1)
        fault = PathDelayFault((0, 6, 11, 13), Transition.FALLING)
        assert not prefix_independent(circuit, fault)
        # the excluded fault is precisely the one whose robust test
        # failed the physical oracle during development (seed 1)
        pattern = TestPattern((1, 0, 1, 1, 1), (0, 0, 1, 1, 1), fault)
        assert not robust_timing_holds(
            circuit, pattern, fault, samples=6, seed=1
        )

    def test_oracle_rejects_non_test(self):
        circuit = paper_example()
        fault = PathDelayFault.from_names(circuit, ("b", "p", "x"), Transition.RISING)
        # no launch at b: cannot detect anything
        pattern = TestPattern((0, 1, 0, 1), (0, 1, 0, 1), fault)
        assert not timing_detects(circuit, pattern, fault)
