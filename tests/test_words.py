"""Unit tests for machine-word helpers."""

import pytest

from repro.logic.words import (
    DEFAULT_WORD_LENGTH,
    broadcast,
    get_lane,
    iter_set_lanes,
    lane_bit,
    lowest_set_lane,
    mask_for,
    max_split_decisions,
    popcount,
    split_masks,
)


class TestBasics:
    def test_default_is_paper_word_length(self):
        assert DEFAULT_WORD_LENGTH == 64

    def test_mask(self):
        assert mask_for(1) == 1
        assert mask_for(4) == 0b1111
        assert mask_for(64) == (1 << 64) - 1

    def test_mask_rejects_zero(self):
        with pytest.raises(ValueError):
            mask_for(0)

    def test_lane_bit_and_get(self):
        word = lane_bit(3) | lane_bit(7)
        assert get_lane(word, 3) == 1
        assert get_lane(word, 7) == 1
        assert get_lane(word, 5) == 0

    def test_broadcast(self):
        assert broadcast(0, 8) == 0
        assert broadcast(1, 8) == 0xFF

    def test_popcount(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount(mask_for(64)) == 64

    def test_popcount_beyond_one_machine_word(self):
        assert popcount(mask_for(200)) == 200
        assert popcount(1 << 130) == 1

    def test_popcount_rejects_negative_words(self):
        # regression: the seed computed bin(word & ~0), a no-op that
        # returned the set-bit count of the *negative* literal ("-0b101"
        # has two '1' characters) instead of a lane count
        with pytest.raises(ValueError):
            popcount(-1)
        with pytest.raises(ValueError):
            popcount(-0b101)

    def test_iter_set_lanes(self):
        assert list(iter_set_lanes(0b10110)) == [1, 2, 4]
        assert list(iter_set_lanes(0)) == []

    def test_lowest_set_lane(self):
        assert lowest_set_lane(0b1000) == 3
        assert lowest_set_lane(1) == 0
        with pytest.raises(ValueError):
            lowest_set_lane(0)


class TestSplitMasks:
    @pytest.mark.parametrize("width", [1, 2, 4, 8, 64])
    def test_partitions(self, width):
        mask = mask_for(width)
        for zeros, ones in split_masks(width):
            assert zeros | ones == mask
            assert zeros & ones == 0

    def test_enumerates_all_combinations(self):
        width = 8
        splits = split_masks(width)
        assert len(splits) == 3
        # lane k must receive the bit pattern of k across the splits
        for lane in range(width):
            pattern = 0
            for position, (_zeros, ones) in enumerate(splits):
                if (ones >> lane) & 1:
                    pattern |= 1 << position
            assert pattern == lane

    def test_width_one_has_no_splits(self):
        assert split_masks(1) == []
        assert max_split_decisions(1) == 0

    def test_max_split_decisions(self):
        assert max_split_decisions(2) == 1
        assert max_split_decisions(4) == 2
        assert max_split_decisions(64) == 6
        assert max_split_decisions(6) == 2  # non-power-of-two floors
