"""Tests of the BIST subsystem: LFSR, MISR, coverage loop, wire format.

The load-bearing invariants, several held under hypothesis:

* every polynomial in the primitive table really is maximal — a
  register seeded anywhere returns to its seed after exactly
  ``2**width - 1`` naive scalar steps (small widths),
* the packed-slab batch generator is bit-identical to stepping the
  register one state at a time and reading the phase shifter through
  the oracle path, including the post-batch state advance (two takes
  chain like one),
* the MISR is linear over GF(2) from a zero seed, and the slab
  absorber matches per-pattern oracle clocking,
* the coverage curve and golden signature are invariant across every
  fusion strategy and word backend,
* the report round-trips through the versioned wire format and the
  service runs BIST jobs on the async queue.
"""

import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import AtpgService, AtpgSession, BistRequest, Options, serde
from repro.api.schemas import SchemaError, stamp, validate
from repro.bist import LFSR, MISR, PRIMITIVE_POLYNOMIALS, run_bist
from repro.bist.lfsr import LFSR_KINDS, default_polynomial, reverse_bits
from repro.circuit.library import c17
from repro.circuit.suites import suite_circuit
from repro.core.stuck_at import all_stuck_at_faults
from repro.kernel.native import native_available
from repro.kernel.packed import unpack_bits
from repro.paths import TestClass, fault_list


def naive_step(state, width, polynomial, kind):
    """Scalar reference step, independent of the LFSR class."""
    taps = polynomial & ((1 << width) - 1)
    if kind == "fibonacci":
        feedback = bin(state & taps).count("1") & 1
        return (state >> 1) | (feedback << (width - 1))
    out = state & 1
    state >>= 1
    if out:
        state ^= reverse_bits(taps, width)
    return state


# ---------------------------------------------------------------------------
# the primitive-polynomial table
# ---------------------------------------------------------------------------


class TestPolynomials:
    def test_every_entry_has_degree_and_constant_term(self):
        for width, poly in PRIMITIVE_POLYNOMIALS.items():
            assert poly >> width == 1, f"width {width}: degree bit missing"
            assert poly & 1, f"width {width}: constant term missing"

    def test_default_polynomial_rejects_unknown_width(self):
        with pytest.raises(ValueError, match="no primitive polynomial"):
            default_polynomial(65)

    @settings(deadline=None, max_examples=30)
    @given(
        width=st.integers(2, 10),
        kind=st.sampled_from(LFSR_KINDS),
        data=st.data(),
    )
    def test_maximal_period_from_any_seed(self, width, kind, data):
        # a primitive polynomial's register walks one cycle through
        # every nonzero state: back to the seed in exactly 2**w - 1
        # naive scalar steps, never earlier
        seed = data.draw(st.integers(1, (1 << width) - 1))
        poly = PRIMITIVE_POLYNOMIALS[width]
        state = naive_step(seed, width, poly, kind)
        period = 1
        while state != seed:
            state = naive_step(state, width, poly, kind)
            period += 1
            assert period <= (1 << width) - 1
        assert period == (1 << width) - 1


# ---------------------------------------------------------------------------
# packed-slab generation vs the oracle path
# ---------------------------------------------------------------------------


def oracle_patterns(lfsr, count, n_pis, two_vector):
    """Per-pattern register stepping through the oracle read-out."""
    vectors = [lfsr.vector(n_pis)]
    for _ in range(count):
        lfsr.step()
        vectors.append(lfsr.vector(n_pis))
    v1 = np.array(vectors[:count], dtype=np.uint8)
    v2 = np.array(vectors[1 : count + 1] if two_vector else vectors[:count],
                  dtype=np.uint8)
    return v1, v2


class TestPackedSlabs:
    @settings(
        deadline=None,
        max_examples=40,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        width=st.sampled_from([3, 4, 8, 13, 16, 32]),
        kind=st.sampled_from(LFSR_KINDS),
        spread=st.integers(1, 3),
        n_pis=st.integers(1, 40),
        count=st.integers(1, 100),
        two_vector=st.booleans(),
        data=st.data(),
    )
    def test_slab_matches_oracle_bit_for_bit(
        self, width, kind, spread, n_pis, count, two_vector, data
    ):
        seed = data.draw(st.integers(1, (1 << width) - 1))
        batch = LFSR(width, kind=kind, seed=seed, phase_spread=spread)
        oracle = LFSR(width, kind=kind, seed=seed, phase_spread=spread)
        packed = batch.take(count, n_pis, two_vector=two_vector)
        v1, v2 = oracle_patterns(oracle, count, n_pis, two_vector)
        assert packed.n_patterns == count
        assert np.array_equal(unpack_bits(packed.v1, count), v1)
        assert np.array_equal(unpack_bits(packed.v2, count), v2)
        # the batch register advanced exactly count steps: windows chain
        assert batch.state == oracle.state

    def test_two_takes_chain_like_one(self):
        one = LFSR(16, seed=0xACE5, phase_spread=2)
        split = LFSR(16, seed=0xACE5, phase_spread=2)
        whole = one.take(96, 11, two_vector=True)
        first = split.take(40, 11, two_vector=True)
        second = split.take(56, 11, two_vector=True)
        rows = np.vstack(
            [unpack_bits(first.v1, 40), unpack_bits(second.v1, 56)]
        )
        assert np.array_equal(unpack_bits(whole.v1, 96), rows)
        assert one.state == split.state

    def test_rejects_zero_seed_and_bad_polynomial(self):
        with pytest.raises(ValueError, match="seed"):
            LFSR(8, seed=0)
        with pytest.raises(ValueError, match="polynomial"):
            LFSR(8, polynomial=0x1D)  # degree bit missing


# ---------------------------------------------------------------------------
# MISR compaction
# ---------------------------------------------------------------------------


def slab_from_rows(rows):
    """(n_patterns, n_signals) 0/1 -> (n_signals, n_words) lane planes."""
    as_bytes = np.packbits(
        np.asarray(rows, dtype=np.uint8).T, axis=1, bitorder="little"
    )
    pad = (-as_bytes.shape[1]) % 8
    if pad:
        as_bytes = np.pad(as_bytes, ((0, 0), (0, pad)))
    return np.ascontiguousarray(as_bytes).view("<u8")


class TestMisr:
    @settings(deadline=None, max_examples=30)
    @given(
        rows=st.integers(1, 20),
        cols=st.integers(1, 50),
        data=st.data(),
    )
    def test_linear_over_gf2_from_zero_seed(self, rows, cols, data):
        bits = st.lists(
            st.lists(st.integers(0, 1), min_size=cols, max_size=cols),
            min_size=rows,
            max_size=rows,
        )
        a = data.draw(bits)
        b = data.draw(bits)
        xor = [[x ^ y for x, y in zip(ra, rb)] for ra, rb in zip(a, b)]

        def signature(stream):
            misr = MISR(16)
            for response in stream:
                misr.absorb_vector(response)
            return misr.signature

        assert signature(xor) == signature(a) ^ signature(b)

    @settings(deadline=None, max_examples=30)
    @given(
        rows=st.integers(1, 80),
        cols=st.integers(1, 40),
        width=st.sampled_from([8, 16, 32]),
        data=st.data(),
    )
    def test_slab_absorb_matches_oracle_clocking(
        self, rows, cols, width, data
    ):
        matrix = data.draw(
            st.lists(
                st.lists(st.integers(0, 1), min_size=cols, max_size=cols),
                min_size=rows,
                max_size=rows,
            )
        )
        oracle = MISR(width, seed=0x5A % (1 << width) or 1)
        slab = MISR(width, seed=oracle.state)
        slab.absorb_planes(slab_from_rows(matrix), rows)
        for response in matrix:
            oracle.absorb_vector(response)
        assert slab.signature == oracle.signature

    def test_aliasing_probability(self):
        assert MISR(32).aliasing_probability == 2.0**-32
        assert MISR(16).aliasing_probability == 2.0**-16


# ---------------------------------------------------------------------------
# the coverage loop
# ---------------------------------------------------------------------------


def run(circuit, faults, fault_model, **kwargs):
    kwargs.setdefault("window", 128)
    kwargs.setdefault("max_patterns", 512)
    return run_bist(
        circuit,
        LFSR(32, seed=1),
        MISR(32),
        faults,
        fault_model=fault_model,
        **kwargs,
    )


class TestCoverageLoop:
    def configurations(self):
        tiers = [("numpy", "interp"), ("numpy", "auto")]
        if native_available():
            tiers.append(("native", "auto"))
        return tiers

    @pytest.mark.parametrize("fault_model", ["stuck_at", "path_delay"])
    def test_curve_invariant_across_backends(self, fault_model):
        circuit = suite_circuit("c880")
        if fault_model == "stuck_at":
            faults = all_stuck_at_faults(circuit)
        else:
            faults = fault_list(circuit, cap=96, strategy="all")
        results = [
            run(circuit, faults, fault_model, backend=backend, fusion=fusion)
            for backend, fusion in self.configurations()
        ]
        baseline = results[0]
        assert baseline.windows == len(baseline.curve)
        applied = [a for a, _ in baseline.curve]
        detected = [d for _, d in baseline.curve]
        assert applied == sorted(applied) and detected == sorted(detected)
        for other in results[1:]:
            assert other.curve == baseline.curve
            assert other.signature == baseline.signature
            assert other.detected_flags == baseline.detected_flags

    def test_stop_reasons(self):
        circuit = suite_circuit("c880")
        faults = all_stuck_at_faults(circuit)
        full = run(circuit, faults, "stuck_at", max_patterns=4096)
        assert full.stop_reason == "all_detected"
        assert full.detected == full.faults == len(faults)
        budget = run(circuit, faults, "stuck_at", window=16, max_patterns=16)
        assert budget.stop_reason == "max_patterns"
        assert budget.patterns_applied == 16
        partial = run(
            circuit, faults, "stuck_at", window=32, target_coverage=0.5
        )
        assert partial.stop_reason == "target_coverage"
        assert partial.coverage >= 0.5

    def test_rejects_bad_arguments(self):
        circuit = c17()
        faults = all_stuck_at_faults(circuit)
        with pytest.raises(ValueError, match="fault_model"):
            run(circuit, faults, "transition")
        with pytest.raises(ValueError, match="target_coverage"):
            run(circuit, faults, "stuck_at", target_coverage=1.5)
        with pytest.raises(ValueError, match="window"):
            run(circuit, faults, "stuck_at", window=0)


# ---------------------------------------------------------------------------
# session, options, wire format
# ---------------------------------------------------------------------------


class TestSessionAndSerde:
    def test_session_bist_and_round_trip(self):
        session = AtpgSession(suite_circuit("c880"), options=Options(bist_window=128))
        report = session.bist(fault_model="stuck-at")
        assert report.fault_model == "stuck_at"
        assert report.test_class is None  # stuck-at ignores the class
        assert report.detected <= report.faults
        payload = serde.bist_report_to_payload(report)
        validate(payload, kind="repro/bist-report")
        again = serde.load(json.loads(json.dumps(payload)))
        assert again == report

    def test_path_delay_carries_the_test_class(self):
        session = AtpgSession(suite_circuit("c880"))
        report = session.bist(
            fault_model="path_delay",
            test_class="robust",
            max_faults=32,
            bist_max_patterns=256,
        )
        assert report.test_class is TestClass.ROBUST
        assert report.lfsr_polynomial == PRIMITIVE_POLYNOMIALS[32]

    def test_options_validation(self):
        with pytest.raises(ValueError, match="bist_kind"):
            Options(bist_kind="bogus").validate()
        with pytest.raises(ValueError, match="bist_seed"):
            Options(bist_seed=0).validate()
        with pytest.raises(ValueError, match="misr_width"):
            Options(misr_width=65).validate()
        with pytest.raises(ValueError, match="bist_target_coverage"):
            Options(bist_target_coverage=2.0).validate()
        # the bist layer travels on the wire with every other layer
        options = Options(bist_width=16, bist_seed=3)
        assert Options.from_layers(options.layers()) == options

    def test_report_schema_rejects_shape_drift(self):
        report = AtpgSession(c17()).bist(bist_max_patterns=64)
        payload = serde.bist_report_to_payload(report)
        payload["stop_reason"] = "ran_out_of_luck"
        with pytest.raises(SchemaError):
            validate(payload, kind="repro/bist-report")


# ---------------------------------------------------------------------------
# the service: sync dispatch, async jobs, metrics
# ---------------------------------------------------------------------------


def _poll_until(service, job_id, states, deadline=120.0):
    import time as _time

    end = _time.monotonic() + deadline
    while _time.monotonic() < end:
        payload = service.job_response(job_id).payload
        if payload["state"] in states:
            return payload
        _time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached {states}")


class TestService:
    def test_sync_dispatch(self):
        service = AtpgService()
        response = service.handle(
            BistRequest(circuit="c880", fault_model="stuck_at")
        )
        assert response.ok
        validate(response.payload, kind="repro/bist-report")
        assert response.payload["faults"] == len(
            all_stuck_at_faults(suite_circuit("c880"))
        )

    def test_async_job_matches_sync_and_counts_in_metrics(self):
        service = AtpgService()
        request = stamp(
            "repro/request.bist",
            {
                "circuit": "c880",
                "fault_model": "path_delay",
                "max_faults": 48,
                "options": stamp(
                    "repro/options",
                    {"bist": {"bist_max_patterns": 256}},
                ),
            },
        )
        submitted = service.submit_job("bist", request)
        assert submitted.ok and submitted.status == 202
        validate(submitted.payload, kind="repro/job")
        assert submitted.payload["verb"] == "bist"
        record = _poll_until(
            service, submitted.payload["id"], ("done", "failed")
        )
        assert record["state"] == "done"
        result = record["result"]
        validate(result, kind="repro/bist-report")
        sync = service.handle(
            BistRequest(
                circuit="c880",
                fault_model="path_delay",
                max_faults=48,
                options=Options(bist_max_patterns=256),
            )
        )
        assert result == sync.payload
        metrics = service.metrics()
        validate(metrics, kind="repro/metrics")
        assert metrics["jobs_by_verb"]["bist"] == 1
        assert metrics["jobs_by_verb"]["campaign"] == 0
        service.shutdown()

    def test_unknown_async_verb_is_rejected(self):
        service = AtpgService()
        response = service.submit_job(
            "generate", stamp("repro/request.generate", {"circuit": "c17"})
        )
        assert not response.ok
        assert response.status == 400
