"""Unit tests for the Circuit data structure."""

import pytest

from repro.circuit import Circuit, CircuitError, GateType, iter_gates_by_level


def build_half_adder() -> Circuit:
    c = Circuit("ha")
    a = c.add_input("a")
    b = c.add_input("b")
    c.add_gate("sum", GateType.XOR, [a, b])
    c.add_gate("carry", GateType.AND, ["a", "b"])
    c.mark_output("sum")
    c.mark_output("carry")
    return c.freeze()


class TestConstruction:
    def test_ids_are_dense_insertion_order(self):
        c = build_half_adder()
        assert [g.name for g in c.gates] == ["a", "b", "sum", "carry"]
        assert [g.index for g in c.gates] == [0, 1, 2, 3]

    def test_duplicate_name_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError, match="duplicate"):
            c.add_input("a")

    def test_fanin_by_name_must_exist(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError, match="no signal named"):
            c.add_gate("g", GateType.NOT, ["missing"])

    def test_fanin_count_enforced(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError, match="cannot take"):
            c.add_gate("g", GateType.AND, ["a"])
        with pytest.raises(CircuitError, match="cannot take"):
            c.add_gate("n", GateType.NOT, ["a", "a"])

    def test_freeze_requires_outputs(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError, match="no outputs"):
            c.freeze()

    def test_frozen_rejects_mutation(self):
        c = build_half_adder()
        with pytest.raises(CircuitError, match="frozen"):
            c.add_input("z")

    def test_mark_output_idempotent(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", GateType.NOT, ["a"])
        c.mark_output("g")
        c.mark_output("g")
        c.freeze()
        assert c.outputs == [c.index_of("g")]

    def test_string_gate_type(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("g", "INV", ["a"])
        assert c.gate("g").gate_type is GateType.NOT


class TestDerivedStructure:
    def test_levels(self):
        c = build_half_adder()
        assert c.level("a") == 0
        assert c.level("sum") == 1
        assert c.depth == 1

    def test_fanout(self):
        c = build_half_adder()
        assert set(c.fanout("a")) == {c.index_of("sum"), c.index_of("carry")}
        assert c.fanout("sum") == ()

    def test_topological_order_respects_levels(self):
        c = build_half_adder()
        order = c.topological_order()
        position = {s: i for i, s in enumerate(order)}
        for g in c.gates:
            for f in g.fanin:
                assert position[f] < position[g.index]

    def test_accessors_require_freeze(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError, match="frozen"):
            c.fanout("a")

    def test_iter_gates_by_level(self):
        c = build_half_adder()
        levels = dict(iter_gates_by_level(c))
        assert set(levels[0]) == {0, 1}
        assert set(levels[1]) == {2, 3}

    def test_counts(self):
        c = build_half_adder()
        assert c.num_signals == 4
        assert c.num_gates == 2
        assert len(c) == 4


class TestEvaluation:
    def test_half_adder_truth_table(self):
        c = build_half_adder()
        for a in (0, 1):
            for b in (0, 1):
                values = c.evaluate({"a": a, "b": b})
                assert values["sum"] == a ^ b
                assert values["carry"] == a & b

    def test_sequence_assignment(self):
        c = build_half_adder()
        assert c.output_values([1, 1]) == (0, 1)

    def test_wrong_vector_length(self):
        c = build_half_adder()
        with pytest.raises(CircuitError, match="expected 2"):
            c.evaluate([1])

    def test_non_binary_value_rejected(self):
        c = build_half_adder()
        with pytest.raises(CircuitError, match="0/1"):
            c.evaluate([1, 2])

    def test_stats(self):
        c = build_half_adder()
        stats = c.stats()
        assert stats["inputs"] == 2
        assert stats["outputs"] == 2
        assert stats["gates"] == 2
        assert stats["n_xor"] == 1
        assert stats["n_and"] == 1
