"""Unit tests for the bit-parallel TPG state and implication engine."""

import pytest

from repro.circuit import CircuitBuilder
from repro.circuit.library import c17, paper_example
from repro.core.state import SEVEN_VALUED, THREE_VALUED, TpgState
from repro.logic import three_valued as tv
from repro.logic import seven_valued as sv


def and_or_circuit():
    b = CircuitBuilder("tiny")
    b.inputs("a", "b", "c")
    b.and_("g", "a", "b")
    b.or_("y", "g", "c")
    b.outputs("y")
    return b.build()


class TestAssign:
    def test_assign_merges_and_reports_change(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 4)
        a = c.index_of("a")
        assert st.assign(a, tv.encode_word(1, 0b0011))
        assert not st.assign(a, tv.encode_word(1, 0b0001))  # no new bits
        assert st.assign(a, tv.encode_word(1, 0b0100))
        assert st.planes[a] == (0, 0b0111)

    def test_conflict_mask_and_site(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 2)
        a = c.index_of("a")
        st.assign(a, tv.encode_word(1, 0b01))
        st.assign(a, tv.encode_word(0, 0b01))
        assert st.conflict_mask == 0b01
        assert st.conflict_sites[0] == a

    def test_width_masking(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 2)
        a = c.index_of("a")
        st.assign(a, (0, 0b1111))  # bits beyond width are dropped
        assert st.planes[a] == (0, 0b11)


class TestImply:
    def test_forward_propagation(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        st.assign(c.index_of("a"), tv.encode(1))
        st.assign(c.index_of("b"), tv.encode(1))
        st.assign(c.index_of("c"), tv.encode(0))
        st.imply()
        assert tv.decode_lane(st.planes[c.index_of("g")], 0) == "1"
        assert tv.decode_lane(st.planes[c.index_of("y")], 0) == "1"

    def test_backward_propagation(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        st.assign(c.index_of("y"), tv.encode(0))
        st.imply()
        # y = OR(g, c) = 0 forces g = 0 and c = 0; g = AND(a,b) = 0 is
        # not unique, so a and b stay X
        assert tv.decode_lane(st.planes[c.index_of("g")], 0) == "0"
        assert tv.decode_lane(st.planes[c.index_of("c")], 0) == "0"
        assert tv.decode_lane(st.planes[c.index_of("a")], 0) == "X"

    def test_backward_disabled(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 1, use_backward=False)
        st.assign(c.index_of("y"), tv.encode(0))
        st.imply()
        assert tv.decode_lane(st.planes[c.index_of("g")], 0) == "X"

    def test_per_lane_independence(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 2)
        st.assign(c.index_of("a"), (0b10, 0b01))  # lane0: 1, lane1: 0
        st.assign(c.index_of("b"), (0, 0b11))  # both lanes 1
        st.imply()
        g = st.planes[c.index_of("g")]
        assert tv.decode_lane(g, 0) == "1"
        assert tv.decode_lane(g, 1) == "0"

    def test_conflict_through_implication(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        st.assign(c.index_of("y"), tv.encode(0))
        st.assign(c.index_of("c"), tv.encode(1))
        st.imply()
        assert st.conflict_mask == 1

    def test_seven_valued_stability_propagates(self):
        c = and_or_circuit()
        st = TpgState(c, SEVEN_VALUED, 1)
        st.assign(c.index_of("a"), sv.encode("S1"))
        st.assign(c.index_of("b"), sv.encode("R"))
        st.assign(c.index_of("c"), sv.encode("S0"))
        st.imply()
        assert sv.decode_lane(st.planes[c.index_of("g")], 0) == "R"
        assert sv.decode_lane(st.planes[c.index_of("y")], 0) == "R"


class TestRollback:
    def test_rollback_restores_exactly(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 2)
        st.assign(c.index_of("a"), tv.encode_word(1, 0b11))
        st.imply()
        snapshot = list(st.planes)
        conflict_before = st.conflict_mask
        token = st.mark()
        st.assign(c.index_of("b"), tv.encode_word(1, 0b11))
        st.assign(c.index_of("c"), tv.encode_word(1, 0b01))
        st.imply()
        assert st.planes != snapshot
        st.rollback(token)
        assert st.planes == snapshot
        assert st.conflict_mask == conflict_before

    def test_nested_marks(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        t1 = st.mark()
        st.assign(c.index_of("a"), tv.encode(1))
        st.mark()
        st.assign(c.index_of("b"), tv.encode(1))
        st.rollback(t1)
        assert st.planes[c.index_of("a")] == tv.X
        assert st.planes[c.index_of("b")] == tv.X


class TestJustification:
    def test_unjustified_scan(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        st.assign(c.index_of("y"), tv.encode(1))
        st.imply()
        unjust = st.scan_unjustified()
        assert unjust == [(c.index_of("y"), 1)]

    def test_all_justified_after_support(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        st.assign(c.index_of("y"), tv.encode(1))
        st.assign(c.index_of("c"), tv.encode(1))
        st.imply()
        assert st.scan_unjustified() == []
        assert st.all_justified_mask() == 1

    def test_conflicted_lanes_not_reported(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        st.assign(c.index_of("y"), tv.encode(1))
        st.assign(c.index_of("g"), tv.encode(0))
        st.assign(c.index_of("c"), tv.encode(0))
        st.imply()
        assert st.conflict_mask == 1
        assert st.scan_unjustified() == []
        assert st.all_justified_mask() == 0


class TestLaneUtilities:
    def test_flatten_lane(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 4)
        st.assign(c.index_of("a"), (0b0010, 0b0101))
        st.flatten_lane(0)  # lane 0 has value 1
        assert st.planes[c.index_of("a")] == (0, 0b1111)
        st2 = TpgState(c, THREE_VALUED, 4)
        st2.assign(c.index_of("a"), (0b0010, 0b0101))
        st2.flatten_lane(1)  # lane 1 has value 0
        assert st2.planes[c.index_of("a")] == (0b1111, 0)

    def test_format_lane_word(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 4)
        st.assign(c.index_of("a"), (0b0001, 0b0110))
        assert st.format_lane_word("a") == "x110"

    def test_lane_values(self):
        c = and_or_circuit()
        st = TpgState(c, THREE_VALUED, 1)
        st.assign(c.index_of("a"), tv.encode(1))
        values = st.lane_values(0)
        assert values["a"] == "1"
        assert values["y"] == "X"
