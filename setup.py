"""Setup shim for environments without PEP 660 editable-wheel support.

Registers the ``tip`` multi-command console script plus the
historical per-command names as aliases of its subcommands.
"""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "tip = repro.cli:main",
            # aliases: tip-<name> == tip <name>
            "tip-atpg = repro.cli:main_atpg",
            "tip-campaign = repro.cli:main_campaign",
            "tip-paths = repro.cli:main_paths",
            "tip-bench-sim = repro.cli:main_bench_sim",
            "tip-experiments = repro.cli:main_experiments",
            "tip-serve = repro.cli:main_serve",
            "tip-validate = repro.cli:main_validate",
        ]
    }
)
