"""Fault-dropping coverage-curve simulation for BIST pattern streams.

The driver loop of the subsystem: pull a window of patterns from the
LFSR as one packed lane slab, grade the remaining (undetected) faults
against the whole window in one kernel call, drop what was caught,
absorb the fault-free PO responses into the MISR, record a coverage
point, and stop when the target coverage or the pattern budget is
reached.  Works for both fault models:

* ``stuck_at`` — single-vector patterns through
  :class:`repro.sim.stuck_at_sim.StuckAtSimulator`;
* ``path_delay`` — consecutive LFSR states as launch/capture pairs
  through :meth:`repro.sim.delay_sim.DelayFaultSimulator.detection_masks`.

Every backend/fusion combination grades bit-identically (the kernel's
contract), so the curve itself is backend-invariant — asserted by the
test suite and the bench harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..circuit import Circuit
from ..kernel.packed import unpack_bits
from ..paths import TestClass
from ..sim.logic_sim import simulate_array
from .lfsr import LFSR
from .misr import MISR

#: Fault models the loop can grade.
FAULT_MODELS: Tuple[str, ...] = ("stuck_at", "path_delay")

#: Why a run ended.
STOP_REASONS: Tuple[str, ...] = (
    "target_coverage",
    "all_detected",
    "max_patterns",
    "stopped",
)


@dataclass
class BistResult:
    """Raw loop outcome (the session wraps this into a `BistReport`)."""

    fault_model: str
    faults: int
    detected: int
    patterns_applied: int
    windows: int
    stop_reason: str
    signature: int
    curve: List[Tuple[int, int]] = field(default_factory=list)
    detected_flags: List[bool] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        return self.detected / self.faults if self.faults else 1.0


def _map_backend(fault_model: str, backend: str) -> str:
    # the stuck-at simulator's vectorized path is selected by "auto";
    # "numpy" only exists as a distinct choice on the delay simulator
    if fault_model == "stuck_at" and backend == "numpy":
        return "auto"
    return backend


def run_bist(
    circuit: Circuit,
    lfsr: LFSR,
    misr: MISR,
    faults: Sequence,
    *,
    fault_model: str = "stuck_at",
    test_class: TestClass = TestClass.NONROBUST,
    window: int = 256,
    max_patterns: int = 4096,
    target_coverage: Optional[float] = None,
    backend: str = "auto",
    fusion: str = "auto",
    control=None,
) -> BistResult:
    """Run the windowed fault-dropping loop; mutates *lfsr* and *misr*.

    Args:
        faults: the fault set to grade — ``StuckAtFault`` objects for
            ``fault_model="stuck_at"``, ``PathDelayFault`` objects for
            ``"path_delay"``.
        window: patterns per simulation window (one kernel call and
            one coverage point each).
        max_patterns: hard pattern budget.
        target_coverage: stop once ``detected / faults`` reaches this
            fraction (``None`` = run out the budget).
        control: optional :class:`repro.campaign.CampaignControl`; its
            ``should_stop`` is polled at window boundaries and
            ``on_round`` receives per-window progress counters — the
            hook the service's job queue cancels and reports through.

    The good-machine PO responses of every applied window are absorbed
    into *misr* (capture-vector steady state), so ``misr.signature``
    after the run is the golden signature of the applied stream.
    """
    if fault_model not in FAULT_MODELS:
        raise ValueError(
            f"fault_model must be one of {FAULT_MODELS}, got {fault_model!r}"
        )
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if max_patterns < 1:
        raise ValueError(f"max_patterns must be >= 1, got {max_patterns}")
    if target_coverage is not None and not 0.0 < target_coverage <= 1.0:
        raise ValueError(
            f"target_coverage must be in (0, 1], got {target_coverage}"
        )

    n_pis = len(circuit.inputs)
    outputs = np.asarray(circuit.outputs, dtype=np.intp)
    remaining = list(enumerate(faults))
    flags = [False] * len(remaining)
    detected = 0
    applied = 0
    windows = 0
    curve: List[Tuple[int, int]] = []
    two_vector = fault_model == "path_delay"

    if fault_model == "stuck_at":
        from ..sim.stuck_at_sim import StuckAtSimulator  # lazy: heavy import

        sim = StuckAtSimulator(
            circuit, fusion=fusion, backend=_map_backend(fault_model, backend)
        )
    else:
        from ..sim.delay_sim import DelayFaultSimulator  # lazy: import cycle

        sim = DelayFaultSimulator(
            circuit, test_class, backend=backend, fusion=fusion
        )

    def target_met() -> bool:
        if not flags:
            return True
        if not remaining:
            return True
        if target_coverage is None:
            return False
        return detected / len(flags) >= target_coverage

    stop_reason = None
    while True:
        if target_met():
            stop_reason = (
                "all_detected" if not remaining else "target_coverage"
            )
            break
        if applied >= max_patterns:
            stop_reason = "max_patterns"
            break
        if control is not None and control.should_stop():
            stop_reason = "stopped"
            break

        count = min(window, max_patterns - applied)
        packed = lfsr.take(count, n_pis, two_vector=two_vector)

        # golden responses: capture-vector steady state into the MISR
        values = simulate_array(circuit, packed.v2, fusion=fusion)
        misr.absorb_planes(values[outputs], count)

        if fault_model == "stuck_at":
            vectors = list(unpack_bits(packed.v2, count))
            hits = sim.detected_faults(vectors, [f for _, f in remaining])
            caught = [hits.get(f, 0) != 0 for _, f in remaining]
        else:
            masks = sim.detection_masks(packed, [f for _, f in remaining])
            caught = [mask != 0 for mask in masks]

        still = []
        for (index, fault), hit in zip(remaining, caught):
            if hit:
                flags[index] = True
                detected += 1
            else:
                still.append((index, fault))
        remaining = still
        applied += count
        windows += 1
        curve.append((applied, detected))
        if control is not None:
            control.on_round(
                {
                    "windows": windows,
                    "patterns": applied,
                    "faults": len(flags),
                    "detected": detected,
                }
            )

    return BistResult(
        fault_model=fault_model,
        faults=len(flags),
        detected=detected,
        patterns_applied=applied,
        windows=windows,
        stop_reason=stop_reason,
        signature=misr.signature,
        curve=curve,
        detected_flags=flags,
    )
