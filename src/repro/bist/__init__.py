"""Pseudorandom BIST: LFSR pattern generation, MISR compaction, coverage curves.

The paper's bit-parallel premise pays off hardest here — millions of
pseudorandom patterns need grading, none need backtracking.  ``LFSR``
generates pattern batches directly in packed lane-slab form
(:class:`repro.kernel.packed.PackedPatterns`), ``MISR`` compacts PO
response slabs into signatures, and :func:`run_bist` drives the
fault-dropping coverage-curve loop for both stuck-at and path-delay
fault models.
"""

from .lfsr import LFSR, LFSR_KINDS, PRIMITIVE_POLYNOMIALS, default_polynomial
from .misr import MISR
from .coverage import BistResult, run_bist
from .report import BistReport

__all__ = [
    "BistReport",
    "BistResult",
    "LFSR",
    "LFSR_KINDS",
    "MISR",
    "PRIMITIVE_POLYNOMIALS",
    "default_polynomial",
    "run_bist",
]
