"""`BistReport` — the result object of a BIST run.

Carries the full generator/compactor configuration (enough to replay
the run bit-for-bit), the coverage curve, and the MISR signature with
its aliasing estimate.  Serialized as the versioned
``repro/bist-report`` schema by :mod:`repro.api.serde`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..paths import TestClass


@dataclass
class BistReport:
    """Outcome of one pseudorandom BIST session.

    ``curve`` is the coverage telemetry: one ``(patterns_applied,
    faults_detected)`` point per simulation window, cumulative — the
    detected-per-window series a search policy would mine for the
    random-pattern-resistant tail.
    """

    circuit_name: str
    fault_model: str
    test_class: Optional[TestClass]
    lfsr_width: int
    lfsr_kind: str
    lfsr_polynomial: int
    lfsr_seed: int
    phase_spread: int
    misr_width: int
    misr_polynomial: int
    signature: int
    aliasing_probability: float
    faults: int
    detected: int
    patterns_applied: int
    windows: int
    stop_reason: str
    max_patterns: int
    target_coverage: Optional[float]
    curve: List[Tuple[int, int]] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        return self.detected / self.faults if self.faults else 1.0

    def summary(self) -> str:
        lines = [
            f"BIST {self.circuit_name}: {self.fault_model} "
            f"{self.detected}/{self.faults} faults "
            f"({self.coverage:.1%}) in {self.patterns_applied} patterns "
            f"({self.windows} windows, stop: {self.stop_reason})",
            f"  LFSR: {self.lfsr_kind} width={self.lfsr_width} "
            f"poly={self.lfsr_polynomial:#x} seed={self.lfsr_seed:#x} "
            f"spread={self.phase_spread}",
            f"  MISR: width={self.misr_width} "
            f"signature={self.signature:#x} "
            f"aliasing<={self.aliasing_probability:.3g}",
        ]
        return "\n".join(lines)
