"""Multi-input signature register: PO response slabs to one signature.

The compaction half of the BIST architecture (Ahmad, arXiv:1102.0884):
every clock the register does one internal-XOR (Galois) step and XORs
the circuit's output bits into its cells, so the final state is a
polynomial-division remainder of the whole response stream.  A faulty
response escapes detection only if its error stream is a multiple of
the characteristic polynomial — probability ``2**-k`` for a width-``k``
register over random error streams, the aliasing estimate reported
alongside every signature.

With ``seed=0`` the register is a linear map of the response stream:
``signature(a XOR b) == signature(a) XOR signature(b)`` — the property
the hypothesis suite checks, and the reason golden signatures can be
computed from the fault-free run alone.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from ..kernel.packed import unpack_bits
from .lfsr import default_polynomial, reverse_bits


class MISR:
    """Width-*k* multi-input signature register.

    Args:
        width: register width ``k`` (the aliasing exponent).
        polynomial: characteristic polynomial; defaults to the
            primitive table entry for *width*.
        seed: initial state (0 keeps the register linear).

    Circuit outputs beyond *width* fold onto cell ``j % width`` —
    the standard wiring when ``n_outputs > k``.
    """

    def __init__(
        self, width: int, polynomial: Optional[int] = None, seed: int = 0
    ) -> None:
        if polynomial is None:
            polynomial = default_polynomial(width)
        if polynomial.bit_length() - 1 != width:
            raise ValueError(
                f"polynomial degree {polynomial.bit_length() - 1} != width {width}"
            )
        if not 0 <= seed < (1 << width):
            raise ValueError(f"seed must fit {width} bits, got {seed}")
        self.width = width
        self.polynomial = polynomial
        self.seed = seed
        self.state = seed
        taps = polynomial & ((1 << width) - 1)
        self._galois_mask = reverse_bits(taps, width)

    @property
    def signature(self) -> int:
        return self.state

    @property
    def aliasing_probability(self) -> float:
        """Escape probability for a random error stream: ``2**-width``."""
        return 2.0 ** -self.width

    def _fold(self, bits: Iterable[int]) -> int:
        folded = 0
        for j, bit in enumerate(bits):
            if bit:
                folded ^= 1 << (j % self.width)
        return folded

    def absorb_word(self, data: int) -> int:
        """One clock: Galois step, then XOR-inject *data* (pre-folded)."""
        out = self.state & 1
        self.state >>= 1
        if out:
            self.state ^= self._galois_mask
        self.state ^= data
        return self.state

    def absorb_vector(self, bits: Iterable[int]) -> int:
        """One clock absorbing a PO bit sequence (oracle path)."""
        return self.absorb_word(self._fold(bits))

    def absorb_planes(self, planes: np.ndarray, n_patterns: int) -> int:
        """Absorb a PO response slab, pattern lanes in order.

        *planes* is the ``(n_outputs, n_words)`` uint64 lane-plane
        array the word backends produce for the output signals; lane
        ``k`` is pattern ``k``'s response.  The fold onto ``width``
        cells is vectorized across the slab; only the inherently
        serial register clocking (three int ops per pattern) runs in a
        Python loop.
        """
        rows = unpack_bits(planes, n_patterns)  # (n_patterns, n_outputs)
        n_outputs = rows.shape[1]
        folded = np.zeros((n_patterns, self.width), dtype=np.uint8)
        for j in range(n_outputs):
            np.bitwise_xor(folded[:, j % self.width], rows[:, j], folded[:, j % self.width])
        packed = np.packbits(folded, axis=1, bitorder="little")
        stride = packed.shape[1]
        data = packed.tobytes()
        state = self.state
        mask = self._galois_mask
        for k in range(n_patterns):
            inject = int.from_bytes(data[k * stride : (k + 1) * stride], "little")
            out = state & 1
            state >>= 1
            if out:
                state ^= mask
            state ^= inject
        self.state = state
        return state
