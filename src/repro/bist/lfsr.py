"""Fibonacci and Galois LFSRs generating packed pattern slabs.

The pattern source of the BIST subsystem.  Both register forms share
one characteristic-polynomial convention: ``poly`` is the integer with
bit ``n`` set (the ``x**n`` term), bit 0 set (primitive polynomials
have a nonzero constant term), and bit ``i`` set for each coefficient
``c_i``.  The feedback taps are ``poly`` with the ``x**n`` bit
stripped.

Both forms are generated bit-parallel through the same trick: the
cell-0 output stream ``b`` of either register obeys the linear
recurrence ``b[t + n] = XOR of b[t + i]`` over the tap coefficients,
so a whole batch of states is a set of sliding windows over one long
stream computed by a blocked shift-XOR recurrence on a Python int —
no per-pattern Python loop.  For the Fibonacci form cell ``i`` at time
``t`` *is* stream bit ``t + i``; for the Galois form cell ``i`` is a
fixed XOR of at most ``weight(taps)`` shifted copies of the stream
(see :meth:`LFSR._galois_rows`).

The phase shifter is the classical offset network: PI ``j`` taps the
sequence ``phase_spread * j`` steps ahead of cell 0, so an ``n``-bit
register fans out to arbitrarily many circuit inputs without the
shift-correlation a plain width extension would have.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..kernel.packed import PackedPatterns

#: Register forms.
LFSR_KINDS: Tuple[str, ...] = ("fibonacci", "galois")

#: Known-primitive characteristic polynomials by register width.
#:
#: Each entry is verified primitive by an order-of-x certification
#: (``x`` has multiplicative order ``2**n - 1`` modulo the polynomial,
#: which no reducible polynomial of degree ``n`` admits) — see
#: ``tests/test_bist.py`` for the maximal-length checks at small
#: widths.  Trinomials with a large minimum feedback lag are preferred
#: where they exist: the blocked stream recurrence emits ``min(lag)``
#: bits per Python-int operation.
PRIMITIVE_POLYNOMIALS: Dict[int, int] = {
    2: 0x7,
    3: 0xB,
    4: 0x13,
    5: 0x25,
    6: 0x43,
    7: 0x83,
    8: 0x11D,
    9: 0x211,
    10: 0x409,
    11: 0x805,
    12: 0x1053,
    13: 0x201B,
    14: 0x4443,
    15: 0x8003,
    16: 0x1100B,
    17: 0x20009,
    18: 0x40081,
    19: 0x80027,
    20: 0x100009,
    21: 0x200005,
    22: 0x400003,
    23: 0x800021,
    24: 0x1000087,
    25: 0x2000009,
    26: 0x4000047,
    27: 0x8000027,
    28: 0x10000009,
    29: 0x20000005,
    30: 0x40000053,
    31: 0x80000009,
    32: 0x100400007,
    64: 0x1000000000000001B,
}


def default_polynomial(width: int) -> int:
    """The table's primitive polynomial for *width* (ValueError if absent)."""
    try:
        return PRIMITIVE_POLYNOMIALS[width]
    except KeyError:
        known = ", ".join(str(w) for w in sorted(PRIMITIVE_POLYNOMIALS))
        raise ValueError(
            f"no primitive polynomial on record for width {width}; "
            f"known widths: {known} (pass polynomial= explicitly)"
        ) from None


def reverse_bits(value: int, width: int) -> int:
    """Bit-reverse *value* over *width* bits."""
    out = 0
    for i in range(width):
        out |= ((value >> i) & 1) << (width - 1 - i)
    return out


def xpow_mod(exponent: int, poly: int) -> int:
    """Coefficient mask of ``x**exponent`` modulo *poly* over GF(2).

    Bit ``i`` of the result is the coefficient of ``x**i``; since
    Fibonacci cell ``i`` holds stream bit ``t + i``, the result doubles
    as the parity mask that reads stream bit ``t + exponent`` out of
    the state window — the per-state oracle of the phase shifter.
    """
    n = poly.bit_length() - 1
    value = 1
    for _ in range(exponent):
        value <<= 1
        if (value >> n) & 1:
            value ^= poly
    return value


def _parity(value: int) -> int:
    return bin(value).count("1") & 1


def _pack_rows(rows: np.ndarray) -> np.ndarray:
    """(n_pis, count) 0/1 rows → (n_pis, n_words) uint64 lane planes.

    The transposed-input twin of :func:`repro.kernel.packed.pack_bits`
    — batch generation already produces per-input rows, so packing is
    a straight ``packbits`` along the pattern axis.
    """
    n_pis, count = rows.shape
    n_words = max(1, -(-count // 64))
    padded = np.zeros((n_pis, n_words * 64), dtype=np.uint8)
    padded[:, :count] = rows
    packed = np.packbits(padded, axis=1, bitorder="little")
    return np.ascontiguousarray(packed).view("<u8").astype(np.uint64)


class LFSR:
    """A maximal-length LFSR with phase-shifter fanout to ``n_pis`` inputs.

    Args:
        width: register width ``n``; must be in
            :data:`PRIMITIVE_POLYNOMIALS` unless *polynomial* is given.
        kind: ``"fibonacci"`` (external XOR) or ``"galois"``
            (internal XOR) — same characteristic polynomial, same
            period, different state-to-stream wiring.
        polynomial: characteristic polynomial override (bit ``n`` and
            bit 0 must be set).  The maximal-length guarantee only
            holds for primitive polynomials.
        seed: nonzero initial state (``1 <= seed < 2**width``).
        phase_spread: offset step of the phase shifter; PI ``j`` taps
            the stream ``phase_spread * j`` bits ahead of cell 0
            (Galois PIs below *width* tap the register cells directly).
    """

    def __init__(
        self,
        width: int,
        kind: str = "fibonacci",
        polynomial: Optional[int] = None,
        seed: int = 1,
        phase_spread: int = 1,
    ) -> None:
        if kind not in LFSR_KINDS:
            raise ValueError(f"kind must be one of {LFSR_KINDS}, got {kind!r}")
        if polynomial is None:
            polynomial = default_polynomial(width)
        if polynomial.bit_length() - 1 != width:
            raise ValueError(
                f"polynomial degree {polynomial.bit_length() - 1} != width {width}"
            )
        if not polynomial & 1:
            raise ValueError("characteristic polynomial needs a nonzero constant term")
        if not 1 <= seed < (1 << width):
            raise ValueError(f"seed must be nonzero and fit {width} bits, got {seed}")
        if phase_spread < 1:
            raise ValueError(f"phase_spread must be >= 1, got {phase_spread}")
        self.width = width
        self.kind = kind
        self.polynomial = polynomial
        self.seed = seed
        self.phase_spread = phase_spread
        self.state = seed
        self._taps = polynomial & ((1 << width) - 1)
        # Galois feedback mask: coefficient c_i lands on cell n-1-i, so
        # the injection constant is the bit-reverse of the tap mask.
        self._galois_mask = reverse_bits(self._taps, width)
        # stream recurrence: b[T] = XOR of b[T - lag] over these lags
        self._lags = sorted(
            width - i for i in range(width) if (self._taps >> i) & 1
        )
        self._offset_masks: Dict[int, int] = {}

    # -- per-step oracle path ------------------------------------------
    def step(self) -> int:
        """Advance one clock; returns the new state."""
        if self.kind == "fibonacci":
            feedback = _parity(self.state & self._taps)
            self.state = (self.state >> 1) | (feedback << (self.width - 1))
        else:
            out = self.state & 1
            self.state >>= 1
            if out:
                self.state ^= self._galois_mask
        return self.state

    def _window(self) -> int:
        """Stream bits ``b[t] .. b[t + n - 1]`` as an int, from the state.

        For the Fibonacci form the state *is* the window.  For the
        Galois form cell ``i`` is ``b[t+i] ^ XOR(G_j * b[t+i-1-j])``
        over the set injection bits ``j < i``; solving ascending in
        ``i`` inverts that triangular system.
        """
        if self.kind == "fibonacci":
            return self.state
        window = 0
        mask = self._galois_mask
        for i in range(self.width):
            bit = (self.state >> i) & 1
            for j in range(i):
                if (mask >> j) & 1:
                    bit ^= (window >> (i - 1 - j)) & 1
            window |= bit << i
        return window

    def _state_from_window(self, window: int) -> int:
        """Inverse of :meth:`_window` (identity for the Fibonacci form)."""
        if self.kind == "fibonacci":
            return window
        state = 0
        mask = self._galois_mask
        for i in range(self.width):
            bit = (window >> i) & 1
            for j in range(i):
                if (mask >> j) & 1:
                    bit ^= (window >> (i - 1 - j)) & 1
            state |= bit << i
        return state

    def _offset_mask(self, offset: int) -> int:
        """Parity mask reading stream bit ``t + offset`` from the window."""
        mask = self._offset_masks.get(offset)
        if mask is None:
            mask = xpow_mod(offset, self.polynomial)
            self._offset_masks[offset] = mask
        return mask

    def vector(self, n_pis: int) -> List[int]:
        """The *n_pis*-bit pattern the current state drives (oracle path).

        One bit per circuit input, through the phase shifter.  The
        batch generator :meth:`take` must agree with this bit-for-bit;
        the hypothesis suite holds it to that.
        """
        window = self._window()
        bits = []
        for j in range(n_pis):
            if self.kind == "galois" and j < self.width:
                bits.append((self.state >> j) & 1)
            else:
                mask = self._offset_mask(j * self.phase_spread)
                bits.append(_parity(window & mask))
        return bits

    # -- bit-parallel batch path ---------------------------------------
    def _stream(self, n_bits: int) -> np.ndarray:
        """First *n_bits* of the cell-0 output stream as a 0/1 uint8 array.

        Blocked shift-XOR recurrence on one Python int: each iteration
        emits ``min(lags)`` new bits at once (every referenced bit is
        already ``>= min(lags)`` positions behind the write cursor), so
        the Python-level cost is ``O(n_bits / min_lag)`` big-int ops,
        not ``O(n_bits)`` register steps.
        """
        stream = self._window()
        have = self.width
        lags = self._lags
        min_lag = lags[0]
        while have < n_bits:
            block = min(min_lag, n_bits - have)
            mask = (1 << block) - 1
            bits = 0
            for lag in lags:
                bits ^= (stream >> (have - lag)) & mask
            stream |= bits << have
            have += block
        data = stream.to_bytes((have + 7) // 8, "little")
        return np.unpackbits(
            np.frombuffer(data, dtype=np.uint8), bitorder="little"
        )[:n_bits]

    def _rows(self, bits: np.ndarray, base: int, count: int, n_pis: int) -> np.ndarray:
        """Per-PI pattern rows for states ``base .. base + count - 1``."""
        rows = np.empty((n_pis, count), dtype=np.uint8)
        if self.kind == "fibonacci":
            for j in range(n_pis):
                offset = base + j * self.phase_spread
                rows[j] = bits[offset : offset + count]
            return rows
        mask = self._galois_mask
        for j in range(n_pis):
            if j < self.width:
                # cell j = b[t+j] ^ XOR of injected copies of the stream
                row = bits[base + j : base + j + count].copy()
                for g in range(j):
                    if (mask >> g) & 1:
                        np.bitwise_xor(
                            row, bits[base + j - 1 - g : base + j - 1 - g + count], row
                        )
                rows[j] = row
            else:
                offset = base + j * self.phase_spread
                rows[j] = bits[offset : offset + count]
        return rows

    def _max_offset(self, n_pis: int) -> int:
        if self.kind == "fibonacci":
            return (n_pis - 1) * self.phase_spread
        if n_pis > self.width:
            return max(self.width - 1, (n_pis - 1) * self.phase_spread)
        return self.width - 1

    def take(self, count: int, n_pis: int, two_vector: bool = False) -> PackedPatterns:
        """Generate *count* patterns as a packed lane slab; advances the state.

        With ``two_vector=True`` pattern ``k`` is the launch/capture
        pair ``(state k, state k+1)`` — consecutive register states,
        exactly the vectors a hardware BIST controller shifts through
        the scan chain — and the register advances *count* steps so the
        next batch's first launch vector is this batch's last capture
        vector (windows concatenate seamlessly).  With
        ``two_vector=False`` each pattern is the single vector of state
        ``k`` (``v1 == v2``, the stuck-at case).

        The whole batch is produced by numpy slicing over one stream
        array — no per-pattern Python loop, per the lane-slab contract.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if n_pis < 1:
            raise ValueError(f"n_pis must be >= 1, got {n_pis}")
        last_state = count if two_vector else count - 1
        n_bits = 1 + max(
            last_state + self._max_offset(n_pis), count + self.width - 1
        )
        bits = self._stream(n_bits)
        v1 = _pack_rows(self._rows(bits, 0, count, n_pis))
        if two_vector:
            v2 = _pack_rows(self._rows(bits, 1, count, n_pis))
        else:
            v2 = v1
        # advance to state ``count``: its window is the stream slice there
        window = int.from_bytes(
            np.packbits(bits[count : count + self.width], bitorder="little").tobytes(),
            "little",
        )
        self.state = self._state_from_window(window)
        return PackedPatterns(v1=v1, v2=v2, n_patterns=count)
