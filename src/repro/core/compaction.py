"""Test set compaction.

Generated test sets carry one pattern per targeted fault; production
flows compact them because tester time is expensive.  Two standard
post-processes are provided, both driven by the PPSFP simulator so
compaction never loses coverage:

* **reverse-order dropping**: simulate the patterns latest-first and
  keep only those that detect a not-yet-covered fault (late patterns
  were generated for the hard faults and tend to cover many easy
  ones),
* **greedy set cover**: repeatedly keep the pattern covering the most
  uncovered faults (slower, usually smaller sets).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..circuit import Circuit
from ..paths import PathDelayFault, TestClass
from ..sim.delay_sim import DelayFaultSimulator
from .patterns import TestPattern


def _coverage_table(
    circuit: Circuit,
    patterns: Sequence[TestPattern],
    faults: Sequence[PathDelayFault],
    test_class: TestClass,
    batch: int = 64,
) -> List[Set[int]]:
    """For each pattern, the set of fault indices it detects."""
    simulator = DelayFaultSimulator(circuit, test_class)
    covers: List[Set[int]] = [set() for _ in patterns]
    for start in range(0, len(patterns), batch):
        chunk = patterns[start : start + batch]
        hits = simulator.detected_faults(chunk, faults)
        for fault_index, fault in enumerate(faults):
            lanes = hits[fault]
            while lanes:
                lane = (lanes & -lanes).bit_length() - 1
                lanes &= lanes - 1
                covers[start + lane].add(fault_index)
    return covers


def reverse_order_compaction(
    circuit: Circuit,
    patterns: Sequence[TestPattern],
    faults: Sequence[PathDelayFault],
    test_class: TestClass = TestClass.NONROBUST,
) -> List[TestPattern]:
    """Keep a pattern only if it detects a fault no later pattern does.

    Preserves the full detected-fault set (checked by the tests).
    """
    covers = _coverage_table(circuit, patterns, faults, test_class)
    kept: List[Tuple[int, TestPattern]] = []
    covered: Set[int] = set()
    for index in range(len(patterns) - 1, -1, -1):
        fresh = covers[index] - covered
        if fresh:
            covered |= covers[index]
            kept.append((index, patterns[index]))
    kept.sort(key=lambda item: item[0])
    return [pattern for _idx, pattern in kept]


def greedy_compaction(
    circuit: Circuit,
    patterns: Sequence[TestPattern],
    faults: Sequence[PathDelayFault],
    test_class: TestClass = TestClass.NONROBUST,
) -> List[TestPattern]:
    """Greedy set cover over the pattern/fault detection table."""
    covers = _coverage_table(circuit, patterns, faults, test_class)
    target: Set[int] = set()
    for cover in covers:
        target |= cover
    remaining = set(target)
    available = set(range(len(patterns)))
    chosen: List[int] = []
    while remaining and available:
        best = max(available, key=lambda k: len(covers[k] & remaining))
        gain = covers[best] & remaining
        if not gain:
            break
        chosen.append(best)
        remaining -= gain
        available.discard(best)
    chosen.sort()
    return [patterns[k] for k in chosen]


def compaction_report(
    circuit: Circuit,
    patterns: Sequence[TestPattern],
    faults: Sequence[PathDelayFault],
    test_class: TestClass = TestClass.NONROBUST,
) -> Dict[str, object]:
    """Before/after sizes and coverage for both strategies."""
    simulator = DelayFaultSimulator(circuit, test_class)
    reverse = reverse_order_compaction(circuit, patterns, faults, test_class)
    greedy = greedy_compaction(circuit, patterns, faults, test_class)
    return {
        "patterns": len(patterns),
        "reverse_order": len(reverse),
        "greedy": len(greedy),
        "coverage_full": simulator.coverage(list(patterns), list(faults)),
        "coverage_reverse": simulator.coverage(reverse, list(faults)),
        "coverage_greedy": simulator.coverage(greedy, list(faults)),
    }
