"""Test set compaction.

Generated test sets carry one pattern per targeted fault; production
flows compact them because tester time is expensive.  Two standard
post-processes are provided, both driven by the PPSFP simulator so
compaction never loses coverage:

* **reverse-order dropping**: simulate the patterns latest-first and
  keep only those that detect a not-yet-covered fault (late patterns
  were generated for the hard faults and tend to cover many easy
  ones),
* **greedy set cover**: repeatedly keep the pattern covering the most
  uncovered faults (slower, usually smaller sets).

Both accept the simulator ``backend`` option (mirroring the engine's
``sim_backend`` plumbing): bulk compaction of >64-pattern sets runs on
the numpy multi-word backend, in correspondingly larger simulation
batches.  The campaign drop bus reuses reverse-order dropping for its
incremental compaction passes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..circuit import Circuit
from ..paths import PathDelayFault, TestClass
from ..sim.delay_sim import DelayFaultSimulator
from .patterns import TestPattern

#: PPSFP batch sizes per word backend: one machine word for the
#: Python-int path, multi-word bulk batches for numpy.
_INT_BATCH = 64
_BULK_BATCH = 1024


def _coverage_table(
    circuit: Circuit,
    patterns: Sequence[TestPattern],
    faults: Sequence[PathDelayFault],
    test_class: TestClass,
    batch: Optional[int] = None,
    backend: str = "auto",
    fusion: str = "auto",
) -> List[Set[int]]:
    """For each pattern, the set of fault indices it detects.

    ``batch`` defaults per backend: 64 patterns (one machine word) on
    the int path, 1024 on numpy — ``auto`` picks numpy whenever the
    set is larger than a machine word, so bulk compaction amortizes
    the per-gate cost over many lane words.
    """
    simulator = DelayFaultSimulator(
        circuit, test_class, backend=backend, fusion=fusion
    )
    if batch is None:
        batch = _INT_BATCH if backend == "int" else _BULK_BATCH
    covers: List[Set[int]] = [set() for _ in patterns]
    for start in range(0, len(patterns), batch):
        chunk = patterns[start : start + batch]
        masks = simulator.detection_masks(chunk, faults)
        for fault_index, lanes in enumerate(masks):
            while lanes:
                lane = (lanes & -lanes).bit_length() - 1
                lanes &= lanes - 1
                covers[start + lane].add(fault_index)
    return covers


def reverse_order_compaction(
    circuit: Circuit,
    patterns: Sequence[TestPattern],
    faults: Sequence[PathDelayFault],
    test_class: TestClass = TestClass.NONROBUST,
    backend: str = "auto",
    fusion: str = "auto",
) -> List[TestPattern]:
    """Keep a pattern only if it detects a fault no later pattern does.

    Preserves the full detected-fault set (checked by the tests).
    """
    covers = _coverage_table(
        circuit, patterns, faults, test_class, backend=backend, fusion=fusion
    )
    kept: List[Tuple[int, TestPattern]] = []
    covered: Set[int] = set()
    for index in range(len(patterns) - 1, -1, -1):
        fresh = covers[index] - covered
        if fresh:
            covered |= covers[index]
            kept.append((index, patterns[index]))
    kept.sort(key=lambda item: item[0])
    return [pattern for _idx, pattern in kept]


def greedy_compaction(
    circuit: Circuit,
    patterns: Sequence[TestPattern],
    faults: Sequence[PathDelayFault],
    test_class: TestClass = TestClass.NONROBUST,
    backend: str = "auto",
) -> List[TestPattern]:
    """Greedy set cover over the pattern/fault detection table."""
    covers = _coverage_table(circuit, patterns, faults, test_class, backend=backend)
    target: Set[int] = set()
    for cover in covers:
        target |= cover
    remaining = set(target)
    available = set(range(len(patterns)))
    chosen: List[int] = []
    while remaining and available:
        best = max(available, key=lambda k: len(covers[k] & remaining))
        gain = covers[best] & remaining
        if not gain:
            break
        chosen.append(best)
        remaining -= gain
        available.discard(best)
    chosen.sort()
    return [patterns[k] for k in chosen]


def compaction_report(
    circuit: Circuit,
    patterns: Sequence[TestPattern],
    faults: Sequence[PathDelayFault],
    test_class: TestClass = TestClass.NONROBUST,
    backend: str = "auto",
) -> Dict[str, object]:
    """Before/after sizes and coverage for both strategies."""
    simulator = DelayFaultSimulator(circuit, test_class, backend=backend)
    reverse = reverse_order_compaction(
        circuit, patterns, faults, test_class, backend=backend
    )
    greedy = greedy_compaction(circuit, patterns, faults, test_class, backend=backend)
    return {
        "patterns": len(patterns),
        "reverse_order": len(reverse),
        "greedy": len(greedy),
        "coverage_full": simulator.coverage(list(patterns), list(faults)),
        "coverage_reverse": simulator.coverage(reverse, list(faults)),
        "coverage_greedy": simulator.coverage(greedy, list(faults)),
    }
