"""Bit-parallel stuck-at fault test generation.

The paper closes with: "Our future research activity concentrates on
further speed-up techniques and the application of bit-parallel test
generation to further fault models, first of all the stuck-at fault
model."  This module implements that extension with the same two
modes:

* **fault-parallel** (FPTPG): ``L`` different stuck-at faults occupy
  the bit lanes; activation values and propagation decisions are
  per-lane, implications are shared bit-parallel passes;
* **alternative-parallel** (APTPG): one hard fault in all lanes with
  decision lane-splitting and conventional backtracking.

State model: every signal carries *two* 3-valued plane pairs — the
good machine and the faulty machine.  Fault sites force the faulty
planes per lane; a lane detects its fault as soon as some primary
output provably differs between the machines (the D/D' condition,
expressed as plane arithmetic).  Implications use the full 3-valued
forward/backward rules on the good machine and forward evaluation on
the faulty machine (the faulty value of a site is forced, never
justified).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit import Circuit, GateType, controlling_value
from ..logic import three_valued as tv
from ..logic.words import lowest_set_lane, mask_for, split_masks
from .backtrace import PiObjective, backtrace
from .controllability import Controllability, compute_controllability
from .fptpg import objective_for_lane
from .state import THREE_VALUED, TpgState


@dataclass(frozen=True)
class StuckAtFault:
    """Signal *signal* stuck at *value* (0 or 1)."""

    signal: int
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck value must be 0 or 1")

    def describe(self, circuit: Circuit) -> str:
        return f"{circuit.signal_name(self.signal)} stuck-at-{self.value}"


def all_stuck_at_faults(circuit: Circuit) -> List[StuckAtFault]:
    """Both polarities on every signal (the uncollapsed fault list)."""
    faults: List[StuckAtFault] = []
    for gate in circuit.gates:
        faults.append(StuckAtFault(gate.index, 0))
        faults.append(StuckAtFault(gate.index, 1))
    return faults


class StuckAtStatus(enum.Enum):
    TESTED = "tested"
    REDUNDANT = "redundant"
    ABORTED = "aborted"
    SIMULATED = "simulated"


@dataclass
class StuckAtRecord:
    fault: StuckAtFault
    status: StuckAtStatus
    vector: Optional[Tuple[int, ...]] = None
    mode: str = ""


@dataclass
class StuckAtReport:
    circuit_name: str
    width: int
    records: List[StuckAtRecord] = field(default_factory=list)
    seconds_total: float = 0.0

    @property
    def n_faults(self) -> int:
        return len(self.records)

    def count(self, status: StuckAtStatus) -> int:
        return sum(1 for r in self.records if r.status is status)

    @property
    def n_tested(self) -> int:
        return self.count(StuckAtStatus.TESTED) + self.count(StuckAtStatus.SIMULATED)

    @property
    def efficiency(self) -> float:
        if not self.records:
            return 100.0
        aborted = self.count(StuckAtStatus.ABORTED)
        return (1.0 - aborted / self.n_faults) * 100.0

    def summary(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit_name,
            "L": self.width,
            "faults": self.n_faults,
            "tested": self.n_tested,
            "redundant": self.count(StuckAtStatus.REDUNDANT),
            "aborted": self.count(StuckAtStatus.ABORTED),
            "efficiency_%": round(self.efficiency, 2),
            "time_s": round(self.seconds_total, 4),
        }


class StuckAtState:
    """Good + faulty machine planes with per-lane fault-site forcing."""

    def __init__(self, circuit: Circuit, width: int):
        self.circuit = circuit
        self.width = width
        self.mask = mask_for(width)
        self.good = TpgState(circuit, THREE_VALUED, width)
        self.faulty: List[Tuple[int, int]] = [tv.X] * circuit.num_signals
        # per-signal lanes forced to 0 / 1 in the faulty machine
        self.forced0: Dict[int, int] = {}
        self.forced1: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def add_fault(self, fault: StuckAtFault, lanes: int) -> None:
        target = self.forced1 if fault.value else self.forced0
        target[fault.signal] = target.get(fault.signal, 0) | lanes

    def _apply_forcing(self, signal: int, planes: Tuple[int, int]) -> Tuple[int, int]:
        z0 = self.forced0.get(signal, 0)
        o1 = self.forced1.get(signal, 0)
        if not (z0 | o1):
            return planes
        z, o = planes
        return ((z & ~o1) | z0, (o & ~z0) | o1)

    def imply(self) -> None:
        """Good-machine fixpoint, then one faulty forward sweep.

        The faulty machine is pure forward evaluation over the good
        primary inputs with fault sites overridden, so a single
        topological sweep after the good fixpoint reaches its own
        fixpoint.
        """
        self.good.imply(stop_when_all_conflicted=False)
        circuit = self.circuit
        mask = self.mask
        for index in circuit.topological_order():
            gate = circuit.gates[index]
            if gate.is_input:
                planes = self.good.planes[index]
            else:
                ins = [self.faulty[f] for f in gate.fanin]
                planes = tv.forward(gate.gate_type, ins, mask)
            self.faulty[index] = self._apply_forcing(index, planes)  # type: ignore[assignment]

    # ------------------------------------------------------------------
    def difference(self, signal: int) -> int:
        """Lanes where good and faulty values provably differ."""
        gz, go = self.good.planes[signal]
        fz, fo = self.faulty[signal]
        return (gz & fo) | (go & fz)

    def detected_lanes(self) -> int:
        """Lanes with a justified test: a primary output provably
        differs AND every assigned good-machine value is justified
        (the activation requirement is an assignment like any other —
        a difference without primary-input support is not a test)."""
        lanes = 0
        for po in self.circuit.outputs:
            lanes |= self.difference(po)
        return lanes & self.good.all_justified_mask()

    def frontier(self, lanes: int) -> List[Tuple[int, int]]:
        """D-frontier: gates with a differing input and an unknown
        output in the given lanes; returned as (signal, lane-mask)."""
        result: List[Tuple[int, int]] = []
        for gate in self.circuit.gates:
            if gate.is_input:
                continue
            gz, go = self.good.planes[gate.index]
            fz, fo = self.faulty[gate.index]
            unknown = ~(gz | go) | ~(fz | fo)
            in_diff = 0
            for f in gate.fanin:
                in_diff |= self.difference(f)
            m = unknown & in_diff & lanes & self.mask
            if m:
                result.append((gate.index, m))
        return result


def _propagation_objective(
    state: StuckAtState, gate_signal: int, lane: int
) -> Optional[Tuple[int, int]]:
    """(signal, value) setting one unknown off-difference input to nc."""
    gate = state.circuit.gates[gate_signal]
    nc = controlling_value(gate.gate_type)
    for fanin_signal in gate.fanin:
        if (state.difference(fanin_signal) >> lane) & 1:
            continue
        gz, go = state.good.planes[fanin_signal]
        if ((gz | go) >> lane) & 1:
            continue  # already assigned
        if nc is None:
            return fanin_signal, 0  # XOR side: any known value works
        return fanin_signal, 1 - nc
    return None


@dataclass
class _LaneStatus:
    fault: StuckAtFault
    decided: bool = False
    stuck: bool = False


def run_stuck_at_fptpg(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    width: int,
    controllability: Optional[Controllability] = None,
) -> Tuple[List[StuckAtStatus], List[Optional[Tuple[int, ...]]], StuckAtState]:
    """One fault-parallel batch of stuck-at generation (no backtracking)."""
    if not faults or len(faults) > width:
        raise ValueError("fault count must be in 1..width")
    cc = controllability or compute_controllability(circuit)
    state = StuckAtState(circuit, width)
    used_mask = mask_for(len(faults))
    lanes_meta = [_LaneStatus(fault) for fault in faults]

    for lane, fault in enumerate(faults):
        state.add_fault(fault, 1 << lane)
        # activation requirement: the good value opposes the stuck value
        state.good.assign(fault.signal, tv.encode_word(1 - fault.value, 1 << lane))
    state.imply()

    guard = circuit.num_signals * max(1, len(faults)) + 64
    while guard:
        guard -= 1
        detected = state.detected_lanes()
        live = (
            used_mask
            & ~detected
            & ~state.good.conflict_mask
            & ~sum(1 << k for k, m in enumerate(lanes_meta) if m.stuck)
        )
        if not live:
            break
        # first serve justification objectives (activation and side
        # values must have primary-input support), then propagation
        objective = None
        rep = None
        unjustified = state.good.scan_unjustified(lanes=live)
        if unjustified:
            just_signal, lanemask = unjustified[0]
            rep = lowest_set_lane(lanemask)
            pair = objective_for_lane(state.good, just_signal, rep)
            if pair is None:
                lanes_meta[rep].stuck = True
                continue
            objective = (just_signal, pair[0])
        else:
            frontier = state.frontier(live)
            if not frontier:
                # no way to move a difference forward in any live lane
                for k in range(len(faults)):
                    if (live >> k) & 1:
                        lanes_meta[k].stuck = True
                continue
            gate_signal, lanemask = frontier[0]
            rep = lowest_set_lane(lanemask)
            objective = _propagation_objective(state, gate_signal, rep)
            if objective is None:
                lanes_meta[rep].stuck = True
                continue
        signal, value = objective
        pi = backtrace(state.good, cc, signal, value, False, rep)
        if pi is None:
            lanes_meta[rep].stuck = True
            continue
        lanes_meta[rep].decided = True
        zeros = (1 << rep) if pi.value == 0 else 0
        ones = (1 << rep) if pi.value == 1 else 0
        if not state.good.assign(pi.signal, (zeros, ones)):
            lanes_meta[rep].stuck = True
            continue
        state.imply()

    detected = state.detected_lanes()
    statuses: List[StuckAtStatus] = []
    vectors: List[Optional[Tuple[int, ...]]] = []
    for lane, meta in enumerate(lanes_meta):
        bit = 1 << lane
        if detected & bit:
            statuses.append(StuckAtStatus.TESTED)
            vectors.append(_extract_vector(state, lane))
        elif state.good.conflict_mask & bit and not meta.decided:
            # the activation itself is contradictory: untestable
            statuses.append(StuckAtStatus.REDUNDANT)
            vectors.append(None)
        else:
            statuses.append(StuckAtStatus.ABORTED)
            vectors.append(None)
    return statuses, vectors, state


def _extract_vector(state: StuckAtState, lane: int) -> Tuple[int, ...]:
    vector = []
    for pi in state.circuit.inputs:
        _z, o = state.good.planes[pi]
        vector.append(1 if (o >> lane) & 1 else 0)
    return tuple(vector)


def run_stuck_at_aptpg(
    circuit: Circuit,
    fault: StuckAtFault,
    width: int,
    controllability: Optional[Controllability] = None,
    backtrack_limit: int = 64,
) -> Tuple[StuckAtStatus, Optional[Tuple[int, ...]], int]:
    """Alternative-parallel stuck-at generation with backtracking.

    Returns (status, test vector, backtracks).  Complete (up to the
    backtrack limit): redundancy means no input vector detects the
    fault.
    """
    cc = controllability or compute_controllability(circuit)
    state = StuckAtState(circuit, width)
    state.add_fault(fault, state.mask)
    state.good.assign(fault.signal, tv.encode_word(1 - fault.value, state.mask))
    state.imply()
    if state.good.conflict_mask == state.mask:
        return StuckAtStatus.REDUNDANT, None, 0

    splits = split_masks(width)
    splits_used = 0
    stack: List[Tuple[int, PiObjective, int]] = []
    backtracks = 0
    stuck = 0
    guard = circuit.num_signals * width * 4 + 256

    while guard:
        guard -= 1
        detected = state.detected_lanes()
        if detected:
            lane = lowest_set_lane(detected)
            return StuckAtStatus.TESTED, _extract_vector(state, lane), backtracks
        live = state.mask & ~state.good.conflict_mask
        frontier = state.frontier(live & ~stuck) if live else []
        if not live or not frontier:
            dead = not live
            if not dead and (live & ~stuck) == 0:
                return StuckAtStatus.ABORTED, None, backtracks
            if not dead and not frontier:
                # live lanes but no frontier: differences cannot reach
                # any output under the current (partial) assignment —
                # backtrack like a conflict
                dead = True
            if dead:
                progressed = False
                while stack:
                    token, objective, tried = stack.pop()
                    backtracks += 1
                    if backtracks > backtrack_limit:
                        return StuckAtStatus.ABORTED, None, backtracks
                    state.good.rollback(token)
                    state.imply()
                    if tried == 1:
                        flipped = PiObjective(
                            objective.signal, 1 - objective.value, False
                        )
                        token2 = state.good.mark()
                        value_planes = (
                            (state.mask, 0) if flipped.value == 0 else (0, state.mask)
                        )
                        state.good.assign(flipped.signal, value_planes)
                        stack.append((token2, flipped, 2))
                        state.imply()
                        progressed = True
                        break
                if not progressed:
                    return StuckAtStatus.REDUNDANT, None, backtracks
                stuck = 0
                continue
        objective = None
        unjustified = state.good.scan_unjustified(lanes=live & ~stuck)
        if unjustified:
            just_signal, lanemask = unjustified[0]
            rep = lowest_set_lane(lanemask)
            pair = objective_for_lane(state.good, just_signal, rep)
            if pair is None:
                stuck |= 1 << rep
                continue
            objective = (just_signal, pair[0])
        else:
            gate_signal, lanemask = frontier[0]
            rep = lowest_set_lane(lanemask)
            objective = _propagation_objective(state, gate_signal, rep)
            if objective is None:
                stuck |= 1 << rep
                continue
        signal, value = objective
        pi = backtrace(state.good, cc, signal, value, False, rep)
        if pi is None:
            stuck |= 1 << rep
            continue
        if splits_used < len(splits):
            zeros, ones = splits[splits_used]
            splits_used += 1
            if not state.good.assign(pi.signal, (zeros, ones)):
                stuck |= 1 << rep
                continue
            state.imply()
            stuck = 0
        else:
            token = state.good.mark()
            value_planes = (state.mask, 0) if pi.value == 0 else (0, state.mask)
            if not state.good.assign(pi.signal, value_planes):
                state.good.rollback(token)
                stuck |= 1 << rep
                continue
            stack.append((token, pi, 1))
            state.imply()
            stuck = 0
    return StuckAtStatus.ABORTED, None, backtracks


def generate_stuck_at_tests(
    circuit: Circuit,
    faults: Optional[Sequence[StuckAtFault]] = None,
    width: int = 64,
    backtrack_limit: int = 64,
    drop_faults: bool = True,
) -> StuckAtReport:
    """The combined stuck-at engine: FPTPG first, APTPG for the rest.

    With ``drop_faults`` the generated vectors are fault-simulated
    after every batch and collaterally detected faults are dropped —
    mirroring the delay-fault engine (and the paper's methodology).
    """
    from ..sim.stuck_at_sim import StuckAtSimulator

    faults = list(faults if faults is not None else all_stuck_at_faults(circuit))
    report = StuckAtReport(circuit_name=circuit.name, width=width)
    if not faults:
        return report
    cc = compute_controllability(circuit)
    simulator = StuckAtSimulator(circuit)
    records: Dict[int, StuckAtRecord] = {}
    fresh_vectors: List[Tuple[int, ...]] = []
    aptpg_queue: List[int] = []

    def drop() -> None:
        if not drop_faults or not fresh_vectors:
            return
        candidates = [i for i in range(len(faults)) if i not in records]
        hit = simulator.detected_faults(fresh_vectors, [faults[i] for i in candidates])
        for i in candidates:
            if hit[faults[i]]:
                records[i] = StuckAtRecord(
                    faults[i], StuckAtStatus.SIMULATED, mode="simulation"
                )
        fresh_vectors.clear()

    t0 = time.perf_counter()
    cursor = 0
    while cursor < len(faults):
        batch: List[int] = []
        while cursor < len(faults) and len(batch) < width:
            if cursor not in records:
                batch.append(cursor)
            cursor += 1
        if not batch:
            continue
        statuses, vectors, _state = run_stuck_at_fptpg(
            circuit, [faults[i] for i in batch], width, cc
        )
        for i, status, vector in zip(batch, statuses, vectors):
            if status is StuckAtStatus.TESTED:
                records[i] = StuckAtRecord(faults[i], status, vector, mode="fptpg")
                fresh_vectors.append(vector)
            elif status is StuckAtStatus.REDUNDANT:
                records[i] = StuckAtRecord(faults[i], status, mode="fptpg")
            else:
                aptpg_queue.append(i)
        drop()

    for i in aptpg_queue:
        if i in records:
            continue
        status, vector, _bt = run_stuck_at_aptpg(
            circuit, faults[i], width, cc, backtrack_limit
        )
        records[i] = StuckAtRecord(faults[i], status, vector, mode="aptpg")
        if vector is not None:
            fresh_vectors.append(vector)
            if len(fresh_vectors) >= width:
                drop()
    drop()

    report.seconds_total = time.perf_counter() - t0
    report.records = [records[i] for i in range(len(faults))]
    return report
