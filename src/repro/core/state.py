"""Bit-parallel TPG circuit state and the implication engine.

This is the machinery behind the paper's Section 3: every signal holds
an ``L``-lane plane tuple (two planes for the nonrobust 3-valued
logic, four for the robust 7-valued logic), assignments are monotonic
(bits are only ever added), and a worklist-driven engine propagates
forward evaluations and unique backward implications to a fixpoint
across *all lanes simultaneously*.

Key properties:

* **per-lane conflicts** — the illegal plane patterns accumulate in a
  conflict lane mask instead of raising, as the paper's Table 1
  "conflict (C)" row prescribes; dead lanes never abort live ones.
* **trail-based checkpoints** — APTPG's conventional backtracking
  beyond ``log2(L)`` decisions rolls the state back cheaply.
* **lane flattening** — :meth:`TpgState.flatten_lane` broadcasts one
  bit level to the whole word, the paper's trick for handing a fault
  from FPTPG to APTPG "by simply flattening the active bit of a logic
  value to multiple bit levels".
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..circuit import Circuit, GateType
from ..logic import seven_valued, three_valued
from ..logic.words import mask_for

Planes = Tuple[int, ...]


@dataclass(frozen=True)
class Algebra:
    """A pluggable multi-valued logic: the engine is algebra-agnostic."""

    name: str
    n_planes: int
    x: Planes
    forward: Callable[[GateType, Sequence[Planes], int], Planes]
    backward: Callable[[GateType, Planes, Sequence[Planes], int], List[Planes]]
    conflict: Callable[[Planes], int]
    known: Callable[[Planes], int]
    unjustified: Callable[[GateType, Planes, Sequence[Planes], int], int]
    unjustified_planes: Callable[[GateType, Planes, Sequence[Planes], int], Planes]
    decode_lane: Callable[[Planes, int], str]


#: The nonrobust 3-valued algebra (paper Table 1).
THREE_VALUED = Algebra(
    name="three_valued",
    n_planes=three_valued.N_PLANES,
    x=three_valued.X,
    forward=three_valued.forward,
    backward=three_valued.backward,
    conflict=three_valued.conflict,
    known=three_valued.known,
    unjustified=three_valued.unjustified,
    unjustified_planes=three_valued.unjustified_planes,
    decode_lane=three_valued.decode_lane,
)

#: The robust 7-valued algebra (paper Table 2).
SEVEN_VALUED = Algebra(
    name="seven_valued",
    n_planes=seven_valued.N_PLANES,
    x=seven_valued.X,
    forward=seven_valued.forward,
    backward=seven_valued.backward,
    conflict=seven_valued.conflict,
    known=seven_valued.known,
    unjustified=seven_valued.unjustified,
    unjustified_planes=seven_valued.unjustified_planes,
    decode_lane=seven_valued.decode_lane,
)


class TpgState:
    """Plane-per-signal circuit state for one TPG attempt.

    Args:
        circuit: frozen target circuit.
        algebra: :data:`THREE_VALUED` or :data:`SEVEN_VALUED`.
        width: number of bit lanes ``L`` (the machine word length).
        use_backward: apply unique backward implications (True, the
            paper's "best suited implication procedure"); disabling
            them reproduces a weaker, purely forward engine — useful
            for the Figure 2 walkthrough and the implication-strength
            ablation benchmark.
        fusion: ``"interp"`` dispatches forward evaluations through
            ``Algebra.forward`` and backward implications through
            ``Algebra.backward`` (the oracle path); anything else
            installs the per-signal compiled forward *and* backward
            tables of :mod:`repro.kernel.codegen` — branch-free
            bodies specialized per (gate code, arity) with the
            backward prefix/suffix-product chains fully unrolled,
            bit-identical by construction and asserted so in the test
            suite.
    """

    def __init__(
        self,
        circuit: Circuit,
        algebra: Algebra,
        width: int,
        use_backward: bool = True,
        fusion: str = "auto",
    ):
        from ..kernel import FUSION_MODES  # lazy: keep core imports light

        if fusion not in FUSION_MODES:
            raise ValueError(f"unknown fusion strategy {fusion!r}")
        self.circuit = circuit
        self.compiled = circuit.compiled()
        self.algebra = algebra
        self.width = width
        self.use_backward = use_backward
        self.fusion = fusion
        self.mask = mask_for(width)
        self.planes: List[Planes] = [algebra.x] * circuit.num_signals
        self.conflict_mask = 0
        self.conflict_sites: dict = {}  # lane -> first conflicting signal
        self._queue: deque = deque()
        self._queued = [False] * circuit.num_signals
        self._trail: List[Tuple[int, Planes]] = []
        self._marks: List[Tuple[int, int]] = []
        self.implication_passes = 0
        self.assignments = 0
        self._forward_fns: Optional[List] = None
        self._backward_fns: Optional[List] = None
        if fusion != "interp":
            from ..kernel.codegen import (  # lazy: keep core light
                backward_table,
                forward_table,
            )

            self._forward_fns = forward_table(self.compiled, algebra.name)
            self._backward_fns = backward_table(self.compiled, algebra.name)
        # justification cache: raw unjustified lane mask per signal
        # (conflict filtering applied at query time) plus the dirty
        # set of signals whose planes changed since the last refresh —
        # scans only re-derive those instead of every gate's fanin
        # list on every call.
        self._unjust: List[int] = [0] * circuit.num_signals
        self._dirty: set = set()

    # ------------------------------------------------------------------
    # assignment and checkpoints
    # ------------------------------------------------------------------
    def assign(self, signal: int, additions: Planes) -> bool:
        """OR *additions* into a signal's planes; enqueue on change.

        Returns True if any bit was new.  Conflict bits surface in
        :attr:`conflict_mask` immediately.
        """
        old = self.planes[signal]
        new = tuple((o | a) & self.mask for o, a in zip(old, additions))
        if new == old:
            return False
        self._trail.append((signal, old))
        self.planes[signal] = new  # type: ignore[assignment]
        clash = self.algebra.conflict(new)  # type: ignore[arg-type]
        fresh = clash & ~self.conflict_mask
        if fresh:
            self.conflict_mask |= clash
            lane = 0
            while fresh:
                if fresh & 1 and lane not in self.conflict_sites:
                    self.conflict_sites[lane] = signal
                fresh >>= 1
                lane += 1
        self.assignments += 1
        self._enqueue_around(signal)
        return True

    def mark(self) -> int:
        """Open a checkpoint; returns a token for :meth:`rollback`."""
        self._marks.append((len(self._trail), self.conflict_mask))
        return len(self._marks) - 1

    def rollback(self, token: int) -> None:
        """Undo every assignment made since checkpoint *token*."""
        trail_len, conflict_mask = self._marks[token]
        del self._marks[token:]
        touch = self._touch
        while len(self._trail) > trail_len:
            signal, old = self._trail.pop()
            self.planes[signal] = old
            touch(signal)
        self.conflict_mask = conflict_mask
        self._drain_queue()

    def _drain_queue(self) -> None:
        """Empty the worklist, clearing only the queued flags it set.

        The flag buffer is reused — rebuilding it as a fresh
        ``[False] * n_signals`` list on every rollback / early-out
        made those O(n_signals) allocations on the hottest APTPG
        paths.
        """
        queued = self._queued
        queue = self._queue
        while queue:
            queued[queue.popleft()] = False

    def _touch(self, signal: int) -> None:
        """Mark *signal*'s plane change for the justification cache.

        A plane change invalidates the cached unjustified mask of the
        signal's own gate and of every gate reading it.
        """
        dirty = self._dirty
        dirty.add(signal)
        dirty.update(self.compiled.py_fanout[signal])

    # ------------------------------------------------------------------
    # implication fixpoint
    # ------------------------------------------------------------------
    def imply(self, stop_when_all_conflicted: bool = True) -> int:
        """Propagate implications to a fixpoint; returns conflict mask.

        Processes one worklist of gates; for each gate the forward
        evaluation is merged into the output and the unique backward
        implications into the inputs — all lanes at once.  Stops early
        if every lane is already conflicted.  Gate structure is read
        from the compiled kernel arrays, not the object graph.
        """
        compiled = self.compiled
        gate_types = compiled.gate_types
        fanins = compiled.py_fanin
        is_input = compiled.is_input
        planes = self.planes
        mask = self.mask
        forward = self.algebra.forward
        backward = self.algebra.backward
        forward_fns = self._forward_fns
        backward_fns = self._backward_fns
        while self._queue:
            if stop_when_all_conflicted and self.conflict_mask == mask:
                self._drain_queue()
                break
            signal = self._queue.popleft()
            self._queued[signal] = False
            if is_input[signal]:
                continue
            self.implication_passes += 1
            gate_type = gate_types[signal]
            fanin = fanins[signal]
            ins = [planes[f] for f in fanin]
            if forward_fns is None:
                fwd = forward(gate_type, ins, mask)
            else:
                fwd = forward_fns[signal](ins, mask)
            self.assign(signal, fwd)
            if self.use_backward:
                out = planes[signal]
                if backward_fns is None:
                    adds = backward(gate_type, out, ins, mask)
                else:
                    adds = backward_fns[signal](out, ins, mask)
                for fanin_signal, add in zip(fanin, adds):
                    self.assign(fanin_signal, add)
        return self.conflict_mask

    def _enqueue_around(self, signal: int) -> None:
        """Schedule the driver of *signal* and its fanout gates.

        Also marks the same signals dirty for the justification cache
        — one walk of the fanout list serves both bookkeeping jobs.
        """
        queued = self._queued
        dirty = self._dirty
        dirty.add(signal)
        if not queued[signal] and not self.compiled.is_input[signal]:
            queued[signal] = True
            self._queue.append(signal)
        for f in self.compiled.py_fanout[signal]:
            dirty.add(f)
            if not queued[f]:
                queued[f] = True
                self._queue.append(f)

    # ------------------------------------------------------------------
    # justification
    # ------------------------------------------------------------------
    def unjustified_lanes(self, signal: int) -> int:
        """Lane mask where *signal*'s assigned value is not justified."""
        compiled = self.compiled
        if compiled.is_input[signal]:
            return 0
        ins = [self.planes[f] for f in compiled.py_fanin[signal]]
        return (
            self.algebra.unjustified(
                compiled.gate_types[signal], self.planes[signal], ins, self.mask
            )
            & ~self.conflict_mask
        )

    def _refresh_unjustified(self) -> None:
        """Re-derive cached unjustified masks for dirty signals only.

        Every scan used to rebuild each gate's fanin plane list and
        call the algebra's forward rule for *all* signals on *every*
        call; the dirty set (maintained by :meth:`_enqueue_around`,
        :meth:`rollback` and :meth:`flatten_lane`) reduces that to the
        signals whose planes actually changed since the last scan.
        """
        dirty = self._dirty
        if not dirty:
            return
        compiled = self.compiled
        is_input = compiled.is_input
        fanins = compiled.py_fanin
        gate_types = compiled.gate_types
        planes = self.planes
        mask = self.mask
        unjustified = self.algebra.unjustified
        cache = self._unjust
        for signal in dirty:
            if is_input[signal]:
                continue
            ins = [planes[f] for f in fanins[signal]]
            cache[signal] = unjustified(
                gate_types[signal], planes[signal], ins, mask
            )
        dirty.clear()

    def scan_unjustified(self, lanes: Optional[int] = None) -> List[Tuple[int, int]]:
        """All (signal, lane-mask) pairs with unjustified values.

        Restricted to the lanes in *lanes* (default: all live lanes).
        """
        live = (self.mask if lanes is None else lanes) & ~self.conflict_mask
        result: List[Tuple[int, int]] = []
        if not live:
            return result
        self._refresh_unjustified()
        for index, raw in enumerate(self._unjust):
            m = raw & live
            if m:
                result.append((index, m))
        return result

    def all_justified_mask(self) -> int:
        """Lanes that are conflict-free and completely justified."""
        live = self.mask & ~self.conflict_mask
        if not live:
            return 0
        self._refresh_unjustified()
        for raw in self._unjust:
            if raw:
                live &= ~raw
                if not live:
                    break
        return live

    # ------------------------------------------------------------------
    # lane utilities
    # ------------------------------------------------------------------
    def flatten_lane(self, lane: int) -> None:
        """Broadcast one bit level to every lane (FPTPG -> APTPG handoff)."""
        bit = 1 << lane
        mask = self.mask
        self.planes = [
            tuple(mask if (p & bit) else 0 for p in planes)  # type: ignore[misc]
            for planes in self.planes
        ]
        self.conflict_mask = mask if (self.conflict_mask & bit) else 0
        self._trail.clear()
        self._marks.clear()
        # every plane changed: the whole justification cache is stale
        self._dirty.update(range(self.circuit.num_signals))

    def lane_values(self, lane: int) -> dict:
        """Decode one lane into {signal name: value letter} for display."""
        return {
            gate.name: self.algebra.decode_lane(self.planes[gate.index], lane)
            for gate in self.circuit.gates
        }

    def format_lane_word(self, signal: int | str) -> str:
        """Render a signal's lanes like the paper's figures (lane L-1 .. 0)."""
        index = self.circuit.gate(signal).index if isinstance(signal, str) else signal
        letters = [
            self.algebra.decode_lane(self.planes[index], lane)
            for lane in range(self.width - 1, -1, -1)
        ]
        return "".join("x" if c == "X" else c for c in letters)
