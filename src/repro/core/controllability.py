"""SCOAP-style testability measures.

The backtrace procedure needs a static notion of how hard each signal
is to set to 0 or 1 so it can walk the "easiest" branch toward a
primary input (and the "hardest" branch first when all inputs must be
set).  These are the classic SCOAP combinational controllabilities:
CC0/CC1 = 1 for primary inputs, and each gate adds 1 plus the cost of
the cheapest (for the controlled value) or the sum (for the
non-controlled value) of its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..circuit import Circuit, GateType


@dataclass(frozen=True)
class Controllability:
    """Per-signal 0/1-controllability (lower = easier)."""

    cc0: List[int]
    cc1: List[int]

    def cost(self, signal: int, value: int) -> int:
        return self.cc1[signal] if value else self.cc0[signal]


def compute_controllability(circuit: Circuit) -> Controllability:
    """Compute SCOAP CC0/CC1 for every signal of *circuit*."""
    n = circuit.num_signals
    cc0 = [0] * n
    cc1 = [0] * n
    for index in circuit.topological_order():
        gate = circuit.gates[index]
        t = gate.gate_type
        if t is GateType.INPUT:
            cc0[index] = 1
            cc1[index] = 1
            continue
        ins = gate.fanin
        if t is GateType.BUF:
            cc0[index] = cc0[ins[0]] + 1
            cc1[index] = cc1[ins[0]] + 1
        elif t is GateType.NOT:
            cc0[index] = cc1[ins[0]] + 1
            cc1[index] = cc0[ins[0]] + 1
        elif t in (GateType.AND, GateType.NAND):
            all_one = sum(cc1[f] for f in ins) + 1
            any_zero = min(cc0[f] for f in ins) + 1
            if t is GateType.AND:
                cc1[index], cc0[index] = all_one, any_zero
            else:
                cc0[index], cc1[index] = all_one, any_zero
        elif t in (GateType.OR, GateType.NOR):
            all_zero = sum(cc0[f] for f in ins) + 1
            any_one = min(cc1[f] for f in ins) + 1
            if t is GateType.OR:
                cc0[index], cc1[index] = all_zero, any_one
            else:
                cc1[index], cc0[index] = all_zero, any_one
        elif t in (GateType.XOR, GateType.XNOR):
            # cheapest parity assignment over the inputs; for the
            # 2-input case this is the familiar min-of-combinations,
            # generalized here by a running DP over (parity -> cost)
            even = 0
            odd = None  # type: int | None
            for f in ins:
                new_even_candidates = [even + cc0[f]]
                new_odd_candidates = [even + cc1[f]]
                if odd is not None:
                    new_even_candidates.append(odd + cc1[f])
                    new_odd_candidates.append(odd + cc0[f])
                even, odd = min(new_even_candidates), min(new_odd_candidates)
            assert odd is not None
            if t is GateType.XOR:
                cc0[index], cc1[index] = even + 1, odd + 1
            else:
                cc0[index], cc1[index] = odd + 1, even + 1
        else:  # pragma: no cover - closed enum
            raise ValueError(f"unhandled gate type {t}")
    return Controllability(cc0=cc0, cc1=cc1)
