"""Alternative-parallel test pattern generation — APTPG (Section 3.2).

One *hard* fault occupies all ``L`` bit lanes.  Whenever the backtrace
asks for an optional primary-input assignment, the first
``floor(log2 L)`` decisions are not guessed but *split across the
lanes*: decision ``k`` assigns 0 in every lane whose index has bit
``k`` clear and 1 where it is set, so all ``2^k`` combinations are
examined simultaneously — the paper's "we examine all four
possibilities in four bit-levels at one time".

Beyond ``log2 L`` decisions the generator "proceeds with conventional
backtracking on all bit levels simultaneously": further decisions are
uniform across lanes, checkpointed on a trail, and flipped/popped when
every lane has conflicted.  The fault is

* **tested** as soon as one lane is conflict-free and fully justified
  ("As there is at least one bit level without conflict the path is
  tested"),
* **redundant** when every lane conflicts and the decision space is
  exhausted (split lanes already enumerate all combinations of the
  split inputs, so this exhaustion argument is the standard PODEM
  completeness argument), and
* **aborted** when the backtrack limit is hit or no objective can be
  advanced.

**XOR polarities.**  Off-path inputs of on-path XOR/XNOR gates are
free polarity choices: either value propagates the transition (with
inverted polarity downstream).  A conflict under one polarity
assignment proves nothing, so the driver enumerates the polarity
combinations — the fault is redundant only when *every* combination
is refuted, tested as soon as any combination yields a pattern, and
aborted when the combination space is too large to enumerate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from typing import Dict

from ..circuit import Circuit
from ..logic.words import lowest_set_lane, split_masks
from ..paths import PathDelayFault, TestClass
from .backtrace import PiObjective, backtrace
from .controllability import Controllability, compute_controllability
from .fptpg import objective_for_lane, pi_assignment_planes, sensitizer_for
from .patterns import TestPattern, extract_pattern
from .results import FaultStatus
from .sensitize import xor_side_signals
from .state import TpgState


@dataclass
class AptpgOutcome:
    """Result of one APTPG run on a single fault."""

    status: FaultStatus
    pattern: Optional[TestPattern]
    state: TpgState
    decisions: int = 0
    backtracks: int = 0
    splits_used: int = 0
    seconds_sensitize: float = 0.0


def _split_assignment_planes(
    state: TpgState, pi: int, stable: bool, zeros: int, ones: int
) -> Tuple[int, ...]:
    """Planes assigning 0 in lanes *zeros* and 1 in lanes *ones*."""
    if state.algebra.n_planes == 2:
        return (zeros, ones)
    stable_add = 0
    if stable:
        stable_add = (zeros | ones) & ~state.planes[pi][3]
    return (zeros, ones, stable_add, 0)


def run_aptpg(
    circuit: Circuit,
    fault: PathDelayFault,
    test_class: TestClass,
    width: int,
    controllability: Optional[Controllability] = None,
    backtrack_limit: int = 64,
    use_backward: bool = True,
    fusion: str = "auto",
    max_xor_polarity_bits: int = 8,
) -> AptpgOutcome:
    """Generate (or refute) a test for one fault with lane alternatives.

    Enumerates the XOR side-input polarity combinations (see the
    module docstring); ``max_xor_polarity_bits`` caps the enumeration
    at ``2**max_xor_polarity_bits`` attempts — beyond that the fault
    is aborted rather than unsoundly declared redundant.
    """
    cc = controllability or compute_controllability(circuit)
    sides = xor_side_signals(circuit, fault)
    if len(sides) > max_xor_polarity_bits:
        combos = [0]
        exhaustive = False
    else:
        combos = list(range(1 << len(sides)))
        exhaustive = True

    last: Optional[AptpgOutcome] = None
    aborted = False
    total_decisions = 0
    total_backtracks = 0
    total_sensitize = 0.0
    for combo in combos:
        xor_sides = {s: (combo >> k) & 1 for k, s in enumerate(sides)}
        outcome = _attempt(
            circuit,
            fault,
            test_class,
            width,
            cc,
            backtrack_limit,
            use_backward,
            xor_sides,
            fusion,
        )
        total_decisions += outcome.decisions
        total_backtracks += outcome.backtracks
        total_sensitize += outcome.seconds_sensitize
        last = outcome
        if outcome.status is FaultStatus.TESTED:
            break
        if outcome.status is FaultStatus.ABORTED:
            aborted = True
    assert last is not None
    status = last.status
    if status is not FaultStatus.TESTED:
        if aborted or not exhaustive:
            status = FaultStatus.ABORTED
        else:
            status = FaultStatus.REDUNDANT
    return AptpgOutcome(
        status,
        last.pattern if status is FaultStatus.TESTED else None,
        last.state,
        decisions=total_decisions,
        backtracks=total_backtracks,
        splits_used=last.splits_used,
        seconds_sensitize=total_sensitize,
    )


def _attempt(
    circuit: Circuit,
    fault: PathDelayFault,
    test_class: TestClass,
    width: int,
    cc: Controllability,
    backtrack_limit: int,
    use_backward: bool,
    xor_sides: Dict[int, int],
    fusion: str = "auto",
) -> AptpgOutcome:
    """One complete APTPG search under a fixed XOR polarity choice."""
    sensitize, algebra = sensitizer_for(test_class)
    state = TpgState(
        circuit, algebra, width, use_backward=use_backward, fusion=fusion
    )

    t0 = time.perf_counter()
    for signal, planes in sensitize(circuit, fault, state.mask, xor_sides=xor_sides):
        state.assign(signal, planes)
    seconds_sensitize = time.perf_counter() - t0

    state.imply()
    if state.conflict_mask == state.mask:
        # conflict from necessary implications alone: redundant
        return AptpgOutcome(
            FaultStatus.REDUNDANT, None, state, seconds_sensitize=seconds_sensitize
        )

    splits = split_masks(width)
    splits_used = 0
    stack: List[Tuple[int, PiObjective, int]] = []  # (token, objective, tried)
    decisions = 0
    backtracks = 0
    stuck = 0
    guard = circuit.num_signals * width * 4 + 256

    def finish(status: FaultStatus, pattern: Optional[TestPattern]) -> AptpgOutcome:
        return AptpgOutcome(
            status,
            pattern,
            state,
            decisions=decisions,
            backtracks=backtracks,
            splits_used=splits_used,
            seconds_sensitize=seconds_sensitize,
        )

    while guard:
        guard -= 1
        live = state.mask & ~state.conflict_mask
        if live:
            justified = state.all_justified_mask()
            if justified:
                lane = lowest_set_lane(justified)
                return finish(FaultStatus.TESTED, extract_pattern(state, lane, fault))
        if not live:
            # every alternative in flight has contradicted: backtrack
            progressed = False
            while stack:
                token, objective, tried = stack.pop()
                backtracks += 1
                if backtracks > backtrack_limit:
                    return finish(FaultStatus.ABORTED, None)
                state.rollback(token)
                if tried == 1:
                    flipped = PiObjective(
                        objective.signal, 1 - objective.value, objective.stable
                    )
                    token2 = state.mark()
                    state.assign(
                        flipped.signal,
                        pi_assignment_planes(state, flipped, state.mask),
                    )
                    stack.append((token2, flipped, 2))
                    state.imply()
                    progressed = True
                    break
            if not progressed:
                return finish(FaultStatus.REDUNDANT, None)
            stuck = 0
            continue
        active = live & ~stuck
        if not active:
            return finish(FaultStatus.ABORTED, None)
        unjustified = state.scan_unjustified(lanes=active)
        if not unjustified:
            # active lanes are justified but the justified mask above
            # was empty: can only happen transiently — treat as abort
            return finish(FaultStatus.ABORTED, None)
        signal, lanemask = unjustified[0]
        rep = lowest_set_lane(lanemask)
        objective = objective_for_lane(state, signal, rep)
        if objective is None:
            stuck |= 1 << rep
            continue
        value, need_stable = objective
        pi_objective = backtrace(state, cc, signal, value, need_stable, rep)
        if pi_objective is None:
            stuck |= 1 << rep
            continue
        decisions += 1
        if splits_used < len(splits):
            zeros, ones = splits[splits_used]
            splits_used += 1
            additions = _split_assignment_planes(
                state, pi_objective.signal, pi_objective.stable, zeros, ones
            )
            if not state.assign(pi_objective.signal, additions):
                stuck |= 1 << rep
                continue
            state.imply()
            stuck = 0
        else:
            token = state.mark()
            changed = state.assign(
                pi_objective.signal,
                pi_assignment_planes(state, pi_objective, state.mask),
            )
            if not changed:
                state.rollback(token)
                stuck |= 1 << rep
                continue
            stack.append((token, pi_objective, 1))
            state.imply()
            stuck = 0
    return finish(FaultStatus.ABORTED, None)
