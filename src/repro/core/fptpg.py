"""Fault-parallel test pattern generation — FPTPG (paper Section 3.1).

``L`` different path delay faults occupy the ``L`` bit lanes of one
word-level circuit state.  All paths are sensitized at once, one
implication fixpoint serves all lanes, and the justification loop runs
"as long as there is at least one logic value that is not justified".

FPTPG never backtracks.  The per-lane outcomes are exactly the three
cases of the paper's Figure 1 discussion:

* a lane whose values are all justified is **tested** (a pattern is
  extracted from that bit level),
* a lane that conflicts *before any optional assignment* is
  **redundant** — the implications that led to the conflict were all
  necessary,
* a lane that conflicts *after* optional assignments (or where the
  backtrace cannot advance) would need backtracking and is **deferred**
  to APTPG.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..circuit import Circuit
from ..logic.words import lowest_set_lane, mask_for
from ..paths import PathDelayFault, TestClass
from .backtrace import PiObjective, backtrace
from .controllability import Controllability, compute_controllability
from .patterns import TestPattern, extract_pattern
from .results import FaultStatus
from .sensitize import sensitize_nonrobust, sensitize_robust, xor_side_signals
from .state import SEVEN_VALUED, THREE_VALUED, TpgState


@dataclass
class FptpgOutcome:
    """Per-lane results of one FPTPG batch."""

    statuses: List[FaultStatus]
    patterns: List[Optional[TestPattern]]
    state: TpgState
    decisions: int = 0
    seconds_sensitize: float = 0.0


def objective_for_lane(state: TpgState, signal: int, lane: int) -> Optional[Tuple[int, bool]]:
    """Derive the (value, need_stable) objective of an unjustified lane.

    Returns ``None`` when the only missing aspect is instability,
    which the backtrace does not pursue (see DESIGN.md: instability
    requirements only originate at the path input, which needs no
    justification).
    """
    gate = state.circuit.gates[signal]
    ins = [state.planes[f] for f in gate.fanin]
    miss = state.algebra.unjustified_planes(
        gate.gate_type, state.planes[signal], ins, state.mask
    )
    bits = [(m >> lane) & 1 for m in miss]
    out_bits = [(p >> lane) & 1 for p in state.planes[signal]]
    need_stable = len(bits) >= 4 and bool(out_bits[2])
    if bits[1]:
        return 1, need_stable
    if bits[0]:
        return 0, need_stable
    if len(bits) >= 4 and bits[2]:
        # stable bit missing; the value itself is assigned (or free)
        if out_bits[1]:
            return 1, True
        if out_bits[0]:
            return 0, True
        return 0, True  # value free: stabilize at 0 (an optional choice)
    return None


def objective_group(
    state: TpgState, signal: int, lanemask: int, rep: int
) -> Tuple[Optional[Tuple[int, bool]], int]:
    """Group the lanes of *lanemask* that share the rep lane's objective."""
    rep_objective = objective_for_lane(state, signal, rep)
    if rep_objective is None:
        return None, 1 << rep
    group = 0
    lanes = lanemask
    while lanes:
        lane = lowest_set_lane(lanes)
        lanes &= lanes - 1
        if objective_for_lane(state, signal, lane) == rep_objective:
            group |= 1 << lane
    return rep_objective, group


def pi_assignment_planes(state: TpgState, objective: PiObjective, lanes: int) -> Tuple[int, ...]:
    """Plane additions that apply *objective* at its PI in *lanes*.

    For the robust logic the stable bit is only added in lanes where
    the input is not already known-instable (e.g. the path input),
    preventing spurious conflicts.
    """
    zeros = lanes if objective.value == 0 else 0
    ones = lanes if objective.value == 1 else 0
    if state.algebra.n_planes == 2:
        return (zeros, ones)
    stable = 0
    if objective.stable:
        stable = lanes & ~state.planes[objective.signal][3]
    return (zeros, ones, stable, 0)


def sensitizer_for(test_class: TestClass):
    """(sensitize function, algebra) for a test class."""
    if test_class is TestClass.ROBUST:
        return sensitize_robust, SEVEN_VALUED
    return sensitize_nonrobust, THREE_VALUED


def run_fptpg(
    circuit: Circuit,
    faults: Sequence[PathDelayFault],
    test_class: TestClass,
    width: int,
    controllability: Optional[Controllability] = None,
    use_backward: bool = True,
    fusion: str = "auto",
) -> FptpgOutcome:
    """One FPTPG batch: up to *width* faults, one lane each."""
    if not faults:
        raise ValueError("run_fptpg needs at least one fault")
    if len(faults) > width:
        raise ValueError(f"{len(faults)} faults do not fit in {width} lanes")
    sensitize, algebra = sensitizer_for(test_class)
    cc = controllability or compute_controllability(circuit)
    state = TpgState(
        circuit, algebra, width, use_backward=use_backward, fusion=fusion
    )
    used_mask = mask_for(len(faults))

    t0 = time.perf_counter()
    for lane, fault in enumerate(faults):
        for signal, planes in sensitize(circuit, fault, 1 << lane):
            state.assign(signal, planes)
    seconds_sensitize = time.perf_counter() - t0

    state.imply(stop_when_all_conflicted=False)

    decided = 0
    stuck = 0
    decisions = 0
    guard = circuit.num_signals * max(1, len(faults)) + 64
    while guard:
        guard -= 1
        live = used_mask & ~state.conflict_mask & ~stuck
        if not live:
            break
        unjustified = state.scan_unjustified(lanes=live)
        if not unjustified:
            break
        signal, lanemask = unjustified[0]
        rep = lowest_set_lane(lanemask)
        objective, group = objective_group(state, signal, lanemask, rep)
        if objective is None:
            stuck |= 1 << rep
            continue
        value, need_stable = objective
        pi_objective = backtrace(state, cc, signal, value, need_stable, rep)
        if pi_objective is None:
            stuck |= group
            continue
        additions = pi_assignment_planes(state, pi_objective, group)
        decided |= group
        decisions += 1
        if not state.assign(pi_objective.signal, additions):
            stuck |= 1 << rep
            continue
        state.imply(stop_when_all_conflicted=False)

    justified = state.all_justified_mask() & used_mask
    statuses: List[FaultStatus] = []
    patterns: List[Optional[TestPattern]] = []
    for lane, fault in enumerate(faults):
        bit = 1 << lane
        if state.conflict_mask & bit:
            if decided & bit or xor_side_signals(circuit, fault):
                # conflicts after optional assignments prove nothing;
                # neither does a conflict under one XOR polarity choice
                statuses.append(FaultStatus.DEFERRED)
            else:
                statuses.append(FaultStatus.REDUNDANT)
            patterns.append(None)
        elif justified & bit:
            statuses.append(FaultStatus.TESTED)
            patterns.append(extract_pattern(state, lane, fault))
        else:
            statuses.append(FaultStatus.DEFERRED)
            patterns.append(None)
    return FptpgOutcome(
        statuses=statuses,
        patterns=patterns,
        state=state,
        decisions=decisions,
        seconds_sensitize=seconds_sensitize,
    )
