"""Two-pattern delay tests and their extraction from lane states.

A path delay test is a vector pair ``(V1, V2)``: ``V1`` is latched at
time T1, ``V2`` launches the transitions at T2, and the outputs are
sampled one clock later.  :func:`extract_pattern` reads one conflict-
free, fully justified bit lane of a :class:`repro.core.state.TpgState`
back into such a pair.

Unassigned primary inputs are *don't care*; they are filled
deterministically (stable 0) so that every emitted pattern is concrete
and simulation-ready.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..circuit import Circuit
from ..paths import PathDelayFault
from .state import TpgState


@dataclass(frozen=True)
class TestPattern:
    """A concrete two-vector test for one target fault.

    Attributes:
        v1: initial vector, one 0/1 per primary input (circuit order).
        v2: final vector, same shape.
        fault: the path delay fault this pattern was generated for.
    """

    __test__ = False  # not a pytest test class despite the name

    v1: Tuple[int, ...]
    v2: Tuple[int, ...]
    fault: Optional[PathDelayFault] = None

    def as_dicts(self, circuit: Circuit) -> Tuple[Dict[str, int], Dict[str, int]]:
        """(V1, V2) keyed by primary-input names."""
        names = [circuit.signal_name(i) for i in circuit.inputs]
        return dict(zip(names, self.v1)), dict(zip(names, self.v2))

    def transitions(self) -> Tuple[int, ...]:
        """Indices (input positions) where V1 and V2 differ."""
        return tuple(k for k, (a, b) in enumerate(zip(self.v1, self.v2)) if a != b)

    def describe(self, circuit: Circuit) -> str:
        """Compact display: ``V1=0110 V2=0100 (R: b-p-x)``."""
        v1 = "".join(str(b) for b in self.v1)
        v2 = "".join(str(b) for b in self.v2)
        suffix = f" ({self.fault.describe(circuit)})" if self.fault else ""
        return f"V1={v1} V2={v2}{suffix}"


def extract_pattern(
    state: TpgState, lane: int, fault: PathDelayFault
) -> TestPattern:
    """Read lane *lane* of *state* into a concrete :class:`TestPattern`.

    * 3-valued (nonrobust) states carry final values only: ``V2`` is
      the lane image and ``V1`` equals ``V2`` with the path input
      flipped (the standard nonrobust launch).
    * 7-valued (robust) states carry initial values implicitly:
      stable inputs keep their final value, instable inputs start
      inverted, history-free inputs start at their final value (the
      safest concrete choice — it adds no transitions).
    """
    circuit = state.circuit
    robust = state.algebra.n_planes >= 4
    v1: List[int] = []
    v2: List[int] = []
    for pi in circuit.inputs:
        bits = tuple((p >> lane) & 1 for p in state.planes[pi])
        final = 1 if bits[1] else 0
        if robust:
            instable = bool(bits[3])
            initial = 1 - final if instable else final
        else:
            initial = final
        v1.append(initial)
        v2.append(final)
    pattern = TestPattern(tuple(v1), tuple(v2), fault)
    if not robust:
        # launch the transition at the path input
        position = circuit.inputs.index(fault.input_signal)
        launched = list(pattern.v1)
        launched[position] = 1 - pattern.v2[position]
        pattern = TestPattern(tuple(launched), pattern.v2, fault)
    return pattern


def random_patterns(
    circuit: Circuit, count: int, seed: int = 0
) -> List[TestPattern]:
    """Deterministic random two-vector tests (benchmark/test workloads).

    The single source of the synthetic PPSFP workload used by
    ``tip-bench-sim``, the pytest benchmarks, and the kernel
    cross-check tests, so all three exercise identical batches for a
    given seed.
    """
    rng = random.Random(seed)
    n = len(circuit.inputs)
    return [
        TestPattern(
            tuple(rng.randint(0, 1) for _ in range(n)),
            tuple(rng.randint(0, 1) for _ in range(n)),
        )
        for _ in range(count)
    ]


@dataclass
class TestSet:
    """An ordered collection of generated patterns with dedup support."""

    __test__ = False  # not a pytest test class despite the name

    patterns: List[TestPattern] = field(default_factory=list)

    def add(self, pattern: TestPattern) -> None:
        self.patterns.append(pattern)

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)

    def unique_vectors(self) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
        """Distinct (V1, V2) pairs in first-seen order."""
        seen = set()
        result = []
        for p in self.patterns:
            key = (p.v1, p.v2)
            if key not in seen:
                seen.add(key)
                result.append(key)
        return result

    def compaction_ratio(self) -> float:
        """len(unique vectors) / len(patterns) (1.0 = no sharing)."""
        if not self.patterns:
            return 1.0
        return len(self.unique_vectors()) / len(self.patterns)
