"""The combined bit-parallel generator — FPTPG + APTPG (Section 3.3).

"FPTPG and APTPG complete one another excellently": the engine first
sweeps the fault list in batches of ``L`` with FPTPG, which settles
the easy-to-test and provably redundant faults at full lane
utilisation; faults that would need backtracking are deferred and
afterwards examined one at a time with APTPG, whose lanes explore
``2^log2(L)`` pattern alternatives in parallel.

As in the paper, bit-parallel fault simulation runs after every round
of generated test patterns: collaterally detected pending faults are
dropped (status ``SIMULATED``), which is where a large part of the
practical speed-up comes from.

Since the campaign refactor this module is a thin façade: the engine
*is* a 1-worker :func:`repro.campaign.run_campaign` over a
pre-materialized fault universe with an unbounded window.  The
campaign's round schedule (``DEFAULT_SHARDS`` lane-width batches per
drop round) is shared verbatim, so a multi-worker campaign produces
bit-identical per-fault statuses to this serial engine — that
equivalence is asserted by ``tests/test_campaign.py``.

Note the drop *cadence* this implies: PPSFP dropping runs after every
round of ``DEFAULT_SHARDS`` batches (and after every round of
``DEFAULT_SHARDS`` APTPG faults), not after every single batch as the
seed engine did.  Batches inside a round are composed before any of
the round's drops apply — that independence is precisely what lets
rounds shard across processes without changing results.  Per-fault
TESTED/SIMULATED splits (and therefore pattern counts) can differ
from the pre-campaign engine on drop-heavy workloads; the detected
fault set, redundancy verdicts, and the Tables 5/6 methodology are
unaffected, and compaction recovers the extra patterns.

Since the ``repro.api`` front door, both public names here are
**deprecated compatibility shims**: :class:`TpgOptions` is the
generation layer of the unified :class:`repro.api.Options` model and
:func:`generate_tests` delegates to the same engine-mode campaign
that :meth:`repro.api.AtpgSession.generate` runs.  They keep working
(per-fault statuses are bit-identical) but emit ``DeprecationWarning``.

The same engine with ``width=1`` *is* the single-bit reference
generator of the paper's Tables 5/6 (see
:mod:`repro.core.single_bit`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional, Sequence

from ..api.options import GenerationOptions, Options
from ..circuit import Circuit
from ..paths import PathDelayFault, TestClass
from .results import TpgReport


@dataclass
class TpgOptions(GenerationOptions):
    """Deprecated alias for the generation layer of ``repro.api.Options``.

    Same fields, same defaults, same semantics — construction warns
    and every consumer lifts it into the unified model with
    :meth:`repro.api.Options.adopt`.  Use
    ``repro.api.Options(width=..., ...)`` in new code.
    """

    def __post_init__(self) -> None:
        warnings.warn(
            "TpgOptions is deprecated; use repro.api.Options "
            "(the unified layered options model)",
            DeprecationWarning,
            stacklevel=2,
        )


def _generate(
    circuit: Circuit,
    faults: Sequence[PathDelayFault],
    test_class: TestClass,
    options: Options,
) -> TpgReport:
    """The engine implementation: an engine-mode campaign, no warning.

    Shared by the :func:`generate_tests` shim and
    :meth:`repro.api.AtpgSession.generate`, so both produce
    bit-identical per-fault statuses by construction.
    """
    # Imported lazily: campaign workers import the core generation
    # modules, so a top-level import here would be circular.
    from ..campaign.runner import execute_campaign

    options = options.engine_mode()
    if not faults:
        return TpgReport(
            circuit_name=circuit.name,
            test_class=test_class,
            width=options.width,
        )
    report = execute_campaign(
        circuit, faults=list(faults), test_class=test_class, options=options
    )
    return report.as_tpg_report()


def generate_tests(
    circuit: Circuit,
    faults: Sequence[PathDelayFault],
    test_class: TestClass = TestClass.NONROBUST,
    options: Optional[TpgOptions] = None,
) -> TpgReport:
    """Generate a test set for *faults*; returns the full report.

    Fault order is preserved in the report.  Each fault ends in one of
    the :class:`FaultStatus` states; ``DEFERRED`` only survives when
    APTPG is disabled by the options.

    .. deprecated:: 1.2.0
        Use :meth:`repro.api.AtpgSession.generate`, which runs the
        identical engine-mode campaign behind one session-owned
        compiled circuit.
    """
    warnings.warn(
        "generate_tests is deprecated; use repro.api.AtpgSession.generate",
        DeprecationWarning,
        stacklevel=2,
    )
    return _generate(circuit, faults, test_class, Options.adopt(options))
