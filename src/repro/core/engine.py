"""The combined bit-parallel generator — FPTPG + APTPG (Section 3.3).

"FPTPG and APTPG complete one another excellently": the engine first
sweeps the fault list in batches of ``L`` with FPTPG, which settles
the easy-to-test and provably redundant faults at full lane
utilisation; faults that would need backtracking are deferred and
afterwards examined one at a time with APTPG, whose lanes explore
``2^log2(L)`` pattern alternatives in parallel.

As in the paper, bit-parallel fault simulation runs "after every L
generated test patterns": collaterally detected pending faults are
dropped (status ``SIMULATED``), which is where a large part of the
practical speed-up comes from.

The same engine with ``width=1`` *is* the single-bit reference
generator of the paper's Tables 5/6 (see
:mod:`repro.core.single_bit`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..circuit import Circuit
from ..logic.words import DEFAULT_WORD_LENGTH
from ..paths import PathDelayFault, TestClass
from ..sim.delay_sim import DelayFaultSimulator
from .aptpg import run_aptpg
from .controllability import compute_controllability
from .fptpg import run_fptpg
from .results import FaultRecord, FaultStatus, TpgReport


@dataclass
class TpgOptions:
    """Tunables of the combined engine.

    Attributes:
        width: machine word length ``L`` (lanes).
        backtrack_limit: APTPG backtracks before aborting a fault.
        drop_faults: run PPSFP after every ``L`` patterns and drop
            collaterally detected faults (paper Section 5).
        use_fptpg / use_aptpg: ablation switches; disabling FPTPG
            sends every fault straight to APTPG and vice versa.
        unique_backward: apply unique backward implications (see
            :class:`repro.core.state.TpgState`).
        sim_backend: word backend of the PPSFP drop simulator
            (``"auto"``, ``"int"`` or ``"numpy"``; see
            :class:`repro.sim.delay_sim.DelayFaultSimulator`).
    """

    width: int = DEFAULT_WORD_LENGTH
    backtrack_limit: int = 64
    drop_faults: bool = True
    use_fptpg: bool = True
    use_aptpg: bool = True
    unique_backward: bool = True
    sim_backend: str = "auto"


def generate_tests(
    circuit: Circuit,
    faults: Sequence[PathDelayFault],
    test_class: TestClass = TestClass.NONROBUST,
    options: Optional[TpgOptions] = None,
) -> TpgReport:
    """Generate a test set for *faults*; returns the full report.

    Fault order is preserved in the report.  Each fault ends in one of
    the :class:`FaultStatus` states; ``DEFERRED`` only survives when
    APTPG is disabled by the options.
    """
    options = options or TpgOptions()
    report = TpgReport(
        circuit_name=circuit.name,
        test_class=test_class,
        width=options.width,
    )
    if not faults:
        return report

    # Lower the netlist once; every stage below — sensitization,
    # implication, PPSFP dropping — executes on the shared compiled
    # kernel rather than the circuit object graph.
    circuit.compiled()
    controllability = compute_controllability(circuit)
    simulator = DelayFaultSimulator(circuit, test_class, backend=options.sim_backend)
    records: Dict[int, FaultRecord] = {}
    pending: List[int] = list(range(len(faults)))
    aptpg_queue: List[int] = []
    fresh_patterns: List = []

    def drop_with_simulation() -> None:
        """PPSFP over the last <= L patterns; drop detected pending faults."""
        if not options.drop_faults or not fresh_patterns:
            return
        t0 = time.perf_counter()
        candidates = [i for i in pending if i not in records]
        hit = simulator.detected_faults(
            fresh_patterns, [faults[i] for i in candidates]
        )
        for i in candidates:
            if hit[faults[i]]:
                records[i] = FaultRecord(
                    faults[i], FaultStatus.SIMULATED, mode="simulation"
                )
        report.seconds_simulate += time.perf_counter() - t0
        fresh_patterns.clear()

    # ------------------------------------------------------------ FPTPG
    t_start = time.perf_counter()
    if options.use_fptpg:
        cursor = 0
        while cursor < len(pending):
            batch: List[int] = []
            while cursor < len(pending) and len(batch) < options.width:
                index = pending[cursor]
                cursor += 1
                if index not in records:
                    batch.append(index)
            if not batch:
                continue
            outcome = run_fptpg(
                circuit,
                [faults[i] for i in batch],
                test_class,
                options.width,
                controllability,
                use_backward=options.unique_backward,
            )
            report.seconds_sensitize += outcome.seconds_sensitize
            report.decisions += outcome.decisions
            report.implication_passes += outcome.state.implication_passes
            for index, status, pattern in zip(
                batch, outcome.statuses, outcome.patterns
            ):
                if status is FaultStatus.TESTED:
                    records[index] = FaultRecord(
                        faults[index], status, pattern, mode="fptpg"
                    )
                    fresh_patterns.append(pattern)
                elif status is FaultStatus.REDUNDANT:
                    records[index] = FaultRecord(faults[index], status, mode="fptpg")
                else:
                    aptpg_queue.append(index)
            drop_with_simulation()
    else:
        aptpg_queue = list(pending)

    # ------------------------------------------------------------ APTPG
    if options.use_aptpg:
        for index in aptpg_queue:
            if index in records:
                continue  # dropped by simulation in the meantime
            outcome = run_aptpg(
                circuit,
                faults[index],
                test_class,
                options.width,
                controllability,
                backtrack_limit=options.backtrack_limit,
                use_backward=options.unique_backward,
            )
            report.seconds_sensitize += outcome.seconds_sensitize
            report.decisions += outcome.decisions
            report.backtracks += outcome.backtracks
            report.implication_passes += outcome.state.implication_passes
            records[index] = FaultRecord(
                faults[index], outcome.status, outcome.pattern, mode="aptpg"
            )
            if outcome.pattern is not None:
                fresh_patterns.append(outcome.pattern)
                if len(fresh_patterns) >= options.width:
                    drop_with_simulation()
        drop_with_simulation()
    else:
        for index in aptpg_queue:
            if index not in records:
                records[index] = FaultRecord(
                    faults[index], FaultStatus.DEFERRED, mode="fptpg"
                )

    total = time.perf_counter() - t_start
    report.seconds_generate = max(
        0.0, total - report.seconds_sensitize - report.seconds_simulate
    )
    report.records = [records[i] for i in range(len(faults))]
    return report
