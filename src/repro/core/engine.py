"""The combined bit-parallel generator — FPTPG + APTPG (Section 3.3).

"FPTPG and APTPG complete one another excellently": the engine first
sweeps the fault list in batches of ``L`` with FPTPG, which settles
the easy-to-test and provably redundant faults at full lane
utilisation; faults that would need backtracking are deferred and
afterwards examined one at a time with APTPG, whose lanes explore
``2^log2(L)`` pattern alternatives in parallel.

As in the paper, bit-parallel fault simulation runs after every round
of generated test patterns: collaterally detected pending faults are
dropped (status ``SIMULATED``), which is where a large part of the
practical speed-up comes from.

Since the campaign refactor this module is a thin façade: the engine
*is* a 1-worker :func:`repro.campaign.run_campaign` over a
pre-materialized fault universe with an unbounded window.  The
campaign's round schedule (``DEFAULT_SHARDS`` lane-width batches per
drop round) is shared verbatim, so a multi-worker campaign produces
bit-identical per-fault statuses to this serial engine — that
equivalence is asserted by ``tests/test_campaign.py``.

Note the drop *cadence* this implies: PPSFP dropping runs after every
round of ``DEFAULT_SHARDS`` batches (and after every round of
``DEFAULT_SHARDS`` APTPG faults), not after every single batch as the
seed engine did.  Batches inside a round are composed before any of
the round's drops apply — that independence is precisely what lets
rounds shard across processes without changing results.  Per-fault
TESTED/SIMULATED splits (and therefore pattern counts) can differ
from the pre-campaign engine on drop-heavy workloads; the detected
fault set, redundancy verdicts, and the Tables 5/6 methodology are
unaffected, and compaction recovers the extra patterns.

The same engine with ``width=1`` *is* the single-bit reference
generator of the paper's Tables 5/6 (see
:mod:`repro.core.single_bit`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..circuit import Circuit
from ..logic.words import DEFAULT_WORD_LENGTH
from ..paths import PathDelayFault, TestClass
from .results import TpgReport


@dataclass
class TpgOptions:
    """Tunables of the combined engine.

    Attributes:
        width: machine word length ``L`` (lanes).
        backtrack_limit: APTPG backtracks before aborting a fault.
        drop_faults: run PPSFP after every generation round and drop
            collaterally detected faults (paper Section 5).
        use_fptpg / use_aptpg: ablation switches; disabling FPTPG
            sends every fault straight to APTPG and vice versa.
        unique_backward: apply unique backward implications (see
            :class:`repro.core.state.TpgState`).
        sim_backend: word backend of the PPSFP drop simulator
            (``"auto"``, ``"int"`` or ``"numpy"``; see
            :class:`repro.sim.delay_sim.DelayFaultSimulator`).
    """

    width: int = DEFAULT_WORD_LENGTH
    backtrack_limit: int = 64
    drop_faults: bool = True
    use_fptpg: bool = True
    use_aptpg: bool = True
    unique_backward: bool = True
    sim_backend: str = "auto"


def generate_tests(
    circuit: Circuit,
    faults: Sequence[PathDelayFault],
    test_class: TestClass = TestClass.NONROBUST,
    options: Optional[TpgOptions] = None,
) -> TpgReport:
    """Generate a test set for *faults*; returns the full report.

    Fault order is preserved in the report.  Each fault ends in one of
    the :class:`FaultStatus` states; ``DEFERRED`` only survives when
    APTPG is disabled by the options.
    """
    # Imported lazily: campaign workers import the core generation
    # modules, so a top-level import here would be circular.
    from ..campaign.report import CampaignOptions
    from ..campaign.runner import run_campaign

    options = options or TpgOptions()
    if not faults:
        return TpgReport(
            circuit_name=circuit.name,
            test_class=test_class,
            width=options.width,
        )
    campaign_options = CampaignOptions(
        width=options.width,
        workers=1,
        window=None,  # the caller materialized the list; admit it all
        backtrack_limit=options.backtrack_limit,
        drop_faults=options.drop_faults,
        use_fptpg=options.use_fptpg,
        use_aptpg=options.use_aptpg,
        unique_backward=options.unique_backward,
        sim_backend=options.sim_backend,
    )
    report = run_campaign(
        circuit, faults=list(faults), test_class=test_class,
        options=campaign_options,
    )
    return report.as_tpg_report()
