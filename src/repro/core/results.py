"""Shared result types for the test generators."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..paths import PathDelayFault, TestClass
from .patterns import TestPattern


class FaultStatus(enum.Enum):
    """Final classification of one path delay fault."""

    TESTED = "tested"  # a pattern was generated
    REDUNDANT = "redundant"  # proven untestable (conflict without choices)
    DEFERRED = "deferred"  # FPTPG handed the fault to APTPG
    ABORTED = "aborted"  # gave up (backtrack limit / stuck)
    SIMULATED = "simulated"  # dropped: detected by an earlier pattern
    SKIPPED_ERROR = "skipped_error"  # shard quarantined after repeated faults


@dataclass
class FaultRecord:
    """One fault's outcome, including which mode settled it."""

    fault: PathDelayFault
    status: FaultStatus
    pattern: Optional[TestPattern] = None
    mode: str = ""  # "fptpg", "aptpg", "simulation"

    @property
    def is_detected(self) -> bool:
        return self.status in (FaultStatus.TESTED, FaultStatus.SIMULATED)


@dataclass
class TpgReport:
    """Aggregate result of a generation run (one paper-table row).

    The ``efficiency`` property follows the paper's definition:
    ``(1 - #aborted / #faults) * 100%``.
    """

    circuit_name: str
    test_class: TestClass
    width: int
    records: List[FaultRecord] = field(default_factory=list)
    seconds_sensitize: float = 0.0
    seconds_generate: float = 0.0
    seconds_simulate: float = 0.0
    decisions: int = 0
    backtracks: int = 0
    implication_passes: int = 0

    # ------------------------------------------------------------------
    def count(self, status: FaultStatus) -> int:
        return sum(1 for r in self.records if r.status is status)

    @property
    def n_faults(self) -> int:
        return len(self.records)

    @property
    def n_tested(self) -> int:
        """Faults with a test: generated or collaterally detected."""
        return sum(1 for r in self.records if r.is_detected)

    @property
    def n_redundant(self) -> int:
        return self.count(FaultStatus.REDUNDANT)

    @property
    def n_aborted(self) -> int:
        return self.count(FaultStatus.ABORTED) + self.count(FaultStatus.DEFERRED)

    @property
    def efficiency(self) -> float:
        """The paper's efficiency metric, in percent."""
        if not self.records:
            return 100.0
        return (1.0 - self.n_aborted / self.n_faults) * 100.0

    @property
    def seconds_total(self) -> float:
        return self.seconds_sensitize + self.seconds_generate + self.seconds_simulate

    @property
    def patterns(self) -> List[TestPattern]:
        return [r.pattern for r in self.records if r.pattern is not None]

    def summary(self) -> Dict[str, object]:
        """A flat dict for table rendering."""
        return {
            "circuit": self.circuit_name,
            "class": self.test_class.value,
            "L": self.width,
            "faults": self.n_faults,
            "tested": self.n_tested,
            "redundant": self.n_redundant,
            "aborted": self.n_aborted,
            "efficiency_%": round(self.efficiency, 4),
            "time_s": round(self.seconds_total, 4),
        }
