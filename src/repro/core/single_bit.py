"""The single-bit reference generator (paper Tables 5 and 6).

The paper's main experiment compares the bit-parallel generator with
"a version that is restricted to one bit level", with "any unnecessary
overhead carefully omitted".  We reproduce that comparison the same
way: the identical engine runs with ``width=1``, so

* FPTPG degenerates to one-fault-at-a-time sensitize/justify,
* APTPG keeps no lane alternatives (``log2 1 = 0`` splits) and is
  plain conventional backtracking, and
* fault simulation drops at most one fresh pattern per pass.

Any speed-up measured between :func:`generate_tests_single_bit` and
the ``width=L`` engine is therefore attributable to bit-parallelism
alone — same data structures, same heuristics, same code paths.
"""

from __future__ import annotations

from typing import Sequence

from ..api.options import Options
from ..circuit import Circuit
from ..paths import PathDelayFault, TestClass
from .engine import _generate
from .results import TpgReport


def single_bit_options(
    backtrack_limit: int = 64, drop_faults: bool = True
) -> Options:
    """Options of the restricted, one-bit-level generator."""
    return Options(
        width=1,
        backtrack_limit=backtrack_limit,
        drop_faults=drop_faults,
    )


def generate_tests_single_bit(
    circuit: Circuit,
    faults: Sequence[PathDelayFault],
    test_class: TestClass = TestClass.NONROBUST,
    backtrack_limit: int = 64,
    drop_faults: bool = True,
) -> TpgReport:
    """Run the generator restricted to one bit level (L = 1)."""
    return _generate(
        circuit,
        faults,
        test_class,
        single_bit_options(backtrack_limit=backtrack_limit, drop_faults=drop_faults),
    )
