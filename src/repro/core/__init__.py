"""The paper's contribution: bit-parallel path delay fault ATPG.

Public API:

* :func:`generate_tests` with :class:`TpgOptions` — the combined
  FPTPG + APTPG engine (Section 3.3),
* :func:`run_fptpg` / :func:`run_aptpg` — the two modes individually,
* :func:`generate_tests_single_bit` — the single-bit reference
  generator of Tables 5/6,
* :class:`TestPattern`, :class:`TpgReport`, :class:`FaultStatus` —
  results,
* :class:`TpgState` with :data:`THREE_VALUED` / :data:`SEVEN_VALUED`
  — the word-level state and the pluggable logic algebras.
"""

from .state import SEVEN_VALUED, THREE_VALUED, Algebra, TpgState
from .controllability import Controllability, compute_controllability
from .backtrace import PiObjective, backtrace
from .sensitize import (
    sensitization_is_trivial,
    sensitize_nonrobust,
    sensitize_robust,
)
from .patterns import TestPattern, TestSet, extract_pattern
from .results import FaultRecord, FaultStatus, TpgReport
from .fptpg import FptpgOutcome, run_fptpg
from .aptpg import AptpgOutcome, run_aptpg
from .engine import TpgOptions, generate_tests
from .single_bit import generate_tests_single_bit, single_bit_options
from .compaction import (
    compaction_report,
    greedy_compaction,
    reverse_order_compaction,
)
from .stuck_at import (
    StuckAtFault,
    StuckAtReport,
    StuckAtStatus,
    all_stuck_at_faults,
    generate_stuck_at_tests,
)

__all__ = [
    "Algebra",
    "AptpgOutcome",
    "Controllability",
    "FaultRecord",
    "FaultStatus",
    "FptpgOutcome",
    "PiObjective",
    "SEVEN_VALUED",
    "StuckAtFault",
    "StuckAtReport",
    "StuckAtStatus",
    "THREE_VALUED",
    "TestPattern",
    "TestSet",
    "TpgOptions",
    "TpgReport",
    "TpgState",
    "all_stuck_at_faults",
    "backtrace",
    "compaction_report",
    "compute_controllability",
    "extract_pattern",
    "generate_stuck_at_tests",
    "generate_tests",
    "generate_tests_single_bit",
    "greedy_compaction",
    "reverse_order_compaction",
    "run_aptpg",
    "run_fptpg",
    "sensitization_is_trivial",
    "sensitize_nonrobust",
    "sensitize_robust",
    "single_bit_options",
]
