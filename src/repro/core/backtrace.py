"""The backtrace procedure: from an unjustified value to a primary input.

When the implication fixpoint leaves an unjustified value, a
PODEM-style backtrace walks from the unjustified gate toward the
primary inputs, at each gate ranking the candidate inputs:

* to justify a *controlled* output value (AND = 0, OR = 1) the
  cheapest input by SCOAP controllability is preferred ("easiest
  first"),
* to justify the *non-controlled* value every input will eventually be
  needed, so the hardest unassigned one is preferred (fail fast),
* XOR gates pick an unassigned input; its required value is the parity
  completion when every other input is known, otherwise a guess,
* stability objectives (the robust logic's stable-bit) ride along:
  inputs already known-instable are never stability candidates, and
  inputs whose value is right but unproven-stable are *stability
  chase* candidates.

The walk is a depth-first search with fallback: if the preferred
branch dead-ends (everything in its cone already assigned the wrong
way in the inspected lane), the next candidate is tried before giving
up — a measurable reducer of aborted faults on reconvergent circuits.
A ``None`` return means no candidate branch can advance the objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from ..circuit import GateType
from .controllability import Controllability
from .state import TpgState

Objective = Tuple[int, int, bool]  # (signal, value, need_stable)


@dataclass(frozen=True)
class PiObjective:
    """The backtrace result: assign *value* (and stability) at a PI."""

    signal: int
    value: int
    stable: bool


def _lane_bits(state: TpgState, signal: int, lane: int) -> Tuple[int, ...]:
    return tuple((p >> lane) & 1 for p in state.planes[signal])


def _value_in_lane(state: TpgState, signal: int, lane: int) -> Optional[int]:
    bits = _lane_bits(state, signal, lane)
    if bits[0] and bits[1]:
        return None  # conflicted: caller should not be here
    if bits[1]:
        return 1
    if bits[0]:
        return 0
    return None


def _stability_free(state: TpgState, signal: int, lane: int) -> bool:
    """True when the signal can still be made stable in this lane."""
    if state.algebra.n_planes < 4:
        return True
    bits = _lane_bits(state, signal, lane)
    return not bits[3]  # not known-instable


def _is_stable(state: TpgState, signal: int, lane: int) -> bool:
    if state.algebra.n_planes < 4:
        return True
    return bool(_lane_bits(state, signal, lane)[2])


def backtrace(
    state: TpgState,
    controllability: Controllability,
    signal: int,
    value: int,
    need_stable: bool,
    lane: int,
) -> Optional[PiObjective]:
    """DFS from objective (*signal* = *value*) down to a primary input.

    Returns the primary-input assignment to try, or ``None`` when no
    branch of the objective can be advanced in this *lane*.
    """
    failed: Set[Objective] = set()
    # explicit DFS stack: (objective, iterator over its candidates)
    root: Objective = (signal, value, need_stable)
    stack: List[Tuple[Objective, Iterator[Objective]]] = []
    on_stack: Set[Objective] = set()

    def pi_result(objective: Objective) -> Optional[PiObjective]:
        sig, val, stable = objective
        current = _value_in_lane(state, sig, lane)
        if current is not None and current != val:
            return None  # contradicting assignment already present
        if current == val and (not stable or _is_stable(state, sig, lane)):
            return None  # nothing new to assign here
        if stable and not _stability_free(state, sig, lane):
            return None  # known-instable input cannot be stabilized
        return PiObjective(sig, val, stable)

    def open_node(objective: Objective) -> Optional[PiObjective]:
        """Push an internal node; return a PiObjective for PI hits."""
        sig, _val, _stable = objective
        if objective in failed or objective in on_stack:
            return None
        gate = state.circuit.gates[sig]
        if gate.is_input:
            result = pi_result(objective)
            if result is None:
                failed.add(objective)
            return result
        stack.append((objective, _candidates(state, controllability, objective, lane)))
        on_stack.add(objective)
        return None

    result = open_node(root)
    if result is not None:
        return result
    while stack:
        objective, candidates = stack[-1]
        advanced = False
        for candidate in candidates:
            result = open_node(candidate)
            if result is not None:
                return result
            if stack and stack[-1][0] != objective:
                advanced = True  # descended into an internal node
                break
        if not advanced:
            stack.pop()
            on_stack.discard(objective)
            failed.add(objective)
    return None


def _candidates(
    state: TpgState,
    cc: Controllability,
    objective: Objective,
    lane: int,
) -> Iterator[Objective]:
    """Yield this gate's candidate input objectives, best first."""
    signal, value, need_stable = objective
    gate = state.circuit.gates[signal]
    t = gate.gate_type
    if t is GateType.BUF:
        yield (gate.fanin[0], value, need_stable)
        return
    if t is GateType.NOT:
        yield (gate.fanin[0], 1 - value, need_stable)
        return
    if t in (GateType.AND, GateType.NAND, GateType.OR, GateType.NOR):
        target = value
        if t in (GateType.NAND, GateType.NOR):
            target = 1 - value
        if t in (GateType.AND, GateType.NAND):
            all_value, any_value = 1, 0
        else:
            all_value, any_value = 0, 1
        yield from _and_or_candidates(
            state, cc, gate.fanin, target, all_value, any_value, need_stable, lane
        )
        return
    if t in (GateType.XOR, GateType.XNOR):
        target = value
        if t is GateType.XNOR:
            target = 1 - value
        yield from _xor_candidates(state, cc, gate.fanin, target, need_stable, lane)
        return


def _and_or_candidates(
    state: TpgState,
    cc: Controllability,
    fanin: Tuple[int, ...],
    target: int,
    all_value: int,
    any_value: int,
    need_stable: bool,
    lane: int,
) -> Iterator[Objective]:
    if target == all_value:
        # every input must take all_value: hardest-first among the
        # value-unknown inputs, then stability-chase candidates
        unknown = [
            f
            for f in fanin
            if _value_in_lane(state, f, lane) is None
            and _stability_free(state, f, lane)
        ]
        unknown.sort(key=lambda f: -cc.cost(f, all_value))
        for f in unknown:
            yield (f, all_value, need_stable)
        if need_stable:
            chase = [
                f
                for f in fanin
                if _value_in_lane(state, f, lane) == all_value
                and not _is_stable(state, f, lane)
                and _stability_free(state, f, lane)
            ]
            chase.sort(key=lambda f: cc.cost(f, all_value))
            for f in chase:
                yield (f, all_value, True)
        return
    # one controlling input suffices: easiest-first
    unknown = [
        f
        for f in fanin
        if _value_in_lane(state, f, lane) is None
        and (not need_stable or _stability_free(state, f, lane))
    ]
    unknown.sort(key=lambda f: cc.cost(f, any_value))
    for f in unknown:
        yield (f, any_value, need_stable)
    if need_stable:
        chase = [
            f
            for f in fanin
            if _value_in_lane(state, f, lane) == any_value
            and not _is_stable(state, f, lane)
            and _stability_free(state, f, lane)
        ]
        chase.sort(key=lambda f: cc.cost(f, any_value))
        for f in chase:
            yield (f, any_value, True)


def _xor_candidates(
    state: TpgState,
    cc: Controllability,
    fanin: Tuple[int, ...],
    target: int,
    need_stable: bool,
    lane: int,
) -> Iterator[Objective]:
    unknown = [
        f
        for f in fanin
        if _value_in_lane(state, f, lane) is None
        and (not need_stable or _stability_free(state, f, lane))
    ]
    for chosen in unknown:
        others = [f for f in fanin if f != chosen]
        parity = 0
        complete = True
        for f in others:
            v = _value_in_lane(state, f, lane)
            if v is None:
                complete = False
                break
            parity ^= v
        desired = (target ^ parity) if complete else 0
        yield (chosen, desired, need_stable)
    if need_stable:
        for f in fanin:
            if not _is_stable(state, f, lane) and _stability_free(state, f, lane):
                v = _value_in_lane(state, f, lane)
                yield (f, v if v is not None else 0, True)
