"""Path sensitization for delay faults.

Sensitizing a target path means assigning the logic values that let a
transition at the path's primary input propagate along the path to its
primary output (paper Section 2).  The assignments depend on the test
class:

**Nonrobust (3-valued):** only final values matter.  Every on-path
signal receives its final value (alternating with the inversion parity
of the traversed gates) and every off-path input of an on-path gate
receives the gate's non-controlling final value.

**Robust (7-valued, Lin & Reddy):** the path input carries a full
rising/falling value; on-path signals carry their final values; the
off-path inputs must be

* *stable* non-controlling where the on-path input transition ends at
  the non-controlling value (a late off-path transition there could
  mask the path's lateness), and
* non-controlling in the final vector (history free) where the on-path
  transition ends at the controlling value.

**XOR-like on-path gates** have no controlling value.  Their off-path
inputs must be fixed (nonrobust: to a known final value; robust: to a
stable value) for the transition to propagate cleanly, but *either*
value works — a side input of 1 simply inverts the polarity of the
propagating transition.  The sensitizers default all sides to 0 (the
structural convention of :func:`repro.circuit.gates.inverts`) and
accept an ``xor_sides`` map to choose other polarities; the APTPG
driver enumerates those polarities before it ever declares an
XOR-containing path redundant (see :mod:`repro.core.aptpg`).

The sensitizer only *emits* assignments; conflicts (e.g. a signal that
is both on-path rising and required stable off-path through
reconvergence) surface later as per-lane conflict bits — such paths
are exactly the unsensitizable ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..circuit import Circuit, GateType
from ..circuit.gates import XOR_LIKE
from ..logic import seven_valued, three_valued
from ..paths import PathDelayFault

Assignment = Tuple[int, Tuple[int, ...]]  # (signal, plane additions)


def xor_side_signals(circuit: Circuit, fault: PathDelayFault) -> List[int]:
    """Off-path inputs of on-path XOR/XNOR gates, unique, in path order.

    These are the free polarity choices of the fault's sensitization:
    each may be fixed to 0 or 1 and both choices propagate the
    transition (with opposite polarity downstream).
    """
    compiled = circuit.compiled()
    sides: List[int] = []
    for position, signal in enumerate(fault.signals):
        if position == 0:
            continue
        if compiled.gate_types[signal] not in XOR_LIKE:
            continue
        on_path_input = fault.signals[position - 1]
        for fanin_signal in compiled.py_fanin[signal]:
            if fanin_signal != on_path_input and fanin_signal not in sides:
                sides.append(fanin_signal)
    return sides


def path_final_values(
    circuit: Circuit,
    fault: PathDelayFault,
    xor_sides: Optional[Dict[int, int]] = None,
) -> Tuple[int, ...]:
    """Final values of the on-path signals for a polarity choice.

    Like :meth:`PathDelayFault.final_values` but accounting for XOR
    side inputs fixed to 1, each of which flips the propagating
    transition once more.
    """
    compiled = circuit.compiled()
    sides = xor_sides or {}
    value = fault.transition.final
    finals = [value]
    for position, signal in enumerate(fault.signals):
        if position == 0:
            continue
        gate_type = compiled.gate_types[signal]
        if compiled.inverting[signal]:
            value = 1 - value
        if gate_type in XOR_LIKE:
            on_path_input = fault.signals[position - 1]
            for fanin_signal in compiled.py_fanin[signal]:
                if fanin_signal != on_path_input and sides.get(fanin_signal, 0):
                    value = 1 - value
        finals.append(value)
    return tuple(finals)


def sensitize_nonrobust(
    circuit: Circuit,
    fault: PathDelayFault,
    lanes: int,
    xor_sides: Optional[Dict[int, int]] = None,
) -> List[Assignment]:
    """3-valued sensitization assignments for *fault* in lane mask *lanes*."""
    compiled = circuit.compiled()
    assignments: List[Assignment] = []
    sides = xor_sides or {}
    finals = path_final_values(circuit, fault, sides)
    for position, signal in enumerate(fault.signals):
        assignments.append(
            (signal, three_valued.encode_word(finals[position], lanes))
        )
        if position == 0:
            continue
        on_path_input = fault.signals[position - 1]
        nc = compiled.controlling[signal]
        for fanin_signal in compiled.py_fanin[signal]:
            if fanin_signal == on_path_input:
                continue
            if nc is None:  # XOR-like: fix the side to its chosen polarity
                assignments.append(
                    (
                        fanin_signal,
                        three_valued.encode_word(sides.get(fanin_signal, 0), lanes),
                    )
                )
            else:
                assignments.append(
                    (fanin_signal, three_valued.encode_word(1 - nc, lanes))
                )
    return assignments


def sensitize_robust(
    circuit: Circuit,
    fault: PathDelayFault,
    lanes: int,
    xor_sides: Optional[Dict[int, int]] = None,
) -> List[Assignment]:
    """7-valued sensitization assignments for *fault* in lane mask *lanes*.

    The path input gets the full rising/falling value; on-path internal
    signals get final-value planes only (the transition is the fault
    effect being propagated — its instability is established by the
    off-path conditions, not justified like a required value).
    """
    compiled = circuit.compiled()
    assignments: List[Assignment] = []
    sides = xor_sides or {}
    finals = path_final_values(circuit, fault, sides)

    launch = "R" if fault.transition.final == 1 else "F"
    assignments.append((fault.signals[0], seven_valued.encode_word(launch, lanes)))

    for position, signal in enumerate(fault.signals):
        if position == 0:
            continue
        assignments.append(
            (signal, seven_valued.encode_word(f"U{finals[position]}", lanes))
        )
        on_path_input = fault.signals[position - 1]
        on_path_final = finals[position - 1]
        control = compiled.controlling[signal]
        if control is None:
            off_value = None  # per-side choice below (stable at polarity)
        else:
            nc = 1 - control
            if on_path_final == nc:
                off_value = f"S{nc}"  # ends non-controlling: must be stable
            else:
                off_value = f"U{nc}"  # ends controlling: final value suffices
        for fanin_signal in compiled.py_fanin[signal]:
            if fanin_signal == on_path_input:
                continue
            if off_value is None:
                chosen = f"S{sides.get(fanin_signal, 0)}"
            else:
                chosen = off_value
            assignments.append(
                (fanin_signal, seven_valued.encode_word(chosen, lanes))
            )
    return assignments


def sensitization_is_trivial(circuit: Circuit, fault: PathDelayFault) -> bool:
    """True when the path is a bare input-to-output wire chain.

    Such paths (every on-path gate is BUF/NOT) have no off-path inputs
    at all: any transition at the input is a test.
    """
    gate_types = circuit.compiled().gate_types
    return all(
        gate_types[s] in (GateType.BUF, GateType.NOT) for s in fault.signals[1:]
    )
