"""Non-enumerative structural path counting.

The "# faults" column of the paper's Tables 3/4 is the number of
functional paths, which for the larger ISCAS circuits (5.7e7 for
c3540, ~1e20 for c6288) can only be obtained without enumeration.
Counting structural paths in a DAG is a single dynamic-programming
sweep; Python integers make overflow a non-issue.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..circuit import Circuit


def count_paths(
    circuit: Circuit,
    from_inputs: Optional[Sequence[int]] = None,
    to_outputs: Optional[Sequence[int]] = None,
) -> int:
    """Number of structural input-output paths (exact, non-enumerative).

    ``paths(s)`` = number of paths from signal ``s`` to any selected
    output; inputs sum their counts.  Linear in circuit size.
    """
    out_set = set(to_outputs if to_outputs is not None else circuit.outputs)
    starts = list(from_inputs if from_inputs is not None else circuit.inputs)
    paths_from: List[int] = [0] * circuit.num_signals
    for index in reversed(circuit.topological_order()):
        total = 1 if index in out_set else 0
        for f in circuit.fanout(index):
            total += paths_from[f]
        paths_from[index] = total
    return sum(paths_from[s] for s in starts)


def count_faults(circuit: Circuit) -> int:
    """Number of path delay faults: two transitions per structural path."""
    return 2 * count_paths(circuit)


def paths_per_signal(circuit: Circuit) -> List[int]:
    """For every signal, the number of input-output paths through it.

    ``through(s) = paths_to(s) * paths_from(s)``.  Used by reports and
    by test-point analyses; also a quick way to find the path-count
    hot spots of a circuit.
    """
    paths_from = [0] * circuit.num_signals
    for index in reversed(circuit.topological_order()):
        total = 1 if circuit.is_output(index) else 0
        for f in circuit.fanout(index):
            total += paths_from[f]
        paths_from[index] = total
    paths_to = [0] * circuit.num_signals
    for index in circuit.topological_order():
        gate = circuit.gates[index]
        total = 1 if gate.is_input else 0
        for f in gate.fanin:
            total += paths_to[f]
        paths_to[index] = total
    return [paths_to[i] * paths_from[i] for i in range(circuit.num_signals)]


def path_length_histogram(circuit: Circuit) -> Dict[int, int]:
    """Histogram {path length (gate count) -> number of paths}.

    A DP over (signal, distance) pairs; total work is bounded by
    circuit size times depth.
    """
    per_signal: List[Dict[int, int]] = [dict() for _ in range(circuit.num_signals)]
    for index in reversed(circuit.topological_order()):
        acc: Dict[int, int] = {}
        if circuit.is_output(index):
            acc[0] = 1
        for f in circuit.fanout(index):
            for dist, n in per_signal[f].items():
                acc[dist + 1] = acc.get(dist + 1, 0) + n
        per_signal[index] = acc
    histogram: Dict[int, int] = {}
    for s in circuit.inputs:
        for dist, n in per_signal[s].items():
            histogram[dist] = histogram.get(dist, 0) + n
    return histogram
