"""Path delay fault model: faults, enumeration, counting, selection."""

from .fault import PathDelayFault, TestClass, Transition, both_transitions
from .enumerate import collect_faults, iter_faults, iter_paths, longest_paths
from .count import count_faults, count_paths, path_length_histogram, paths_per_signal
from .selection import (
    all_faults,
    describe_fault_universe,
    fault_list,
    longest_path_faults,
    sampled_faults,
)

__all__ = [
    "PathDelayFault",
    "TestClass",
    "Transition",
    "all_faults",
    "both_transitions",
    "collect_faults",
    "count_faults",
    "count_paths",
    "describe_fault_universe",
    "fault_list",
    "iter_faults",
    "iter_paths",
    "longest_path_faults",
    "longest_paths",
    "path_length_histogram",
    "paths_per_signal",
    "sampled_faults",
]
