"""The path delay fault model (Smith, ITC 1985).

A *path* is a sequence of signals from a primary input to a primary
output where each consecutive pair is a gate fanin->output edge.  A
*path delay fault* is a path together with a transition direction at
its input: the fault is present when the cumulative propagation delay
along the path for that transition exceeds the clock period.

Each structural path therefore carries two faults (rising and falling
at the path input), and for every on-path signal the transition
direction is fixed by the inversion parity of the gates traversed so
far — :meth:`PathDelayFault.transition_at` encodes exactly that.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..circuit import Circuit, GateType, inverts


class Transition(enum.Enum):
    """Signal transition direction (initial -> final value)."""

    RISING = "R"  # 0 -> 1
    FALLING = "F"  # 1 -> 0

    @property
    def initial(self) -> int:
        return 0 if self is Transition.RISING else 1

    @property
    def final(self) -> int:
        return 1 if self is Transition.RISING else 0

    def inverted(self) -> "Transition":
        return Transition.FALLING if self is Transition.RISING else Transition.RISING

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Transition.{self.name}"


class TestClass(enum.Enum):
    """Detection class hierarchy: robust detection implies nonrobust."""

    __test__ = False  # not a pytest test class despite the name

    ROBUST = "robust"
    NONROBUST = "nonrobust"


@dataclass(frozen=True)
class PathDelayFault:
    """A structural path plus the launch transition at its input.

    Attributes:
        signals: on-path signal ids, primary input first, primary
            output last.
        transition: direction of the transition launched at
            ``signals[0]``.
    """

    signals: Tuple[int, ...]
    transition: Transition

    def __post_init__(self) -> None:
        if len(self.signals) < 1:
            raise ValueError("a path needs at least one signal")

    # ------------------------------------------------------------------
    @property
    def input_signal(self) -> int:
        return self.signals[0]

    @property
    def output_signal(self) -> int:
        return self.signals[-1]

    @property
    def length(self) -> int:
        """Number of on-path gates (edges)."""
        return len(self.signals) - 1

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Yield consecutive (driver, gate-output) signal pairs."""
        for a, b in zip(self.signals, self.signals[1:]):
            yield a, b

    # ------------------------------------------------------------------
    def validate(self, circuit: Circuit) -> None:
        """Raise ``ValueError`` unless this is a structural path of *circuit*.

        Checks: starts at a primary input, ends at a primary output,
        and every consecutive pair is a fanin edge.
        """
        first = circuit.gates[self.signals[0]]
        if not first.is_input:
            raise ValueError(
                f"path must start at a primary input, got {first.name!r}"
            )
        if not circuit.is_output(self.signals[-1]):
            raise ValueError(
                f"path must end at a primary output, got "
                f"{circuit.signal_name(self.signals[-1])!r}"
            )
        for a, b in self.edges():
            gate = circuit.gates[b]
            if a not in gate.fanin:
                raise ValueError(
                    f"{circuit.signal_name(a)!r} does not feed "
                    f"{circuit.signal_name(b)!r}"
                )

    def transition_at(self, circuit: Circuit, position: int) -> Transition:
        """Transition direction of the on-path signal at *position*.

        Position 0 is the path input; each inverting on-path gate flips
        the direction.
        """
        t = self.transition
        for index in self.signals[1 : position + 1]:
            if inverts(circuit.gates[index].gate_type):
                t = t.inverted()
        return t

    def final_values(self, circuit: Circuit) -> Tuple[int, ...]:
        """Final (V2) logic value of every on-path signal."""
        values = []
        t = self.transition
        values.append(t.final)
        for index in self.signals[1:]:
            if inverts(circuit.gates[index].gate_type):
                t = t.inverted()
            values.append(t.final)
        return tuple(values)

    def describe(self, circuit: Circuit) -> str:
        """Human-readable form like ``R: b-p-x`` (as the paper writes paths)."""
        names = "-".join(circuit.signal_name(i) for i in self.signals)
        return f"{self.transition.value}: {names}"

    # ------------------------------------------------------------------
    @classmethod
    def from_names(
        cls,
        circuit: Circuit,
        names: Tuple[str, ...] | list,
        transition: Transition,
        validate: bool = True,
    ) -> "PathDelayFault":
        """Build a fault from signal *names*; validates by default."""
        fault = cls(tuple(circuit.index_of(n) for n in names), transition)
        if validate:
            fault.validate(circuit)
        return fault


def both_transitions(signals: Tuple[int, ...]) -> Tuple[PathDelayFault, PathDelayFault]:
    """The rising and falling faults of one structural path."""
    return (
        PathDelayFault(signals, Transition.RISING),
        PathDelayFault(signals, Transition.FALLING),
    )
