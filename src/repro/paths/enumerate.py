"""Structural path enumeration.

The number of structural paths can grow exponentially with circuit
size (the paper's Table 3 lists 5.7e7 functional paths for c3540 and
excludes c6288 with its ~1e20 paths).  The enumerator is therefore a
*generator*: paths are produced lazily in a deterministic order and
callers cap how many they consume.  A separate non-enumerative counter
lives in :mod:`repro.paths.count`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..circuit import Circuit
from .fault import PathDelayFault, Transition


def iter_paths(
    circuit: Circuit,
    from_inputs: Optional[Sequence[int]] = None,
    to_outputs: Optional[Sequence[int]] = None,
    max_paths: Optional[int] = None,
) -> Iterator[Tuple[int, ...]]:
    """Yield structural paths as tuples of signal ids.

    Paths run from primary inputs (optionally restricted to
    *from_inputs*) to primary outputs (optionally restricted to
    *to_outputs*).  Enumeration is an iterative depth-first search in
    fanout order, so the sequence is deterministic.  *max_paths* stops
    enumeration early.
    """
    out_set = set(to_outputs if to_outputs is not None else circuit.outputs)
    starts = list(from_inputs if from_inputs is not None else circuit.inputs)

    # Pre-compute which signals can still reach a selected output, so
    # the DFS never descends into dead cones.
    reaches = [False] * circuit.num_signals
    for o in out_set:
        reaches[o] = True
    for index in reversed(circuit.topological_order()):
        if any(reaches[f] for f in circuit.fanout(index)):
            reaches[index] = True

    produced = 0
    for start in starts:
        if not reaches[start]:
            continue
        # stack holds (signal, fanout iterator); path mirrors the stack
        path: List[int] = [start]
        iters: List[Iterator[int]] = [iter(circuit.fanout(start))]
        if start in out_set:
            yield (start,)
            produced += 1
            if max_paths is not None and produced >= max_paths:
                return
        while iters:
            try:
                nxt = next(iters[-1])
            except StopIteration:
                iters.pop()
                path.pop()
                continue
            if not reaches[nxt]:
                continue
            path.append(nxt)
            if nxt in out_set:
                yield tuple(path)
                produced += 1
                if max_paths is not None and produced >= max_paths:
                    return
            iters.append(iter(circuit.fanout(nxt)))
    return


def iter_faults(
    circuit: Circuit,
    max_faults: Optional[int] = None,
    transitions: Iterable[Transition] = (Transition.RISING, Transition.FALLING),
    **path_kwargs,
) -> Iterator[PathDelayFault]:
    """Yield path delay faults: each structural path x each transition.

    The paper counts "# faults" as functional paths times transitions;
    we enumerate rising and falling faults for every structural path.
    """
    transitions = tuple(transitions)
    produced = 0
    for signals in iter_paths(circuit, **path_kwargs):
        for t in transitions:
            yield PathDelayFault(signals, t)
            produced += 1
            if max_faults is not None and produced >= max_faults:
                return


def collect_faults(
    circuit: Circuit,
    max_faults: Optional[int] = None,
    **kwargs,
) -> List[PathDelayFault]:
    """Materialize :func:`iter_faults` into a list."""
    return list(iter_faults(circuit, max_faults=max_faults, **kwargs))


def longest_paths(circuit: Circuit, count: int) -> List[Tuple[int, ...]]:
    """The *count* structurally longest input-output paths.

    Longest paths are the natural delay-test targets (they have the
    least slack).  Implemented as a DFS that prunes any prefix that
    cannot beat the current cutoff using per-signal remaining-depth
    bounds, so it stays cheap even on path-explosive circuits.
    """
    # longest remaining distance to any output, per signal
    remaining = [None] * circuit.num_signals  # type: List[Optional[int]]
    for o in circuit.outputs:
        remaining[o] = 0
    for index in reversed(circuit.topological_order()):
        best = remaining[index]
        for f in circuit.fanout(index):
            if remaining[f] is not None:
                cand = remaining[f] + 1
                if best is None or cand > best:
                    best = cand
        remaining[index] = best

    found: List[Tuple[int, Tuple[int, ...]]] = []  # (length, path), min-heap-ish

    def worst() -> int:
        return min(length for length, _ in found) if len(found) >= count else -1

    for start in circuit.inputs:
        if remaining[start] is None:
            continue
        stack: List[Tuple[List[int], int]] = [([start], 0)]
        while stack:
            path, length = stack.pop()
            tip = path[-1]
            bound = length + (remaining[tip] or 0)
            if len(found) >= count and bound < worst():
                continue
            if circuit.is_output(tip):
                found.append((length, tuple(path)))
                found.sort(key=lambda item: -item[0])
                del found[count:]
            for f in circuit.fanout(tip):
                if remaining[f] is not None:
                    stack.append((path + [f], length + 1))
    return [path for _, path in found]
