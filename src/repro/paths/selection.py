"""Fault-list construction strategies.

The experiment tables need reproducible fault lists: the paper targets
*all* functional paths, which is feasible for its C implementation but
must be capped under CPython for the largest synthetic circuits.  The
strategies here make the cap explicit and deterministic so single-bit
and bit-parallel generators (Tables 5/6) and the three-way tool
comparison (Tables 7/8) all see exactly the same faults.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..circuit import Circuit
from .count import count_faults
from .enumerate import collect_faults, iter_paths, longest_paths
from .fault import PathDelayFault, Transition, both_transitions


def all_faults(circuit: Circuit, cap: Optional[int] = None) -> List[PathDelayFault]:
    """Every path delay fault, in deterministic DFS order, up to *cap*."""
    return collect_faults(circuit, max_faults=cap)


def longest_path_faults(circuit: Circuit, count: int) -> List[PathDelayFault]:
    """Rising+falling faults on the *count* structurally longest paths."""
    faults: List[PathDelayFault] = []
    for signals in longest_paths(circuit, count):
        faults.extend(both_transitions(signals))
    return faults


def sampled_faults(
    circuit: Circuit,
    count: int,
    seed: int = 0,
    pool_factor: int = 8,
) -> List[PathDelayFault]:
    """A reproducible random sample of *count* faults.

    Enumerates a pool of ``pool_factor * count`` faults in DFS order
    and samples without replacement with a seeded PRNG.  On circuits
    with fewer faults than requested the full list is returned.
    """
    pool = collect_faults(circuit, max_faults=max(count, pool_factor * count))
    if len(pool) <= count:
        return pool
    rng = random.Random(seed)
    picked = rng.sample(range(len(pool)), count)
    picked.sort()  # keep deterministic DFS-like ordering
    return [pool[i] for i in picked]


def fault_list(
    circuit: Circuit,
    cap: Optional[int] = None,
    strategy: str = "all",
    seed: int = 0,
) -> List[PathDelayFault]:
    """Uniform entry point used by the experiment runners.

    Args:
        circuit: target circuit.
        cap: maximum number of faults (``None`` = no cap).
        strategy: ``"all"`` (DFS prefix), ``"longest"`` (longest paths
            first) or ``"sample"`` (seeded random sample).
        seed: PRNG seed for ``"sample"``.
    """
    if strategy == "all":
        return all_faults(circuit, cap=cap)
    if cap is None:
        raise ValueError(f"strategy {strategy!r} requires a cap")
    if strategy == "longest":
        return longest_path_faults(circuit, max(1, cap // 2))
    if strategy == "sample":
        return sampled_faults(circuit, cap, seed=seed)
    raise ValueError(f"unknown strategy {strategy!r}")


def describe_fault_universe(circuit: Circuit, cap: Optional[int] = None) -> dict:
    """Summary dict for reports: total fault count vs. listed faults."""
    total = count_faults(circuit)
    listed = total if cap is None else min(total, cap)
    return {
        "circuit": circuit.name,
        "total_faults": total,
        "listed_faults": listed,
        "capped": cap is not None and total > cap,
    }
