"""Experiment runners, metrics and paper-style table rendering."""

from .metrics import (
    SpeedupRow,
    coverage_percent,
    efficiency_percent,
    geometric_mean,
    speedup_row,
)
from .tables import render_comparison, render_table
from .experiments import (
    run_ablation_implications,
    run_ablation_modes,
    run_ablation_word_length,
    run_atpg_table,
    run_campaign_scaling,
    run_comparison_table,
    run_figure1,
    run_figure2,
    run_speedup_table,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_table7,
    run_table8,
)

__all__ = [
    "SpeedupRow",
    "coverage_percent",
    "efficiency_percent",
    "geometric_mean",
    "render_comparison",
    "render_table",
    "run_ablation_implications",
    "run_ablation_modes",
    "run_ablation_word_length",
    "run_atpg_table",
    "run_campaign_scaling",
    "run_comparison_table",
    "run_figure1",
    "run_figure2",
    "run_speedup_table",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
    "run_table8",
    "speedup_row",
]
