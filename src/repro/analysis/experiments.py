"""Experiment runners: one function per paper table / figure.

Each runner returns a list of row dicts shaped like the corresponding
table in the paper; ``repro.analysis.tables.render_table`` prints them
in the paper's layout.  The benchmark harness under ``benchmarks/``
wraps these runners one-to-one, and the CLI exposes them as
``tip-experiments``.

Workloads come from the synthetic ISCAS-like suites (see DESIGN.md,
"Substitutions"); fault lists are capped (``fault_cap``) because full
path enumeration of the larger circuits is exactly the explosion the
paper documents — the cap is reported in the rows.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..api import AtpgSession, Options
from ..baselines import generate_tests_bdd, generate_tests_structural
from ..circuit import Circuit
from ..circuit.library import paper_example
from ..circuit.suites import (
    TABLE34_CIRCUITS,
    TABLE56_CIRCUITS,
    TABLE78_CIRCUITS,
    suite_circuit,
)
from ..core import generate_tests_single_bit
from ..core.aptpg import run_aptpg
from ..core.fptpg import run_fptpg
from ..core.results import FaultStatus
from ..logic.words import DEFAULT_WORD_LENGTH
from ..paths import PathDelayFault, TestClass, Transition, count_faults, fault_list
from .metrics import speedup_row

Row = Dict[str, object]


def _suite_faults(circuit: Circuit, fault_cap: int):
    return fault_list(circuit, cap=fault_cap, strategy="all")


# ---------------------------------------------------------------------------
# Tables 3 and 4: robust / nonrobust ATPG over the ISCAS85-like suite
# ---------------------------------------------------------------------------


def run_atpg_table(
    test_class: TestClass,
    circuits: Optional[Sequence[str]] = None,
    scale: int = 1,
    fault_cap: int = 512,
    width: int = DEFAULT_WORD_LENGTH,
) -> List[Row]:
    """The Table 3 (robust) / Table 4 (nonrobust) experiment.

    Columns follow the paper: # faults (the full structural fault
    universe), # tested, efficiency, time.  ``listed`` additionally
    reports how many faults were targeted under the cap.
    """
    rows: List[Row] = []
    for name in circuits or TABLE34_CIRCUITS:
        session = AtpgSession(suite_circuit(name, scale))
        circuit = session.circuit
        faults = _suite_faults(circuit, fault_cap)
        report = session.generate(faults, test_class=test_class, width=width)
        rows.append(
            {
                "circuit": f"{name}-like",
                "faults": count_faults(circuit),
                "listed": len(faults),
                "tested": report.n_tested,
                "redundant": report.n_redundant,
                "efficiency_%": round(report.efficiency, 2),
                "time_s": round(report.seconds_total, 4),
            }
        )
    return rows


def run_table3(**kwargs) -> List[Row]:
    """Table 3: Robust ATPG for the ISCAS85-like circuits."""
    return run_atpg_table(TestClass.ROBUST, **kwargs)


def run_table4(**kwargs) -> List[Row]:
    """Table 4: Nonrobust ATPG for the ISCAS85-like circuits."""
    return run_atpg_table(TestClass.NONROBUST, **kwargs)


# ---------------------------------------------------------------------------
# Tables 5 and 6: bit-parallel vs single-bit generation
# ---------------------------------------------------------------------------


def run_speedup_table(
    test_class: TestClass,
    circuits: Optional[Sequence[str]] = None,
    scale: int = 1,
    fault_cap: int = 256,
    width: int = DEFAULT_WORD_LENGTH,
) -> List[Row]:
    """The Table 5 (robust) / Table 6 (nonrobust) experiment.

    Both generators run the identical fault list; the row reports
    t_sens, t_single, t_parallel and the speed-up, as in the paper.
    """
    rows: List[Row] = []
    for name in circuits or TABLE56_CIRCUITS:
        session = AtpgSession(suite_circuit(name, scale))
        circuit = session.circuit
        faults = _suite_faults(circuit, fault_cap)
        parallel = session.generate(faults, test_class=test_class, width=width)
        single = generate_tests_single_bit(circuit, faults, test_class)
        row = speedup_row(f"{name}-like", single, parallel)
        rows.append(
            {
                "circuit": row.circuit,
                "t_sens": round(row.seconds_sensitize, 4),
                "t_single": round(row.seconds_single, 4),
                "t_parallel": round(row.seconds_parallel, 4),
                "speedup": round(row.speedup, 1),
                "aborted_single": row.aborted_single,
                "aborted_parallel": row.aborted_parallel,
            }
        )
    return rows


def run_table5(**kwargs) -> List[Row]:
    """Table 5: single-bit vs bit-parallel, robust ATPG."""
    return run_speedup_table(TestClass.ROBUST, **kwargs)


def run_table6(**kwargs) -> List[Row]:
    """Table 6: single-bit vs bit-parallel, nonrobust ATPG."""
    return run_speedup_table(TestClass.NONROBUST, **kwargs)


# ---------------------------------------------------------------------------
# Tables 7 and 8: TIP vs TSUNAMI-D-like vs DYNAMITE-like
# ---------------------------------------------------------------------------


def run_comparison_table(
    test_class: TestClass,
    circuits: Optional[Sequence[str]] = None,
    scale: int = 1,
    fault_cap: int = 192,
    width: int = DEFAULT_WORD_LENGTH,
    bdd_node_limit: int = 200_000,
) -> List[Row]:
    """The Table 7 (nonrobust) / Table 8 (robust) experiment."""
    rows: List[Row] = []
    for name in circuits or TABLE78_CIRCUITS:
        session = AtpgSession(suite_circuit(name, scale))
        circuit = session.circuit
        faults = _suite_faults(circuit, fault_cap)

        t0 = time.perf_counter()
        tip = session.generate(faults, test_class=test_class, width=width)
        tip_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        bdd = generate_tests_bdd(
            circuit, faults, test_class, node_limit=bdd_node_limit
        )
        bdd_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        structural = generate_tests_structural(circuit, faults, test_class)
        structural_time = time.perf_counter() - t0

        rows.append(
            {
                "circuit": f"{name}-like",
                "TIP_tested": tip.n_tested,
                "TIP_time_s": round(tip_time, 4),
                "TSUNAMI_tested": bdd.n_tested,
                "TSUNAMI_time_s": round(bdd_time, 4),
                "TSUNAMI_aborted": bdd.count(FaultStatus.ABORTED),
                "DYNAMITE_tested": structural.n_tested,
                "DYNAMITE_time_s": round(structural_time, 4),
                "DYNAMITE_aborted": structural.n_aborted,
            }
        )
    return rows


def run_table7(**kwargs) -> List[Row]:
    """Table 7: nonrobust three-way tool comparison."""
    return run_comparison_table(TestClass.NONROBUST, **kwargs)


def run_table8(**kwargs) -> List[Row]:
    """Table 8: robust three-way tool comparison."""
    return run_comparison_table(TestClass.ROBUST, **kwargs)


# ---------------------------------------------------------------------------
# Figures 1 and 2: the example-circuit walkthroughs
# ---------------------------------------------------------------------------


def run_figure1() -> Dict[str, object]:
    """Figure 1: FPTPG for four paths on the example circuit, L = 4."""
    circuit = paper_example()
    faults = [
        PathDelayFault.from_names(circuit, ("b", "p", "x"), Transition.RISING),
        PathDelayFault.from_names(circuit, ("b", "q", "s", "x"), Transition.RISING),
        PathDelayFault.from_names(circuit, ("c", "r", "s", "x"), Transition.RISING),
        PathDelayFault.from_names(circuit, ("c", "r", "s", "y"), Transition.RISING),
    ]
    outcome = run_fptpg(circuit, faults, TestClass.NONROBUST, width=4)
    return {
        "circuit": circuit,
        "faults": faults,
        "statuses": [s.value for s in outcome.statuses],
        "decisions": outcome.decisions,
        "lane_words": {
            name: outcome.state.format_lane_word(name)
            for name in ("a", "b", "c", "d", "p", "q", "r", "s", "t", "e", "x", "y")
        },
        "patterns": outcome.patterns,
    }


def run_figure2() -> Dict[str, object]:
    """Figure 2: APTPG for path a-p-x (falling) with four alternatives."""
    circuit = paper_example()
    fault = PathDelayFault.from_names(circuit, ("a", "p", "x"), Transition.FALLING)
    outcome = run_aptpg(circuit, fault, TestClass.NONROBUST, width=4)
    return {
        "circuit": circuit,
        "fault": fault,
        "status": outcome.status.value,
        "splits_used": outcome.splits_used,
        "backtracks": outcome.backtracks,
        "pattern": outcome.pattern,
        "lane_words": {
            name: outcome.state.format_lane_word(name)
            for name in ("a", "b", "c", "d", "p", "q", "r", "s", "x")
        },
    }


# ---------------------------------------------------------------------------
# Ablations (beyond the paper; motivated by its design choices)
# ---------------------------------------------------------------------------


def run_ablation_word_length(
    widths: Sequence[int] = (1, 2, 4, 8, 16, 32, 64, 128),
    circuit_name: str = "s1423",
    scale: int = 1,
    fault_cap: int = 256,
    test_class: TestClass = TestClass.NONROBUST,
) -> List[Row]:
    """Generation time as a function of the word length L.

    The 1995 hardware fixed L at 32/64; Python integers let the
    reproduction sweep it, including beyond the native word.
    """
    session = AtpgSession(suite_circuit(circuit_name, scale))
    faults = _suite_faults(session.circuit, fault_cap)
    rows: List[Row] = []
    for width in widths:
        report = session.generate(faults, test_class=test_class, width=width)
        rows.append(
            {
                "L": width,
                "tested": report.n_tested,
                "aborted": report.n_aborted,
                "time_s": round(report.seconds_total, 4),
                "implication_passes": report.implication_passes,
            }
        )
    return rows


def run_ablation_modes(
    circuit_name: str = "s1423",
    scale: int = 1,
    fault_cap: int = 256,
    test_class: TestClass = TestClass.NONROBUST,
    width: int = DEFAULT_WORD_LENGTH,
) -> List[Row]:
    """FPTPG-only vs APTPG-only vs the paper's combination."""
    session = AtpgSession(suite_circuit(circuit_name, scale))
    faults = _suite_faults(session.circuit, fault_cap)
    configurations = [
        ("fptpg_only", Options(width=width, use_aptpg=False)),
        ("aptpg_only", Options(width=width, use_fptpg=False)),
        ("combined", Options(width=width)),
    ]
    rows: List[Row] = []
    for label, options in configurations:
        report = session.generate(faults, test_class=test_class, options=options)
        rows.append(
            {
                "mode": label,
                "tested": report.n_tested,
                "redundant": report.n_redundant,
                "aborted": report.n_aborted,
                "time_s": round(report.seconds_total, 4),
            }
        )
    return rows


def run_ablation_implications(
    circuit_name: str = "s1423",
    scale: int = 1,
    fault_cap: int = 256,
    test_class: TestClass = TestClass.NONROBUST,
    width: int = DEFAULT_WORD_LENGTH,
) -> List[Row]:
    """Unique backward implications on vs off (implication strength)."""
    session = AtpgSession(suite_circuit(circuit_name, scale))
    faults = _suite_faults(session.circuit, fault_cap)
    rows: List[Row] = []
    for label, flag in (("forward_only", False), ("with_backward", True)):
        options = Options(width=width, unique_backward=flag)
        report = session.generate(faults, test_class=test_class, options=options)
        rows.append(
            {
                "implications": label,
                "tested": report.n_tested,
                "redundant": report.n_redundant,
                "aborted": report.n_aborted,
                "decisions": report.decisions,
                "backtracks": report.backtracks,
                "time_s": round(report.seconds_total, 4),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# campaign scaling: serial engine vs sharded multi-process campaign
# ---------------------------------------------------------------------------


def run_campaign_scaling(
    circuit_name: str = "c880",
    scale: int = 1,
    fault_cap: int = 256,
    test_class: TestClass = TestClass.NONROBUST,
    width: int = DEFAULT_WORD_LENGTH,
    workers_list: Sequence[int] = (1, 2),
    window: Optional[int] = None,
) -> List[Row]:
    """End-to-end campaign throughput at increasing worker counts.

    The first row is the serial engine (the reference both for wall
    time and for per-fault statuses); campaign rows must reproduce its
    detected-fault count exactly — the schedule is worker-invariant —
    so any speed-up is pure parallelism, never a semantics change.
    """
    session = AtpgSession(suite_circuit(circuit_name, scale))
    circuit = session.circuit
    faults = _suite_faults(circuit, fault_cap)
    rows: List[Row] = []

    t0 = time.perf_counter()
    serial = session.generate(faults, test_class=test_class, width=width)
    serial_wall = time.perf_counter() - t0
    rows.append(
        {
            "runner": "engine(serial)",
            "workers": 1,
            "faults": serial.n_faults,
            "detected": serial.n_tested,
            "patterns": len(serial.patterns),
            "faults_per_s": round(serial.n_faults / serial_wall, 1),
            "speedup": 1.0,
            "time_s": round(serial_wall, 4),
        }
    )
    for workers in workers_list:
        options = Options(width=width, workers=workers, window=window)
        t0 = time.perf_counter()
        report = session.campaign(
            faults=faults, test_class=test_class, options=options
        )
        wall = time.perf_counter() - t0
        # Worker count never changes outcomes; a finite window does
        # (its schedule legitimately differs from the unbounded serial
        # baseline), so equality is only asserted for window=None.
        if window is None and report.n_detected != serial.n_tested:
            raise AssertionError(
                f"campaign(workers={workers}) detected {report.n_detected} "
                f"faults, serial engine {serial.n_tested}"
            )
        rows.append(
            {
                "runner": f"campaign(workers={workers})",
                "workers": workers,
                "faults": report.n_faults,
                "detected": report.n_detected,
                "patterns": len(report.patterns),
                "faults_per_s": round(report.n_faults / wall, 1),
                "speedup": round(serial_wall / wall, 2),
                "time_s": round(wall, 4),
            }
        )
    return rows
