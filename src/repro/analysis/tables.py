"""Paper-style ASCII table rendering.

The experiment runners return lists of row dicts; this module turns
them into the aligned text tables the paper prints, so the benchmark
harness output can be compared to the publication side by side.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_value(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        return f"{value:.2f}"
    return str(value)


def render_table(
    rows: Sequence[Dict[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned ASCII table.

    Columns default to the keys of the first row, in insertion order.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns or rows[0].keys())
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(line[i]) for line in cells))
        for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in cells:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row_cells))
        )
    return "\n".join(lines)


def render_comparison(
    rows: Sequence[Dict[str, object]],
    tools: Sequence[str],
    title: Optional[str] = None,
) -> str:
    """Render the Tables-7/8 layout: #tested and time per tool."""
    columns = ["circuit"]
    for tool in tools:
        columns.append(f"{tool}_tested")
        columns.append(f"{tool}_time_s")
    return render_table(rows, columns=columns, title=title)
