"""Derived metrics for the experiment tables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.results import TpgReport


@dataclass(frozen=True)
class SpeedupRow:
    """One row of the paper's Tables 5/6 comparison."""

    circuit: str
    seconds_sensitize: float
    seconds_single: float
    seconds_parallel: float
    aborted_single: int
    aborted_parallel: int

    @property
    def speedup(self) -> float:
        """t_single / t_parallel (the tables' last column)."""
        if self.seconds_parallel <= 0:
            return float("inf")
        return self.seconds_single / self.seconds_parallel


def speedup_row(
    circuit_name: str, single: TpgReport, parallel: TpgReport
) -> SpeedupRow:
    """Build a Tables-5/6 row from two generation reports.

    ``t_sens`` is reported from the parallel run; the paper notes the
    sensitization step is "identical for single-bit and bit-parallel
    sensitization".
    """
    return SpeedupRow(
        circuit=circuit_name,
        seconds_sensitize=parallel.seconds_sensitize,
        seconds_single=single.seconds_generate + single.seconds_simulate,
        seconds_parallel=parallel.seconds_generate + parallel.seconds_simulate,
        aborted_single=single.n_aborted,
        aborted_parallel=parallel.n_aborted,
    )


def efficiency_percent(report: TpgReport) -> float:
    """The paper's efficiency: (1 - #aborted / #faults) * 100%."""
    return report.efficiency


def coverage_percent(report: TpgReport) -> float:
    """Detected faults over all faults, in percent."""
    if not report.records:
        return 100.0
    return 100.0 * report.n_tested / report.n_faults


def geometric_mean(values) -> Optional[float]:
    """Geometric mean of positive values (None when empty)."""
    values = [v for v in values if v > 0]
    if not values:
        return None
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
