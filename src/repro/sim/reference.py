"""The seed's object-graph PPSFP path, preserved as a reference.

Before the compiled kernel existed, PPSFP re-walked the
:class:`repro.circuit.Circuit` object graph on every call: per-gate
``Gate`` attribute lookups, ``topological_order()`` iteration, and
Python-int planes limited to one machine word per batch.  That
implementation lives on here, verbatim, for two jobs:

* **validation** — the kernel-backed simulators in
  :mod:`repro.sim.delay_sim` are cross-checked lane-for-lane against
  this path by the test suite, and
* **benchmarking** — ``tip-bench-sim`` and ``benchmarks/`` measure the
  compiled kernel's speed-up against exactly the code it replaced.

Do not "optimize" this module; its value is being the slow, obviously
faithful baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..circuit import Circuit, controlling_value
from ..logic import seven_valued
from ..logic.words import mask_for
from ..paths import PathDelayFault, TestClass
from .delay_sim import PatternLike, Planes, pack_patterns


def simulate_planes_reference(
    circuit: Circuit, patterns: Sequence[PatternLike]
) -> Tuple[List[Planes], int]:
    """Seed forward 7-valued simulation over the circuit object graph."""
    input_planes, width = pack_patterns(circuit, patterns)
    if width == 0:
        return [], 0
    mask = mask_for(width)
    values: List[Planes] = [(0, 0, 0, 0)] * circuit.num_signals
    for planes, pi in zip(input_planes, circuit.inputs):
        values[pi] = planes
    for index in circuit.topological_order():
        gate = circuit.gates[index]
        if gate.is_input:
            continue
        ins = [values[f] for f in gate.fanin]
        values[index] = seven_valued.forward(gate.gate_type, ins, mask)  # type: ignore[assignment]
    return values, width


def detection_mask_reference(
    circuit: Circuit,
    fault: PathDelayFault,
    values: Sequence[Planes],
    width: int,
    test_class: TestClass,
) -> int:
    """Seed per-fault detection conditions over the object graph."""
    mask = mask_for(width)

    z, o, s, i = values[fault.input_signal]
    want_final_one = fault.transition.final == 1
    detected = i & (o if want_final_one else z)

    robust = test_class is TestClass.ROBUST
    for position, signal in enumerate(fault.signals):
        if not detected:
            break
        if position == 0:
            continue
        gate = circuit.gates[signal]
        on_path_input = fault.signals[position - 1]
        dz, do, _ds, _di = values[on_path_input]
        control = controlling_value(gate.gate_type)
        for fanin_signal in gate.fanin:
            if fanin_signal == on_path_input:
                continue
            fz, fo, fs, fi = values[fanin_signal]
            if control is None:
                if robust:
                    detected &= fs
                continue
            nc = 1 - control
            has_nc_final = fo if nc == 1 else fz
            detected &= has_nc_final
            if robust:
                on_nc = do if nc == 1 else dz
                detected &= fs | ~on_nc
    return detected & mask


def detected_faults_reference(
    circuit: Circuit,
    patterns: Sequence[PatternLike],
    faults: Iterable[PathDelayFault],
    test_class: TestClass,
) -> Dict[PathDelayFault, int]:
    """Seed PPSFP: one object-graph pass + per-fault int-plane checks."""
    values, width = simulate_planes_reference(circuit, patterns)
    if width == 0:
        return {fault: 0 for fault in faults}
    return {
        fault: detection_mask_reference(circuit, fault, values, width, test_class)
        for fault in faults
    }
