"""Bit-parallel two-valued logic simulation.

The substrate for parallel-pattern processing (PPSFP): ``L`` input
vectors are packed into the bit lanes of one word per signal and the
whole circuit is evaluated with one pass of bitwise operations per
gate.  Two implementations are provided:

* :func:`simulate_words` — Python integers as words (arbitrary lane
  count, no dependencies), used by the TPG engine.
* :func:`simulate_array` — numpy ``uint64`` arrays, vectorizing across
  many 64-lane words at once; this is the "numpy workaround" that
  keeps bulk simulation fast under CPython.

Both are cross-checked against the naive per-vector reference
(:meth:`repro.circuit.Circuit.evaluate`) in the test suite.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..circuit import Circuit, GateType
from ..circuit.gates import AND_LIKE, OR_LIKE, XOR_LIKE, inverts
from ..logic.words import mask_for


def pack_vectors(vectors: Sequence[Sequence[int]]) -> List[int]:
    """Pack per-vector input values into per-input lane words.

    ``vectors[k][i]`` is the value of input *i* in vector *k*; the
    result has one word per input with vector *k* in lane *k*.
    """
    if not vectors:
        return []
    n_inputs = len(vectors[0])
    words = [0] * n_inputs
    for lane, vector in enumerate(vectors):
        if len(vector) != n_inputs:
            raise ValueError("all vectors must have the same length")
        for i, bit in enumerate(vector):
            if bit:
                words[i] |= 1 << lane
    return words


def simulate_words(circuit: Circuit, input_words: Sequence[int], width: int) -> List[int]:
    """Evaluate the circuit over *width* lanes of packed input words.

    Returns one word per signal (indexed by signal id).
    """
    if len(input_words) != len(circuit.inputs):
        raise ValueError(
            f"expected {len(circuit.inputs)} input words, got {len(input_words)}"
        )
    mask = mask_for(width)
    values = [0] * circuit.num_signals
    for pi, word in zip(circuit.inputs, input_words):
        values[pi] = word & mask
    for index in circuit.topological_order():
        gate = circuit.gates[index]
        if gate.is_input:
            continue
        t = gate.gate_type
        if t in (GateType.BUF, GateType.NOT):
            # NOT is flipped by the generic inverts() step below
            word = values[gate.fanin[0]]
        elif t in AND_LIKE:
            word = mask
            for f in gate.fanin:
                word &= values[f]
        elif t in OR_LIKE:
            word = 0
            for f in gate.fanin:
                word |= values[f]
        elif t in XOR_LIKE:
            word = 0
            for f in gate.fanin:
                word ^= values[f]
        else:  # pragma: no cover - closed enum
            raise ValueError(f"unhandled gate type {t}")
        if inverts(t):
            word = ~word & mask
        values[index] = word
    return values


def simulate_batch(
    circuit: Circuit, vectors: Sequence[Sequence[int]]
) -> List[Tuple[int, ...]]:
    """Simulate many vectors; returns per-vector output tuples."""
    results: List[Tuple[int, ...]] = []
    width = 256  # lanes per chunk; Python ints make this a free choice
    for start in range(0, len(vectors), width):
        chunk = vectors[start : start + width]
        words = pack_vectors(chunk)
        values = simulate_words(circuit, words, len(chunk))
        for lane in range(len(chunk)):
            results.append(
                tuple((values[o] >> lane) & 1 for o in circuit.outputs)
            )
    return results


def simulate_array(circuit: Circuit, input_bits: np.ndarray) -> np.ndarray:
    """Vectorized simulation over numpy uint64 lane words.

    Args:
        input_bits: array of shape ``(n_inputs, n_words)`` and dtype
            ``uint64``; each element carries 64 pattern lanes.

    Returns:
        array of shape ``(n_signals, n_words)`` with every signal's
        lane words.
    """
    input_bits = np.asarray(input_bits, dtype=np.uint64)
    if input_bits.shape[0] != len(circuit.inputs):
        raise ValueError(
            f"expected {len(circuit.inputs)} input rows, got {input_bits.shape[0]}"
        )
    n_words = input_bits.shape[1] if input_bits.ndim == 2 else 1
    values = np.zeros((circuit.num_signals, n_words), dtype=np.uint64)
    for row, pi in enumerate(circuit.inputs):
        values[pi] = input_bits[row]
    full = np.uint64(0xFFFFFFFFFFFFFFFF)
    for index in circuit.topological_order():
        gate = circuit.gates[index]
        if gate.is_input:
            continue
        t = gate.gate_type
        if t in (GateType.BUF, GateType.NOT):
            # NOT is flipped by the generic inverts() step below
            word = values[gate.fanin[0]].copy()
        elif t in AND_LIKE:
            word = np.full(n_words, full, dtype=np.uint64)
            for f in gate.fanin:
                word &= values[f]
        elif t in OR_LIKE:
            word = np.zeros(n_words, dtype=np.uint64)
            for f in gate.fanin:
                word |= values[f]
        elif t in XOR_LIKE:
            word = np.zeros(n_words, dtype=np.uint64)
            for f in gate.fanin:
                word ^= values[f]
        else:  # pragma: no cover - closed enum
            raise ValueError(f"unhandled gate type {t}")
        if inverts(t):
            word = word ^ full
        values[index] = word
    return values
