"""Bit-parallel two-valued logic simulation.

The substrate for parallel-pattern processing (PPSFP): ``L`` input
vectors are packed into the bit lanes of one word per signal and the
whole circuit is evaluated with one pass of bitwise operations per
gate.  Both entry points execute the compiled netlist kernel
(:class:`repro.kernel.CompiledCircuit`) through a word backend:

* :func:`simulate_words` — Python integers as words (arbitrary lane
  count, no dependencies), used by the TPG engine.
* :func:`simulate_array` — numpy ``uint64`` arrays, vectorizing across
  many 64-lane words at once; this is the bulk backend that keeps
  large-batch simulation fast under CPython.

Both are cross-checked against the naive per-vector reference
(:meth:`repro.circuit.Circuit.evaluate`) in the test suite.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..circuit import Circuit
from ..kernel import IntWordBackend, NumpyWordBackend, PackedPatterns, backend_for


def pack_vectors(vectors: Sequence[Sequence[int]]) -> List[int]:
    """Pack per-vector input values into per-input lane words.

    ``vectors[k][i]`` is the value of input *i* in vector *k*; the
    result has one word per input with vector *k* in lane *k*.
    """
    if not vectors:
        return []
    n_inputs = len(vectors[0])
    words = [0] * n_inputs
    for lane, vector in enumerate(vectors):
        if len(vector) != n_inputs:
            raise ValueError("all vectors must have the same length")
        for i, bit in enumerate(vector):
            if bit:
                words[i] |= 1 << lane
    return words


def simulate_words(
    circuit: Circuit,
    input_words: Sequence[int],
    width: int,
    fusion: str = "auto",
) -> List[int]:
    """Evaluate the circuit over *width* lanes of packed input words.

    Returns one word per signal (indexed by signal id).  ``fusion``
    selects the execution strategy (``"auto"`` compiles the netlist
    into a straight-line body once and reuses it; ``"interp"`` is the
    per-gate oracle loop).
    """
    return IntWordBackend(width, fusion=fusion).simulate_logic(
        circuit.compiled(), input_words
    )


def simulate_batch(
    circuit: Circuit, vectors: Sequence[Sequence[int]], fusion: str = "auto"
) -> List[Tuple[int, ...]]:
    """Simulate many vectors; returns per-vector output tuples.

    Batches beyond one machine word run vectorized on the numpy
    backend via :class:`repro.kernel.PackedPatterns`.
    """
    if not vectors:
        return []
    outputs = circuit.outputs
    # int/numpy crossover policy is owned by kernel.backend_for
    if isinstance(backend_for(len(vectors), "auto"), IntWordBackend):
        words = pack_vectors(vectors)
        values = simulate_words(circuit, words, len(vectors), fusion=fusion)
        return [
            tuple((values[o] >> lane) & 1 for o in outputs)
            for lane in range(len(vectors))
        ]
    packed = PackedPatterns.from_vectors(vectors)
    values = simulate_array(circuit, packed.v2, fusion=fusion)
    out_rows = np.ascontiguousarray(
        values[np.asarray(outputs, dtype=np.intp)], dtype="<u8"
    )
    bits = np.unpackbits(
        out_rows.view(np.uint8), axis=1, bitorder="little"
    )[:, : len(vectors)]
    return [tuple(int(b) for b in bits[:, lane]) for lane in range(len(vectors))]


def simulate_array(
    circuit: Circuit, input_bits: np.ndarray, fusion: str = "auto"
) -> np.ndarray:
    """Vectorized simulation over numpy uint64 lane words.

    Args:
        input_bits: array of shape ``(n_inputs, n_words)`` and dtype
            ``uint64``; each element carries 64 pattern lanes.
        fusion: execution strategy (``"auto"`` = level-vectorized
            fused groups; ``"interp"`` = the per-gate oracle loop).

    Returns:
        array of shape ``(n_signals, n_words)`` with every signal's
        lane words.
    """
    input_bits = np.asarray(input_bits, dtype=np.uint64)
    n_words = input_bits.shape[1] if input_bits.ndim == 2 else 1
    return NumpyWordBackend(64 * n_words, fusion=fusion).simulate_logic(
        circuit.compiled(), input_bits
    )
