"""Parallel-pattern path delay fault simulation (PPSFP).

The paper interleaves generation with bit-parallel fault simulation:
"we perform parallel pattern fault simulation after every L generated
test patterns" — detected faults are dropped from the pending list.
This module implements that simulator, for both test classes.

The simulator packs ``L`` two-vector tests into the bit lanes of a
7-valued plane state (each primary input becomes S0/S1/R/F according
to its V1/V2 bits) and evaluates the conservative hazard calculus of
:mod:`repro.logic.seven_valued` once, forward-only, in topological
order.  A path delay fault is then checked per pattern lane with pure
bitwise expressions:

* **launch**: the path input carries the fault's transition,
* **nonrobust**: at every on-path gate, all off-path inputs have the
  non-controlling final value (XOR-like gates impose no condition),
* **robust** (Lin & Reddy conditions): where the on-path transition
  ends non-controlling the off-path inputs must additionally be
  *stable*; where it ends controlling their final value suffices;
  XOR-like gates require stable off-path inputs.

A robust detection is also a nonrobust detection, mirroring the
model's containment relation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

from ..circuit import Circuit, GateType, controlling_value
from ..logic import seven_valued, ten_valued
from ..logic.words import mask_for
from ..paths import PathDelayFault, TestClass


class PatternLike(Protocol):
    """Anything with V1/V2 vectors (e.g. repro.core.patterns.TestPattern)."""

    v1: Tuple[int, ...]
    v2: Tuple[int, ...]


Planes = Tuple[int, int, int, int]


def pack_patterns(
    circuit: Circuit, patterns: Sequence[PatternLike]
) -> Tuple[List[Planes], int]:
    """Pack patterns into per-input 7-valued plane words.

    Lane ``k`` carries pattern ``k``: S0/S1 where V1 == V2, R/F where
    the vectors differ.  Returns (per-signal planes for inputs, width).
    """
    width = len(patterns)
    if width == 0:
        return [], 0
    planes: List[Planes] = []
    for position, _pi in enumerate(circuit.inputs):
        z = o = s = i = 0
        for lane, pattern in enumerate(patterns):
            initial = pattern.v1[position]
            final = pattern.v2[position]
            bit = 1 << lane
            if final:
                o |= bit
            else:
                z |= bit
            if initial == final:
                s |= bit
            else:
                i |= bit
        planes.append((z, o, s, i))
    return planes, width


def simulate_planes(
    circuit: Circuit, patterns: Sequence[PatternLike]
) -> Tuple[List[Planes], int]:
    """Forward 7-valued simulation of all patterns; returns signal planes."""
    input_planes, width = pack_patterns(circuit, patterns)
    if width == 0:
        return [], 0
    mask = mask_for(width)
    values: List[Planes] = [(0, 0, 0, 0)] * circuit.num_signals
    for planes, pi in zip(input_planes, circuit.inputs):
        values[pi] = planes
    for index in circuit.topological_order():
        gate = circuit.gates[index]
        if gate.is_input:
            continue
        ins = [values[f] for f in gate.fanin]
        values[index] = seven_valued.forward(gate.gate_type, ins, mask)  # type: ignore[assignment]
    return values, width


def detection_mask(
    circuit: Circuit,
    fault: PathDelayFault,
    values: Sequence[Planes],
    width: int,
    test_class: TestClass,
) -> int:
    """Lane mask of patterns that detect *fault* under *test_class*.

    The conditions are *polarity-free*: the on-path transition may be
    inverted by XOR side inputs at 1, so the robust stability rule
    (stable off-path inputs where the on-path transition ends
    non-controlling) is evaluated against the on-path input's
    *simulated* final value, per lane, not against the structural
    parity convention.
    """
    mask = mask_for(width)

    # launch: path input must carry the fault's transition
    z, o, s, i = values[fault.input_signal]
    want_final_one = fault.transition.final == 1
    detected = i & (o if want_final_one else z)

    robust = test_class is TestClass.ROBUST
    for position, signal in enumerate(fault.signals):
        if not detected:
            break
        if position == 0:
            continue
        gate = circuit.gates[signal]
        on_path_input = fault.signals[position - 1]
        dz, do, _ds, _di = values[on_path_input]
        control = controlling_value(gate.gate_type)
        for fanin_signal in gate.fanin:
            if fanin_signal == on_path_input:
                continue
            fz, fo, fs, fi = values[fanin_signal]
            if control is None:
                # XOR-like: any final value sensitizes nonrobustly; a
                # robust test needs glitch-free (stable) side inputs
                if robust:
                    detected &= fs
                continue
            nc = 1 - control
            has_nc_final = fo if nc == 1 else fz
            detected &= has_nc_final
            if robust:
                # lanes where the on-path input ends non-controlling
                # additionally need a stable side input
                on_nc = do if nc == 1 else dz
                detected &= fs | ~on_nc
    return detected & mask


class DelayFaultSimulator:
    """Convenience wrapper: simulate batches, report per-fault detection."""

    def __init__(self, circuit: Circuit, test_class: TestClass):
        self.circuit = circuit
        self.test_class = test_class

    def detected_faults(
        self,
        patterns: Sequence[PatternLike],
        faults: Iterable[PathDelayFault],
    ) -> Dict[PathDelayFault, int]:
        """Map each fault to the lane mask of detecting patterns (0 = none)."""
        values, width = simulate_planes(self.circuit, patterns)
        if width == 0:
            return {fault: 0 for fault in faults}
        return {
            fault: detection_mask(self.circuit, fault, values, width, self.test_class)
            for fault in faults
        }

    def detects(self, pattern: PatternLike, fault: PathDelayFault) -> bool:
        """True if a single pattern detects a single fault."""
        return bool(self.detected_faults([pattern], [fault])[fault])

    def coverage(
        self,
        patterns: Sequence[PatternLike],
        faults: Sequence[PathDelayFault],
        batch: int = 64,
    ) -> float:
        """Fraction of *faults* detected by *patterns* (batched PPSFP)."""
        if not faults:
            return 1.0
        remaining = set(faults)
        for start in range(0, len(patterns), batch):
            chunk = patterns[start : start + batch]
            hits = self.detected_faults(chunk, remaining)
            remaining -= {fault for fault, lanes in hits.items() if lanes}
            if not remaining:
                break
        return 1.0 - len(remaining) / len(faults)


# ---------------------------------------------------------------------------
# ten-valued (hazard-aware) simulation and detection-strength grading
# ---------------------------------------------------------------------------

Planes10 = Tuple[int, int, int, int, int]


def simulate_planes10(
    circuit: Circuit, patterns: Sequence[PatternLike]
) -> Tuple[List[Planes10], int]:
    """Forward 10-valued simulation: primary-input transitions are
    single clean edges, so they enter as S0/S1/HR/HF."""
    input_planes, width = pack_patterns(circuit, patterns)
    if width == 0:
        return [], 0
    mask = mask_for(width)
    values: List[Planes10] = [(0, 0, 0, 0, 0)] * circuit.num_signals
    for planes, pi in zip(input_planes, circuit.inputs):
        z, o, st, i = planes
        values[pi] = (z, o, st, i, mask)  # PI waveforms are hazard-free
    for index in circuit.topological_order():
        gate = circuit.gates[index]
        if gate.is_input:
            continue
        ins = [values[f] for f in gate.fanin]
        values[index] = ten_valued.forward(gate.gate_type, ins, mask)  # type: ignore[assignment]
    return values, width


def strength_masks(
    circuit: Circuit,
    fault: PathDelayFault,
    values: Sequence[Planes10],
    width: int,
) -> Tuple[int, int, int]:
    """(nonrobust, robust, hazard-free-robust) detection lane masks.

    The hazard-free robust class strengthens the robust conditions by
    requiring every off-path input to be provably glitchless (the
    ten-valued h-plane) — the detection then cannot be disturbed by
    any hazard timing.  Containment (strong <= robust <= nonrobust)
    holds by construction and is asserted by the test-suite.
    """
    mask = mask_for(width)
    z, o, s, i, _h = values[fault.input_signal]
    want_final_one = fault.transition.final == 1
    launch = i & (o if want_final_one else z)

    nonrobust = launch
    robust = launch
    strong = launch
    for position, signal in enumerate(fault.signals):
        if not nonrobust:
            break
        if position == 0:
            continue
        gate = circuit.gates[signal]
        on_path_input = fault.signals[position - 1]
        dz, do, _ds, _di, _dh = values[on_path_input]
        control = controlling_value(gate.gate_type)
        for fanin_signal in gate.fanin:
            if fanin_signal == on_path_input:
                continue
            fz, fo, fs, _fi, fh = values[fanin_signal]
            if control is None:
                robust &= fs
                strong &= fs
                continue
            nc = 1 - control
            has_nc_final = fo if nc == 1 else fz
            nonrobust &= has_nc_final
            robust &= has_nc_final
            strong &= has_nc_final & fh
            on_nc = do if nc == 1 else dz
            stable_where_needed = fs | ~on_nc
            robust &= stable_where_needed
            strong &= stable_where_needed
    return nonrobust & mask, robust & mask, strong & mask


def detection_strength(
    circuit: Circuit, pattern: PatternLike, fault: PathDelayFault
) -> Optional[str]:
    """The strongest class in which *pattern* detects *fault*.

    Returns ``"hazard_free_robust"``, ``"robust"``, ``"nonrobust"`` or
    ``None``.
    """
    values, width = simulate_planes10(circuit, [pattern])
    if width == 0:
        return None
    nonrobust, robust, strong = strength_masks(circuit, fault, values, width)
    if strong & 1:
        return "hazard_free_robust"
    if robust & 1:
        return "robust"
    if nonrobust & 1:
        return "nonrobust"
    return None
