"""Parallel-pattern path delay fault simulation (PPSFP).

The paper interleaves generation with bit-parallel fault simulation:
"we perform parallel pattern fault simulation after every L generated
test patterns" — detected faults are dropped from the pending list.
This module implements that simulator, for both test classes.

The simulator packs two-vector tests into the bit lanes of a 7-valued
plane state (each primary input becomes S0/S1/R/F according to its
V1/V2 bits) and evaluates the conservative hazard calculus of
:mod:`repro.logic.seven_valued` once, forward-only, over the compiled
netlist kernel (:class:`repro.kernel.CompiledCircuit`).  Two word
backends execute that pass:

* Python-int planes (one arbitrary-width word per plane) for batches
  up to one machine word — the TPG engine's PPSFP drop loop,
* numpy ``uint64`` multi-word planes (:class:`repro.kernel.
  PackedPatterns`) for bulk batches of arbitrarily many patterns —
  the same plane calculus, vectorized element-wise.

A path delay fault is then checked per pattern lane with pure bitwise
expressions:

* **launch**: the path input carries the fault's transition,
* **nonrobust**: at every on-path gate, all off-path inputs have the
  non-controlling final value (XOR-like gates impose no condition),
* **robust** (Lin & Reddy conditions): where the on-path transition
  ends non-controlling the off-path inputs must additionally be
  *stable*; where it ends controlling their final value suffices;
  XOR-like gates require stable off-path inputs.

A robust detection is also a nonrobust detection, mirroring the
model's containment relation.  The pre-kernel object-graph
implementation survives in :mod:`repro.sim.reference` as the
validation and benchmark baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .. import chaos
from ..circuit import Circuit
from ..kernel import (
    BACKEND_MODES,
    FUSION_MODES,
    CompiledCircuit,
    IntWordBackend,
    NumpyWordBackend,
    PackedPatterns,
    backend_for,
    words_to_int,
)
from ..logic import ten_valued
from ..logic.words import mask_for
from ..paths import PathDelayFault, TestClass


class PatternLike(Protocol):
    """Anything with V1/V2 vectors (e.g. repro.core.patterns.TestPattern)."""

    v1: Tuple[int, ...]
    v2: Tuple[int, ...]


Planes = Tuple[int, int, int, int]


def pack_patterns(
    circuit: Circuit, patterns: Sequence[PatternLike]
) -> Tuple[List[Planes], int]:
    """Pack patterns into per-input 7-valued plane words.

    Lane ``k`` carries pattern ``k``: S0/S1 where V1 == V2, R/F where
    the vectors differ.  Returns (per-signal planes for inputs, width).
    """
    width = len(patterns)
    if width == 0:
        return [], 0
    planes: List[Planes] = []
    for position, _pi in enumerate(circuit.inputs):
        z = o = s = i = 0
        for lane, pattern in enumerate(patterns):
            initial = pattern.v1[position]
            final = pattern.v2[position]
            bit = 1 << lane
            if final:
                o |= bit
            else:
                z |= bit
            if initial == final:
                s |= bit
            else:
                i |= bit
        planes.append((z, o, s, i))
    return planes, width


def simulate_planes(
    circuit: Circuit, patterns: Sequence[PatternLike], fusion: str = "auto"
) -> Tuple[List[Planes], int]:
    """Forward 7-valued simulation of all patterns; returns signal planes.

    Executes on the compiled kernel with the int word backend; the
    lane width is the number of patterns (arbitrary, since Python ints
    are unbounded).  ``fusion`` selects the execution strategy.
    """
    input_planes, width = pack_patterns(circuit, patterns)
    if width == 0:
        return [], 0
    backend = IntWordBackend(width, fusion=fusion)
    return backend.simulate_planes7(circuit.compiled(), input_planes), width


def _any_lane(word) -> bool:
    """Truthiness of a lane word in either representation."""
    if isinstance(word, np.ndarray):
        return bool(word.any())
    return bool(word)


class _LazyIntPlanes:
    """Int-word view over array-valued signal planes, converted lazily.

    The per-fault detection walk touches only the signals on (and
    feeding) the fault's path, and must return Python-int lane masks
    anyway.  Converting each touched signal's plane rows to ints once
    — instead of running the walk's many tiny bitwise steps as
    per-call numpy ufuncs on short arrays — removes the walk's
    dominant constant factor; untouched signals are never converted.
    """

    __slots__ = ("_values", "_cache")

    def __init__(self, values: Sequence):
        self._values = values
        self._cache: Dict[int, Tuple[int, int, int, int]] = {}

    def __getitem__(self, signal: int) -> Tuple[int, int, int, int]:
        cached = self._cache.get(signal)
        if cached is None:
            cached = tuple(words_to_int(p) for p in self._values[signal])
            self._cache[signal] = cached
        return cached


def _detection_mask_compiled(
    compiled: CompiledCircuit,
    fault: PathDelayFault,
    values: Sequence,
    mask,
    robust: bool,
):
    """Detection lane word of *fault* over int or array planes.

    The conditions are *polarity-free*: the on-path transition may be
    inverted by XOR side inputs at 1, so the robust stability rule
    (stable off-path inputs where the on-path transition ends
    non-controlling) is evaluated against the on-path input's
    *simulated* final value, per lane, not against the structural
    parity convention.  The arithmetic is identical for Python-int
    planes (``mask`` = all-lanes int) and uint64 array planes
    (``mask`` = per-word valid-lane array).
    """
    z, o, s, i = values[fault.input_signal]
    want_final_one = fault.transition.final == 1
    detected = i & (o if want_final_one else z)

    signals = fault.signals
    controlling = compiled.controlling
    fanins = compiled.py_fanin
    for position in range(1, len(signals)):
        if not _any_lane(detected):
            break
        signal = signals[position]
        on_path_input = signals[position - 1]
        dz, do, _ds, _di = values[on_path_input]
        control = controlling[signal]
        for fanin_signal in fanins[signal]:
            if fanin_signal == on_path_input:
                continue
            fz, fo, fs, _fi = values[fanin_signal]
            if control is None:
                # XOR-like: any final value sensitizes nonrobustly; a
                # robust test needs glitch-free (stable) side inputs
                if robust:
                    detected = detected & fs
                continue
            nc = 1 - control
            has_nc_final = fo if nc == 1 else fz
            detected = detected & has_nc_final
            if robust:
                # lanes where the on-path input ends non-controlling
                # additionally need a stable side input
                on_nc = do if nc == 1 else dz
                detected = detected & (fs | ~on_nc)
    return detected & mask


def detection_mask(
    circuit: Circuit,
    fault: PathDelayFault,
    values: Sequence[Planes],
    width: int,
    test_class: TestClass,
) -> int:
    """Lane mask of patterns that detect *fault* under *test_class*."""
    return _detection_mask_compiled(
        circuit.compiled(),
        fault,
        values,
        mask_for(width),
        test_class is TestClass.ROBUST,
    )


def _edge_term(compiled, on_path_input: int, signal: int, values, mask, robust):
    """Off-path side conditions of one on-path edge, as one lane word.

    The AND of every side-input condition the per-fault walk applies
    at gate *signal* when the path enters through *on_path_input* —
    the term depends only on the edge (and the test class), never on
    the rest of the fault's path, which is what makes it shareable.
    """
    term = mask
    control = compiled.controlling[signal]
    dz, do, _ds, _di = values[on_path_input]
    for fanin_signal in compiled.py_fanin[signal]:
        if fanin_signal == on_path_input:
            continue
        fz, fo, fs, _fi = values[fanin_signal]
        if control is None:
            if robust:
                term = term & fs
            continue
        nc = 1 - control
        has_nc_final = fo if nc == 1 else fz
        term = term & has_nc_final
        if robust:
            on_nc = do if nc == 1 else dz
            term = term & (fs | ~on_nc)
    return term


def _detection_masks_batched(
    compiled: CompiledCircuit,
    faults: Sequence[PathDelayFault],
    values: Sequence,
    mask,
    robust: bool,
) -> List:
    """Detection lane words of many faults over one simulated batch.

    Bit-identical to mapping :func:`_detection_mask_compiled` over
    *faults* (the conditions AND associatively), but every on-path
    edge's side-condition term is computed once per batch and shared:
    the R/F fault pair of a path reuses all of it, and faults whose
    paths overlap — the common case on drop-heavy campaigns, where
    the pending set is dominated by long paths through shared cones —
    stop re-walking the common segments.
    """
    edge_terms: Dict[Tuple[int, int], object] = {}
    masks = []
    for fault in faults:
        z, o, _s, i = values[fault.input_signal]
        detected = i & (o if fault.transition.final == 1 else z)
        signals = fault.signals
        for position in range(1, len(signals)):
            if not _any_lane(detected):
                break
            key = (signals[position - 1], signals[position])
            term = edge_terms.get(key)
            if term is None:
                term = edge_terms[key] = _edge_term(
                    compiled, key[0], key[1], values, mask, robust
                )
            detected = detected & term
        masks.append(detected & mask)
    return masks


class DelayFaultSimulator:
    """Convenience wrapper: simulate batches, report per-fault detection.

    Args:
        circuit: frozen target circuit (compiled once, cached).
        test_class: robust or nonrobust detection conditions.
        backend: ``"int"``, ``"numpy"``, ``"native"`` or ``"auto"``
            (default) — ``auto`` runs batches larger than one machine
            word on the numpy multi-word backend and everything else
            on Python-int words; ``native`` runs the whole batch —
            forward pass *and* per-fault detection walk — inside the
            circuit's compiled-C module (falls back to numpy with a
            one-time warning when no C toolchain is present).
        fusion: execution strategy of the chosen backend —
            ``"interp"`` (the per-gate oracle loop), ``"vector"``
            (level-vectorized fused groups, numpy), ``"codegen"``
            (straight-line compiled body) or ``"auto"`` (default: the
            fastest supported strategy per backend).
    """

    def __init__(
        self,
        circuit: Circuit,
        test_class: TestClass,
        backend: str = "auto",
        fusion: str = "auto",
    ):
        if backend not in BACKEND_MODES:
            raise ValueError(
                f"unknown backend {backend!r} (choose from {BACKEND_MODES})"
            )
        if fusion not in FUSION_MODES:
            raise ValueError(f"unknown fusion strategy {fusion!r}")
        self.circuit = circuit
        self.compiled: CompiledCircuit = circuit.compiled()
        self.test_class = test_class
        self.backend = backend
        self.fusion = fusion

    # ------------------------------------------------------------------
    def detection_masks(
        self,
        patterns: Sequence[PatternLike],
        faults: Sequence[PathDelayFault],
    ) -> List[int]:
        """Lane masks aligned with *faults* (``masks[k]`` for ``faults[k]``).

        All faults are checked against all patterns in one batched
        pass: one forward plane simulation of the whole batch, then
        per-fault pure bitwise detection checks — vectorized over
        multi-word numpy planes when the batch exceeds one machine
        word.  Lane ``k`` of a returned mask corresponds to
        ``patterns[k]`` regardless of backend.  Index-aligned output
        avoids hashing long path tuples on hot drop loops (the
        campaign drop bus calls this after every round).

        Hot callers that reuse one batch across many calls may pass a
        pre-built :class:`PackedPatterns` instead of the pattern
        sequence, skipping the per-call packing cost.
        """
        chaos.maybe_raise("kernel_fault")
        width = len(patterns)
        if width == 0:
            return [0] * len(faults)
        robust = self.test_class is TestClass.ROBUST
        compiled = self.compiled
        backend = backend_for(width, self.backend, fusion=self.fusion)
        pre_packed = isinstance(patterns, PackedPatterns)
        if not pre_packed:
            # reject malformed patterns up front, uniformly across
            # backends: an input error must surface as ValueError at
            # every tier (the session circuit breaker re-raises those
            # instead of demoting — no backend change can fix them)
            n_inputs = len(self.circuit.inputs)
            for pattern in patterns:
                if len(pattern.v1) != n_inputs or len(pattern.v2) != n_inputs:
                    raise ValueError(
                        f"expected {n_inputs} input planes, "
                        f"got {len(pattern.v1)}"
                    )
        if getattr(backend, "kind", None) == "native":
            # forward pass + whole fault walk inside the compiled-C
            # module: one Python call per batch
            packed = patterns if pre_packed else PackedPatterns.from_patterns(patterns)
            return backend.ppsfp_masks(compiled, packed, faults, robust)
        if isinstance(backend, NumpyWordBackend):
            packed = patterns if pre_packed else PackedPatterns.from_patterns(patterns)
            values = _LazyIntPlanes(
                backend.simulate_planes7(compiled, packed.planes7())
            )
            mask = words_to_int(backend.lane_valid)
        else:
            if pre_packed:
                input_planes = [
                    tuple(words_to_int(plane) for plane in planes)
                    for planes in patterns.planes7()
                ]
            else:
                input_planes, _ = pack_patterns(self.circuit, patterns)
            values = backend.simulate_planes7(compiled, input_planes)
            mask = backend.mask
        if self.fusion != "interp":
            return _detection_masks_batched(compiled, faults, values, mask, robust)
        return [
            _detection_mask_compiled(compiled, fault, values, mask, robust)
            for fault in faults
        ]

    def detected_faults(
        self,
        patterns: Sequence[PatternLike],
        faults: Iterable[PathDelayFault],
    ) -> Dict[PathDelayFault, int]:
        """Map each fault to the lane mask of detecting patterns (0 = none).

        Dict-keyed convenience wrapper over :meth:`detection_masks`.
        """
        faults = list(faults)
        return dict(zip(faults, self.detection_masks(patterns, faults)))

    def detects(self, pattern: PatternLike, fault: PathDelayFault) -> bool:
        """True if a single pattern detects a single fault."""
        return bool(self.detected_faults([pattern], [fault])[fault])

    def coverage(
        self,
        patterns: Sequence[PatternLike],
        faults: Sequence[PathDelayFault],
        batch: int = 256,
    ) -> float:
        """Fraction of *faults* detected by *patterns* (batched PPSFP).

        Batches larger than one machine word run on the numpy backend;
        detected faults are dropped between batches, so later batches
        only simulate the shrinking remainder.
        """
        if not faults:
            return 1.0
        remaining = set(faults)
        for start in range(0, len(patterns), batch):
            chunk = patterns[start : start + batch]
            hits = self.detected_faults(chunk, remaining)
            remaining -= {fault for fault, lanes in hits.items() if lanes}
            if not remaining:
                break
        return 1.0 - len(remaining) / len(faults)


# ---------------------------------------------------------------------------
# ten-valued (hazard-aware) simulation and detection-strength grading
# ---------------------------------------------------------------------------

Planes10 = Tuple[int, int, int, int, int]


def simulate_planes10(
    circuit: Circuit, patterns: Sequence[PatternLike], fusion: str = "auto"
) -> Tuple[List[Planes10], int]:
    """Forward 10-valued simulation: primary-input transitions are
    single clean edges, so they enter as S0/S1/HR/HF.

    Runs on the int word backend; ``fusion`` selects the execution
    strategy (``"interp"`` dispatches :func:`repro.logic.ten_valued.
    forward` per gate — the oracle; anything else runs the
    straight-line compiled 5-plane body).  Bulk multi-word grading
    goes through :func:`strength_masks_all` instead.
    """
    input_planes, width = pack_patterns(circuit, patterns)
    if width == 0:
        return [], 0
    mask = mask_for(width)
    inputs10 = [(z, o, s, i, mask) for z, o, s, i in input_planes]
    backend = IntWordBackend(width, fusion=fusion)
    return backend.simulate_planes10(circuit.compiled(), inputs10), width


def strength_masks(
    circuit: Circuit,
    fault: PathDelayFault,
    values: Sequence[Planes10],
    width: int,
) -> Tuple[int, int, int]:
    """(nonrobust, robust, hazard-free-robust) detection lane masks.

    The hazard-free robust class strengthens the robust conditions by
    requiring every off-path input to be provably glitchless (the
    ten-valued h-plane) — the detection then cannot be disturbed by
    any hazard timing.  Containment (strong <= robust <= nonrobust)
    holds by construction and is asserted by the test-suite.
    """
    return _strength_masks_walk(
        circuit.compiled(), fault, values, mask_for(width)
    )


def _strength_edge_term(compiled, on_path_input: int, signal: int, values, mask):
    """(nonrobust, robust, hazard-free) side conditions of one edge.

    The three-class analogue of :func:`_edge_term`: one lane-word
    triple per on-path edge, shared across every fault whose path uses
    the edge.
    """
    nr = r = st = mask
    control = compiled.controlling[signal]
    dz, do, _ds, _di, _dh = values[on_path_input]
    for fanin_signal in compiled.py_fanin[signal]:
        if fanin_signal == on_path_input:
            continue
        fz, fo, fs, _fi, fh = values[fanin_signal]
        if control is None:
            r = r & fs
            st = st & fs
            continue
        nc = 1 - control
        has_nc_final = fo if nc == 1 else fz
        nr = nr & has_nc_final
        on_nc = do if nc == 1 else dz
        stable_where_needed = fs | ~on_nc
        r = r & has_nc_final & stable_where_needed
        st = st & has_nc_final & fh & stable_where_needed
    return nr, r, st


def _strength_masks_batched(
    compiled: CompiledCircuit,
    faults: Sequence[PathDelayFault],
    values: Sequence,
    mask,
) -> List[Tuple[int, int, int]]:
    """Per-fault (nonrobust, robust, hazard-free-robust) lane masks.

    Bit-identical to mapping :func:`strength_masks` over *faults*
    (containment strong <= robust <= nonrobust makes the early exit
    on a dead nonrobust mask safe for all three classes), with every
    on-path edge's condition triple computed once per batch.
    """
    edge_terms: Dict[Tuple[int, int], Tuple] = {}
    results = []
    for fault in faults:
        z, o, _s, i, _h = values[fault.input_signal]
        launch = i & (o if fault.transition.final == 1 else z)
        nonrobust = robust = strong = launch
        signals = fault.signals
        for position in range(1, len(signals)):
            if not _any_lane(nonrobust):
                break
            key = (signals[position - 1], signals[position])
            term = edge_terms.get(key)
            if term is None:
                term = edge_terms[key] = _strength_edge_term(
                    compiled, key[0], key[1], values, mask
                )
            nonrobust = nonrobust & term[0]
            robust = robust & term[1]
            strong = strong & term[2]
        results.append((nonrobust & mask, robust & mask, strong & mask))
    return results


def strength_masks_all(
    circuit: Circuit,
    patterns: Sequence[PatternLike],
    faults: Sequence[PathDelayFault],
    backend: str = "auto",
    fusion: str = "auto",
) -> List[Tuple[int, int, int]]:
    """Batched detection-strength grading of many faults at once.

    One forward 10-valued pass over the whole batch on the selected
    backend/strategy, then per-fault (nonrobust, robust,
    hazard-free-robust) lane-mask triples, index-aligned with
    *faults*.  ``fusion="interp"`` runs the per-gate oracle pass and
    the per-fault oracle walk; fused strategies share on-path edge
    conditions across faults (:func:`_strength_masks_batched`);
    ``backend="native"`` runs the pass and the three-class walk
    inside the circuit's compiled-C module.

    Like :meth:`DelayFaultSimulator.detection_masks`, *patterns* may
    be a pre-built :class:`PackedPatterns` batch to skip the per-call
    packing cost.
    """
    width = len(patterns)
    if width == 0:
        return [(0, 0, 0)] * len(faults)
    compiled = circuit.compiled()
    word_backend = backend_for(width, backend, fusion=fusion)
    pre_packed = isinstance(patterns, PackedPatterns)
    if getattr(word_backend, "kind", None) == "native":
        packed = patterns if pre_packed else PackedPatterns.from_patterns(patterns)
        return word_backend.strength_triples(compiled, packed, faults)
    if isinstance(word_backend, NumpyWordBackend):
        packed = patterns if pre_packed else PackedPatterns.from_patterns(patterns)
        valid = packed.lane_valid()
        inputs10 = [(z, o, s, i, valid) for z, o, s, i in packed.planes7()]
        values = _LazyIntPlanes(
            word_backend.simulate_planes10(compiled, inputs10)
        )
        mask = words_to_int(word_backend.lane_valid)
    else:
        mask = word_backend.mask
        if pre_packed:
            input_planes = [
                tuple(words_to_int(plane) for plane in planes)
                for planes in patterns.planes7()
            ]
        else:
            input_planes, _ = pack_patterns(circuit, patterns)
        inputs10 = [(z, o, s, i, mask) for z, o, s, i in input_planes]
        values = word_backend.simulate_planes10(compiled, inputs10)
    if fusion != "interp":
        return _strength_masks_batched(compiled, faults, values, mask)
    return [
        _strength_masks_walk(compiled, fault, values, mask) for fault in faults
    ]


def _strength_masks_walk(compiled, fault, values, mask):
    """The per-fault oracle strength walk over compiled arrays."""
    z, o, _s, i, _h = values[fault.input_signal]
    launch = i & (o if fault.transition.final == 1 else z)
    nonrobust = robust = strong = launch
    signals = fault.signals
    for position in range(1, len(signals)):
        if not _any_lane(nonrobust):
            break
        signal = signals[position]
        on_path_input = signals[position - 1]
        dz, do, _ds, _di, _dh = values[on_path_input]
        control = compiled.controlling[signal]
        for fanin_signal in compiled.py_fanin[signal]:
            if fanin_signal == on_path_input:
                continue
            fz, fo, fs, _fi, fh = values[fanin_signal]
            if control is None:
                robust &= fs
                strong &= fs
                continue
            nc = 1 - control
            has_nc_final = fo if nc == 1 else fz
            nonrobust &= has_nc_final
            robust &= has_nc_final
            strong &= has_nc_final & fh
            on_nc = do if nc == 1 else dz
            stable_where_needed = fs | ~on_nc
            robust &= stable_where_needed
            strong &= stable_where_needed
    return nonrobust & mask, robust & mask, strong & mask


def detection_strength(
    circuit: Circuit,
    pattern: PatternLike,
    fault: PathDelayFault,
    fusion: str = "auto",
) -> Optional[str]:
    """The strongest class in which *pattern* detects *fault*.

    Returns ``"hazard_free_robust"``, ``"robust"``, ``"nonrobust"`` or
    ``None``.
    """
    values, width = simulate_planes10(circuit, [pattern], fusion=fusion)
    if width == 0:
        return None
    nonrobust, robust, strong = strength_masks(circuit, fault, values, width)
    if strong & 1:
        return "hazard_free_robust"
    if robust & 1:
        return "robust"
    if nonrobust & 1:
        return "nonrobust"
    return None
