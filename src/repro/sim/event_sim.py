"""Event-driven timing simulation with injectable path slowdowns.

This simulator is the *validation oracle* of the reproduction (it has
no counterpart in the paper): it executes a two-vector test against a
circuit with explicit delays and answers whether the sampled output is
wrong — i.e. whether the test actually catches the slow path.

Semantics follow the paper's Section 2 hardware model: the first
vector V1 is applied long before time 0 (all signals settled), the
second vector V2 switches the inputs at time 0, and the outputs are
sampled at the clock period ``Tc``.  Gates have transport delays, so
hazards propagate — which is what makes robustness observable.

**Fault injection.**  A path delay fault is a *lumped* extra delay on
the target path.  Injecting it into a shared on-path gate would slow
sibling paths through that gate as well and can even suppress the
propagating transition (e.g. a pulse that shifts entirely past the
sampling point), which is a different fault model (gate delay faults).
The faithful realization is to delay one *edge* of the path — the
connection from the path's input to its first gate — which slows
exactly the paths having that edge as a prefix.  The simulator
therefore supports per-edge extra delays alongside per-gate delays.

**Oracle guarantees checked by the test-suite:**

* a *nonrobust* test must detect the slowed path when every other
  delay is nominal (the single-fault assumption), and
* a *robust* test must detect it for every within-spec assignment of
  delays to the other gates (off-path signals settle by the sampling
  time, but their transition and hazard times vary arbitrarily) —
  :func:`robust_timing_holds` samples such assignments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit import Circuit
from ..circuit.gates import evaluate
from ..paths import PathDelayFault
from .waveform import Waveform

EdgeKey = Tuple[int, int]  # (driver signal, consuming gate output signal)


@dataclass
class TimingResult:
    """Waveforms of every signal for one two-vector simulation."""

    waveforms: List[Waveform]
    circuit: Circuit

    def output_at(self, time: float) -> Tuple[int, ...]:
        return tuple(self.waveforms[o].value_at(time) for o in self.circuit.outputs)

    def final_outputs(self) -> Tuple[int, ...]:
        return tuple(self.waveforms[o].final for o in self.circuit.outputs)

    def settle_time(self) -> float:
        """Latest event time over all signals (0.0 if nothing moves)."""
        return max((w.last_event_time() for w in self.waveforms), default=0.0)


class TimingSimulator:
    """Transport-delay simulator with per-gate and per-edge delays.

    Args:
        circuit: frozen target circuit.
        delays: delay per non-input signal id; missing entries default
            to 1.0.
        edge_delays: extra delay on specific (driver, gate) edges —
            the path-fault injection mechanism.
    """

    def __init__(
        self,
        circuit: Circuit,
        delays: Optional[Dict[int, float]] = None,
        edge_delays: Optional[Dict[EdgeKey, float]] = None,
    ):
        self.circuit = circuit
        self.compiled = circuit.compiled()
        self.delays = dict(delays or {})
        self.edge_delays = dict(edge_delays or {})

    def delay_of(self, signal: int) -> float:
        return self.delays.get(signal, 1.0)

    # ------------------------------------------------------------------
    def simulate(
        self, v1: Sequence[int], v2: Sequence[int], switch_time: float = 0.0
    ) -> TimingResult:
        """Waveforms for the two-vector test (V1 settled, V2 at time 0)."""
        compiled = self.compiled
        waveforms: List[Optional[Waveform]] = [None] * compiled.n_signals
        for position, pi in enumerate(compiled.py_inputs):
            waveforms[pi] = Waveform.step(v1[position], v2[position], switch_time)
        edge_delays = self.edge_delays
        for _code, index, fanin, gate_type in compiled.plan:
            ins = []
            for f in fanin:
                wave = waveforms[f]
                extra = edge_delays.get((f, index), 0.0) if edge_delays else 0.0
                ins.append(wave.shifted(extra) if extra else wave)
            waveforms[index] = self._evaluate_gate(
                gate_type, ins, self.delay_of(index)
            )
        return TimingResult(waveforms=waveforms, circuit=self.circuit)  # type: ignore[arg-type]

    @staticmethod
    def _evaluate_gate(gate_type, inputs: List[Waveform], delay: float) -> Waveform:
        initial = evaluate(gate_type, [w.initial for w in inputs])
        times = sorted({t for w in inputs for t, _v in w.events})
        changes: List[Tuple[float, int]] = []
        for t in times:
            value = evaluate(gate_type, [w.value_at(t) for w in inputs])
            changes.append((t + delay, value))
        return Waveform.from_changes(initial, changes)

    # ------------------------------------------------------------------
    def path_arrival(self, fault: PathDelayFault) -> float:
        """Cumulative delay along the fault's path (launch at t = 0)."""
        total = sum(self.delay_of(s) for s in fault.signals[1:])
        for edge in fault.edges():
            total += self.edge_delays.get(edge, 0.0)
        return total

    def settle_bound(self) -> float:
        """Upper bound on settle time: longest weighted path."""
        arrival = [0.0] * self.compiled.n_signals
        for _code, index, fanin, _gt in self.compiled.plan:
            arrival[index] = self.delay_of(index) + max(
                arrival[f] + self.edge_delays.get((f, index), 0.0)
                for f in fanin
            )
        return max(arrival) if arrival else 0.0


def fault_injection(fault: PathDelayFault, extra: float) -> Dict[EdgeKey, float]:
    """The lumped path slowdown: *extra* delay on the path's first edge."""
    if fault.length < 1:
        raise ValueError("cannot slow a path with no gates")
    first_edge = (fault.signals[0], fault.signals[1])
    return {first_edge: extra}


def prefix_independent(circuit: Circuit, fault: PathDelayFault) -> bool:
    """True when first-edge injection matches the path fault model.

    The path delay fault model idealizes "only the target path is
    slow"; the physical first-edge injection also slows everything
    that reads the path's second signal.  The two coincide — and the
    classic robust conditions guarantee detection under the injection
    — exactly when no off-path input of an on-path gate depends on
    that signal (off-path inputs then settle on time even in the
    faulty circuit).  Off-path inputs proven *stable* by a test are
    delay-independent anyway, but this predicate is purely structural
    and therefore sufficient for every test of the fault.

    The oracle-based property tests use this predicate to select the
    faults where the model's guarantee is physically testable; see
    DESIGN.md ("Oracle-based validation") for the reconvergence
    counterexample that motivates it.
    """
    if fault.length < 1:
        return False
    compiled = circuit.compiled()
    tainted = [False] * compiled.n_signals
    tainted[fault.signals[1]] = True
    for _code, index, fanin, _gt in compiled.plan:
        if not tainted[index] and any(tainted[f] for f in fanin):
            tainted[index] = True
    for position, signal in enumerate(fault.signals):
        if position == 0:
            continue
        on_path_input = fault.signals[position - 1]
        for fanin_signal in compiled.py_fanin[signal]:
            if fanin_signal == on_path_input:
                continue
            if tainted[fanin_signal]:
                return False
    return True


def slowed_delays(
    base: Dict[int, float],
    fault: PathDelayFault,
    extra: float,
    where: str = "spread",
) -> Dict[int, float]:
    """Gate-level slowdown variants (the *gate delay fault* view).

    ``where`` is ``"spread"`` (extra divided over all on-path gates),
    ``"first"`` or ``"last"`` (all of it on one gate).  Note that gate
    slowdowns also slow sibling paths through the same gates; the
    lumped path-fault injection is :func:`fault_injection`.
    """
    gates = list(fault.signals[1:])
    if not gates:
        raise ValueError("cannot slow a path with no gates")
    delays = dict(base)
    if where == "spread":
        per_gate = extra / len(gates)
        for g in gates:
            delays[g] = delays.get(g, 1.0) + per_gate
    elif where == "first":
        delays[gates[0]] = delays.get(gates[0], 1.0) + extra
    elif where == "last":
        delays[gates[-1]] = delays.get(gates[-1], 1.0) + extra
    else:
        raise ValueError(f"unknown injection point {where!r}")
    return delays


def timing_detects(
    circuit: Circuit,
    pattern,
    fault: PathDelayFault,
    base_delays: Optional[Dict[int, float]] = None,
    clock_slack: float = 0.5,
) -> bool:
    """Oracle: does *pattern* catch *fault* once the path is too slow?

    The clock period is set just above the fault-free settle time for
    the given delays (the good circuit always passes), the target path
    is slowed far beyond the clock via its first edge, and the fault's
    output is sampled at the clock.  Returns True when the sampled
    value differs from the expected final value.
    """
    base = dict(base_delays or {})
    good = TimingSimulator(circuit, base)
    good_result = good.simulate(pattern.v1, pattern.v2)
    clock = max(good.settle_bound(), good_result.settle_time()) + clock_slack

    faulty = TimingSimulator(
        circuit, base, edge_delays=fault_injection(fault, extra=2.0 * clock)
    )
    faulty_result = faulty.simulate(pattern.v1, pattern.v2)

    po = fault.output_signal
    expected = good_result.waveforms[po].final
    sampled = faulty_result.waveforms[po].value_at(clock)
    return sampled != expected


def robust_timing_holds(
    circuit: Circuit,
    pattern,
    fault: PathDelayFault,
    samples: int = 16,
    seed: int = 0,
    delay_range: Tuple[float, float] = (0.5, 1.5),
    clock_slack: float = 0.5,
) -> bool:
    """Check detection under *samples* random within-spec delay maps.

    A robust test must detect its slowed path for every assignment of
    (within-spec) delays to the other gates; this samples the space.
    Returns False as soon as one assignment escapes detection.
    """
    rng = random.Random(seed)
    lo, hi = delay_range
    for _ in range(samples):
        delays = {
            gate.index: rng.uniform(lo, hi)
            for gate in circuit.gates
            if not gate.is_input
        }
        if not timing_detects(
            circuit, pattern, fault, base_delays=delays, clock_slack=clock_slack
        ):
            return False
    return True
