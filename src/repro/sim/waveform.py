"""Signal waveforms for the event-driven timing simulator.

A :class:`Waveform` is a piecewise-constant 0/1 signal: an initial
value plus a sorted sequence of (time, value) changes.  The timing
simulator uses transport delays, so glitches are preserved — which is
exactly what distinguishes robust from nonrobust tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class Waveform:
    """An immutable piecewise-constant waveform."""

    initial: int
    events: Tuple[Tuple[float, int], ...] = ()

    def __post_init__(self) -> None:
        last_t = float("-inf")
        value = self.initial
        for t, v in self.events:
            if t < last_t:
                raise ValueError("events must be sorted by time")
            if v == value:
                raise ValueError("events must change the value")
            last_t, value = t, v

    # ------------------------------------------------------------------
    @property
    def final(self) -> int:
        """Settled value after the last event."""
        return self.events[-1][1] if self.events else self.initial

    def value_at(self, time: float) -> int:
        """Value at *time* (events take effect at their timestamp)."""
        value = self.initial
        for t, v in self.events:
            if t > time:
                break
            value = v
        return value

    def transition_count(self) -> int:
        return len(self.events)

    @property
    def is_stable(self) -> bool:
        """True when the waveform never changes."""
        return not self.events

    def last_event_time(self) -> float:
        """Arrival time of the final value (0.0 when stable)."""
        return self.events[-1][0] if self.events else 0.0

    # ------------------------------------------------------------------
    @classmethod
    def constant(cls, value: int) -> "Waveform":
        return cls(value, ())

    @classmethod
    def step(cls, initial: int, final: int, time: float) -> "Waveform":
        """A single transition from *initial* to *final* at *time*."""
        if initial == final:
            return cls(initial, ())
        return cls(initial, ((time, final),))

    @classmethod
    def from_changes(cls, initial: int, changes: Sequence[Tuple[float, int]]) -> "Waveform":
        """Build from possibly redundant (time, value) samples."""
        events: List[Tuple[float, int]] = []
        value = initial
        for t, v in sorted(changes):
            if v != value:
                events.append((t, v))
                value = v
        return cls(initial, tuple(events))

    def shifted(self, delta: float) -> "Waveform":
        """The same waveform delayed by *delta* (transport delay)."""
        return Waveform(self.initial, tuple((t + delta, v) for t, v in self.events))

    def describe(self) -> str:
        parts = [str(self.initial)]
        for t, v in self.events:
            parts.append(f"-({t:g})->{v}")
        return "".join(parts)
