"""Simulation substrates: logic, path delay fault (PPSFP), timing."""

from .logic_sim import pack_vectors, simulate_array, simulate_batch, simulate_words
from .delay_sim import (
    DelayFaultSimulator,
    detection_mask,
    detection_strength,
    pack_patterns,
    simulate_planes,
    simulate_planes10,
    strength_masks,
)
from .waveform import Waveform
from .event_sim import (
    TimingResult,
    TimingSimulator,
    fault_injection,
    prefix_independent,
    robust_timing_holds,
    slowed_delays,
    timing_detects,
)

__all__ = [
    "DelayFaultSimulator",
    "TimingResult",
    "TimingSimulator",
    "Waveform",
    "detection_mask",
    "detection_strength",
    "fault_injection",
    "pack_patterns",
    "pack_vectors",
    "prefix_independent",
    "robust_timing_holds",
    "simulate_array",
    "simulate_batch",
    "simulate_planes",
    "simulate_planes10",
    "strength_masks",
    "simulate_words",
    "slowed_delays",
    "timing_detects",
]
