"""Simulation substrates: logic, path delay fault (PPSFP), timing."""

from .logic_sim import pack_vectors, simulate_array, simulate_batch, simulate_words
from .delay_sim import (
    DelayFaultSimulator,
    detection_mask,
    detection_strength,
    pack_patterns,
    simulate_planes,
    simulate_planes10,
    strength_masks,
    strength_masks_all,
)
from .reference import (
    detected_faults_reference,
    detection_mask_reference,
    simulate_planes_reference,
)
from .stuck_at_sim import StuckAtSimulator
from .waveform import Waveform
from .event_sim import (
    TimingResult,
    TimingSimulator,
    fault_injection,
    prefix_independent,
    robust_timing_holds,
    slowed_delays,
    timing_detects,
)

__all__ = [
    "DelayFaultSimulator",
    "StuckAtSimulator",
    "TimingResult",
    "TimingSimulator",
    "Waveform",
    "detected_faults_reference",
    "detection_mask",
    "detection_mask_reference",
    "detection_strength",
    "fault_injection",
    "pack_patterns",
    "pack_vectors",
    "prefix_independent",
    "robust_timing_holds",
    "simulate_array",
    "simulate_batch",
    "simulate_planes",
    "simulate_planes10",
    "simulate_planes_reference",
    "strength_masks",
    "strength_masks_all",
    "simulate_words",
    "slowed_delays",
    "timing_detects",
]
