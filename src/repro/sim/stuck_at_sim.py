"""Bit-parallel stuck-at fault simulation (parallel-pattern).

The counterpart of :mod:`repro.core.stuck_at`: packs test vectors into
lane words, simulates the good machine once over the compiled netlist
kernel, and per fault re-simulates with the site forced — the classic
parallel-pattern single-fault propagation (PPSFP) scheme the paper
cites as the inspiration for bit-parallel test *generation*.  The
faulty re-simulation walks only the fault site's transitive fanout
cone (:meth:`repro.kernel.CompiledCircuit.cone_of`), not the whole
netlist.

Two execution strategies, selected by the ``fusion`` option:

* ``"interp"`` — the per-gate cone walk (``eval_gate_word`` with
  dirty-set early-outs), retained verbatim as the oracle,
* anything else — per-cone straight-line compiled functions
  (:func:`repro.kernel.codegen.cone_fault_fn`): the whole cone
  resimulation plus the output-difference reduction as one body, no
  per-gate dispatch, memoized on the compiled circuit so the sa0/sa1
  pair and every simulator over the same circuit share it.

Orthogonally, ``backend="native"`` moves the whole workload into the
circuit's compiled-C module (:mod:`repro.kernel.native`): the good
machine runs as the native two-valued pass over uint64 lane slabs and
each fault's cone resimulation plus output-difference reduction is
one ``repro_stuck_cone`` call.  Without a C toolchain it degrades to
the default Python-int path with a one-time warning.

All strategies are cross-checked bit-identical in
``tests/test_fusion.py``.  The interpreted cone plans are cached on
the simulator instance, so repeated ``detected_faults``/``coverage``
calls (the grading loop) stop rebuilding them per call.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..circuit import Circuit
from ..kernel.backends import FUSION_MODES, eval_gate_word
from ..kernel.codegen import cone_fault_fn
from ..kernel.packed import pack_bits
from ..logic.words import mask_for
from ..core.stuck_at import StuckAtFault
from .logic_sim import pack_vectors, simulate_words

#: Backend choices of :class:`StuckAtSimulator` (``"auto"`` is the
#: Python-int word path — stuck-at grading batches are usually one
#: machine word; ``"native"`` is opt-in compiled C).
STUCK_AT_BACKENDS = ("auto", "int", "native")


class StuckAtSimulator:
    """Parallel-pattern stuck-at fault simulator.

    Args:
        circuit: frozen target circuit (compiled once, cached).
        fusion: execution strategy — ``"interp"`` runs the per-gate
            cone walk, everything else the per-cone compiled bodies
            (``"auto"``, the default, is fused).
        backend: ``"auto"``/``"int"`` run Python-int lane words;
            ``"native"`` runs good-machine pass and cone resims in
            the circuit's compiled-C module (numpy-slab words), with
            graceful fallback when no C toolchain is present.
    """

    def __init__(
        self, circuit: Circuit, fusion: str = "auto", backend: str = "auto"
    ):
        if fusion not in FUSION_MODES:
            raise ValueError(f"unknown fusion strategy {fusion!r}")
        if backend not in STUCK_AT_BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r} "
                f"(choose from {STUCK_AT_BACKENDS})"
            )
        self.circuit = circuit
        self.compiled = circuit.compiled()
        self.fusion = fusion
        self.backend = backend
        self._fused = fusion != "interp"
        self._native_cones: Optional[object] = None
        if backend == "native":
            from ..kernel.native import (
                NativeConeSimulator,
                native_available,
                warn_native_fallback,
            )

            if native_available():
                self._native_cones = NativeConeSimulator(self.compiled)
            else:
                warn_native_fallback()
        # site -> interpreted cone plan, cached across calls (grading
        # loops call detected_faults once per batch; the plans depend
        # only on structure, never on the batch)
        self._cone_plans: Dict[int, List] = {}

    # ------------------------------------------------------------------
    def _cone_plan(self, site: int) -> List:
        """Evaluation steps for the site's transitive fanout cone."""
        plan = self._cone_plans.get(site)
        if plan is None:
            compiled = self.compiled
            plan = self._cone_plans[site] = [
                (
                    compiled.py_codes[s],
                    s,
                    compiled.py_fanin[s],
                    compiled.gate_types[s],
                )
                for s in compiled.cone_of(site)
                if s != site and not compiled.is_input[s]
            ]
        return plan

    def _faulty_values(
        self, good: List[int], fault: StuckAtFault, width: int, plan: List
    ) -> List[int]:
        """Re-simulate with the fault site forced (cone only)."""
        mask = mask_for(width)
        values = list(good)
        values[fault.signal] = mask if fault.value else 0
        dirty = [False] * self.compiled.n_signals
        dirty[fault.signal] = True
        for code, out, fanin, _gt in plan:
            changed = False
            for f in fanin:
                if dirty[f]:
                    changed = True
                    break
            if not changed:
                continue
            word = eval_gate_word(code, values, fanin, mask)
            if word != values[out]:
                values[out] = word
                dirty[out] = True
        return values

    # ------------------------------------------------------------------
    def detected_faults(
        self,
        vectors: Sequence[Sequence[int]],
        faults: Iterable[StuckAtFault],
    ) -> Dict[StuckAtFault, int]:
        """Map each fault to the lane mask of detecting vectors."""
        faults = list(faults)
        if not vectors:
            return {fault: 0 for fault in faults}
        width = len(vectors)
        if self._native_cones is not None:
            return self._detected_native(vectors, faults, width)
        words = pack_vectors(vectors)
        good = simulate_words(self.circuit, words, width, fusion=self.fusion)
        mask = mask_for(width)
        result: Dict[StuckAtFault, int] = {}
        if self._fused:
            compiled = self.compiled
            for fault in faults:
                fn = cone_fault_fn(compiled, fault.signal)
                result[fault] = fn(good, mask if fault.value else 0, mask) & mask
            return result
        outputs = self.compiled.py_outputs
        for fault in faults:
            plan = self._cone_plan(fault.signal)
            faulty = self._faulty_values(good, fault, width, plan)
            lanes = 0
            for po in outputs:
                lanes |= good[po] ^ faulty[po]
            result[fault] = lanes & mask
        return result

    def _detected_native(
        self,
        vectors: Sequence[Sequence[int]],
        faults: List[StuckAtFault],
        width: int,
    ) -> Dict[StuckAtFault, int]:
        """The compiled-C path: native good pass + C cone resims."""
        from ..kernel.native import NativeWordBackend

        bits = pack_bits(np.asarray(vectors, dtype=np.uint8))
        good = NativeWordBackend(width).simulate_logic(self.compiled, bits)
        mask = mask_for(width)
        cones = self._native_cones
        return {
            fault: cones.diff_mask(good, fault.signal, bool(fault.value))
            & mask
            for fault in faults
        }

    def detects(self, vector: Sequence[int], fault: StuckAtFault) -> bool:
        return bool(self.detected_faults([vector], [fault])[fault])

    def coverage(
        self,
        vectors: Sequence[Sequence[int]],
        faults: Sequence[StuckAtFault],
        batch: int = 64,
    ) -> float:
        """Fraction of *faults* detected by *vectors*."""
        if not faults:
            return 1.0
        remaining = set(faults)
        for start in range(0, len(vectors), batch):
            chunk = vectors[start : start + batch]
            hits = self.detected_faults(chunk, remaining)
            remaining -= {fault for fault, lanes in hits.items() if lanes}
            if not remaining:
                break
        return 1.0 - len(remaining) / len(faults)
