"""Bit-parallel stuck-at fault simulation (parallel-pattern).

The counterpart of :mod:`repro.core.stuck_at`: packs up to ``L`` test
vectors into lane words, simulates the good machine once, and per
fault re-simulates with the site forced — the classic parallel-pattern
single-fault propagation (PPSFP) scheme the paper cites as the inspi-
ration for bit-parallel test *generation*.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from ..circuit import Circuit, GateType
from ..circuit.gates import AND_LIKE, OR_LIKE, XOR_LIKE, inverts
from ..logic.words import mask_for
from ..core.stuck_at import StuckAtFault
from .logic_sim import pack_vectors, simulate_words


class StuckAtSimulator:
    """Parallel-pattern stuck-at fault simulator."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit

    # ------------------------------------------------------------------
    def _faulty_values(
        self, good: List[int], fault: StuckAtFault, width: int
    ) -> List[int]:
        """Re-simulate with the fault site forced (cone only)."""
        circuit = self.circuit
        mask = mask_for(width)
        values = list(good)
        values[fault.signal] = mask if fault.value else 0
        # only signals downstream of the site can change
        dirty = [False] * circuit.num_signals
        dirty[fault.signal] = True
        for index in circuit.topological_order():
            gate = circuit.gates[index]
            if gate.is_input or index == fault.signal:
                continue
            if not any(dirty[f] for f in gate.fanin):
                continue
            t = gate.gate_type
            if t in (GateType.BUF, GateType.NOT):
                word = values[gate.fanin[0]]
            elif t in AND_LIKE:
                word = mask
                for f in gate.fanin:
                    word &= values[f]
            elif t in OR_LIKE:
                word = 0
                for f in gate.fanin:
                    word |= values[f]
            elif t in XOR_LIKE:
                word = 0
                for f in gate.fanin:
                    word ^= values[f]
            else:  # pragma: no cover - closed enum
                raise ValueError(f"unhandled gate type {t}")
            if inverts(t):
                word = ~word & mask
            if word != values[index]:
                values[index] = word
                dirty[index] = True
        return values

    # ------------------------------------------------------------------
    def detected_faults(
        self,
        vectors: Sequence[Sequence[int]],
        faults: Iterable[StuckAtFault],
    ) -> Dict[StuckAtFault, int]:
        """Map each fault to the lane mask of detecting vectors."""
        faults = list(faults)
        if not vectors:
            return {fault: 0 for fault in faults}
        width = len(vectors)
        words = pack_vectors(vectors)
        good = simulate_words(self.circuit, words, width)
        result: Dict[StuckAtFault, int] = {}
        for fault in faults:
            faulty = self._faulty_values(good, fault, width)
            lanes = 0
            for po in self.circuit.outputs:
                lanes |= good[po] ^ faulty[po]
            result[fault] = lanes & mask_for(width)
        return result

    def detects(self, vector: Sequence[int], fault: StuckAtFault) -> bool:
        return bool(self.detected_faults([vector], [fault])[fault])

    def coverage(
        self,
        vectors: Sequence[Sequence[int]],
        faults: Sequence[StuckAtFault],
        batch: int = 64,
    ) -> float:
        """Fraction of *faults* detected by *vectors*."""
        if not faults:
            return 1.0
        remaining = set(faults)
        for start in range(0, len(vectors), batch):
            chunk = vectors[start : start + batch]
            hits = self.detected_faults(chunk, remaining)
            remaining -= {fault for fault, lanes in hits.items() if lanes}
            if not remaining:
                break
        return 1.0 - len(remaining) / len(faults)
