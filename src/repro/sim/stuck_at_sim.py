"""Bit-parallel stuck-at fault simulation (parallel-pattern).

The counterpart of :mod:`repro.core.stuck_at`: packs test vectors into
lane words, simulates the good machine once over the compiled netlist
kernel, and per fault re-simulates with the site forced — the classic
parallel-pattern single-fault propagation (PPSFP) scheme the paper
cites as the inspiration for bit-parallel test *generation*.  The
faulty re-simulation walks only the fault site's transitive fanout
cone (:meth:`repro.kernel.CompiledCircuit.cone_of`), not the whole
netlist.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..circuit import Circuit
from ..kernel.backends import eval_gate_word
from ..logic.words import mask_for
from ..core.stuck_at import StuckAtFault
from .logic_sim import pack_vectors, simulate_words


class StuckAtSimulator:
    """Parallel-pattern stuck-at fault simulator."""

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.compiled = circuit.compiled()

    # ------------------------------------------------------------------
    def _cone_plan(self, site: int) -> List:
        """Evaluation steps for the site's transitive fanout cone.

        Built per call: ``cone_of`` is already topo-sorted, so the
        construction is O(cone) — the same order as the resimulation
        that consumes it, which makes caching (and its eviction
        policy) not worth the retained memory.
        """
        compiled = self.compiled
        return [
            (
                compiled.py_codes[s],
                s,
                compiled.py_fanin[s],
                compiled.gate_types[s],
            )
            for s in compiled.cone_of(site)
            if s != site and not compiled.is_input[s]
        ]

    def _faulty_values(
        self, good: List[int], fault: StuckAtFault, width: int, plan: List
    ) -> List[int]:
        """Re-simulate with the fault site forced (cone only)."""
        mask = mask_for(width)
        values = list(good)
        values[fault.signal] = mask if fault.value else 0
        dirty = [False] * self.compiled.n_signals
        dirty[fault.signal] = True
        for code, out, fanin, _gt in plan:
            changed = False
            for f in fanin:
                if dirty[f]:
                    changed = True
                    break
            if not changed:
                continue
            word = eval_gate_word(code, values, fanin, mask)
            if word != values[out]:
                values[out] = word
                dirty[out] = True
        return values

    # ------------------------------------------------------------------
    def detected_faults(
        self,
        vectors: Sequence[Sequence[int]],
        faults: Iterable[StuckAtFault],
    ) -> Dict[StuckAtFault, int]:
        """Map each fault to the lane mask of detecting vectors."""
        faults = list(faults)
        if not vectors:
            return {fault: 0 for fault in faults}
        width = len(vectors)
        words = pack_vectors(vectors)
        good = simulate_words(self.circuit, words, width)
        outputs = self.compiled.py_outputs
        mask = mask_for(width)
        result: Dict[StuckAtFault, int] = {}
        # the sa0/sa1 pair at each site shares one cone plan per call
        plans: Dict[int, List] = {}
        for fault in faults:
            plan = plans.get(fault.signal)
            if plan is None:
                plan = plans[fault.signal] = self._cone_plan(fault.signal)
            faulty = self._faulty_values(good, fault, width, plan)
            lanes = 0
            for po in outputs:
                lanes |= good[po] ^ faulty[po]
            result[fault] = lanes & mask
        return result

    def detects(self, vector: Sequence[int], fault: StuckAtFault) -> bool:
        return bool(self.detected_faults([vector], [fault])[fault])

    def coverage(
        self,
        vectors: Sequence[Sequence[int]],
        faults: Sequence[StuckAtFault],
        batch: int = 64,
    ) -> float:
        """Fraction of *faults* detected by *vectors*."""
        if not faults:
            return 1.0
        remaining = set(faults)
        for start in range(0, len(vectors), batch):
            chunk = vectors[start : start + batch]
            hits = self.detected_faults(chunk, remaining)
            remaining -= {fault for fault, lanes in hits.items() if lanes}
            if not remaining:
                break
        return 1.0 - len(remaining) / len(faults)
