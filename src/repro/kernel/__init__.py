"""Compiled netlist kernel: one levelized execution substrate.

The layers (see ARCHITECTURE.md):

* :mod:`repro.kernel.compiled` — :class:`CompiledCircuit`, the frozen
  circuit lowered once into flat arrays (gate-type codes, CSR
  fanin/fanout, level buckets, cached topological order, I/O index
  vectors) plus the evaluation plan every simulator executes.
* :mod:`repro.kernel.packed` — :class:`PackedPatterns`, arbitrarily
  many two-vector tests as numpy ``uint64`` lane-plane arrays.
* :mod:`repro.kernel.backends` — the pluggable word backends:
  :class:`IntWordBackend` (Python-int words, the TPG state machine's
  representation) and :class:`NumpyWordBackend` (multi-word uint64
  bulk simulation).
* :mod:`repro.kernel.fusion` — the fused level-major group plan and
  its vectorized numpy executors (the ``"vector"`` strategy).
* :mod:`repro.kernel.codegen` — straight-line compiled plan bodies
  and the per-gate forward tables the TPG implication engine uses
  (the ``"codegen"`` strategy), plus the C renderers the native
  backend compiles.
* :mod:`repro.kernel.native` — :class:`NativeWordBackend`, the plan
  executed as compiled C over uint64 lane slabs (cffi-built at
  session time, cached by structural hash; degrades to numpy with a
  one-time warning when no C toolchain is present).
"""

from .backends import (
    BACKEND_MODES,
    FUSION_MODES,
    IntWordBackend,
    NumpyWordBackend,
    WordBackend,
    backend_for,
    eval_gate_word,
)
from .native import (
    NativeBackendUnavailableWarning,
    NativeConeSimulator,
    NativeWordBackend,
    native_available,
    native_module,
    native_unavailable_reason,
    plan_hash,
)
from .codegen import (
    backward_table,
    cone_fault_fn,
    forward_table,
    logic_fn,
    planes7_fn,
    planes10_fn,
)
from .fusion import FusedGroup, FusedPlan, fused_plan
from .compiled import (
    CODE_AND,
    CODE_BUF,
    CODE_INPUT,
    CODE_NAND,
    CODE_NOR,
    CODE_NOT,
    CODE_OR,
    CODE_XNOR,
    CODE_XOR,
    GATE_CODES,
    CompiledCircuit,
    compile_circuit,
)
from .packed import (
    FULL_WORD,
    PackedPatterns,
    int_to_words,
    pack_bits,
    rows_to_ints,
    words_to_int,
)

__all__ = [
    "BACKEND_MODES",
    "CODE_AND",
    "CODE_BUF",
    "CODE_INPUT",
    "CODE_NAND",
    "CODE_NOR",
    "CODE_NOT",
    "CODE_OR",
    "CODE_XNOR",
    "CODE_XOR",
    "FULL_WORD",
    "FUSION_MODES",
    "FusedGroup",
    "FusedPlan",
    "GATE_CODES",
    "CompiledCircuit",
    "IntWordBackend",
    "NativeBackendUnavailableWarning",
    "NativeConeSimulator",
    "NativeWordBackend",
    "NumpyWordBackend",
    "PackedPatterns",
    "WordBackend",
    "backend_for",
    "native_available",
    "native_module",
    "native_unavailable_reason",
    "plan_hash",
    "backward_table",
    "compile_circuit",
    "cone_fault_fn",
    "eval_gate_word",
    "forward_table",
    "fused_plan",
    "int_to_words",
    "logic_fn",
    "pack_bits",
    "planes7_fn",
    "planes10_fn",
    "rows_to_ints",
    "words_to_int",
]
