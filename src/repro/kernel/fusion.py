"""Plan fusion: level-vectorized numpy execution of the compiled plan.

The interpreted word backends pay one Python-dispatch round per gate
per pass — exactly the per-gate-visit overhead the paper's word-level
bit parallelism is supposed to erase.  This module removes it for the
numpy backend: at lowering time the evaluation plan is partitioned
into **level-major groups** of same-gate-code / same-arity gates, and
each group evaluates with a constant number of vectorized operations:

* one fancy-index **gather** of the group's fanin rows into an
  ``(n_gates_in_group, arity, n_words)`` slab,
* one ``np.bitwise_and/or/xor.reduce`` over the arity axis (the
  7-valued calculus uses the slab rules of
  :mod:`repro.logic.seven_valued`),
* one batched invert for the negated codes (NAND/NOR/XNOR/NOT),
* one fancy-index **scatter** into the group's output rows.

Cost per topological level is O(number of groups), not O(number of
gates) — on wide circuits that's the difference between thousands of
interpreter round-trips and a few dozen numpy calls.

Grouping by level is what makes the reordering safe: every fanin of a
level-``l`` gate lives at a level strictly below ``l``, so all groups
of earlier levels are complete before any group of level ``l`` runs.
Within one level, groups execute in a deterministic (code, arity)
order; gates inside a level never read each other.

The fused plan is built once per :class:`CompiledCircuit` and cached
on it (:func:`fused_plan`).  The interpreted loop survives unchanged
in :mod:`repro.kernel.backends` as the cross-check oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..logic.seven_valued import (
    and_forward_slab,
    or_forward_slab,
    xor_forward_slab,
)
from ..logic.ten_valued import (
    and_forward_slab10,
    or_forward_slab10,
    xor_forward_slab10,
)
from .compiled import (
    CODE_AND,
    CODE_NAND,
    CODE_NOR,
    CODE_NOT,
    CODE_OR,
    CODE_XNOR,
    CODE_XOR,
    CompiledCircuit,
)

#: Codes whose output is the bitwise complement of the base reduction.
INVERTING_CODES = frozenset((CODE_NAND, CODE_NOR, CODE_XNOR, CODE_NOT))

_AND_FAMILY = (CODE_AND, CODE_NAND)
_OR_FAMILY = (CODE_OR, CODE_NOR)
_XOR_FAMILY = (CODE_XOR, CODE_XNOR)


@dataclass(frozen=True)
class FusedGroup:
    """One homogeneous gate group: same level, gate code, and arity."""

    code: int
    arity: int
    outs: np.ndarray  # intp (n_gates,): output signal rows
    fanins: np.ndarray  # intp (n_gates, arity): fanin signal rows


@dataclass(frozen=True)
class FusedPlan:
    """The whole plan as an ordered tuple of fused groups."""

    groups: Tuple[FusedGroup, ...]
    n_gates: int

    @property
    def n_groups(self) -> int:
        return len(self.groups)


def build_fused_plan(compiled: CompiledCircuit) -> FusedPlan:
    """Partition the evaluation plan into level-major fused groups."""
    level = compiled.level
    buckets: dict = {}
    order: List[Tuple[int, int, int]] = []
    n_gates = 0
    for code, out, fanin, _gate_type in compiled.plan:
        key = (int(level[out]), code, len(fanin))
        bucket = buckets.get(key)
        if bucket is None:
            bucket = buckets[key] = ([], [])
            order.append(key)
        bucket[0].append(out)
        bucket[1].append(fanin)
        n_gates += 1
    # deterministic group order: by level, then code, then arity —
    # level-major is required for correctness, the rest for stable
    # codegen/bench artifacts
    order.sort()
    groups = tuple(
        FusedGroup(
            code=code,
            arity=arity,
            outs=np.asarray(buckets[key][0], dtype=np.intp),
            fanins=np.asarray(buckets[key][1], dtype=np.intp),
        )
        for key in order
        for (_lvl, code, arity) in (key,)
    )
    return FusedPlan(groups=groups, n_gates=n_gates)


def fused_plan(compiled: CompiledCircuit) -> FusedPlan:
    """The memoized fused plan of a compiled circuit."""
    plan = compiled._fusion_cache.get("fused_plan")
    if plan is None:
        plan = compiled._fusion_cache["fused_plan"] = build_fused_plan(compiled)
    return plan


# ---------------------------------------------------------------------------
# fused executors
# ---------------------------------------------------------------------------


def run_logic_fused(
    compiled: CompiledCircuit, values: np.ndarray, full: np.uint64
) -> None:
    """Two-valued fused pass, in place over ``(n_signals, n_words)``.

    Input rows must be populated; every gate row is written exactly
    once, in level order.  Padding-lane semantics match the
    interpreted numpy loop (negated codes flip padding bits too; mask
    with the lane-valid words before counting).
    """
    for group in fused_plan(compiled).groups:
        code = group.code
        if group.arity == 1:
            # BUF/NOT, plus degenerate single-fanin AND/OR/XOR forms
            out = values[group.fanins[:, 0]]
            if code in INVERTING_CODES:
                out = out ^ full
        else:
            slab = values[group.fanins]
            if code in _AND_FAMILY:
                out = np.bitwise_and.reduce(slab, axis=1)
            elif code in _OR_FAMILY:
                out = np.bitwise_or.reduce(slab, axis=1)
            else:
                out = np.bitwise_xor.reduce(slab, axis=1)
            if code in INVERTING_CODES:
                out ^= full
        values[group.outs] = out


def run_planes7_fused(
    compiled: CompiledCircuit,
    zero: np.ndarray,
    one: np.ndarray,
    stable: np.ndarray,
    instable: np.ndarray,
) -> None:
    """Seven-valued fused pass over four ``(n_signals, n_words)`` planes.

    Applies the slab-form plane calculus of
    :mod:`repro.logic.seven_valued` group by group.  Padding lanes
    stay ``X`` end to end because input padding is all-zero and every
    rule only ANDs/ORs assigned bits.
    """
    for group in fused_plan(compiled).groups:
        code = group.code
        if group.arity == 1:
            rows = group.fanins[:, 0]
            z, o, s, i = zero[rows], one[rows], stable[rows], instable[rows]
        else:
            fanins = group.fanins
            z, o, s, i = (
                zero[fanins],
                one[fanins],
                stable[fanins],
                instable[fanins],
            )
            if code in _AND_FAMILY:
                z, o, s, i = and_forward_slab(z, o, s, i)
            elif code in _OR_FAMILY:
                z, o, s, i = or_forward_slab(z, o, s, i)
            elif code in _XOR_FAMILY:
                z, o, s, i = xor_forward_slab(z, o, s, i)
            else:  # pragma: no cover - plan only contains known codes
                raise ValueError(f"unhandled gate code {code}")
        if code in INVERTING_CODES:
            z, o = o, z
        outs = group.outs
        zero[outs] = z
        one[outs] = o
        stable[outs] = s
        instable[outs] = i


def run_planes10_fused(
    compiled: CompiledCircuit,
    zero: np.ndarray,
    one: np.ndarray,
    stable: np.ndarray,
    instable: np.ndarray,
    hazard: np.ndarray,
) -> None:
    """Ten-valued fused pass over five ``(n_signals, n_words)`` planes.

    Applies the slab-form hazard calculus of
    :mod:`repro.logic.ten_valued` group by group.  The first four
    planes follow the 7-valued rules exactly; the fifth adds
    hazard-freedom (and is inversion-invariant, so negated codes only
    swap the value planes).  Padding lanes stay ``X`` end to end.
    """
    for group in fused_plan(compiled).groups:
        code = group.code
        if group.arity == 1:
            rows = group.fanins[:, 0]
            z, o, s, i = zero[rows], one[rows], stable[rows], instable[rows]
            h = hazard[rows] | s
        else:
            fanins = group.fanins
            z, o, s, i, h = (
                zero[fanins],
                one[fanins],
                stable[fanins],
                instable[fanins],
                hazard[fanins],
            )
            if code in _AND_FAMILY:
                z, o, s, i, h = and_forward_slab10(z, o, s, i, h)
            elif code in _OR_FAMILY:
                z, o, s, i, h = or_forward_slab10(z, o, s, i, h)
            elif code in _XOR_FAMILY:
                z, o, s, i, h = xor_forward_slab10(z, o, s, i, h)
            else:  # pragma: no cover - plan only contains known codes
                raise ValueError(f"unhandled gate code {code}")
        if code in INVERTING_CODES:
            z, o = o, z
        outs = group.outs
        zero[outs] = z
        one[outs] = o
        stable[outs] = s
        instable[outs] = i
        hazard[outs] = h
