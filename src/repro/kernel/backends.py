"""Pluggable word backends executing the compiled evaluation plan.

Three word representations share one compiled netlist
(:class:`repro.kernel.compiled.CompiledCircuit`):

* :class:`IntWordBackend` — Python integers as lane words.  Arbitrary
  lane count in a single "word" (CPython ints are arbitrary
  precision), zero dependencies, and the fastest option for the small
  widths the TPG state machine works at (L = 32/64).
* :class:`NumpyWordBackend` — numpy ``uint64`` arrays, one 64-lane
  word per element.  Per-gate cost is amortized over every word, so
  thousand-pattern batches stream through the netlist at a fraction of
  the per-pattern cost; this is the bulk-simulation backend behind
  batched PPSFP and ``tip bench-sim``.
* :class:`repro.kernel.native.NativeWordBackend` — the same uint64
  lane slabs executed by compiled C (the plan rendered to one
  translation unit per circuit, built via cffi at session time).
  Opt-in (``prefer="native"``) because it needs a C toolchain; when
  none is present :func:`backend_for` degrades to the numpy backend
  with a one-time structured warning.

Each backend additionally selects a **fusion strategy** — how the
plan is *executed*, orthogonal to the word representation:

* ``"interp"`` — the original per-gate interpreter loop, retained
  verbatim as the cross-check oracle,
* ``"vector"`` — level-vectorized group execution
  (:mod:`repro.kernel.fusion`; numpy backend only — the int backend
  maps it to ``"codegen"``),
* ``"codegen"`` — the plan rendered once into straight-line compiled
  Python (:mod:`repro.kernel.codegen`),
* ``"auto"`` — the fastest supported strategy: ``vector`` on numpy,
  ``codegen`` on int words.

All strategy/representation combinations execute the same plan with
the same semantics and are cross-checked against each other and
against the naive :meth:`repro.circuit.Circuit.evaluate` reference in
the test suite (``tests/test_fusion.py``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

import numpy as np

from ..logic import seven_valued, ten_valued
from ..logic.words import mask_for
from .codegen import logic_fn, planes7_fn, planes10_fn
from .compiled import (
    CODE_AND,
    CODE_BUF,
    CODE_NAND,
    CODE_NOR,
    CODE_NOT,
    CODE_OR,
    CODE_XNOR,
    CODE_XOR,
    CompiledCircuit,
)
from .fusion import run_logic_fused, run_planes7_fused, run_planes10_fused
from .packed import FULL_WORD, lane_valid_words

#: A 7-valued plane tuple in either representation (ints or arrays).
PlanesLike = Tuple

#: The fusion strategies accepted by every backend and ``Options``.
FUSION_MODES = ("auto", "interp", "vector", "codegen")

#: The backend preferences accepted by ``backend_for`` and ``Options``.
BACKEND_MODES = ("auto", "int", "numpy", "native")


def _check_fusion(fusion: str) -> str:
    if fusion not in FUSION_MODES:
        raise ValueError(
            f"unknown fusion strategy {fusion!r} (choose from {FUSION_MODES})"
        )
    return fusion


def eval_gate_word(code: int, values, fanin: Tuple[int, ...], mask: int) -> int:
    """One plan step over Python-int lane words.

    Shared by the int backend's full-netlist pass and the stuck-at
    simulator's cone resimulation so the gate semantics live in one
    place.  Raises on unknown codes: a gate type added to the compiled
    plan without a rule here must fail loudly, not evaluate wrongly.
    """
    if code == CODE_AND or code == CODE_NAND:
        word = values[fanin[0]]
        for f in fanin[1:]:
            word &= values[f]
        if code == CODE_NAND:
            word = ~word & mask
    elif code == CODE_OR or code == CODE_NOR:
        word = values[fanin[0]]
        for f in fanin[1:]:
            word |= values[f]
        if code == CODE_NOR:
            word = ~word & mask
    elif code == CODE_XOR or code == CODE_XNOR:
        word = values[fanin[0]]
        for f in fanin[1:]:
            word ^= values[f]
        if code == CODE_XNOR:
            word = ~word & mask
    elif code == CODE_BUF:
        word = values[fanin[0]]
    elif code == CODE_NOT:
        word = ~values[fanin[0]] & mask
    else:
        raise ValueError(f"unhandled gate code {code}")
    return word


class IntWordBackend:
    """Execute the plan over Python-int lane words of a fixed width.

    ``fusion`` selects the execution strategy: ``"interp"`` runs the
    per-gate loop, ``"codegen"`` the straight-line compiled body;
    ``"auto"`` and ``"vector"`` both resolve to ``"codegen"`` (level
    vectorization needs numpy arrays — for int words codegen is the
    fused strategy).
    """

    kind = "int"

    def __init__(self, width: int, fusion: str = "auto"):
        if width < 1:
            raise ValueError("word length must be >= 1")
        self.width = width
        self.mask = mask_for(width)
        self.fusion = _check_fusion(fusion)
        self._fused = fusion != "interp"

    # ------------------------------------------------------------------
    def simulate_logic(
        self, compiled: CompiledCircuit, input_words: Sequence[int]
    ) -> List[int]:
        """Two-valued simulation; returns one lane word per signal."""
        if len(input_words) != compiled.n_inputs:
            raise ValueError(
                f"expected {compiled.n_inputs} input words, got {len(input_words)}"
            )
        mask = self.mask
        if self._fused:
            return logic_fn(compiled)(input_words, mask)
        values = [0] * compiled.n_signals
        for pi, word in zip(compiled.py_inputs, input_words):
            values[pi] = word & mask
        for code, out, fanin, _gt in compiled.plan:
            values[out] = eval_gate_word(code, values, fanin, mask)
        return values

    def simulate_planes7(
        self, compiled: CompiledCircuit, input_planes: Sequence[PlanesLike]
    ) -> List[PlanesLike]:
        """Forward 7-valued simulation from per-input plane tuples."""
        if len(input_planes) != compiled.n_inputs:
            raise ValueError(
                f"expected {compiled.n_inputs} input planes, got {len(input_planes)}"
            )
        mask = self.mask
        if self._fused:
            return planes7_fn(compiled)(input_planes, mask)
        x = seven_valued.X
        values: List[PlanesLike] = [x] * compiled.n_signals
        for pi, planes in zip(compiled.py_inputs, input_planes):
            values[pi] = planes
        forward = seven_valued.forward
        for _code, out, fanin, gate_type in compiled.plan:
            values[out] = forward(gate_type, [values[f] for f in fanin], mask)
        return values

    def simulate_planes10(
        self, compiled: CompiledCircuit, input_planes: Sequence[PlanesLike]
    ) -> List[PlanesLike]:
        """Forward 10-valued (hazard-aware) simulation from input planes."""
        if len(input_planes) != compiled.n_inputs:
            raise ValueError(
                f"expected {compiled.n_inputs} input planes, got {len(input_planes)}"
            )
        mask = self.mask
        if self._fused:
            return planes10_fn(compiled)(input_planes, mask)
        x = ten_valued.X
        values: List[PlanesLike] = [x] * compiled.n_signals
        for pi, planes in zip(compiled.py_inputs, input_planes):
            values[pi] = planes
        forward = ten_valued.forward
        for _code, out, fanin, gate_type in compiled.plan:
            values[out] = forward(gate_type, [values[f] for f in fanin], mask)
        return values


class NumpyWordBackend:
    """Execute the plan over numpy uint64 multi-word lane arrays.

    ``fusion``: ``"interp"`` is the per-gate loop, ``"vector"`` the
    level-vectorized group execution, ``"codegen"`` the straight-line
    compiled body; ``"auto"`` picks ``"vector"`` (one gather + one
    ufunc reduce per gate group — O(groups) interpreter cost per
    pass instead of O(gates)).
    """

    kind = "numpy"

    def __init__(self, n_lanes: int, fusion: str = "auto"):
        self.lane_valid = lane_valid_words(n_lanes)
        self.n_lanes = n_lanes
        self.n_words = len(self.lane_valid)
        self.full = FULL_WORD
        self.fusion = _check_fusion(fusion)

    # ------------------------------------------------------------------
    def simulate_logic(
        self, compiled: CompiledCircuit, input_bits: np.ndarray
    ) -> np.ndarray:
        """Two-valued simulation over ``(n_inputs, n_words)`` uint64 bits.

        Returns ``(n_signals, n_words)`` lane words; padding lanes in
        the last word carry unspecified values (mask with
        :attr:`lane_valid` before counting).
        """
        input_bits = np.asarray(input_bits, dtype=np.uint64)
        if input_bits.ndim == 1:
            input_bits = input_bits[:, None]
        if input_bits.shape[0] != compiled.n_inputs:
            raise ValueError(
                f"expected {compiled.n_inputs} input rows, got {input_bits.shape[0]}"
            )
        n_words = input_bits.shape[1]
        full = self.full
        if self.fusion == "codegen":
            return np.asarray(
                logic_fn(compiled)(input_bits, full), dtype=np.uint64
            )
        values = np.zeros((compiled.n_signals, n_words), dtype=np.uint64)
        values[compiled.input_index] = input_bits
        if self.fusion != "interp":
            run_logic_fused(compiled, values, full)
            return values
        for code, out, fanin, _gt in compiled.plan:
            if code == CODE_AND or code == CODE_NAND:
                word = values[fanin[0]].copy()
                for f in fanin[1:]:
                    word &= values[f]
                if code == CODE_NAND:
                    word ^= full
            elif code == CODE_OR or code == CODE_NOR:
                word = values[fanin[0]].copy()
                for f in fanin[1:]:
                    word |= values[f]
                if code == CODE_NOR:
                    word ^= full
            elif code == CODE_XOR or code == CODE_XNOR:
                word = values[fanin[0]].copy()
                for f in fanin[1:]:
                    word ^= values[f]
                if code == CODE_XNOR:
                    word ^= full
            elif code == CODE_BUF:
                word = values[fanin[0]].copy()
            elif code == CODE_NOT:
                word = values[fanin[0]] ^ full
            else:
                raise ValueError(f"unhandled gate code {code}")
            values[out] = word
        return values

    def simulate_planes7(
        self, compiled: CompiledCircuit, input_planes: Sequence[PlanesLike]
    ) -> List[PlanesLike]:
        """Forward 7-valued simulation with array-valued planes.

        The plane calculus of :mod:`repro.logic.seven_valued` is pure
        bitwise arithmetic, so the very same rules evaluate uint64
        arrays element-wise; the all-lanes mask becomes the all-ones
        word.  Padding lanes stay ``X`` end to end because the input
        planes leave them all-zero.
        """
        if len(input_planes) != compiled.n_inputs:
            raise ValueError(
                f"expected {compiled.n_inputs} input planes, got {len(input_planes)}"
            )
        full = self.full
        if self.fusion == "codegen":
            return planes7_fn(compiled)(input_planes, full)
        if self.fusion != "interp":
            n = compiled.n_signals
            shape = (n, self.n_words)
            slabs = [np.zeros(shape, dtype=np.uint64) for _ in range(4)]
            for pi, planes in zip(compiled.py_inputs, input_planes):
                for plane_slab, plane in zip(slabs, planes):
                    plane_slab[pi] = plane
            run_planes7_fused(compiled, *slabs)
            zero, one, stable, instable = slabs
            return [
                (zero[s], one[s], stable[s], instable[s]) for s in range(n)
            ]
        zero = np.zeros(self.n_words, dtype=np.uint64)
        x = (zero, zero, zero, zero)
        values: List[PlanesLike] = [x] * compiled.n_signals
        for pi, planes in zip(compiled.py_inputs, input_planes):
            values[pi] = planes
        forward = seven_valued.forward
        for _code, out, fanin, gate_type in compiled.plan:
            values[out] = forward(gate_type, [values[f] for f in fanin], full)
        return values

    def simulate_planes10(
        self, compiled: CompiledCircuit, input_planes: Sequence[PlanesLike]
    ) -> List[PlanesLike]:
        """Forward 10-valued simulation with array-valued planes.

        The hazard calculus of :mod:`repro.logic.ten_valued` is pure
        bitwise arithmetic like the 7-valued rules, so the same
        strategy split applies: ``vector`` runs the slab-form group
        executor, ``codegen`` the straight-line body, ``interp`` the
        per-gate oracle loop.  Padding lanes stay ``X``.
        """
        if len(input_planes) != compiled.n_inputs:
            raise ValueError(
                f"expected {compiled.n_inputs} input planes, got {len(input_planes)}"
            )
        full = self.full
        if self.fusion == "codegen":
            return planes10_fn(compiled)(input_planes, full)
        if self.fusion != "interp":
            n = compiled.n_signals
            shape = (n, self.n_words)
            slabs = [np.zeros(shape, dtype=np.uint64) for _ in range(5)]
            for pi, planes in zip(compiled.py_inputs, input_planes):
                for plane_slab, plane in zip(slabs, planes):
                    plane_slab[pi] = plane
            run_planes10_fused(compiled, *slabs)
            zero, one, stable, instable, hazard = slabs
            return [
                (zero[s], one[s], stable[s], instable[s], hazard[s])
                for s in range(n)
            ]
        zero = np.zeros(self.n_words, dtype=np.uint64)
        x = (zero, zero, zero, zero, zero)
        values: List[PlanesLike] = [x] * compiled.n_signals
        for pi, planes in zip(compiled.py_inputs, input_planes):
            values[pi] = planes
        forward = ten_valued.forward
        for _code, out, fanin, gate_type in compiled.plan:
            values[out] = forward(gate_type, [values[f] for f in fanin], full)
        return values


WordBackend = Union[IntWordBackend, NumpyWordBackend]


def backend_for(
    n_lanes: int, prefer: str = "auto", fusion: str = "auto"
) -> WordBackend:
    """Choose a backend for an *n_lanes*-wide batch.

    ``prefer`` is one of :data:`BACKEND_MODES`:

    * ``"auto"`` (default) — the crossover between the two
      zero-toolchain backends: Python-int words up to one machine
      word (``n_lanes <= 64``, where CPython int bitwise ops beat
      numpy's per-gate dispatch), the numpy multi-word backend
      beyond it (where per-gate cost is amortized over many words).
      ``auto`` never selects ``native`` — compiled-C execution is
      opt-in since it needs a C toolchain at session time.
    * ``"int"`` / ``"numpy"`` — pin that backend.
    * ``"native"`` — the compiled-C backend
      (:class:`repro.kernel.native.NativeWordBackend`); degrades to
      ``numpy`` with a one-time
      :class:`repro.kernel.native.NativeBackendUnavailableWarning`
      when no C toolchain is present.

    ``fusion`` selects the execution strategy of the chosen backend
    (see the module docstring).
    """
    _check_fusion(fusion)
    if prefer == "int":
        return IntWordBackend(n_lanes, fusion=fusion)
    if prefer == "numpy":
        return NumpyWordBackend(n_lanes, fusion=fusion)
    if prefer == "native":
        # imported here: repro.kernel.native imports this module
        from .native import native_backend_or_fallback

        return native_backend_or_fallback(n_lanes, fusion=fusion)
    if prefer != "auto":
        raise ValueError(
            f"unknown backend preference {prefer!r} "
            f"(choose from {BACKEND_MODES})"
        )
    if n_lanes > 64:
        return NumpyWordBackend(n_lanes, fusion=fusion)
    return IntWordBackend(n_lanes, fusion=fusion)
