"""Native word backend: the lowered plan compiled to machine code.

The third word backend.  :mod:`repro.kernel.codegen` renders the same
level-major plan the Python strategies execute as one C translation
unit over contiguous row-major ``(n_signals, n_words)`` uint64 lane
slabs (:func:`repro.kernel.codegen.render_native_source`); this module
compiles it via :mod:`cffi` at session time and exposes it behind the
:class:`NativeWordBackend` — a drop-in :class:`NumpyWordBackend`
subclass, so every ``isinstance`` dispatch on the numpy backend keeps
working and only the pass bodies change.

Covered end to end: the two-valued and 7-valued full passes, the
10-valued grading pass, the stuck-at cone resimulation, and the PPSFP
fault inner loops — the per-fault detection and strength walks run
*inside* the module (fault injection plus detection-mask reduction in
C over static fanin/controlling tables), so a whole fault batch costs
one Python call instead of one per fault per edge.

Build and caching lifecycle:

* one **probe** per process (:func:`native_available`) compiles a
  trivial module to prove a working C toolchain; without one, every
  ``prefer="native"`` request degrades to the numpy backend with a
  one-time :class:`NativeBackendUnavailableWarning`,
* per circuit, the module is keyed by a **structural hash** of the
  evaluation plan (:func:`plan_hash`) — the compiled shared object is
  written to a per-user disk cache (``REPRO_NATIVE_CACHE`` overrides
  the location) and re-loaded without recompiling on later runs,
* in process, modules are memoized globally by hash and on
  ``CompiledCircuit._fusion_cache`` — which ``__getstate__`` drops, so
  compiled circuits stay pickling-safe exactly like ``cone_fault_fn``
  bodies (campaign pool workers rebuild/reload per process).

Bit-identity against the interpreted oracle for every covered pass is
asserted by ``tests/test_fusion.py``; speed is tracked in
``BENCH_kernel.json`` (the ``native_*`` columns).
"""

from __future__ import annotations

import array
import glob
import hashlib
import importlib.util
import os
import sys
import tempfile
import threading
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .backends import NumpyWordBackend, PlanesLike
from .codegen import NATIVE_CDEF, render_native_source
from .compiled import CompiledCircuit
from .packed import rows_to_ints, words_to_int

#: Bump when the generated C or the call ABI changes: the version is
#: hashed into module names, so stale disk-cached shared objects from
#: older generators are never reloaded.
NATIVE_ABI = 2


class NativeBackendUnavailableWarning(RuntimeWarning):
    """Emitted once per process when ``prefer="native"`` falls back.

    Structured (its own category) so callers can filter or assert on
    it; the message carries the probe's failure reason.
    """


_lock = threading.Lock()
_probe_result: Optional[Tuple[bool, str]] = None
_modules: Dict[str, object] = {}
_warned_fallback = False


def native_cache_dir() -> str:
    """The on-disk cache of compiled native modules.

    ``REPRO_NATIVE_CACHE`` overrides; the default is per-user (and
    per-Python-tag via the extension filename) under the system temp
    directory.
    """
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else "shared"
    return os.path.join(tempfile.gettempdir(), f"repro-native-{uid}")


def _load_extension(name: str, path: str):
    """Import one compiled extension module from an explicit path."""
    spec = importlib.util.spec_from_file_location(name, path)
    if spec is None or spec.loader is None:  # pragma: no cover
        raise ImportError(f"cannot load native module from {path!r}")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_probe() -> Tuple[bool, str]:
    """Compile + load + call a trivial module; (ok, failure reason)."""
    try:
        import cffi
    except Exception as exc:  # pragma: no cover - cffi is baked in
        return False, f"cffi is not importable ({exc!r})"
    try:
        ffi = cffi.FFI()
        ffi.cdef("int repro_native_probe(void);")
        ffi.set_source(
            "_repro_native_probe",
            "int repro_native_probe(void) { return 42; }",
        )
        with tempfile.TemporaryDirectory() as tmp:
            lib_path = ffi.compile(tmpdir=tmp)
            module = _load_extension("_repro_native_probe", lib_path)
            if module.lib.repro_native_probe() != 42:  # pragma: no cover
                return False, "probe module returned a wrong value"
    except Exception as exc:
        return False, f"C toolchain probe failed ({exc})"
    return True, ""


def native_available() -> bool:
    """True when a working C toolchain (and cffi) is present.

    The probe actually compiles (once per process), so a compiler
    removed between sessions — or hidden via ``CC=/nonexistent`` — is
    detected rather than assumed from a stale cache.
    """
    global _probe_result
    with _lock:
        if _probe_result is None:
            _probe_result = _run_probe()
    return _probe_result[0]


def native_unavailable_reason() -> str:
    """The probe's failure reason ("" when native is available)."""
    native_available()
    assert _probe_result is not None
    return _probe_result[1]


def warn_native_fallback() -> None:
    """One-time structured warning that native degraded to numpy."""
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    warnings.warn(
        "native word backend unavailable "
        f"({native_unavailable_reason()}); falling back to the numpy "
        "backend — simulation results are identical, only slower",
        NativeBackendUnavailableWarning,
        stacklevel=3,
    )


def native_backend_or_fallback(n_lanes: int, fusion: str = "auto"):
    """A :class:`NativeWordBackend`, or numpy + one-time warning.

    The graceful-degradation seam ``backend_for(prefer="native")``
    routes through: without a C toolchain the package must keep
    working everywhere, so the numpy backend (bit-identical results)
    is substituted and a :class:`NativeBackendUnavailableWarning` is
    emitted once per process.
    """
    if native_available():
        return NativeWordBackend(n_lanes, fusion=fusion)
    warn_native_fallback()
    return NumpyWordBackend(n_lanes, fusion=fusion)


def plan_hash(compiled: CompiledCircuit) -> str:
    """Structural hash of the evaluation plan (the module cache key).

    Two circuits with the same signals/inputs/outputs and the same
    plan steps generate byte-identical C, so they share one compiled
    module — across processes via the disk cache.
    """
    h = hashlib.sha256()
    h.update(f"abi{NATIVE_ABI};{compiled.n_signals};".encode())
    h.update(f"{tuple(compiled.py_inputs)};{tuple(compiled.py_outputs)};".encode())
    for code, out, fanin, _gt in compiled.plan:
        h.update(f"{code}:{out}:{fanin};".encode())
    return h.hexdigest()[:16]


def _find_cached(name: str, cache_dir: str) -> Optional[str]:
    """Path of a previously compiled shared object, if any."""
    for path in sorted(glob.glob(os.path.join(cache_dir, name + ".*"))):
        if path.endswith((".so", ".pyd", ".dylib")):
            return path
    return None


def _build_module(compiled: CompiledCircuit, name: str, cache_dir: str):
    import cffi

    ffi = cffi.FFI()
    ffi.cdef(NATIVE_CDEF)
    # The C text is constant-size (data-driven plan interpreters, only
    # the tables grow with the circuit), so a real optimization level
    # is affordable at session time: -O2 builds bulk2k in ~2s and runs
    # the fault loop ~2x faster than -O0.  -w: machine-written code
    # trips set-but-unused warnings by construction; the noise helps
    # nobody.
    extra = [] if os.name == "nt" else ["-O2", "-w"]
    ffi.set_source(
        name, render_native_source(compiled), extra_compile_args=extra
    )
    os.makedirs(cache_dir, exist_ok=True)
    return ffi.compile(tmpdir=cache_dir)


def native_module(compiled: CompiledCircuit):
    """The compiled native module of *compiled* (memoized, see module doc).

    Requires :func:`native_available`; raises the underlying build
    error otherwise.  The returned module exposes ``lib`` (the entry
    points of :data:`repro.kernel.codegen.NATIVE_CDEF`) and ``ffi``.
    """
    module = compiled._fusion_cache.get("native_module")
    if module is not None:
        return module
    key = plan_hash(compiled)
    name = f"_repro_native_{key}"
    with _lock:
        module = _modules.get(key)
        if module is None:
            cache_dir = native_cache_dir()
            path = _find_cached(name, cache_dir)
            if path is not None:
                try:
                    module = _load_extension(name, path)
                except Exception:
                    path = None  # stale/foreign object: rebuild below
                    module = None
            if module is None:
                lib_path = _build_module(compiled, name, cache_dir)
                module = _load_extension(name, lib_path)
            _modules[key] = module
    compiled._fusion_cache["native_module"] = module
    return module


def _u64_ptr(ffi, array: np.ndarray):
    return ffi.cast("uint64_t *", ffi.from_buffer(array))


def _i32_ptr(ffi, array: np.ndarray):
    return ffi.cast("int32_t *", ffi.from_buffer(array))


def _path_arrays(
    faults: Sequence,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(path_flat, path_off, final_one) of one fault batch.

    ``array.array.extend`` flattens each path at C speed — the batch
    arrays are rebuilt per call (fault lists shrink between campaign
    rounds), so this is on the hot path of every native fault walk.
    """
    offsets = np.zeros(len(faults) + 1, dtype=np.int32)
    flat_buf = array.array("i")
    final_buf = bytearray(len(faults))
    for k, fault in enumerate(faults):
        flat_buf.extend(fault.signals)
        offsets[k + 1] = len(flat_buf)
        if fault.transition.final == 1:
            final_buf[k] = 1
    if not flat_buf:
        flat = np.zeros(0, np.int32)
    elif flat_buf.itemsize == 4:
        flat = np.frombuffer(flat_buf, dtype=np.int32)
    else:  # pragma: no cover - exotic C int width
        flat = np.asarray(flat_buf, dtype=np.int32)
    final_one = (
        np.frombuffer(final_buf, dtype=np.uint8)
        if final_buf
        else np.zeros(0, np.uint8)
    )
    return flat, offsets, final_one


def cone_step_arrays(compiled: CompiledCircuit, site: int) -> Tuple:
    """The native stuck-at cone plan of one fault site (memoized).

    ``(codes, out_slots, fanin_flat, fanin_off, po_sig, po_slot,
    n_slots)`` — the arrays ``repro_stuck_cone`` interprets.  Slot 0
    is the site itself (forced inside C); fanin references outside the
    cone are encoded ``-(signal + 1)`` and read from the good-machine
    slab.  Cached on the compiled circuit like the Python cone bodies.
    """
    key = ("native_cone", site)
    arrays = compiled._fusion_cache.get(key)
    if arrays is None:
        slots = {site: 0}
        steps = [
            s
            for s in compiled.cone_of(site)
            if s != site and not compiled.is_input[s]
        ]
        for s in steps:
            slots[s] = len(slots)
        codes = np.fromiter(
            (compiled.py_codes[s] for s in steps), np.int32, count=len(steps)
        )
        out_slots = np.fromiter(
            (slots[s] for s in steps), np.int32, count=len(steps)
        )
        fanin_off = np.zeros(len(steps) + 1, dtype=np.int32)
        flat: List[int] = []
        for k, s in enumerate(steps):
            for f in compiled.py_fanin[s]:
                flat.append(slots[f] if f in slots else -(f + 1))
            fanin_off[k + 1] = len(flat)
        fanin_flat = np.asarray(flat, dtype=np.int32)
        pos = [(po, slots[po]) for po in compiled.py_outputs if po in slots]
        po_sig = np.fromiter((p for p, _ in pos), np.int32, count=len(pos))
        po_slot = np.fromiter((q for _, q in pos), np.int32, count=len(pos))
        arrays = (
            codes, out_slots, fanin_flat, fanin_off, po_sig, po_slot,
            len(slots),
        )
        compiled._fusion_cache[key] = arrays
    return arrays


class NativeWordBackend(NumpyWordBackend):
    """Execute the plan as compiled C over uint64 lane slabs.

    A :class:`NumpyWordBackend` in every interface respect — same
    input/output shapes, same padding semantics (padding lanes of the
    last word are unspecified for two-valued values and stay ``X`` for
    plane passes), same ``fusion`` attribute (the C body *is* the
    fused plan; the attribute is kept for option plumbing) — but each
    forward pass is one call into the circuit's compiled module, and
    the fault-batch methods (:meth:`ppsfp_masks`,
    :meth:`strength_triples`) keep the walks in C too.
    """

    kind = "native"

    # ------------------------------------------------------------------
    def _pass_slabs(
        self,
        compiled: CompiledCircuit,
        input_planes: Sequence[PlanesLike],
        n_planes: int,
    ) -> List[np.ndarray]:
        n_words = (
            len(np.asarray(input_planes[0][0]).reshape(-1))
            if input_planes
            else self.n_words
        )
        shape = (compiled.n_signals, n_words)
        slabs = [np.zeros(shape, dtype=np.uint64) for _ in range(n_planes)]
        for pi, planes in zip(compiled.py_inputs, input_planes):
            for slab, plane in zip(slabs, planes):
                slab[pi] = plane
        return slabs

    def simulate_logic(
        self, compiled: CompiledCircuit, input_bits: np.ndarray
    ) -> np.ndarray:
        input_bits = np.asarray(input_bits, dtype=np.uint64)
        if input_bits.ndim == 1:
            input_bits = input_bits[:, None]
        if input_bits.shape[0] != compiled.n_inputs:
            raise ValueError(
                f"expected {compiled.n_inputs} input rows, got {input_bits.shape[0]}"
            )
        n_words = input_bits.shape[1]
        values = np.zeros((compiled.n_signals, n_words), dtype=np.uint64)
        values[compiled.input_index] = input_bits
        module = native_module(compiled)
        module.lib.repro_logic_pass(_u64_ptr(module.ffi, values), n_words)
        return values

    def simulate_planes7(
        self, compiled: CompiledCircuit, input_planes: Sequence[PlanesLike]
    ) -> List[PlanesLike]:
        if len(input_planes) != compiled.n_inputs:
            raise ValueError(
                f"expected {compiled.n_inputs} input planes, got {len(input_planes)}"
            )
        slabs = self._pass_slabs(compiled, input_planes, 4)
        module = native_module(compiled)
        ffi = module.ffi
        module.lib.repro_planes7_pass(
            *(_u64_ptr(ffi, slab) for slab in slabs), slabs[0].shape[1]
        )
        zero, one, stable, instable = slabs
        return [
            (zero[s], one[s], stable[s], instable[s])
            for s in range(compiled.n_signals)
        ]

    def simulate_planes10(
        self, compiled: CompiledCircuit, input_planes: Sequence[PlanesLike]
    ) -> List[PlanesLike]:
        if len(input_planes) != compiled.n_inputs:
            raise ValueError(
                f"expected {compiled.n_inputs} input planes, got {len(input_planes)}"
            )
        slabs = self._pass_slabs(compiled, input_planes, 5)
        module = native_module(compiled)
        ffi = module.ffi
        module.lib.repro_planes10_pass(
            *(_u64_ptr(ffi, slab) for slab in slabs), slabs[0].shape[1]
        )
        zero, one, stable, instable, hazard = slabs
        return [
            (zero[s], one[s], stable[s], instable[s], hazard[s])
            for s in range(compiled.n_signals)
        ]

    # ------------------------------------------------------------------
    # fault-batch inner loops (one Python call per batch)
    # ------------------------------------------------------------------
    def ppsfp_masks(
        self,
        compiled: CompiledCircuit,
        packed,
        faults: Sequence,
        robust: bool,
    ) -> List[int]:
        """Detection lane masks of *faults* over one packed batch.

        One 7-valued forward pass plus the whole per-fault detection
        walk (launch, off-path side conditions, early-out, validity
        masking) inside the native module; returns Python-int lane
        masks index-aligned with *faults*, bit-identical to the
        interpreted oracle walk.
        """
        slabs = self._pass_slabs(compiled, packed.planes7(), 4)
        n_words = slabs[0].shape[1]
        module = native_module(compiled)
        ffi = module.ffi
        lib = module.lib
        lib.repro_planes7_pass(
            *(_u64_ptr(ffi, slab) for slab in slabs), n_words
        )
        if not faults:
            return []
        flat, offsets, final_one = _path_arrays(faults)
        valid = np.ascontiguousarray(packed.lane_valid(), dtype=np.uint64)
        out = np.zeros((len(faults), n_words), dtype=np.uint64)
        lib.repro_detect_walk(
            *(_u64_ptr(ffi, slab) for slab in slabs),
            n_words,
            _i32_ptr(ffi, flat),
            _i32_ptr(ffi, offsets),
            ffi.cast("uint8_t *", ffi.from_buffer(final_one)),
            len(faults),
            int(robust),
            _u64_ptr(ffi, valid),
            _u64_ptr(ffi, out),
        )
        return rows_to_ints(out)

    def strength_triples(
        self, compiled: CompiledCircuit, packed, faults: Sequence
    ) -> List[Tuple[int, int, int]]:
        """(nonrobust, robust, hazard-free-robust) masks per fault.

        The 10-valued analogue of :meth:`ppsfp_masks`: one 5-plane
        forward pass plus the three-class strength walk in C.
        """
        valid = np.ascontiguousarray(packed.lane_valid(), dtype=np.uint64)
        inputs10 = [
            (z, o, s, i, valid) for z, o, s, i in packed.planes7()
        ]
        slabs = self._pass_slabs(compiled, inputs10, 5)
        n_words = slabs[0].shape[1]
        module = native_module(compiled)
        ffi = module.ffi
        lib = module.lib
        lib.repro_planes10_pass(
            *(_u64_ptr(ffi, slab) for slab in slabs), n_words
        )
        if not faults:
            return []
        flat, offsets, final_one = _path_arrays(faults)
        out_nr = np.zeros((len(faults), n_words), dtype=np.uint64)
        out_r = np.zeros_like(out_nr)
        out_st = np.zeros_like(out_nr)
        lib.repro_strength_walk(
            *(_u64_ptr(ffi, slab) for slab in slabs),
            n_words,
            _i32_ptr(ffi, flat),
            _i32_ptr(ffi, offsets),
            ffi.cast("uint8_t *", ffi.from_buffer(final_one)),
            len(faults),
            _u64_ptr(ffi, valid),
            _u64_ptr(ffi, out_nr),
            _u64_ptr(ffi, out_r),
            _u64_ptr(ffi, out_st),
        )
        return list(
            zip(rows_to_ints(out_nr), rows_to_ints(out_r), rows_to_ints(out_st))
        )


class NativeConeSimulator:
    """Per-fault stuck-at cone resimulation inside the native module.

    The native counterpart of the per-site compiled Python bodies
    (:func:`repro.kernel.codegen.cone_fault_fn`): the good-machine
    slab is computed once per batch by :meth:`NativeWordBackend.
    simulate_logic`; each fault then costs one ``repro_stuck_cone``
    call — cone interpretation, fault forcing and output-difference
    reduction all in C.  The scratch slab is grown once to the largest
    cone seen and reused across faults.
    """

    def __init__(self, compiled: CompiledCircuit):
        self.compiled = compiled
        self.module = native_module(compiled)
        self._scratch = np.empty(0, dtype=np.uint64)

    def diff_mask(self, good: np.ndarray, site: int, forced_one: bool) -> int:
        """Lane mask of output differences when *site* is forced."""
        compiled = self.compiled
        n_words = good.shape[1]
        codes, out_slots, fanin_flat, fanin_off, po_sig, po_slot, n_slots = (
            cone_step_arrays(compiled, site)
        )
        needed = n_slots * n_words
        if self._scratch.size < needed:
            self._scratch = np.empty(needed, dtype=np.uint64)
        diff = np.zeros(n_words, dtype=np.uint64)
        ffi = self.module.ffi
        self.module.lib.repro_stuck_cone(
            _u64_ptr(ffi, good),
            n_words,
            _i32_ptr(ffi, codes),
            _i32_ptr(ffi, out_slots),
            _i32_ptr(ffi, fanin_flat),
            _i32_ptr(ffi, fanin_off),
            len(codes),
            _u64_ptr(ffi, self._scratch),
            0xFFFFFFFFFFFFFFFF if forced_one else 0,
            _i32_ptr(ffi, po_sig),
            _i32_ptr(ffi, po_slot),
            len(po_sig),
            _u64_ptr(ffi, diff),
        )
        return words_to_int(diff)
