"""Packed pattern containers: arbitrarily many tests as uint64 planes.

The paper packs ``L`` patterns into the ``L`` bit lanes of one machine
word.  :class:`PackedPatterns` generalizes this kyupy-style: ``n``
two-vector tests are stored as numpy ``uint64`` lane-plane arrays of
shape ``(n_inputs, n_words)`` with pattern ``k`` living in bit
``k % 64`` of word ``k // 64`` — so a batch is no longer limited to
one machine word and the numpy backend can stream thousands of
patterns through the compiled netlist in one topological pass.

Lane numbering matches :mod:`repro.logic.words`: the Python-int lane
mask of a packed quantity is simply the little-endian concatenation of
its words (:func:`words_to_int`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

#: All 64 lanes of one word.
FULL_WORD = np.uint64(0xFFFFFFFFFFFFFFFF)


def words_to_int(words: np.ndarray) -> int:
    """Little-endian concatenation of uint64 lane words into one int.

    Lane ``k`` of the result is bit ``k % 64`` of ``words[k // 64]`` —
    the Python-int view used throughout the TPG state.
    """
    return int.from_bytes(np.ascontiguousarray(words, dtype="<u8").tobytes(), "little")


def rows_to_ints(rows: np.ndarray) -> List[int]:
    """:func:`words_to_int` over every row of a 2-D word array.

    One bulk byte conversion instead of one numpy round-trip per row —
    the native fault walks return thousands of mask rows per batch, so
    the per-row constant matters.
    """
    n_rows, n_words = rows.shape
    data = np.ascontiguousarray(rows, dtype="<u8").tobytes()
    stride = n_words * 8
    return [
        int.from_bytes(data[k * stride : (k + 1) * stride], "little")
        for k in range(n_rows)
    ]


def int_to_words(value: int, n_words: int) -> np.ndarray:
    """Inverse of :func:`words_to_int` (value must fit in *n_words*)."""
    return (
        np.frombuffer(value.to_bytes(8 * n_words, "little"), dtype="<u8")
        .astype(np.uint64)
    )


def lane_valid_words(n_lanes: int) -> np.ndarray:
    """Per-word mask of valid lanes for an *n_lanes*-wide batch.

    Full words are all-ones; the tail of the last word (padding lanes
    past ``n_lanes``) is cleared.  The single source of the padding
    semantics shared by :class:`PackedPatterns` and
    :class:`repro.kernel.backends.NumpyWordBackend`.
    """
    if n_lanes < 1:
        raise ValueError("need at least one lane")
    n_words = -(-n_lanes // 64)
    mask = np.full(n_words, FULL_WORD, dtype=np.uint64)
    tail = n_lanes % 64
    if tail:
        mask[-1] = np.uint64((1 << tail) - 1)
    return mask


def pack_bits(rows: np.ndarray) -> np.ndarray:
    """Pack a (n_patterns, n_columns) 0/1 array into uint64 lane words.

    Returns shape ``(n_columns, n_words)`` with pattern ``k`` in lane
    ``k`` (bit ``k % 64`` of word ``k // 64``).
    """
    n_patterns, n_columns = rows.shape
    n_words = max(1, -(-n_patterns // 64))
    padded = np.zeros((n_columns, n_words * 64), dtype=np.uint8)
    padded[:, :n_patterns] = rows.T
    packed = np.packbits(padded, axis=1, bitorder="little")
    # explicit little-endian view so lane k lands in bit k % 64 of word
    # k // 64 regardless of host byte order
    return np.ascontiguousarray(packed).view("<u8").astype(np.uint64)


def unpack_bits(planes: np.ndarray, n_patterns: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: lane planes back to 0/1 rows.

    Takes ``(n_columns, n_words)`` uint64 lane planes and returns the
    ``(n_patterns, n_columns)`` uint8 array they were packed from
    (padding lanes past *n_patterns* are discarded).
    """
    words = np.ascontiguousarray(planes).astype("<u8")
    n_columns = words.shape[0]
    as_bytes = words.view(np.uint8).reshape(n_columns, -1)
    bits = np.unpackbits(as_bytes, axis=1, bitorder="little")
    return np.ascontiguousarray(bits[:, :n_patterns].T)


def _rows_to_u8(rows, n_rows: int, n_columns: int) -> np.ndarray:
    """Equal-length 0/1 int rows as a ``(n_rows, n_columns)`` uint8 array.

    ``bytes()`` per row is ~2x faster than ``np.asarray`` on a nested
    sequence (packing is on the hot path of every bulk simulation
    call); anything ``bytes()`` cannot digest falls back to numpy.
    """
    try:
        flat = b"".join(bytes(row) for row in rows)
    except TypeError:
        return np.asarray([list(row) for row in rows], dtype=np.uint8)
    return np.frombuffer(flat, dtype=np.uint8).reshape(n_rows, n_columns)


@dataclass(frozen=True)
class PackedPatterns:
    """``n`` two-vector tests packed into per-input uint64 lane planes.

    Attributes:
        v1: initial-vector bits, shape ``(n_inputs, n_words)``.
        v2: final-vector bits, same shape.
        n_patterns: number of valid lanes (the tail of the last word
            is padding and masked off by :meth:`lane_valid`).
    """

    v1: np.ndarray
    v2: np.ndarray
    n_patterns: int

    @classmethod
    def from_patterns(cls, patterns: Sequence) -> "PackedPatterns":
        """Pack PatternLike objects (``.v1``/``.v2`` input tuples)."""
        if not patterns:
            raise ValueError("cannot pack an empty pattern batch")
        n_inputs = len(patterns[0].v1)
        a = _rows_to_u8([p.v1 for p in patterns], len(patterns), n_inputs)
        b = _rows_to_u8([p.v2 for p in patterns], len(patterns), n_inputs)
        return cls(v1=pack_bits(a), v2=pack_bits(b), n_patterns=len(patterns))

    @classmethod
    def from_vectors(cls, vectors: Sequence[Sequence[int]]) -> "PackedPatterns":
        """Pack single-vector tests (V1 == V2, no transitions)."""
        if not vectors:
            raise ValueError("cannot pack an empty vector batch")
        a = np.asarray(vectors, dtype=np.uint8)
        bits = pack_bits(a)
        return cls(v1=bits, v2=bits, n_patterns=len(vectors))

    # ------------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        return self.v1.shape[0]

    @property
    def n_words(self) -> int:
        return self.v1.shape[1]

    def __len__(self) -> int:
        """Lane count — so a packed batch substitutes for the pattern
        sequence it was built from (``DelayFaultSimulator`` and
        :func:`repro.sim.delay_sim.strength_masks_all` accept either)."""
        return self.n_patterns

    @classmethod
    def concat(
        cls, batches: Sequence["PackedPatterns"]
    ) -> Tuple["PackedPatterns", List[int]]:
        """Merge several packed batches into one shared lane slab.

        Returns ``(merged, offsets)`` where ``offsets[k]`` is the lane
        offset of ``batches[k]`` inside the merged slab.  Each batch is
        placed at the next 64-lane (word) boundary, so merging is a
        plain horizontal stack of the existing word planes — no lane
        shifting, no repacking.  The padding lanes between batches pack
        as stable all-zero vectors, which can never launch a transition
        (detection requires instability at the path input), and every
        consumer that demultiplexes with
        :func:`repro.logic.words.extract_lanes` only ever reads its own
        batch's lanes — so simulating the merged slab is lane-for-lane
        identical to simulating each batch alone.

        This is the paper's bit-parallelism applied across tenants: the
        service coalescer merges concurrent requests for the same
        circuit here and runs one backend call over the shared slab.
        """
        if not batches:
            raise ValueError("cannot concat an empty batch list")
        n_inputs = batches[0].n_inputs
        for batch in batches:
            if batch.n_inputs != n_inputs:
                raise ValueError(
                    "cannot concat batches over different input counts "
                    f"({batch.n_inputs} != {n_inputs})"
                )
        if len(batches) == 1:
            return batches[0], [0]
        offsets = []
        offset = 0
        for batch in batches:
            offsets.append(offset)
            offset += 64 * batch.n_words
        v1 = np.hstack([batch.v1 for batch in batches])
        v2 = np.hstack([batch.v2 for batch in batches])
        n_patterns = offsets[-1] + batches[-1].n_patterns
        return cls(v1=v1, v2=v2, n_patterns=n_patterns), offsets

    def lane_valid(self) -> np.ndarray:
        """Per-word mask of valid lanes (padding lanes cleared)."""
        return lane_valid_words(self.n_patterns)

    def planes7(self) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        """Per-input 7-valued (zero, one, stable, instable) planes.

        Lane ``k`` encodes S0/S1 where the vectors agree and F/R where
        they differ — the PPSFP input encoding of
        :func:`repro.sim.delay_sim.pack_patterns`, vectorized.
        Padding lanes are left all-zero (the 7-valued ``X``), which
        propagates as ``X`` and never contributes a detection.
        """
        valid = self.lane_valid()
        changed = (self.v1 ^ self.v2) & valid
        stable = ~changed & valid
        planes = []
        for row in range(self.n_inputs):
            one = self.v2[row] & valid
            zero = ~self.v2[row] & valid
            planes.append((zero, one, stable[row], changed[row]))
        return planes
