"""Straight-line code generation for the compiled evaluation plan.

The second fused execution strategy: instead of interpreting the plan
one ``(code, out, fanin)`` tuple at a time, render it **once** into
straight-line Python source — one expression per gate, no loops, no
gate-code dispatch — ``compile()`` it, and cache the function on the
:class:`CompiledCircuit`.  CPython then executes the whole netlist
pass as consecutive ``LOAD_FAST``/``BINARY_OP`` bytecode: no tuple
unpacking, no per-gate branch chain, no list-comprehension fanin
gathers.

Five generators live here:

* :func:`logic_fn` — the two-valued pass.  The same rendered source
  serves both word representations: Python-int lane words call it
  with the int lane mask, numpy ``uint64`` arrays with the all-ones
  word (``~x & mask`` is the polymorphic invert).
* :func:`planes7_fn` — the full 7-valued forward pass, the plane
  calculus of :mod:`repro.logic.seven_valued` inlined per gate.
* :func:`planes10_fn` — the full 10-valued forward pass: the 7-valued
  plane math plus the hazard-free plane of
  :mod:`repro.logic.ten_valued`, inlined per gate.
* :func:`forward_table` — per-signal specialized forward functions
  for the TPG implication engine: ``imply()`` pops one gate at a time
  (worklist order, not plan order), so instead of a straight line it
  gets a table of per-(code, arity) compiled bodies that replace the
  ``Algebra.forward`` dispatch chain.  Supports both the 3-valued and
  the 7-valued algebra.
* :func:`backward_table` — the same treatment for the backward half
  of ``imply()``: per-(code, arity) compiled bodies with the
  ``Algebra.backward`` prefix/suffix-product chains fully unrolled
  (no list building, no per-position Python loop).
* :func:`cone_fault_fn` — per-fault-site compiled stuck-at cone
  resimulation: the site's transitive fanout cone rendered as one
  straight-line body that forces the site, re-evaluates only cone
  gates (reading unaffected signals from the good-machine values) and
  returns the output-difference lane word directly.

:func:`render_native_source` also lives here: the C translation unit
the native word backend compiles (:mod:`repro.kernel.native`).  Unlike
the Python strategies it is *not* straight-line — the C passes are
constant-size data-driven interpreters over baked plan/fanin tables
(``_C_PASSES``), because gcc's per-function passes made straight-line
C a minutes-long build on thousand-gate circuits while buying nothing
over a dispatch loop that is dominated by slab memory traffic.

All generated code is asserted bit-identical to the interpreted
oracle by ``tests/test_fusion.py`` (hypothesis cross-checks).

Input lane words handed to the generated functions must already be
confined to the lane mask (both engines guarantee this); the
generated bodies only re-mask where the interpreted rules do.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .compiled import (
    CODE_AND,
    CODE_BUF,
    CODE_NAND,
    CODE_NOR,
    CODE_NOT,
    CODE_OR,
    CODE_XNOR,
    CODE_XOR,
    CompiledCircuit,
)

_AND_FAMILY = (CODE_AND, CODE_NAND)
_OR_FAMILY = (CODE_OR, CODE_NOR)
_XOR_FAMILY = (CODE_XOR, CODE_XNOR)
_INVERTING = (CODE_NAND, CODE_NOR, CODE_XNOR, CODE_NOT)


# ---------------------------------------------------------------------------
# expression emitters (shared by full-pass rendering and per-gate functions)
# ---------------------------------------------------------------------------


def _emit_logic(code: int, ins: Sequence[str], out: str) -> str:
    """One two-valued gate as a single assignment statement."""
    if code == CODE_BUF:
        return f"{out} = {ins[0]}"
    if code == CODE_NOT:
        return f"{out} = ~{ins[0]} & mask"
    if code in _AND_FAMILY:
        body = " & ".join(ins)
    elif code in _OR_FAMILY:
        body = " | ".join(ins)
    elif code in _XOR_FAMILY:
        body = " ^ ".join(ins)
    else:  # pragma: no cover - plan only contains known codes
        raise ValueError(f"unhandled gate code {code}")
    if code in _INVERTING:
        return f"{out} = ~({body}) & mask"
    return f"{out} = {body}"


PlaneNames = Tuple[str, str, str, str]


def _emit_planes7(
    code: int, ins: Sequence[PlaneNames], outs: PlaneNames
) -> List[str]:
    """One 7-valued gate as a block of assignments.

    *ins* / *outs* name the (zero, one, stable, instable) plane
    variables.  Scratch names (``_zs0`` …) are reused across blocks —
    straight-line code, each block completes before the next starts.
    The math is the scalar calculus of
    :mod:`repro.logic.seven_valued`, inlined.
    """
    n = len(ins)
    oz, oo, os_, oi = outs
    if code == CODE_BUF:
        z, o, s, i = ins[0]
        return [f"{oz}, {oo}, {os_}, {oi} = {z}, {o}, {s}, {i}"]
    if code == CODE_NOT:
        z, o, s, i = ins[0]
        return [f"{oz}, {oo}, {os_}, {oi} = {o}, {z}, {s}, {i}"]

    lines: List[str] = []
    if code in _AND_FAMILY or code in _OR_FAMILY:
        for k, (z, o, s, i) in enumerate(ins):
            lines.append(f"_zs{k} = {z} & {s}")
            lines.append(f"_os{k} = {o} & {s}")
            lines.append(f"_i0{k} = _zs{k} | ({o} & {i})")
            lines.append(f"_i1{k} = _os{k} | ({z} & {i})")
        zs = [f"_zs{k}" for k in range(n)]
        os2 = [f"_os{k}" for k in range(n)]
        i0s = [f"_i0{k}" for k in range(n)]
        i1s = [f"_i1{k}" for k in range(n)]
        zero_names = [z for z, _, _, _ in ins]
        one_names = [o for _, o, _, _ in ins]
        if code in _AND_FAMILY:
            lines.append(f"_z = {' | '.join(zero_names)}")
            lines.append(f"_o = {' & '.join(one_names)}")
            lines.append(f"_s = {' | '.join(zs)} | ({' & '.join(os2)})")
            lines.append(
                f"_i = ((_o & ({' | '.join(i0s)})) | "
                f"(_z & ({' & '.join(i1s)}))) & ~_s"
            )
        else:
            lines.append(f"_z = {' & '.join(zero_names)}")
            lines.append(f"_o = {' | '.join(one_names)}")
            lines.append(f"_s = ({' & '.join(zs)}) | {' | '.join(os2)}")
            lines.append(
                f"_i = ((_o & ({' & '.join(i0s)})) | "
                f"(_z & ({' | '.join(i1s)}))) & ~_s"
            )
        if code in _INVERTING:
            lines.append(f"{oz}, {oo}, {os_}, {oi} = _o, _z, _s, _i")
        else:
            lines.append(f"{oz}, {oo}, {os_}, {oi} = _z, _o, _s, _i")
        return lines

    if code in _XOR_FAMILY:
        az, ao, as_, ai = ins[0]
        lines.append(f"_az, _ao, _as, _ai = {az}, {ao}, {as_}, {ai}")
        for z, o, s, i in ins[1:]:
            lines.append("_x0 = (_az & _as) | (_ao & _ai)")
            lines.append("_x1 = (_ao & _as) | (_az & _ai)")
            lines.append(f"_y0 = ({z} & {s}) | ({o} & {i})")
            lines.append(f"_y1 = ({o} & {s}) | ({z} & {i})")
            lines.append(f"_tz = (_az & {z}) | (_ao & {o})")
            lines.append(f"_to = (_az & {o}) | (_ao & {z})")
            lines.append(f"_ts = _as & {s}")
            lines.append(
                "_ti = ((_to & ((_x0 & _y0) | (_x1 & _y1))) | "
                "(_tz & ((_x0 & _y1) | (_x1 & _y0)))) & ~_ts"
            )
            lines.append("_az, _ao, _as, _ai = _tz, _to, _ts, _ti")
        if code == CODE_XNOR:
            lines.append(f"{oz}, {oo}, {os_}, {oi} = _ao, _az, _as, _ai")
        else:
            lines.append(f"{oz}, {oo}, {os_}, {oi} = _az, _ao, _as, _ai")
        return lines

    raise ValueError(f"unhandled gate code {code}")  # pragma: no cover


def _emit_planes3(
    code: int, ins: Sequence[Tuple[str, str]], outs: Tuple[str, str]
) -> List[str]:
    """One 3-valued gate block (two planes: zero, one)."""
    oz, oo = outs
    if code == CODE_BUF:
        z, o = ins[0]
        return [f"{oz}, {oo} = {z}, {o}"]
    if code == CODE_NOT:
        z, o = ins[0]
        return [f"{oz}, {oo} = {o}, {z}"]
    zero_names = [z for z, _ in ins]
    one_names = [o for _, o in ins]
    if code in _AND_FAMILY:
        zeros, ones = " | ".join(zero_names), " & ".join(one_names)
    elif code in _OR_FAMILY:
        zeros, ones = " & ".join(zero_names), " | ".join(one_names)
    elif code in _XOR_FAMILY:
        lines = [f"_az, _ao = {zero_names[0]}, {one_names[0]}"]
        for z, o in ins[1:]:
            lines.append(f"_tz = (_az & {z}) | (_ao & {o})")
            lines.append(f"_to = (_az & {o}) | (_ao & {z})")
            lines.append("_az, _ao = _tz, _to")
        if code == CODE_XNOR:
            lines.append(f"{oz}, {oo} = _ao, _az")
        else:
            lines.append(f"{oz}, {oo} = _az, _ao")
        return lines
    else:  # pragma: no cover - plan only contains known codes
        raise ValueError(f"unhandled gate code {code}")
    if code in _INVERTING:
        return [f"{oz} = {ones}", f"{oo} = {zeros}"]
    return [f"{oz} = {zeros}", f"{oo} = {ones}"]


Planes10Names = Tuple[str, str, str, str, str]


def _emit_planes10(
    code: int, ins: Sequence[Planes10Names], outs: Planes10Names
) -> List[str]:
    """One 10-valued gate as a block of assignments.

    The first four planes are exactly the 7-valued block
    (:func:`_emit_planes7`); the fifth (hazard-free) plane inlines the
    ``_and_hazard_free`` / ``_or_hazard_free`` / ``_xor_hazard_free``
    rules of :mod:`repro.logic.ten_valued`, ORing the output stability
    plane in at the end as the interpreted ``forward`` does.  The
    hazard plane is inversion-invariant, so negated codes share their
    base family's rule.
    """
    oz, oo, os_, oi, oh = outs
    ins7 = [names[:4] for names in ins]
    if code in (CODE_BUF, CODE_NOT):
        lines = _emit_planes7(code, ins7, (oz, oo, os_, oi))
        lines.append(f"{oh} = {ins[0][4]} | {ins[0][2]}")
        return lines
    lines = _emit_planes7(code, ins7, (oz, oo, os_, oi))
    n = len(ins)
    if code in _AND_FAMILY or code in _OR_FAMILY:
        for k, (z, o, s, i, h) in enumerate(ins):
            lines.append(f"_nd{k} = {h} & ({s} | {o})")
            lines.append(f"_ni{k} = {h} & ({s} | {z})")
        nd = " & ".join(f"_nd{k}" for k in range(n))
        ni = " & ".join(f"_ni{k}" for k in range(n))
        if code in _AND_FAMILY:
            held = " | ".join(f"({z} & {s})" for z, _o, s, _i, _h in ins)
        else:
            held = " | ".join(f"({o} & {s})" for _z, o, s, _i, _h in ins)
        lines.append(f"_hf = {held} | (mask & {nd}) | (mask & {ni})")
    else:  # XOR family
        lines.append("_sp0 = mask")
        for k, names in enumerate(ins):
            lines.append(f"_sp{k + 1} = _sp{k} & {names[2]}")
        lines.append(f"_sq{n} = mask")
        for k in range(n - 1, -1, -1):
            lines.append(f"_sq{k} = _sq{k + 1} & {ins[k][2]}")
        clean = " | ".join(
            f"(_sp{k} & _sq{k + 1} & {ins[k][4]})" for k in range(n)
        )
        lines.append(f"_hf = _sp{n} | {clean}")
    lines.append(f"{oh} = _hf | {os_}")
    return lines


# ---------------------------------------------------------------------------
# full-pass renderers
# ---------------------------------------------------------------------------


def render_logic_source(compiled: CompiledCircuit) -> str:
    """The whole two-valued pass as one straight-line function."""
    lines = ["def _fused_logic(inputs, mask):"]
    for k, pi in enumerate(compiled.py_inputs):
        lines.append(f"    v{pi} = inputs[{k}] & mask")
    for code, out, fanin, _gt in compiled.plan:
        lines.append(
            "    " + _emit_logic(code, [f"v{f}" for f in fanin], f"v{out}")
        )
    signals = ", ".join(f"v{s}" for s in range(compiled.n_signals))
    lines.append(f"    return [{signals}]")
    return "\n".join(lines) + "\n"


def render_planes7_source(compiled: CompiledCircuit) -> str:
    """The whole 7-valued forward pass as one straight-line function."""
    lines = ["def _fused_planes7(inputs, mask):"]
    for k, pi in enumerate(compiled.py_inputs):
        lines.append(f"    z{pi}, o{pi}, s{pi}, i{pi} = inputs[{k}]")
    for code, out, fanin, _gt in compiled.plan:
        ins = [(f"z{f}", f"o{f}", f"s{f}", f"i{f}") for f in fanin]
        outs = (f"z{out}", f"o{out}", f"s{out}", f"i{out}")
        for line in _emit_planes7(code, ins, outs):
            lines.append("    " + line)
    rows = ", ".join(
        f"(z{s}, o{s}, s{s}, i{s})" for s in range(compiled.n_signals)
    )
    lines.append(f"    return [{rows}]")
    return "\n".join(lines) + "\n"


def render_planes10_source(compiled: CompiledCircuit) -> str:
    """The whole 10-valued forward pass as one straight-line function."""
    lines = ["def _fused_planes10(inputs, mask):"]
    for k, pi in enumerate(compiled.py_inputs):
        lines.append(
            f"    z{pi}, o{pi}, s{pi}, i{pi}, h{pi} = inputs[{k}]"
        )
    for code, out, fanin, _gt in compiled.plan:
        ins = [
            (f"z{f}", f"o{f}", f"s{f}", f"i{f}", f"h{f}") for f in fanin
        ]
        outs = (f"z{out}", f"o{out}", f"s{out}", f"i{out}", f"h{out}")
        for line in _emit_planes10(code, ins, outs):
            lines.append("    " + line)
    rows = ", ".join(
        f"(z{s}, o{s}, s{s}, i{s}, h{s})" for s in range(compiled.n_signals)
    )
    lines.append(f"    return [{rows}]")
    return "\n".join(lines) + "\n"


def _compile_fn(source: str, name: str, tag: str) -> Callable:
    namespace: dict = {}
    exec(compile(source, f"<repro.fused:{tag}>", "exec"), namespace)
    return namespace[name]


def logic_fn(compiled: CompiledCircuit) -> Callable:
    """The memoized compiled two-valued pass: ``fn(inputs, mask)``.

    Returns per-signal lane words as a list, index-aligned with
    signal ids.  Works for Python-int words (pass the int lane mask)
    and numpy ``uint64`` rows (pass the all-ones word) alike.
    """
    fn = compiled._fusion_cache.get("logic_fn")
    if fn is None:
        fn = _compile_fn(
            render_logic_source(compiled),
            "_fused_logic",
            f"logic:{compiled.circuit.name}",
        )
        compiled._fusion_cache["logic_fn"] = fn
    return fn


def planes7_fn(compiled: CompiledCircuit) -> Callable:
    """The memoized compiled 7-valued pass: ``fn(inputs, mask)``.

    *inputs* is one (zero, one, stable, instable) tuple per primary
    input, aligned with ``compiled.py_inputs``; returns one plane
    tuple per signal.  Representation-polymorphic like
    :func:`logic_fn`.
    """
    fn = compiled._fusion_cache.get("planes7_fn")
    if fn is None:
        fn = _compile_fn(
            render_planes7_source(compiled),
            "_fused_planes7",
            f"planes7:{compiled.circuit.name}",
        )
        compiled._fusion_cache["planes7_fn"] = fn
    return fn


def planes10_fn(compiled: CompiledCircuit) -> Callable:
    """The memoized compiled 10-valued pass: ``fn(inputs, mask)``.

    *inputs* is one (zero, one, stable, instable, hazard-free) tuple
    per primary input, aligned with ``compiled.py_inputs``; returns
    one plane tuple per signal.  Representation-polymorphic like
    :func:`logic_fn`.
    """
    fn = compiled._fusion_cache.get("planes10_fn")
    if fn is None:
        fn = _compile_fn(
            render_planes10_source(compiled),
            "_fused_planes10",
            f"planes10:{compiled.circuit.name}",
        )
        compiled._fusion_cache["planes10_fn"] = fn
    return fn


# ---------------------------------------------------------------------------
# per-gate forward functions (the TPG implication engine's table)
# ---------------------------------------------------------------------------

#: (algebra name, code, arity) -> compiled forward function.  Shared
#: process-wide: the bodies depend only on gate code and arity, never
#: on the circuit, so every TpgState reuses them.
_FORWARD_CACHE: dict = {}


def gate_forward_fn(
    algebra_name: str, code: int, arity: int
) -> Optional[Callable]:
    """A specialized ``fn(ins, mask) -> planes`` for one gate shape.

    *ins* is the sequence of fanin plane tuples (as handed to
    ``Algebra.forward``); the body is the fully inlined plane math for
    exactly this (code, arity) — no gate-type dispatch, no Python
    folds.  Returns ``None`` for algebras without an emitter (callers
    fall back to the interpreted ``Algebra.forward``).
    """
    key = (algebra_name, code, arity)
    fn = _FORWARD_CACHE.get(key)
    if fn is None:
        if algebra_name == "seven_valued":
            names = [(f"z{k}", f"o{k}", f"s{k}", f"i{k}") for k in range(arity)]
            body = _emit_planes7(code, names, ("_rz", "_ro", "_rs", "_ri"))
            ret = "(_rz, _ro, _rs, _ri)"
        elif algebra_name == "three_valued":
            names = [(f"z{k}", f"o{k}") for k in range(arity)]
            body = _emit_planes3(code, names, ("_rz", "_ro"))
            ret = "(_rz, _ro)"
        else:
            return None
        lines = ["def _fwd(ins, mask):"]
        for k, name_tuple in enumerate(names):
            lines.append(f"    {', '.join(name_tuple)} = ins[{k}]")
        lines.extend("    " + line for line in body)
        lines.append(f"    return {ret}")
        fn = _compile_fn(
            "\n".join(lines) + "\n",
            "_fwd",
            f"forward:{algebra_name}:{code}:{arity}",
        )
        _FORWARD_CACHE[key] = fn
    return fn


def forward_table(
    compiled: CompiledCircuit, algebra_name: str
) -> Optional[List[Optional[Callable]]]:
    """Per-signal forward functions for *algebra_name*, or ``None``.

    Index-aligned with signal ids; primary inputs hold ``None`` (the
    implication engine never evaluates them).  ``None`` overall means
    the algebra has no emitter and the caller should keep the
    interpreted dispatch.
    """
    if gate_forward_fn(algebra_name, CODE_BUF, 1) is None:
        return None
    codes = compiled.py_codes
    fanins = compiled.py_fanin
    return [
        None
        if is_input
        else gate_forward_fn(algebra_name, codes[s], len(fanins[s]))
        for s, is_input in enumerate(compiled.is_input)
    ]


# ---------------------------------------------------------------------------
# per-gate backward functions (the implication engine's other half)
# ---------------------------------------------------------------------------
#
# ``Algebra.backward`` computes the unique backward implications of one
# gate with prefix/suffix products over the fanin planes (list-built,
# one Python loop per direction per call).  The renderers below unroll
# those chains for one fixed (code, arity) into straight-line bodies —
# the same value-plane swaps the interpreted dispatchers apply for
# OR/NOR/NAND/XNOR are performed at variable-bind time, so the emitted
# math is literally the AND/XOR core of the interpreted rules.

_SWAP_OUT = (CODE_NAND, CODE_OR, CODE_XNOR)  # core sees swapped output planes
_SWAP_IN = (CODE_OR, CODE_NOR)  # core sees swapped input value planes


def _render_backward7(code: int, n: int) -> str:
    """Source of the 7-valued backward body for one (code, arity)."""
    lines = ["def _bwd(out, ins, mask):"]
    if code == CODE_BUF:
        lines.append("    return (out,)")
        return "\n".join(lines) + "\n"
    if code == CODE_NOT:
        lines.append("    oz, oo, os, oi = out")
        lines.append("    return ((oo, oz, os, oi),)")
        return "\n".join(lines) + "\n"
    out_bind = "oo, oz, os, oi" if code in _SWAP_OUT else "oz, oo, os, oi"
    lines.append(f"    {out_bind} = out")
    for k in range(n):
        in_bind = (
            f"o{k}, z{k}, s{k}, i{k}" if code in _SWAP_IN else f"z{k}, o{k}, s{k}, i{k}"
        )
        lines.append(f"    {in_bind} = ins[{k}]")
    swap_result = code in _SWAP_IN
    if code in _AND_FAMILY or code in _OR_FAMILY:
        lines.append("    _s1 = oo & os")
        lines.append("    _n0 = oz & os")
        lines.append("    _fa = oz & oi")
        lines.append("    _ri = oo & oi")
        lines.append("    _p1_0 = _p2_0 = _p3_0 = mask")
        for k in range(n):
            lines.append(f"    _p1_{k + 1} = _p1_{k} & o{k}")
            lines.append(f"    _p2_{k + 1} = _p2_{k} & (o{k} | i{k})")
            lines.append(f"    _p3_{k + 1} = _p3_{k} & s{k}")
        lines.append(f"    _q1_{n} = _q2_{n} = _q3_{n} = mask")
        for k in range(n - 1, -1, -1):
            lines.append(f"    _q1_{k} = _q1_{k + 1} & o{k}")
            lines.append(f"    _q2_{k} = _q2_{k + 1} & (o{k} | i{k})")
            lines.append(f"    _q3_{k} = _q3_{k + 1} & s{k}")
        adds = []
        for k in range(n):
            lines.append(f"    _m{k} = _n0 & _p2_{k} & _q2_{k + 1}")
            lines.append(
                f"    _az{k} = (oz & _p1_{k} & _q1_{k + 1}) | _m{k}"
            )
            lines.append(f"    _as{k} = _s1 | _m{k} | (_fa & o{k})")
            lines.append(
                f"    _ai{k} = (_fa & z{k}) | (_ri & _p3_{k} & _q3_{k + 1})"
            )
            if swap_result:
                adds.append(f"(oo, _az{k}, _as{k}, _ai{k})")
            else:
                adds.append(f"(_az{k}, oo, _as{k}, _ai{k})")
        lines.append(f"    return ({', '.join(adds)},)")
        return "\n".join(lines) + "\n"
    # XOR family
    lines.append("    _kp_0 = _sp_0 = mask")
    lines.append("    _pp_0 = 0")
    for k in range(n):
        lines.append(f"    _kp_{k + 1} = _kp_{k} & (z{k} | o{k})")
        lines.append(f"    _pp_{k + 1} = _pp_{k} ^ o{k}")
        lines.append(f"    _sp_{k + 1} = _sp_{k} & s{k}")
    lines.append(f"    _kq_{n} = _sq_{n} = mask")
    lines.append(f"    _pq_{n} = 0")
    for k in range(n - 1, -1, -1):
        lines.append(f"    _kq_{k} = _kq_{k + 1} & (z{k} | o{k})")
        lines.append(f"    _pq_{k} = _pq_{k + 1} ^ o{k}")
        lines.append(f"    _sq_{k} = _sq_{k + 1} & s{k}")
    lines.append("    _ok = oz | oo")
    adds = []
    for k in range(n):
        lines.append(f"    _r{k} = _pp_{k} ^ _pq_{k + 1}")
        lines.append(f"    _a{k} = _kp_{k} & _kq_{k + 1} & _ok")
        lines.append(
            f"    _io{k} = ((oo & ~_r{k}) | (oz & _r{k})) & _a{k}"
        )
        lines.append(
            f"    _iz{k} = ((oo & _r{k}) | (oz & ~_r{k})) & _a{k}"
        )
        lines.append(f"    _ai{k} = oi & _sp_{k} & _sq_{k + 1}")
        adds.append(f"(_iz{k}, _io{k}, os, _ai{k})")
    lines.append(f"    return ({', '.join(adds)},)")
    return "\n".join(lines) + "\n"


def _render_backward3(code: int, n: int) -> str:
    """Source of the 3-valued backward body for one (code, arity)."""
    lines = ["def _bwd(out, ins, mask):"]
    if code == CODE_BUF:
        lines.append("    return (out,)")
        return "\n".join(lines) + "\n"
    if code == CODE_NOT:
        lines.append("    a0, a1 = out")
        lines.append("    return ((a1, a0),)")
        return "\n".join(lines) + "\n"
    out_bind = "a1, a0" if code in _SWAP_OUT else "a0, a1"
    lines.append(f"    {out_bind} = out")
    for k in range(n):
        in_bind = f"i1{k}, i0{k}" if code in _SWAP_IN else f"i0{k}, i1{k}"
        lines.append(f"    {in_bind} = ins[{k}]")
    swap_result = code in _SWAP_IN
    if code in _AND_FAMILY or code in _OR_FAMILY:
        lines.append("    _p_0 = mask")
        for k in range(n):
            lines.append(f"    _p_{k + 1} = _p_{k} & i1{k}")
        lines.append(f"    _q_{n} = mask")
        for k in range(n - 1, -1, -1):
            lines.append(f"    _q_{k} = _q_{k + 1} & i1{k}")
        adds = []
        for k in range(n):
            lines.append(f"    _az{k} = a0 & _p_{k} & _q_{k + 1}")
            adds.append(f"(a1, _az{k})" if swap_result else f"(_az{k}, a1)")
        lines.append(f"    return ({', '.join(adds)},)")
        return "\n".join(lines) + "\n"
    # XOR family
    lines.append("    _kp_0 = mask")
    lines.append("    _pp_0 = 0")
    for k in range(n):
        lines.append(f"    _kp_{k + 1} = _kp_{k} & (i0{k} | i1{k})")
        lines.append(f"    _pp_{k + 1} = _pp_{k} ^ i1{k}")
    lines.append(f"    _kq_{n} = mask")
    lines.append(f"    _pq_{n} = 0")
    for k in range(n - 1, -1, -1):
        lines.append(f"    _kq_{k} = _kq_{k + 1} & (i0{k} | i1{k})")
        lines.append(f"    _pq_{k} = _pq_{k + 1} ^ i1{k}")
    lines.append("    _ok = a0 | a1")
    adds = []
    for k in range(n):
        lines.append(f"    _r{k} = _pp_{k} ^ _pq_{k + 1}")
        lines.append(f"    _a{k} = _kp_{k} & _kq_{k + 1} & _ok")
        lines.append(
            f"    _io{k} = ((a1 & ~_r{k}) | (a0 & _r{k})) & _a{k}"
        )
        lines.append(
            f"    _iz{k} = ((a1 & _r{k}) | (a0 & ~_r{k})) & _a{k}"
        )
        adds.append(f"(_iz{k}, _io{k})")
    lines.append(f"    return ({', '.join(adds)},)")
    return "\n".join(lines) + "\n"


#: (algebra name, code, arity) -> compiled backward function.  Shared
#: process-wide like :data:`_FORWARD_CACHE`.
_BACKWARD_CACHE: dict = {}


def gate_backward_fn(
    algebra_name: str, code: int, arity: int
) -> Optional[Callable]:
    """A specialized ``fn(out, ins, mask) -> additions`` for one gate shape.

    The returned function computes the unique backward implications —
    one plane tuple of additions per fanin, exactly
    ``Algebra.backward``'s contract — with the prefix/suffix chains
    unrolled.  ``None`` for algebras without an emitter.
    """
    key = (algebra_name, code, arity)
    fn = _BACKWARD_CACHE.get(key)
    if fn is None:
        if algebra_name == "seven_valued":
            source = _render_backward7(code, arity)
        elif algebra_name == "three_valued":
            source = _render_backward3(code, arity)
        else:
            return None
        fn = _compile_fn(
            source, "_bwd", f"backward:{algebra_name}:{code}:{arity}"
        )
        _BACKWARD_CACHE[key] = fn
    return fn


def backward_table(
    compiled: CompiledCircuit, algebra_name: str
) -> Optional[List[Optional[Callable]]]:
    """Per-signal backward functions for *algebra_name*, or ``None``.

    The mirror of :func:`forward_table` for the backward half of
    ``imply()``; primary inputs hold ``None``.
    """
    if gate_backward_fn(algebra_name, CODE_BUF, 1) is None:
        return None
    codes = compiled.py_codes
    fanins = compiled.py_fanin
    return [
        None
        if is_input
        else gate_backward_fn(algebra_name, codes[s], len(fanins[s]))
        for s, is_input in enumerate(compiled.is_input)
    ]


# ---------------------------------------------------------------------------
# per-cone stuck-at resimulation functions
# ---------------------------------------------------------------------------


# The three forward passes are circuit-generic C interpreters over the
# baked level-order plan (REPRO_PLAN_OUT) and the per-signal gate-code
# / fanin-CSR tables.  A fixed few hundred lines of C regardless of
# circuit size — straight-line rendering made gcc's per-function
# passes the build bottleneck (minutes at -O1 on a 2k-gate circuit) —
# while the per-gate switch dispatch is noise next to the slab memory
# traffic each gate's plane math streams.  The fold formulas below are
# the n-ary emitter formulas of :func:`_emit_planes7` /
# :func:`_emit_planes10` transcribed over C accumulators: bitwise
# AND/OR folds are order-insensitive, and the order-sensitive XOR
# chains iterate fanins in CSR order, which is plan fanin order, so
# every pass stays bit-identical to the Python oracles.
_C_PASSES = r"""
void repro_logic_pass(u64 *V, long n) {
  long t, w, k;
  for (t = 0; t < REPRO_N_PLAN; t++) {
    long out = REPRO_PLAN_OUT[t];
    int code = REPRO_CODE[out];
    const int32_t *fi = REPRO_FANIN_IDX + REPRO_FANIN_OFF[out];
    long nf = REPRO_FANIN_OFF[out + 1] - REPRO_FANIN_OFF[out];
    u64 *dst = V + out * n;
    for (w = 0; w < n; w++) {
      u64 acc = V[(long)fi[0] * n + w];
      switch (code) {
        case 3: case 4: /* AND / NAND */
          for (k = 1; k < nf; k++) acc &= V[(long)fi[k] * n + w];
          if (code == 4) acc = ~acc;
          break;
        case 5: case 6: /* OR / NOR */
          for (k = 1; k < nf; k++) acc |= V[(long)fi[k] * n + w];
          if (code == 6) acc = ~acc;
          break;
        case 7: case 8: /* XOR / XNOR */
          for (k = 1; k < nf; k++) acc ^= V[(long)fi[k] * n + w];
          if (code == 8) acc = ~acc;
          break;
        case 2: acc = ~acc; break; /* NOT */
        default: break;            /* BUF */
      }
      dst[w] = acc;
    }
  }
}

/* One 7-valued AND/OR-family gate: the n-ary accumulator folds of the
   fused emitters, inversion as a final zero/one plane swap. */
static void _p7_andor(u64 *Z, u64 *O, u64 *S, u64 *I, long out,
                      int or_family, int invert,
                      const int32_t *fi, long nf, long n) {
  long w, k;
  for (w = 0; w < n; w++) {
    u64 rz, ro, rs, ri;
    if (or_family) {
      u64 zA = ~(u64)0, oO = 0, zsA = ~(u64)0, osO = 0;
      u64 i0A = ~(u64)0, i1O = 0;
      for (k = 0; k < nf; k++) {
        long fs = fi[k];
        u64 z = Z[fs * n + w], o = O[fs * n + w];
        u64 s = S[fs * n + w], i = I[fs * n + w];
        u64 zs = z & s, os = o & s;
        zA &= z; oO |= o; zsA &= zs; osO |= os;
        i0A &= zs | (o & i); i1O |= os | (z & i);
      }
      rz = zA; ro = oO; rs = zsA | osO;
      ri = ((ro & i0A) | (rz & i1O)) & ~rs;
    } else {
      u64 zO = 0, oA = ~(u64)0, zsO = 0, osA = ~(u64)0;
      u64 i0O = 0, i1A = ~(u64)0;
      for (k = 0; k < nf; k++) {
        long fs = fi[k];
        u64 z = Z[fs * n + w], o = O[fs * n + w];
        u64 s = S[fs * n + w], i = I[fs * n + w];
        u64 zs = z & s, os = o & s;
        zO |= z; oA &= o; zsO |= zs; osA &= os;
        i0O |= zs | (o & i); i1A &= os | (z & i);
      }
      rz = zO; ro = oA; rs = zsO | osA;
      ri = ((ro & i0O) | (rz & i1A)) & ~rs;
    }
    if (invert) { u64 tmp = rz; rz = ro; ro = tmp; }
    Z[out * n + w] = rz; O[out * n + w] = ro;
    S[out * n + w] = rs; I[out * n + w] = ri;
  }
}

/* One 7-valued XOR-family gate: the emitters' left-fold binary chain
   in fanin order (the XOR calculus is order-sensitive only in its
   intermediate names, but the fold order is kept identical anyway). */
static void _p7_xor(u64 *Z, u64 *O, u64 *S, u64 *I, long out, int invert,
                    const int32_t *fi, long nf, long n) {
  long w, k;
  for (w = 0; w < n; w++) {
    long fs = fi[0];
    u64 az = Z[fs * n + w], ao = O[fs * n + w];
    u64 as = S[fs * n + w], ai = I[fs * n + w];
    for (k = 1; k < nf; k++) {
      fs = fi[k];
      u64 z = Z[fs * n + w], o = O[fs * n + w];
      u64 s = S[fs * n + w], i = I[fs * n + w];
      u64 x0 = (az & as) | (ao & ai);
      u64 x1 = (ao & as) | (az & ai);
      u64 y0 = (z & s) | (o & i);
      u64 y1 = (o & s) | (z & i);
      u64 tz = (az & z) | (ao & o);
      u64 to = (az & o) | (ao & z);
      u64 ts = as & s;
      u64 ti = ((to & ((x0 & y0) | (x1 & y1))) |
                (tz & ((x0 & y1) | (x1 & y0)))) & ~ts;
      az = tz; ao = to; as = ts; ai = ti;
    }
    if (invert) { u64 tmp = az; az = ao; ao = tmp; }
    Z[out * n + w] = az; O[out * n + w] = ao;
    S[out * n + w] = as; I[out * n + w] = ai;
  }
}

void repro_planes7_pass(u64 *Z, u64 *O, u64 *S, u64 *I, long n) {
  long t, w;
  for (t = 0; t < REPRO_N_PLAN; t++) {
    long out = REPRO_PLAN_OUT[t];
    int code = REPRO_CODE[out];
    const int32_t *fi = REPRO_FANIN_IDX + REPRO_FANIN_OFF[out];
    long nf = REPRO_FANIN_OFF[out + 1] - REPRO_FANIN_OFF[out];
    if (code <= 2) { /* BUF / NOT: copy, NOT swaps zero/one */
      long src = fi[0];
      for (w = 0; w < n; w++) {
        u64 z = Z[src * n + w], o = O[src * n + w];
        Z[out * n + w] = code == 2 ? o : z;
        O[out * n + w] = code == 2 ? z : o;
        S[out * n + w] = S[src * n + w];
        I[out * n + w] = I[src * n + w];
      }
    } else if (code <= 6) {
      _p7_andor(Z, O, S, I, out, code >= 5, code == 4 || code == 6,
                fi, nf, n);
    } else {
      _p7_xor(Z, O, S, I, out, code == 8, fi, nf, n);
    }
  }
}

/* 10-valued AND/OR-family gate: the 7-valued folds plus the
   hazard-free plane (held-at-controlling | no-dynamic | no-inverse
   hazard), ORing the output stability plane in at the end. */
static void _p10_andor(u64 *Z, u64 *O, u64 *S, u64 *I, u64 *H, long out,
                       int or_family, int invert,
                       const int32_t *fi, long nf, long n) {
  long w, k;
  for (w = 0; w < n; w++) {
    u64 rz, ro, rs, ri;
    u64 ndA = ~(u64)0, niA = ~(u64)0, held;
    if (or_family) {
      u64 zA = ~(u64)0, oO = 0, zsA = ~(u64)0, osO = 0;
      u64 i0A = ~(u64)0, i1O = 0;
      for (k = 0; k < nf; k++) {
        long fs = fi[k];
        u64 z = Z[fs * n + w], o = O[fs * n + w];
        u64 s = S[fs * n + w], i = I[fs * n + w], h = H[fs * n + w];
        u64 zs = z & s, os = o & s;
        zA &= z; oO |= o; zsA &= zs; osO |= os;
        i0A &= zs | (o & i); i1O |= os | (z & i);
        ndA &= h & (s | o); niA &= h & (s | z);
      }
      rz = zA; ro = oO; rs = zsA | osO;
      ri = ((ro & i0A) | (rz & i1O)) & ~rs;
      held = osO;
    } else {
      u64 zO = 0, oA = ~(u64)0, zsO = 0, osA = ~(u64)0;
      u64 i0O = 0, i1A = ~(u64)0;
      for (k = 0; k < nf; k++) {
        long fs = fi[k];
        u64 z = Z[fs * n + w], o = O[fs * n + w];
        u64 s = S[fs * n + w], i = I[fs * n + w], h = H[fs * n + w];
        u64 zs = z & s, os = o & s;
        zO |= z; oA &= o; zsO |= zs; osA &= os;
        i0O |= zs | (o & i); i1A &= os | (z & i);
        ndA &= h & (s | o); niA &= h & (s | z);
      }
      rz = zO; ro = oA; rs = zsO | osA;
      ri = ((ro & i0O) | (rz & i1A)) & ~rs;
      held = zsO;
    }
    if (invert) { u64 tmp = rz; rz = ro; ro = tmp; }
    Z[out * n + w] = rz; O[out * n + w] = ro;
    S[out * n + w] = rs; I[out * n + w] = ri;
    H[out * n + w] = held | ndA | niA | rs;
  }
}

/* 10-valued XOR-family gate: 7-valued fold plus the prefix/suffix
   stability products of the hazard-free rule (an input's hazard is
   masked only when every *other* input is stable). */
static void _p10_xor(u64 *Z, u64 *O, u64 *S, u64 *I, u64 *H, long out,
                     int invert, const int32_t *fi, long nf, long n) {
  long w, k;
  u64 sp[REPRO_MAX_ARITY + 1];
  for (w = 0; w < n; w++) {
    long fs = fi[0];
    u64 az = Z[fs * n + w], ao = O[fs * n + w];
    u64 as = S[fs * n + w], ai = I[fs * n + w];
    for (k = 1; k < nf; k++) {
      fs = fi[k];
      u64 z = Z[fs * n + w], o = O[fs * n + w];
      u64 s = S[fs * n + w], i = I[fs * n + w];
      u64 x0 = (az & as) | (ao & ai);
      u64 x1 = (ao & as) | (az & ai);
      u64 y0 = (z & s) | (o & i);
      u64 y1 = (o & s) | (z & i);
      u64 tz = (az & z) | (ao & o);
      u64 to = (az & o) | (ao & z);
      u64 ts = as & s;
      u64 ti = ((to & ((x0 & y0) | (x1 & y1))) |
                (tz & ((x0 & y1) | (x1 & y0)))) & ~ts;
      az = tz; ao = to; as = ts; ai = ti;
    }
    sp[0] = ~(u64)0;
    for (k = 0; k < nf; k++) sp[k + 1] = sp[k] & S[(long)fi[k] * n + w];
    u64 sq = ~(u64)0, clean = 0;
    for (k = nf - 1; k >= 0; k--) {
      clean |= sp[k] & sq & H[(long)fi[k] * n + w];
      sq &= S[(long)fi[k] * n + w];
    }
    if (invert) { u64 tmp = az; az = ao; ao = tmp; }
    Z[out * n + w] = az; O[out * n + w] = ao;
    S[out * n + w] = as; I[out * n + w] = ai;
    H[out * n + w] = sp[nf] | clean | as;
  }
}

void repro_planes10_pass(u64 *Z, u64 *O, u64 *S, u64 *I, u64 *H, long n) {
  long t, w;
  for (t = 0; t < REPRO_N_PLAN; t++) {
    long out = REPRO_PLAN_OUT[t];
    int code = REPRO_CODE[out];
    const int32_t *fi = REPRO_FANIN_IDX + REPRO_FANIN_OFF[out];
    long nf = REPRO_FANIN_OFF[out + 1] - REPRO_FANIN_OFF[out];
    if (code <= 2) { /* BUF / NOT: h-plane is inversion-invariant */
      long src = fi[0];
      for (w = 0; w < n; w++) {
        u64 z = Z[src * n + w], o = O[src * n + w];
        Z[out * n + w] = code == 2 ? o : z;
        O[out * n + w] = code == 2 ? z : o;
        S[out * n + w] = S[src * n + w];
        I[out * n + w] = I[src * n + w];
        H[out * n + w] = H[src * n + w] | S[src * n + w];
      }
    } else if (code <= 6) {
      _p10_andor(Z, O, S, I, H, out, code >= 5, code == 4 || code == 6,
                 fi, nf, n);
    } else {
      _p10_xor(Z, O, S, I, H, out, code == 8, fi, nf, n);
    }
  }
}
"""


def _c_int_array(name: str, ctype: str, values: Sequence[int]) -> str:
    """One static const C array (emitted non-empty even for no values)."""
    vals = list(values) or [0]
    joined = ", ".join(str(v) for v in vals)
    return f"static const {ctype} {name}[{len(vals)}] = {{{joined}}};"


# The per-batch fault walks and the stuck-at cone interpreter are
# circuit-generic C, but the fanin CSR and controlling-value tables
# they read are baked into each circuit's module as static arrays —
# the per-call ABI then only carries the per-batch data (paths, lane
# planes, cone step arrays).
_C_WALKS = r"""
void repro_detect_walk(const u64 *Z, const u64 *O, const u64 *S,
                       const u64 *I, long n,
                       const int32_t *path_flat, const int32_t *path_off,
                       const uint8_t *final_one, long n_faults, int robust,
                       const u64 *valid, u64 *out) {
  long f, p, w;
  for (f = 0; f < n_faults; f++) {
    const int32_t *path = path_flat + path_off[f];
    long plen = path_off[f + 1] - path_off[f];
    u64 *det = out + f * n;
    long s0 = path[0];
    const u64 *launch = final_one[f] ? O : Z;
    u64 any = 0;
    for (w = 0; w < n; w++) {
      det[w] = I[s0 * n + w] & launch[s0 * n + w];
      any |= det[w];
    }
    for (p = 1; p < plen && any; p++) {
      long sig = path[p], on = path[p - 1];
      int c = REPRO_CTRL[sig];
      int32_t k;
      for (k = REPRO_FANIN_OFF[sig]; k < REPRO_FANIN_OFF[sig + 1]; k++) {
        long fs = REPRO_FANIN_IDX[k];
        if (fs == on) continue;
        if (c < 0) {
          /* XOR-like: nonrobust imposes nothing, robust needs
             glitch-free (stable) side inputs */
          if (robust)
            for (w = 0; w < n; w++) det[w] &= S[fs * n + w];
          continue;
        }
        /* nc = 1 - c: the plane holding the non-controlling final */
        const u64 *ncp = c ? Z : O;
        for (w = 0; w < n; w++) det[w] &= ncp[fs * n + w];
        if (robust)
          for (w = 0; w < n; w++)
            det[w] &= S[fs * n + w] | ~ncp[on * n + w];
      }
      any = 0;
      for (w = 0; w < n; w++) any |= det[w];
    }
    for (w = 0; w < n; w++) det[w] &= valid[w];
  }
}

void repro_strength_walk(const u64 *Z, const u64 *O, const u64 *S,
                         const u64 *I, const u64 *H, long n,
                         const int32_t *path_flat, const int32_t *path_off,
                         const uint8_t *final_one, long n_faults,
                         const u64 *valid,
                         u64 *out_nr, u64 *out_r, u64 *out_st) {
  long f, p, w;
  for (f = 0; f < n_faults; f++) {
    const int32_t *path = path_flat + path_off[f];
    long plen = path_off[f + 1] - path_off[f];
    u64 *nr = out_nr + f * n;
    u64 *r = out_r + f * n;
    u64 *st = out_st + f * n;
    long s0 = path[0];
    const u64 *launch = final_one[f] ? O : Z;
    u64 any = 0;
    for (w = 0; w < n; w++) {
      u64 l = I[s0 * n + w] & launch[s0 * n + w];
      nr[w] = l; r[w] = l; st[w] = l;
      any |= l;
    }
    for (p = 1; p < plen && any; p++) {
      long sig = path[p], on = path[p - 1];
      int c = REPRO_CTRL[sig];
      int32_t k;
      for (k = REPRO_FANIN_OFF[sig]; k < REPRO_FANIN_OFF[sig + 1]; k++) {
        long fs = REPRO_FANIN_IDX[k];
        if (fs == on) continue;
        if (c < 0) {
          for (w = 0; w < n; w++) {
            r[w] &= S[fs * n + w];
            st[w] &= S[fs * n + w];
          }
          continue;
        }
        const u64 *ncp = c ? Z : O;
        for (w = 0; w < n; w++) {
          u64 has_nc = ncp[fs * n + w];
          u64 stable_where = S[fs * n + w] | ~ncp[on * n + w];
          nr[w] &= has_nc;
          r[w] &= has_nc & stable_where;
          st[w] &= has_nc & H[fs * n + w] & stable_where;
        }
      }
      any = 0;
      for (w = 0; w < n; w++) any |= nr[w];
    }
    for (w = 0; w < n; w++) {
      nr[w] &= valid[w];
      r[w] &= valid[w];
      st[w] &= valid[w];
    }
  }
}

/* Cone step fanin encoding: value >= 0 is a cone-local scratch slot,
   value < 0 is -(signal + 1) into the good-machine slab. */
static u64 _cone_load(const u64 *good, const u64 *scratch, long n,
                      int32_t ref, long w) {
  if (ref >= 0) return scratch[(long)ref * n + w];
  return good[(long)(-ref - 1) * n + w];
}

void repro_stuck_cone(const u64 *good, long n,
                      const int32_t *codes, const int32_t *outs,
                      const int32_t *fanin_flat, const int32_t *fanin_off,
                      long n_steps, u64 *scratch, u64 forced,
                      const int32_t *po_sig, const int32_t *po_slot,
                      long n_pos, u64 *diff) {
  long t, w, k;
  for (w = 0; w < n; w++) scratch[w] = forced; /* slot 0 = fault site */
  for (t = 0; t < n_steps; t++) {
    int code = codes[t];
    const int32_t *fi = fanin_flat + fanin_off[t];
    long nf = fanin_off[t + 1] - fanin_off[t];
    u64 *dst = scratch + (long)outs[t] * n;
    for (w = 0; w < n; w++) {
      u64 acc = _cone_load(good, scratch, n, fi[0], w);
      switch (code) {
        case 3: case 4: /* AND / NAND */
          for (k = 1; k < nf; k++)
            acc &= _cone_load(good, scratch, n, fi[k], w);
          if (code == 4) acc = ~acc;
          break;
        case 5: case 6: /* OR / NOR */
          for (k = 1; k < nf; k++)
            acc |= _cone_load(good, scratch, n, fi[k], w);
          if (code == 6) acc = ~acc;
          break;
        case 7: case 8: /* XOR / XNOR */
          for (k = 1; k < nf; k++)
            acc ^= _cone_load(good, scratch, n, fi[k], w);
          if (code == 8) acc = ~acc;
          break;
        case 2: /* NOT */
          acc = ~acc;
          break;
        default: /* BUF (1): acc already holds the input */
          break;
      }
      dst[w] = acc;
    }
  }
  for (w = 0; w < n; w++) diff[w] = 0;
  for (k = 0; k < n_pos; k++) {
    const u64 *g = good + (long)po_sig[k] * n;
    const u64 *v = scratch + (long)po_slot[k] * n;
    for (w = 0; w < n; w++) diff[w] |= g[w] ^ v[w];
  }
}
"""

#: The cffi declarations of every entry point a native module exports.
NATIVE_CDEF = """
void repro_logic_pass(uint64_t *v, long n);
void repro_planes7_pass(uint64_t *z, uint64_t *o, uint64_t *s,
                        uint64_t *i, long n);
void repro_planes10_pass(uint64_t *z, uint64_t *o, uint64_t *s,
                         uint64_t *i, uint64_t *h, long n);
void repro_detect_walk(const uint64_t *z, const uint64_t *o,
                       const uint64_t *s, const uint64_t *i, long n,
                       const int32_t *path_flat, const int32_t *path_off,
                       const uint8_t *final_one, long n_faults, int robust,
                       const uint64_t *valid, uint64_t *out);
void repro_strength_walk(const uint64_t *z, const uint64_t *o,
                         const uint64_t *s, const uint64_t *i,
                         const uint64_t *h, long n,
                         const int32_t *path_flat, const int32_t *path_off,
                         const uint8_t *final_one, long n_faults,
                         const uint64_t *valid, uint64_t *out_nr,
                         uint64_t *out_r, uint64_t *out_st);
void repro_stuck_cone(const uint64_t *good, long n,
                      const int32_t *codes, const int32_t *outs,
                      const int32_t *fanin_flat, const int32_t *fanin_off,
                      long n_steps, uint64_t *scratch, uint64_t forced,
                      const int32_t *po_sig, const int32_t *po_slot,
                      long n_pos, uint64_t *diff);
"""


def render_native_source(compiled: CompiledCircuit) -> str:
    """The whole native kernel of one circuit as one C translation unit.

    The C text is circuit-generic: the three forward passes
    (``_C_PASSES``) interpret the baked level-order plan over row-major
    ``(n_signals, n_words)`` uint64 slabs with the very fold formulas
    the Python emitters inline, and the per-fault PPSFP detection
    walk, the three-class strength walk and the stuck-at cone
    resimulation (``_C_WALKS``) read the same static fanin /
    controlling tables, so a whole fault batch costs one Python call.
    Only the tables differ between circuits — the code size (and so
    the session-time compile cost) is constant in circuit size, which
    is what lets the build run at a real optimization level.
    """
    plan_out = [out for _code, out, _fanin, _gt in compiled.plan]
    max_arity = max(
        (len(fanin) for _code, _out, fanin, _gt in compiled.plan), default=1
    )
    parts: List[str] = [
        "#include <stdint.h>",
        "typedef uint64_t u64;",
        "",
        f"#define REPRO_N_PLAN {len(plan_out)}",
        f"#define REPRO_MAX_ARITY {max(1, max_arity)}",
        _c_int_array("REPRO_PLAN_OUT", "int32_t", plan_out),
        _c_int_array("REPRO_CODE", "int8_t", compiled.py_codes),
        _c_int_array(
            "REPRO_FANIN_OFF", "int32_t", compiled.fanin_offsets.tolist()
        ),
        _c_int_array(
            "REPRO_FANIN_IDX", "int32_t", compiled.fanin_index.tolist()
        ),
        _c_int_array(
            "REPRO_CTRL",
            "int8_t",
            [-1 if c is None else int(c) for c in compiled.controlling],
        ),
        "",
        _C_PASSES,
        _C_WALKS,
    ]
    return "\n".join(parts)


def render_cone_source(compiled: CompiledCircuit, site: int) -> str:
    """The stuck-at resimulation of one fault site as straight-line code.

    ``fn(good, forced, mask)`` forces the site's lane word to
    *forced*, re-evaluates exactly the gates in the site's transitive
    fanout cone (in topological order, reading signals outside the
    cone from the good-machine values) and returns the lane word of
    good/faulty differences across the primary outputs — zero lanes
    where the fault does not propagate.  Works for Python-int words
    and numpy ``uint64`` rows alike (``mask`` is the polymorphic
    invert operand, as in :func:`logic_fn`).
    """
    lines = ["def _cone(good, forced, mask):", f"    v{site} = forced"]
    in_cone = {site}
    for s in compiled.cone_of(site):
        if s == site or compiled.is_input[s]:
            continue
        names = [
            f"v{f}" if f in in_cone else f"good[{f}]"
            for f in compiled.py_fanin[s]
        ]
        lines.append("    " + _emit_logic(compiled.py_codes[s], names, f"v{s}"))
        in_cone.add(s)
    terms = [
        f"(good[{po}] ^ v{po})"
        for po in compiled.py_outputs
        if po in in_cone
    ]
    lines.append("    return " + (" | ".join(terms) if terms else "0"))
    return "\n".join(lines) + "\n"


def cone_fault_fn(compiled: CompiledCircuit, site: int) -> Callable:
    """The memoized compiled cone resimulation of one fault site.

    Cached on the compiled circuit's fusion memo (keyed by site), so
    the sa0/sa1 fault pair — and every simulator over the same
    circuit — shares one body; the memo is dropped on pickling like
    every other exec-compiled artifact (:meth:`CompiledCircuit.
    __getstate__`) and rebuilt on first use in each process.
    """
    key = ("stuckat_cone", site)
    fn = compiled._fusion_cache.get(key)
    if fn is None:
        fn = _compile_fn(
            render_cone_source(compiled, site),
            "_cone",
            f"stuckat:{compiled.circuit.name}:{site}",
        )
        compiled._fusion_cache[key] = fn
    return fn
