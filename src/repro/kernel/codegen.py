"""Straight-line code generation for the compiled evaluation plan.

The second fused execution strategy: instead of interpreting the plan
one ``(code, out, fanin)`` tuple at a time, render it **once** into
straight-line Python source — one expression per gate, no loops, no
gate-code dispatch — ``compile()`` it, and cache the function on the
:class:`CompiledCircuit`.  CPython then executes the whole netlist
pass as consecutive ``LOAD_FAST``/``BINARY_OP`` bytecode: no tuple
unpacking, no per-gate branch chain, no list-comprehension fanin
gathers.

Three generators live here:

* :func:`logic_fn` — the two-valued pass.  The same rendered source
  serves both word representations: Python-int lane words call it
  with the int lane mask, numpy ``uint64`` arrays with the all-ones
  word (``~x & mask`` is the polymorphic invert).
* :func:`planes7_fn` — the full 7-valued forward pass, the plane
  calculus of :mod:`repro.logic.seven_valued` inlined per gate.
* :func:`forward_table` — per-signal specialized forward functions
  for the TPG implication engine: ``imply()`` pops one gate at a time
  (worklist order, not plan order), so instead of a straight line it
  gets a table of per-(code, arity) compiled bodies that replace the
  ``Algebra.forward`` dispatch chain.  Supports both the 3-valued and
  the 7-valued algebra.

All generated code is asserted bit-identical to the interpreted
oracle by ``tests/test_fusion.py`` (hypothesis cross-checks).

Input lane words handed to the generated functions must already be
confined to the lane mask (both engines guarantee this); the
generated bodies only re-mask where the interpreted rules do.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from .compiled import (
    CODE_AND,
    CODE_BUF,
    CODE_NAND,
    CODE_NOR,
    CODE_NOT,
    CODE_OR,
    CODE_XNOR,
    CODE_XOR,
    CompiledCircuit,
)

_AND_FAMILY = (CODE_AND, CODE_NAND)
_OR_FAMILY = (CODE_OR, CODE_NOR)
_XOR_FAMILY = (CODE_XOR, CODE_XNOR)
_INVERTING = (CODE_NAND, CODE_NOR, CODE_XNOR, CODE_NOT)


# ---------------------------------------------------------------------------
# expression emitters (shared by full-pass rendering and per-gate functions)
# ---------------------------------------------------------------------------


def _emit_logic(code: int, ins: Sequence[str], out: str) -> str:
    """One two-valued gate as a single assignment statement."""
    if code == CODE_BUF:
        return f"{out} = {ins[0]}"
    if code == CODE_NOT:
        return f"{out} = ~{ins[0]} & mask"
    if code in _AND_FAMILY:
        body = " & ".join(ins)
    elif code in _OR_FAMILY:
        body = " | ".join(ins)
    elif code in _XOR_FAMILY:
        body = " ^ ".join(ins)
    else:  # pragma: no cover - plan only contains known codes
        raise ValueError(f"unhandled gate code {code}")
    if code in _INVERTING:
        return f"{out} = ~({body}) & mask"
    return f"{out} = {body}"


PlaneNames = Tuple[str, str, str, str]


def _emit_planes7(
    code: int, ins: Sequence[PlaneNames], outs: PlaneNames
) -> List[str]:
    """One 7-valued gate as a block of assignments.

    *ins* / *outs* name the (zero, one, stable, instable) plane
    variables.  Scratch names (``_zs0`` …) are reused across blocks —
    straight-line code, each block completes before the next starts.
    The math is the scalar calculus of
    :mod:`repro.logic.seven_valued`, inlined.
    """
    n = len(ins)
    oz, oo, os_, oi = outs
    if code == CODE_BUF:
        z, o, s, i = ins[0]
        return [f"{oz}, {oo}, {os_}, {oi} = {z}, {o}, {s}, {i}"]
    if code == CODE_NOT:
        z, o, s, i = ins[0]
        return [f"{oz}, {oo}, {os_}, {oi} = {o}, {z}, {s}, {i}"]

    lines: List[str] = []
    if code in _AND_FAMILY or code in _OR_FAMILY:
        for k, (z, o, s, i) in enumerate(ins):
            lines.append(f"_zs{k} = {z} & {s}")
            lines.append(f"_os{k} = {o} & {s}")
            lines.append(f"_i0{k} = _zs{k} | ({o} & {i})")
            lines.append(f"_i1{k} = _os{k} | ({z} & {i})")
        zs = [f"_zs{k}" for k in range(n)]
        os2 = [f"_os{k}" for k in range(n)]
        i0s = [f"_i0{k}" for k in range(n)]
        i1s = [f"_i1{k}" for k in range(n)]
        zero_names = [z for z, _, _, _ in ins]
        one_names = [o for _, o, _, _ in ins]
        if code in _AND_FAMILY:
            lines.append(f"_z = {' | '.join(zero_names)}")
            lines.append(f"_o = {' & '.join(one_names)}")
            lines.append(f"_s = {' | '.join(zs)} | ({' & '.join(os2)})")
            lines.append(
                f"_i = ((_o & ({' | '.join(i0s)})) | "
                f"(_z & ({' & '.join(i1s)}))) & ~_s"
            )
        else:
            lines.append(f"_z = {' & '.join(zero_names)}")
            lines.append(f"_o = {' | '.join(one_names)}")
            lines.append(f"_s = ({' & '.join(zs)}) | {' | '.join(os2)}")
            lines.append(
                f"_i = ((_o & ({' & '.join(i0s)})) | "
                f"(_z & ({' | '.join(i1s)}))) & ~_s"
            )
        if code in _INVERTING:
            lines.append(f"{oz}, {oo}, {os_}, {oi} = _o, _z, _s, _i")
        else:
            lines.append(f"{oz}, {oo}, {os_}, {oi} = _z, _o, _s, _i")
        return lines

    if code in _XOR_FAMILY:
        az, ao, as_, ai = ins[0]
        lines.append(f"_az, _ao, _as, _ai = {az}, {ao}, {as_}, {ai}")
        for z, o, s, i in ins[1:]:
            lines.append("_x0 = (_az & _as) | (_ao & _ai)")
            lines.append("_x1 = (_ao & _as) | (_az & _ai)")
            lines.append(f"_y0 = ({z} & {s}) | ({o} & {i})")
            lines.append(f"_y1 = ({o} & {s}) | ({z} & {i})")
            lines.append(f"_tz = (_az & {z}) | (_ao & {o})")
            lines.append(f"_to = (_az & {o}) | (_ao & {z})")
            lines.append(f"_ts = _as & {s}")
            lines.append(
                "_ti = ((_to & ((_x0 & _y0) | (_x1 & _y1))) | "
                "(_tz & ((_x0 & _y1) | (_x1 & _y0)))) & ~_ts"
            )
            lines.append("_az, _ao, _as, _ai = _tz, _to, _ts, _ti")
        if code == CODE_XNOR:
            lines.append(f"{oz}, {oo}, {os_}, {oi} = _ao, _az, _as, _ai")
        else:
            lines.append(f"{oz}, {oo}, {os_}, {oi} = _az, _ao, _as, _ai")
        return lines

    raise ValueError(f"unhandled gate code {code}")  # pragma: no cover


def _emit_planes3(
    code: int, ins: Sequence[Tuple[str, str]], outs: Tuple[str, str]
) -> List[str]:
    """One 3-valued gate block (two planes: zero, one)."""
    oz, oo = outs
    if code == CODE_BUF:
        z, o = ins[0]
        return [f"{oz}, {oo} = {z}, {o}"]
    if code == CODE_NOT:
        z, o = ins[0]
        return [f"{oz}, {oo} = {o}, {z}"]
    zero_names = [z for z, _ in ins]
    one_names = [o for _, o in ins]
    if code in _AND_FAMILY:
        zeros, ones = " | ".join(zero_names), " & ".join(one_names)
    elif code in _OR_FAMILY:
        zeros, ones = " & ".join(zero_names), " | ".join(one_names)
    elif code in _XOR_FAMILY:
        lines = [f"_az, _ao = {zero_names[0]}, {one_names[0]}"]
        for z, o in ins[1:]:
            lines.append(f"_tz = (_az & {z}) | (_ao & {o})")
            lines.append(f"_to = (_az & {o}) | (_ao & {z})")
            lines.append("_az, _ao = _tz, _to")
        if code == CODE_XNOR:
            lines.append(f"{oz}, {oo} = _ao, _az")
        else:
            lines.append(f"{oz}, {oo} = _az, _ao")
        return lines
    else:  # pragma: no cover - plan only contains known codes
        raise ValueError(f"unhandled gate code {code}")
    if code in _INVERTING:
        return [f"{oz} = {ones}", f"{oo} = {zeros}"]
    return [f"{oz} = {zeros}", f"{oo} = {ones}"]


# ---------------------------------------------------------------------------
# full-pass renderers
# ---------------------------------------------------------------------------


def render_logic_source(compiled: CompiledCircuit) -> str:
    """The whole two-valued pass as one straight-line function."""
    lines = ["def _fused_logic(inputs, mask):"]
    for k, pi in enumerate(compiled.py_inputs):
        lines.append(f"    v{pi} = inputs[{k}] & mask")
    for code, out, fanin, _gt in compiled.plan:
        lines.append(
            "    " + _emit_logic(code, [f"v{f}" for f in fanin], f"v{out}")
        )
    signals = ", ".join(f"v{s}" for s in range(compiled.n_signals))
    lines.append(f"    return [{signals}]")
    return "\n".join(lines) + "\n"


def render_planes7_source(compiled: CompiledCircuit) -> str:
    """The whole 7-valued forward pass as one straight-line function."""
    lines = ["def _fused_planes7(inputs, mask):"]
    for k, pi in enumerate(compiled.py_inputs):
        lines.append(f"    z{pi}, o{pi}, s{pi}, i{pi} = inputs[{k}]")
    for code, out, fanin, _gt in compiled.plan:
        ins = [(f"z{f}", f"o{f}", f"s{f}", f"i{f}") for f in fanin]
        outs = (f"z{out}", f"o{out}", f"s{out}", f"i{out}")
        for line in _emit_planes7(code, ins, outs):
            lines.append("    " + line)
    rows = ", ".join(
        f"(z{s}, o{s}, s{s}, i{s})" for s in range(compiled.n_signals)
    )
    lines.append(f"    return [{rows}]")
    return "\n".join(lines) + "\n"


def _compile_fn(source: str, name: str, tag: str) -> Callable:
    namespace: dict = {}
    exec(compile(source, f"<repro.fused:{tag}>", "exec"), namespace)
    return namespace[name]


def logic_fn(compiled: CompiledCircuit) -> Callable:
    """The memoized compiled two-valued pass: ``fn(inputs, mask)``.

    Returns per-signal lane words as a list, index-aligned with
    signal ids.  Works for Python-int words (pass the int lane mask)
    and numpy ``uint64`` rows (pass the all-ones word) alike.
    """
    fn = compiled._fusion_cache.get("logic_fn")
    if fn is None:
        fn = _compile_fn(
            render_logic_source(compiled),
            "_fused_logic",
            f"logic:{compiled.circuit.name}",
        )
        compiled._fusion_cache["logic_fn"] = fn
    return fn


def planes7_fn(compiled: CompiledCircuit) -> Callable:
    """The memoized compiled 7-valued pass: ``fn(inputs, mask)``.

    *inputs* is one (zero, one, stable, instable) tuple per primary
    input, aligned with ``compiled.py_inputs``; returns one plane
    tuple per signal.  Representation-polymorphic like
    :func:`logic_fn`.
    """
    fn = compiled._fusion_cache.get("planes7_fn")
    if fn is None:
        fn = _compile_fn(
            render_planes7_source(compiled),
            "_fused_planes7",
            f"planes7:{compiled.circuit.name}",
        )
        compiled._fusion_cache["planes7_fn"] = fn
    return fn


# ---------------------------------------------------------------------------
# per-gate forward functions (the TPG implication engine's table)
# ---------------------------------------------------------------------------

#: (algebra name, code, arity) -> compiled forward function.  Shared
#: process-wide: the bodies depend only on gate code and arity, never
#: on the circuit, so every TpgState reuses them.
_FORWARD_CACHE: dict = {}


def gate_forward_fn(
    algebra_name: str, code: int, arity: int
) -> Optional[Callable]:
    """A specialized ``fn(ins, mask) -> planes`` for one gate shape.

    *ins* is the sequence of fanin plane tuples (as handed to
    ``Algebra.forward``); the body is the fully inlined plane math for
    exactly this (code, arity) — no gate-type dispatch, no Python
    folds.  Returns ``None`` for algebras without an emitter (callers
    fall back to the interpreted ``Algebra.forward``).
    """
    key = (algebra_name, code, arity)
    fn = _FORWARD_CACHE.get(key)
    if fn is None:
        if algebra_name == "seven_valued":
            names = [(f"z{k}", f"o{k}", f"s{k}", f"i{k}") for k in range(arity)]
            body = _emit_planes7(code, names, ("_rz", "_ro", "_rs", "_ri"))
            ret = "(_rz, _ro, _rs, _ri)"
        elif algebra_name == "three_valued":
            names = [(f"z{k}", f"o{k}") for k in range(arity)]
            body = _emit_planes3(code, names, ("_rz", "_ro"))
            ret = "(_rz, _ro)"
        else:
            return None
        lines = ["def _fwd(ins, mask):"]
        for k, name_tuple in enumerate(names):
            lines.append(f"    {', '.join(name_tuple)} = ins[{k}]")
        lines.extend("    " + line for line in body)
        lines.append(f"    return {ret}")
        fn = _compile_fn(
            "\n".join(lines) + "\n",
            "_fwd",
            f"forward:{algebra_name}:{code}:{arity}",
        )
        _FORWARD_CACHE[key] = fn
    return fn


def forward_table(
    compiled: CompiledCircuit, algebra_name: str
) -> Optional[List[Optional[Callable]]]:
    """Per-signal forward functions for *algebra_name*, or ``None``.

    Index-aligned with signal ids; primary inputs hold ``None`` (the
    implication engine never evaluates them).  ``None`` overall means
    the algebra has no emitter and the caller should keep the
    interpreted dispatch.
    """
    if gate_forward_fn(algebra_name, CODE_BUF, 1) is None:
        return None
    codes = compiled.py_codes
    fanins = compiled.py_fanin
    return [
        None
        if is_input
        else gate_forward_fn(algebra_name, codes[s], len(fanins[s]))
        for s, is_input in enumerate(compiled.is_input)
    ]
