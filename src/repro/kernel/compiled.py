"""The compiled netlist: a frozen circuit lowered to flat arrays.

Every simulator in this code base walks the same structure — gates in
topological order, each combining a handful of fanin values.  The seed
implementation re-walked the :class:`repro.circuit.Circuit` object
graph for every simulation call (``Gate`` dataclass attribute lookups,
``GateType`` enum hashing against frozensets, per-call fanout tuples),
so the hot path was dominated by interpreter overhead rather than lane
arithmetic.

:class:`CompiledCircuit` performs that lowering exactly once:

* integer **gate-type codes** (:data:`CODE_AND` etc.) per signal,
* **CSR** fanin/fanout index arrays (``offsets``/``index`` pairs),
* the cached **level** array, the level-major **topological order**
  and its per-level bucket boundaries,
* dense **input/output index vectors**,
* an **evaluation plan**: one ``(code, out, fanin, gate_type)`` tuple
  per non-input signal in topological order — the single sequence both
  word backends execute (:mod:`repro.kernel.backends`).

Python-native mirrors (plain lists/tuples of ints) are kept alongside
the numpy arrays because CPython iterates lists several times faster
than it unboxes numpy scalars; the arrays serve vectorized consumers,
the mirrors serve interpreter loops.  Both views are immutable by
convention and derived from the same frozen circuit, so they can be
cached on the circuit forever (:meth:`repro.circuit.Circuit.compiled`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np

from ..circuit.gates import (
    GateType,
    controlling_value,
    inverts,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..circuit.circuit import Circuit

# ---------------------------------------------------------------------------
# gate-type codes
# ---------------------------------------------------------------------------

#: Dense integer codes for :class:`GateType`, stable across sessions.
CODE_INPUT = 0
CODE_BUF = 1
CODE_NOT = 2
CODE_AND = 3
CODE_NAND = 4
CODE_OR = 5
CODE_NOR = 6
CODE_XOR = 7
CODE_XNOR = 8

GATE_CODES = {
    GateType.INPUT: CODE_INPUT,
    GateType.BUF: CODE_BUF,
    GateType.NOT: CODE_NOT,
    GateType.AND: CODE_AND,
    GateType.NAND: CODE_NAND,
    GateType.OR: CODE_OR,
    GateType.NOR: CODE_NOR,
    GateType.XOR: CODE_XOR,
    GateType.XNOR: CODE_XNOR,
}

CODE_TO_GATE = {code: gate_type for gate_type, code in GATE_CODES.items()}

#: One evaluation step: (code, output signal, fanin ids, gate type).
PlanStep = Tuple[int, int, Tuple[int, ...], GateType]


@dataclass(eq=False)
class CompiledCircuit:
    """A frozen circuit lowered into flat arrays (see module docstring).

    Instances are produced by :func:`compile_circuit` (usually via the
    caching :meth:`repro.circuit.Circuit.compiled`) and treated as
    immutable.  ``eq=False``: identity comparison only — a generated
    ``__eq__`` would recurse through the circuit back-reference and
    choke on the ambiguous truth value of the numpy array fields.
    """

    circuit: "Circuit"
    n_signals: int
    n_inputs: int
    n_outputs: int
    depth: int

    # numpy views (vectorized consumers)
    codes: np.ndarray  # uint8 (n_signals,)
    level: np.ndarray  # int32 (n_signals,)
    order: np.ndarray  # int32 (n_signals,), level-major topological
    level_starts: np.ndarray  # int32 (depth + 2,): bucket boundaries
    fanin_offsets: np.ndarray  # int32 (n_signals + 1,)
    fanin_index: np.ndarray  # int32 (sum of fanins,)
    fanout_offsets: np.ndarray  # int32 (n_signals + 1,)
    fanout_index: np.ndarray  # int32 (sum of fanouts,)
    input_index: np.ndarray  # int32 (n_inputs,)
    output_index: np.ndarray  # int32 (n_outputs,)

    # python mirrors (interpreter loops)
    py_inputs: List[int] = field(default_factory=list)
    py_outputs: List[int] = field(default_factory=list)
    py_order: List[int] = field(default_factory=list)
    order_position: List[int] = field(default_factory=list)  # signal -> rank in order
    py_fanin: Tuple[Tuple[int, ...], ...] = ()
    py_fanout: Tuple[Tuple[int, ...], ...] = ()
    py_codes: List[int] = field(default_factory=list)
    gate_types: List[GateType] = field(default_factory=list)
    is_input: List[bool] = field(default_factory=list)
    controlling: List[Optional[int]] = field(default_factory=list)
    inverting: List[bool] = field(default_factory=list)
    plan: Tuple[PlanStep, ...] = ()

    # memo slot for derived execution artifacts (the fused level-major
    # group plan and compiled straight-line sources); owned by
    # repro.kernel.fusion / repro.kernel.codegen, keyed by artifact
    # name.  Lives here so the artifacts share the circuit's lifetime.
    _fusion_cache: dict = field(default_factory=dict, repr=False)

    def __getstate__(self):
        # exec-compiled plan bodies don't pickle (and campaign workers
        # pickle circuits on spawn-only platforms); the cache is a
        # memo, so ship it empty and let each process rebuild on use
        state = self.__dict__.copy()
        state["_fusion_cache"] = {}
        return state

    # ------------------------------------------------------------------
    def fanin_of(self, signal: int) -> Tuple[int, ...]:
        """Fanin signal ids of *signal* (empty for inputs)."""
        return self.py_fanin[signal]

    def fanout_of(self, signal: int) -> Tuple[int, ...]:
        """Ids of the signals whose gates read *signal*."""
        return self.py_fanout[signal]

    def level_bucket(self, lvl: int) -> np.ndarray:
        """Signal ids at level *lvl*, ascending."""
        return self.order[self.level_starts[lvl] : self.level_starts[lvl + 1]]

    def cone_of(self, signal: int) -> List[int]:
        """Signals structurally reachable from *signal*, topo-ordered.

        The transitive fanout cone including *signal* itself — the set
        a single fault injection can disturb.  A BFS over the fanout
        adjacency, so the cost is proportional to the cone's edge
        count, not the netlist size.
        """
        fanout = self.py_fanout
        seen = {signal}
        stack = [signal]
        while stack:
            s = stack.pop()
            for f in fanout[s]:
                if f not in seen:
                    seen.add(f)
                    stack.append(f)
        return sorted(seen, key=self.order_position.__getitem__)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompiledCircuit({self.circuit.name!r}, signals={self.n_signals}, "
            f"inputs={self.n_inputs}, outputs={self.n_outputs}, depth={self.depth})"
        )


def compile_circuit(circuit: "Circuit") -> CompiledCircuit:
    """Lower a frozen :class:`Circuit` into a :class:`CompiledCircuit`.

    The circuit must be frozen (levels/fanout/topological order are
    read from its cached derived arrays).  Prefer
    :meth:`Circuit.compiled`, which memoizes the result.
    """
    if not circuit.frozen:
        from ..circuit.circuit import CircuitError

        raise CircuitError("circuit must be frozen before compiling")

    n = circuit.num_signals
    gates = circuit.gates
    py_order = list(circuit.topological_order())
    levels = circuit.levels
    depth = circuit.depth

    py_fanin = tuple(g.fanin for g in gates)
    py_fanout = tuple(circuit.fanout(i) for i in range(n))
    gate_types = [g.gate_type for g in gates]
    py_codes = [GATE_CODES[t] for t in gate_types]
    is_input = [t is GateType.INPUT for t in gate_types]

    fanin_offsets = np.zeros(n + 1, dtype=np.int32)
    for i, f in enumerate(py_fanin):
        fanin_offsets[i + 1] = fanin_offsets[i] + len(f)
    fanin_index = np.fromiter(
        (s for f in py_fanin for s in f), dtype=np.int32, count=int(fanin_offsets[-1])
    )
    fanout_offsets = np.zeros(n + 1, dtype=np.int32)
    for i, f in enumerate(py_fanout):
        fanout_offsets[i + 1] = fanout_offsets[i] + len(f)
    fanout_index = np.fromiter(
        (s for f in py_fanout for s in f), dtype=np.int32, count=int(fanout_offsets[-1])
    )

    order = np.asarray(py_order, dtype=np.int32)
    level = np.asarray(levels, dtype=np.int32)
    level_starts = np.zeros(depth + 2, dtype=np.int32)
    for index in py_order:
        level_starts[levels[index] + 1] += 1
    level_starts = np.cumsum(level_starts).astype(np.int32)

    plan = tuple(
        (py_codes[i], i, py_fanin[i], gate_types[i])
        for i in py_order
        if not is_input[i]
    )
    order_position = [0] * n
    for rank, index in enumerate(py_order):
        order_position[index] = rank

    return CompiledCircuit(
        circuit=circuit,
        n_signals=n,
        n_inputs=len(circuit.inputs),
        n_outputs=len(circuit.outputs),
        depth=depth,
        codes=np.asarray(py_codes, dtype=np.uint8),
        level=level,
        order=order,
        level_starts=level_starts,
        fanin_offsets=fanin_offsets,
        fanin_index=fanin_index,
        fanout_offsets=fanout_offsets,
        fanout_index=fanout_index,
        input_index=np.asarray(circuit.inputs, dtype=np.int32),
        output_index=np.asarray(circuit.outputs, dtype=np.int32),
        py_inputs=list(circuit.inputs),
        py_outputs=list(circuit.outputs),
        py_order=py_order,
        order_position=order_position,
        py_fanin=py_fanin,
        py_fanout=py_fanout,
        py_codes=py_codes,
        gate_types=gate_types,
        is_input=is_input,
        controlling=[controlling_value(t) for t in gate_types],
        inverting=[inverts(t) for t in gate_types],
        plan=plan,
    )
