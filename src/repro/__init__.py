"""repro — Bit-Parallel Test Pattern Generation for Path Delay Faults.

A production-quality reproduction of Henftling & Wittmann (DATE 1995):
bit-parallel processing at all stages of robust and nonrobust test
pattern generation for path delay faults, combining fault-parallel
(FPTPG) and alternative-parallel (APTPG) generation, together with
every substrate the paper's evaluation depends on — circuit model,
ISCAS .bench parsing, path enumeration/counting, multi-valued logics,
PPSFP delay fault simulation, an event-driven timing oracle, and
BDD-based / structural comparison baselines.

Quickstart::

    from repro import circuit, paths, core

    c = circuit.library.c17()
    faults = paths.all_faults(c)
    report = core.generate_tests(c, faults, paths.TestClass.ROBUST)
    print(report.summary())
"""

from . import campaign, circuit, core, logic, paths, sim
from .campaign import (
    CampaignOptions,
    CampaignReport,
    FaultUniverse,
    run_campaign,
)
from .circuit import Circuit, CircuitBuilder, GateType, load_bench, parse_bench
from .core import (
    FaultStatus,
    TestPattern,
    TpgOptions,
    TpgReport,
    generate_tests,
    generate_tests_single_bit,
)
from .paths import PathDelayFault, TestClass, Transition, all_faults, count_paths

__version__ = "1.1.0"

__all__ = [
    "CampaignOptions",
    "CampaignReport",
    "Circuit",
    "CircuitBuilder",
    "FaultStatus",
    "FaultUniverse",
    "GateType",
    "PathDelayFault",
    "TestClass",
    "TestPattern",
    "TpgOptions",
    "TpgReport",
    "Transition",
    "all_faults",
    "campaign",
    "circuit",
    "core",
    "count_paths",
    "generate_tests",
    "generate_tests_single_bit",
    "run_campaign",
    "load_bench",
    "logic",
    "parse_bench",
    "paths",
    "sim",
]
