"""repro — Bit-Parallel Test Pattern Generation for Path Delay Faults.

A production-quality reproduction of Henftling & Wittmann (DATE 1995):
bit-parallel processing at all stages of robust and nonrobust test
pattern generation for path delay faults, combining fault-parallel
(FPTPG) and alternative-parallel (APTPG) generation, together with
every substrate the paper's evaluation depends on — circuit model,
ISCAS .bench parsing, path enumeration/counting, multi-valued logics,
PPSFP delay fault simulation, an event-driven timing oracle, and
BDD-based / structural comparison baselines.

Quickstart — the front door is :class:`repro.api.AtpgSession`::

    from repro.api import AtpgSession, Options

    session = AtpgSession.open("c17")          # one circuit, compiled once
    report = session.generate(test_class="robust")
    print(report.summary())

    # same session, other workloads:
    campaign = session.campaign(workers=2, window=4096)
    coverage = session.grade(report.patterns, faults=[...])
    stats = session.paths(histogram=True)

Every artifact (faults, patterns, circuits, reports, checkpoints)
round-trips through one versioned JSON wire format
(:mod:`repro.api.serde` / :mod:`repro.api.schemas`), and the same
session layer runs behind the ``tip serve`` HTTP endpoint
(:mod:`repro.api.service`).

Deprecation story: the pre-1.2 entry points still work unchanged —
``generate_tests(c, faults, TpgOptions(...))`` and
``run_campaign(..., CampaignOptions(...))`` produce bit-identical
results — but they are shims now.  ``TpgOptions`` is the generation
layer of the unified :class:`repro.api.Options` hierarchy,
``CampaignOptions`` is an alias of the full model, and all four names
emit ``DeprecationWarning`` pointing at the session API.
"""

#: The public surface: this list is the single source of truth — every
#: name here is importable from ``repro`` and nothing else is public.
#: Deprecated names (``TpgOptions``, ``CampaignOptions``,
#: ``generate_tests``, ``run_campaign``, ``generate_tests_single_bit``)
#: stay listed for compatibility; they warn on use.
__all__ = [
    # the front door
    "api",
    "AtpgService",
    "AtpgSession",
    "Options",
    # substrates
    "campaign",
    "circuit",
    "core",
    "logic",
    "paths",
    "sim",
    # core model types
    "Circuit",
    "CircuitBuilder",
    "FaultStatus",
    "FaultUniverse",
    "GateType",
    "PathDelayFault",
    "TestClass",
    "TestPattern",
    "TpgReport",
    "Transition",
    "CampaignReport",
    # functional entry points
    "all_faults",
    "count_paths",
    "load_bench",
    "parse_bench",
    # deprecated (warn on use; kept for compatibility)
    "CampaignOptions",
    "TpgOptions",
    "generate_tests",
    "generate_tests_single_bit",
    "run_campaign",
]

from . import api, campaign, circuit, core, logic, paths, sim
from .api import AtpgService, AtpgSession, Options
from .campaign import (
    CampaignOptions,
    CampaignReport,
    FaultUniverse,
    run_campaign,
)
from .circuit import Circuit, CircuitBuilder, GateType, load_bench, parse_bench
from .core import (
    FaultStatus,
    TestPattern,
    TpgOptions,
    TpgReport,
    generate_tests,
    generate_tests_single_bit,
)
from .paths import PathDelayFault, TestClass, Transition, all_faults, count_paths

__version__ = "1.7.0"

# __all__ is authoritative: fail fast (at import time, i.e. in every
# test run) if it ever drifts from what the module actually binds.
_missing = [name for name in __all__ if name not in globals()]
if _missing:
    raise ImportError(f"repro.__all__ names not bound: {_missing}")
del _missing
