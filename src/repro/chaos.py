"""Deterministic fault injection — seeded failure-point schedules.

Resilience code is only trustworthy if its failure paths run in CI,
and failure paths only run in CI if the failures are *deterministic*:
no sleeps racing wall clocks, no "kill a random worker and hope".
This module provides that determinism.  A :class:`ChaosController`
holds a schedule of named failure **sites**, each with an explicit
list of occurrence indices at which it fires.  Every instrumented code
path asks the controller "should occurrence *k* of site *s* fail?" —
the k-th query of a site gets the same answer on every run, regardless
of thread or process timing.

Sites instrumented across the project:

``shard_crash`` / ``shard_hang`` / ``shard_error``
    queried *in the campaign scheduler's submitting process*, once per
    shard submission (retries are new submissions, so an ``at`` index
    denotes the n-th submission attempt overall).  The decision
    travels to the worker with the shard payload; the worker then
    dies (``os._exit``), sleeps past the shard deadline, or raises.
``torn_checkpoint``
    queried per rotated-JSON write (:mod:`repro.api.integrity`); a
    firing write leaves a truncated primary file on disk — exactly
    the corruption the checksum + ``.prev`` fallback must absorb.
``kernel_fault``
    queried at the top of every
    :meth:`repro.sim.delay_sim.DelayFaultSimulator.detection_masks`
    call; a firing call raises before touching the kernel, exercising
    the session circuit-breaker's native→numpy→interp demotion.
``job_worker_death``
    queried by each service job-worker thread right after it claims a
    job; a firing claim kills the thread with the job still marked
    ``running``, exercising thread resurrection + job re-queue.

A schedule is a JSON object (or dict)::

    {"seed": 1701, "points": [{"site": "shard_error", "at": [0, 2]}]}

``seed`` is recorded for provenance (the schedule itself is explicit,
not sampled) and seeds any derived jitter a consumer wants.  Install a
controller programmatically (:func:`install`), via ``Options.chaos``
(the campaign runner installs it), or through the ``REPRO_CHAOS``
environment variable (read once, lazily — the path by which
``tip serve`` and forked pool workers inherit a schedule).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Dict, List, Optional, Union

#: Environment variable holding a JSON chaos spec; read lazily on the
#: first query when no controller was installed programmatically.
ENV_VAR = "REPRO_CHAOS"

#: Every site an instrumented code path may query — unknown sites in a
#: spec are rejected up front (a typo would otherwise never fire).
SITES = (
    "shard_crash",
    "shard_hang",
    "shard_error",
    "torn_checkpoint",
    "kernel_fault",
    "job_worker_death",
)

#: The shard-level sites, queried together per shard submission (one
#: shared occurrence counter, so ``at`` indices denote submissions).
SHARD_SITES = ("shard_crash", "shard_hang", "shard_error")


class ChaosError(RuntimeError):
    """The exception every injected (non-crash) fault raises."""


class ChaosController:
    """One deterministic failure schedule plus its occurrence counters.

    Thread-safe: counters are guarded, so concurrent request threads
    observe one global occurrence order per site (the order of their
    queries — which the *tests* make deterministic by construction:
    bounded workers, explicit polling).
    """

    def __init__(self, spec: Union[str, Dict, None] = None):
        if isinstance(spec, str):
            spec = json.loads(spec)
        spec = spec or {}
        self.seed = int(spec.get("seed", 0))
        self._at: Dict[str, frozenset] = {}
        for point in spec.get("points", ()):
            site = point["site"]
            if site not in SITES:
                raise ValueError(
                    f"unknown chaos site {site!r} (known: {SITES})"
                )
            indices = frozenset(int(k) for k in point.get("at", ()))
            self._at[site] = self._at.get(site, frozenset()) | indices
        self._counts: Dict[str, int] = {}
        self._fired: List[Dict[str, object]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------ queries
    def should_fire(self, site: str) -> bool:
        """Consume one occurrence of *site*; True iff it is scheduled."""
        with self._lock:
            index = self._counts.get(site, 0)
            self._counts[site] = index + 1
            fired = index in self._at.get(site, ())
            if fired:
                self._fired.append({"site": site, "occurrence": index})
            return fired

    def shard_action(self) -> Optional[str]:
        """The injected action for the next shard submission, if any.

        All three shard sites share one occurrence counter (the
        submission sequence number); the first scheduled site wins
        when several target the same submission.
        """
        with self._lock:
            index = self._counts.get("shard", 0)
            self._counts["shard"] = index + 1
            for site in SHARD_SITES:
                if index in self._at.get(site, ()):
                    self._fired.append({"site": site, "occurrence": index})
                    return site
            return None

    def fired(self) -> List[Dict[str, object]]:
        """The injection log so far (site + occurrence, in order)."""
        with self._lock:
            return list(self._fired)

    def spec(self) -> Dict[str, object]:
        """The schedule in wire form (re-installable)."""
        return {
            "seed": self.seed,
            "points": [
                {"site": site, "at": sorted(at)}
                for site, at in sorted(self._at.items())
            ],
        }


# ---------------------------------------------------------------------------
# the process-wide controller (inherited by forked pool workers)
# ---------------------------------------------------------------------------

_CONTROLLER: Optional[ChaosController] = None
_ENV_CHECKED = False
_INSTALL_LOCK = threading.Lock()


def install(spec: Union[str, Dict, None]) -> Optional[ChaosController]:
    """Install a process-wide controller (``None`` clears it)."""
    global _CONTROLLER, _ENV_CHECKED
    with _INSTALL_LOCK:
        _CONTROLLER = ChaosController(spec) if spec is not None else None
        _ENV_CHECKED = True  # an explicit install overrides the env
        return _CONTROLLER


def uninstall() -> None:
    """Clear the controller and re-arm the lazy ``REPRO_CHAOS`` read."""
    global _CONTROLLER, _ENV_CHECKED
    with _INSTALL_LOCK:
        _CONTROLLER = None
        _ENV_CHECKED = False


def get_controller() -> Optional[ChaosController]:
    """The installed controller, lazily seeded from ``REPRO_CHAOS``."""
    global _CONTROLLER, _ENV_CHECKED
    if _CONTROLLER is None and not _ENV_CHECKED:
        with _INSTALL_LOCK:
            if _CONTROLLER is None and not _ENV_CHECKED:
                spec = os.environ.get(ENV_VAR)
                if spec:
                    _CONTROLLER = ChaosController(spec)
                _ENV_CHECKED = True
    return _CONTROLLER


def should_fire(site: str) -> bool:
    """Convenience: query the process controller (False when none)."""
    controller = get_controller()
    return controller is not None and controller.should_fire(site)


def maybe_raise(site: str) -> None:
    """Raise :class:`ChaosError` iff this occurrence is scheduled."""
    if should_fire(site):
        raise ChaosError(f"chaos: injected fault at site {site!r}")


def shard_action() -> Optional[str]:
    """The injected action for the next shard submission (or None)."""
    controller = get_controller()
    return None if controller is None else controller.shard_action()
