"""Multi-valued bit-plane logics and word helpers.

* :mod:`repro.logic.three_valued` — the nonrobust {0, 1, X} logic of
  the paper's Table 1 (two planes per signal).
* :mod:`repro.logic.seven_valued` — the robust Lin & Reddy logic of
  the paper's Table 2 (four planes per signal).
* :mod:`repro.logic.ten_valued` — the DYNAMITE 10-valued logic the
  paper names as future work (optional extension).
* :mod:`repro.logic.words` — machine-word utilities (lane masks,
  APTPG split partitions, ...).
"""

from . import seven_valued, ten_valued, three_valued, words
from .words import (
    DEFAULT_WORD_LENGTH,
    broadcast,
    get_lane,
    iter_set_lanes,
    lane_bit,
    lowest_set_lane,
    mask_for,
    max_split_decisions,
    popcount,
    split_masks,
)

__all__ = [
    "DEFAULT_WORD_LENGTH",
    "broadcast",
    "get_lane",
    "iter_set_lanes",
    "lane_bit",
    "lowest_set_lane",
    "mask_for",
    "max_split_decisions",
    "popcount",
    "seven_valued",
    "ten_valued",
    "split_masks",
    "three_valued",
    "words",
]
