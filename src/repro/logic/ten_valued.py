"""A ten-valued hazard-aware logic (the paper's second future-work item).

The paper notes: "up to now we use the suboptimal seven valued logic
[5] instead of a ten valued logic [6] for generating robust tests" —
[6] being DYNAMITE's refined value system.  The refinement adds
*hazard-freedom*: knowing that a signal makes at most its one
init-to-final change (no spurious pulses) regardless of gate delays.

This module extends the Table-2 planes with a fifth **hazard-free**
bit-plane.  The consistent states (named after the DYNAMITE
convention) are:

==========  =====  =====  ======  ========  ===========
value       0-bit  1-bit  stable  instable  hazard-free
==========  =====  =====  ======  ========  ===========
S0            1      0      1        0          1
S1            0      1      1        0          1
HF (clean     1      0      0        1          1
   fall)
HR (clean     0      1      0        1          1
   rise)
F (fall,      1      0      0        1          0
   hazards
   possible)
R (rise)      0      1      0        1          0
U0            1      0      0        0          0
U1            0      1      0        0          0
X             0      0      0        0          0
M0/M1         1/0    0/1    0        0          1
==========  =====  =====  ======  ========  ===========

(M0/M1 — *monotone*, final value known, at most one change, initial
value unknown — arise from evaluation; together with a conflict
marker this is the ten-valued system's information content.)

Soundness of the hazard-free plane follows the monotone-signal
argument: AND/OR over signals that all move in the same direction
(non-decreasing or non-increasing) cannot glitch; a stable controlling
input freezes the output entirely; an XOR is hazard-free only when at
most one input changes and cleanly so.  The test-suite validates every
claim against enumerated waveforms, as for the 7-valued logic.

The primary consumer is detection-strength classification
(:func:`repro.sim.delay_sim.detection_strength`): a *hazard-free
robust* detection is one whose side inputs are provably glitchless —
the strongest test class, contained in robust, contained in
nonrobust.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuit import GateType
from . import seven_valued

N_PLANES = 5

Planes = Tuple[int, int, int, int, int]

X: Planes = (0, 0, 0, 0, 0)

VALUES = {
    "S0": (1, 0, 1, 0, 1),
    "S1": (0, 1, 1, 0, 1),
    "HF": (1, 0, 0, 1, 1),
    "HR": (0, 1, 0, 1, 1),
    "F": (1, 0, 0, 1, 0),
    "R": (0, 1, 0, 1, 0),
    "M0": (1, 0, 0, 0, 1),
    "M1": (0, 1, 0, 0, 1),
    "U0": (1, 0, 0, 0, 0),
    "U1": (0, 1, 0, 0, 0),
    "X": (0, 0, 0, 0, 0),
}

_NAMES = {v: k for k, v in VALUES.items()}


def encode(name: str) -> Planes:
    try:
        return VALUES[name]
    except KeyError:
        raise ValueError(f"unknown 10-valued name {name!r}") from None


def encode_word(name: str, lanes: int) -> Planes:
    pattern = encode(name)
    return tuple(lanes if bit else 0 for bit in pattern)  # type: ignore[return-value]


def decode_lane(planes: Planes, lane: int) -> str:
    bits = tuple((p >> lane) & 1 for p in planes)
    if (bits[0] and bits[1]) or (bits[2] and bits[3]):
        return "C"
    if bits[2] and not bits[4]:
        return "C"  # stable implies hazard-free
    return _NAMES.get(bits, "C")


def conflict(planes: Planes) -> int:
    """Illegal lane assignments (inconsistent plane combinations)."""
    z, o, s, i, h = planes
    return (z & o) | (s & i) | (s & ~h)


def known(planes: Planes) -> int:
    return planes[0] | planes[1] | planes[2] | planes[3] | planes[4]


def merge(a: Planes, b: Planes) -> Planes:
    return tuple(x | y for x, y in zip(a, b))  # type: ignore[return-value]


def from_seven(planes7, stable_is_hazard_free: bool = True) -> Planes:
    """Lift 7-valued planes: stable lanes are hazard-free by meaning."""
    z, o, s, i = planes7
    return (z, o, s, i, s if stable_is_hazard_free else 0)


def to_seven(planes: Planes):
    """Drop the hazard plane (a sound weakening)."""
    z, o, s, i, _h = planes
    return (z, o, s, i)


# ---------------------------------------------------------------------------
# forward evaluation
# ---------------------------------------------------------------------------


def _directions(p: Planes) -> Tuple[int, int]:
    """(non-decreasing, non-increasing) lane masks of a signal.

    Stable signals are both; hazard-free risers are non-decreasing,
    hazard-free fallers non-increasing; monotone-unknown-init signals
    move at most once toward their final value.
    """
    z, o, s, i, h = p
    non_decreasing = h & (s | o)
    non_increasing = h & (s | z)
    return non_decreasing, non_increasing


def _and_hazard_free(inputs: Sequence[Planes], mask: int) -> int:
    stable_zero = 0
    all_nd = mask
    all_ni = mask
    for p in inputs:
        z, o, s, i, h = p
        stable_zero |= z & s
        nd, ni = _directions(p)
        all_nd &= nd
        all_ni &= ni
    return stable_zero | all_nd | all_ni


def _or_hazard_free(inputs: Sequence[Planes], mask: int) -> int:
    stable_one = 0
    all_nd = mask
    all_ni = mask
    for p in inputs:
        z, o, s, i, h = p
        stable_one |= o & s
        nd, ni = _directions(p)
        all_nd &= nd
        all_ni &= ni
    return stable_one | all_nd | all_ni


def _xor_hazard_free(inputs: Sequence[Planes], mask: int) -> int:
    """Hazard-free iff at most one input changes, and cleanly."""
    n = len(inputs)
    stable_pre = [mask] * (n + 1)
    for k, p in enumerate(inputs):
        stable_pre[k + 1] = stable_pre[k] & p[2]
    stable_suf = [mask] * (n + 1)
    for k in range(n - 1, -1, -1):
        stable_suf[k] = stable_suf[k + 1] & inputs[k][2]
    result = stable_pre[n]  # all stable
    for k, p in enumerate(inputs):
        others_stable = stable_pre[k] & stable_suf[k + 1]
        result |= others_stable & p[4]
    return result


def forward(gate_type: GateType, inputs: Sequence[Planes], mask: int) -> Planes:
    """Implied output planes; the first four planes follow the
    7-valued rules exactly, the fifth adds hazard-freedom."""
    seven = seven_valued.forward(
        gate_type, [to_seven(p) for p in inputs], mask
    )
    if gate_type is GateType.BUF:
        h = inputs[0][4]
    elif gate_type is GateType.NOT:
        h = inputs[0][4]
    elif gate_type in (GateType.AND, GateType.NAND):
        h = _and_hazard_free(inputs, mask)
    elif gate_type in (GateType.OR, GateType.NOR):
        h = _or_hazard_free(inputs, mask)
    elif gate_type in (GateType.XOR, GateType.XNOR):
        h = _xor_hazard_free(inputs, mask)
    else:  # pragma: no cover - closed enum
        raise ValueError(f"cannot evaluate gate type {gate_type}")
    z, o, s, i = seven
    # stability proven by the 7-valued rules implies hazard-freedom
    return (z, o, s, i, h | s)


# ---------------------------------------------------------------------------
# slab-form forward evaluation (vectorized over gate groups)
# ---------------------------------------------------------------------------
#
# The fused numpy execution strategy (:mod:`repro.kernel.fusion`)
# evaluates a whole group of same-type gates at once; each of the five
# planes arrives as a ``(n_gates, arity, n_words)`` uint64 slab.  The
# value/stability planes reuse the slab rules of
# :mod:`repro.logic.seven_valued`; the rules below add the hazard-free
# plane, expressed with ``np.bitwise_*.reduce`` instead of the Python
# folds of ``_and_hazard_free``/``_or_hazard_free``/
# ``_xor_hazard_free`` above — the test suite asserts bit-identity.


def _direction_slabs(z, o, s, h):
    """(non-decreasing, non-increasing) slabs — ``_directions`` per gate."""
    return h & (s | o), h & (s | z)


def and_forward_slab10(z, o, s, i, h):
    """AND-group forward over 5-plane slabs; reduce along ``axis=-2``.

    Returns the (zero, one, stable, instable, hazard-free) output
    planes, one row per gate in the group.  Callers handle inversion
    (NAND) by swapping the first two returned planes — the hazard
    plane is inversion-invariant.
    """
    import numpy as np

    zs, os_, ss, is_ = seven_valued.and_forward_slab(z, o, s, i)
    nd, ni = _direction_slabs(z, o, s, h)
    hf = (
        np.bitwise_or.reduce(z & s, axis=-2)
        | np.bitwise_and.reduce(nd, axis=-2)
        | np.bitwise_and.reduce(ni, axis=-2)
    )
    return zs, os_, ss, is_, hf | ss


def or_forward_slab10(z, o, s, i, h):
    """OR-group forward over 5-plane slabs (dual of the AND rule)."""
    import numpy as np

    zs, os_, ss, is_ = seven_valued.or_forward_slab(z, o, s, i)
    nd, ni = _direction_slabs(z, o, s, h)
    hf = (
        np.bitwise_or.reduce(o & s, axis=-2)
        | np.bitwise_and.reduce(nd, axis=-2)
        | np.bitwise_and.reduce(ni, axis=-2)
    )
    return zs, os_, ss, is_, hf | ss


def xor_forward_slab10(z, o, s, i, h):
    """XOR-group forward over 5-plane slabs.

    The hazard plane mirrors ``_xor_hazard_free``: hazard-free iff all
    inputs are stable, or exactly the one changing input changes
    cleanly — prefix/suffix stable products along the arity axis, one
    vectorized pass per fanin position.
    """
    import numpy as np

    zs, os_, ss, is_ = seven_valued.xor_forward_slab(z, o, s, i)
    n = z.shape[-2]
    full = np.bitwise_not(np.zeros_like(z[..., 0, :]))
    stable_pre = [full]
    for k in range(n):
        stable_pre.append(stable_pre[k] & s[..., k, :])
    stable_suf = [full] * (n + 1)
    for k in range(n - 1, -1, -1):
        stable_suf[k] = stable_suf[k + 1] & s[..., k, :]
    hf = stable_pre[n]
    for k in range(n):
        hf = hf | (stable_pre[k] & stable_suf[k + 1] & h[..., k, :])
    return zs, os_, ss, is_, hf | ss


def unjustified_planes(
    gate_type: GateType, output: Planes, inputs: Sequence[Planes], mask: int
) -> Planes:
    f = forward(gate_type, inputs, mask)
    return tuple((have & ~implied) & mask for have, implied in zip(output, f))  # type: ignore[return-value]


def unjustified(
    gate_type: GateType, output: Planes, inputs: Sequence[Planes], mask: int
) -> int:
    miss = 0
    for plane in unjustified_planes(gate_type, output, inputs, mask):
        miss |= plane
    return miss & mask


def backward(
    gate_type: GateType, output: Planes, inputs: Sequence[Planes], mask: int
) -> List[Planes]:
    """Unique backward implications.

    The value/stability planes reuse the 7-valued rules; the hazard
    plane adds one sound rule: a hazard-free *required* output of a
    single-input gate requires a hazard-free input.
    """
    seven_adds = seven_valued.backward(
        gate_type, to_seven(output), [to_seven(p) for p in inputs], mask
    )
    additions: List[Planes] = []
    for k, add in enumerate(seven_adds):
        h_add = 0
        if gate_type in (GateType.BUF, GateType.NOT):
            h_add = output[4]
        additions.append((*add, h_add))
    return additions
