"""The 3-valued bit-plane logic for nonrobust TPG (paper Table 1).

Each signal holds ``L`` logic values from {0, 1, X} in two bit-planes:

============  =====  =====
logic value   0-bit  1-bit
============  =====  =====
0               1      0
1               0      1
X               0      0
conflict (C)    1      1
============  =====  =====

The plane pair ``(1, 1)`` is not a value: it flags a per-lane
*conflict*, exactly as the paper's Table 1 specifies.  All operations
below are single bitwise expressions over the planes, so they process
all ``L`` lanes simultaneously ("bit-parallel implications").

The module provides the three primitives the implication engine needs:

* :func:`forward` — implied output planes of a gate from its inputs,
* :func:`backward` — unique backward implications (bits to add to each
  input given the output requirement),
* :func:`justified` implicitly via ``forward`` (a lane is justified
  when every assigned output bit is reproduced by ``forward``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuit import GateType

#: Number of bit-planes per signal.
N_PLANES = 2

Planes = Tuple[int, int]

#: The unassigned value (every lane X).
X: Planes = (0, 0)


def encode(value: int) -> Planes:
    """Plane pattern (single lane) for logic *value* 0 or 1."""
    if value == 0:
        return (1, 0)
    if value == 1:
        return (0, 1)
    raise ValueError(f"logic value must be 0 or 1, got {value!r}")


def encode_word(value: int, lanes: int) -> Planes:
    """Plane pattern with *value* in the given lane mask."""
    if value == 0:
        return (lanes, 0)
    if value == 1:
        return (0, lanes)
    raise ValueError(f"logic value must be 0 or 1, got {value!r}")


def decode_lane(planes: Planes, lane: int) -> str:
    """The value letter ('0', '1', 'X' or 'C') of one lane."""
    b0 = (planes[0] >> lane) & 1
    b1 = (planes[1] >> lane) & 1
    return ("X", "1", "0", "C")[b0 * 2 + b1]


def conflict(planes: Planes) -> int:
    """Lane mask where the planes encode the illegal (1, 1) pattern."""
    return planes[0] & planes[1]


def known(planes: Planes) -> int:
    """Lane mask where a value (0 or 1, or conflict) is assigned."""
    return planes[0] | planes[1]


def merge(a: Planes, b: Planes) -> Planes:
    """Union of two assignments (may create conflicts — by design)."""
    return (a[0] | b[0], a[1] | b[1])


# ---------------------------------------------------------------------------
# forward evaluation
# ---------------------------------------------------------------------------


def forward(gate_type: GateType, inputs: Sequence[Planes], mask: int) -> Planes:
    """Implied output planes of *gate_type* over *inputs*, all lanes.

    The rules are the natural 3-valued gate semantics expressed on the
    planes (AND: output 1 iff all inputs 1, output 0 iff any input 0;
    OR dual; XOR defined where both operands are known).  Conflicted
    input lanes may produce arbitrary bits — conflicts are tracked per
    signal by the engine, and conflicted lanes are dead anyway.
    """
    if gate_type is GateType.BUF:
        (a,) = inputs
        return a
    if gate_type is GateType.NOT:
        (a,) = inputs
        return (a[1], a[0])
    if gate_type in (GateType.AND, GateType.NAND):
        ones = mask
        zeros = 0
        for a0, a1 in inputs:
            ones &= a1
            zeros |= a0
        if gate_type is GateType.NAND:
            return (ones, zeros)
        return (zeros, ones)
    if gate_type in (GateType.OR, GateType.NOR):
        ones = 0
        zeros = mask
        for a0, a1 in inputs:
            ones |= a1
            zeros &= a0
        if gate_type is GateType.NOR:
            return (ones, zeros)
        return (zeros, ones)
    if gate_type in (GateType.XOR, GateType.XNOR):
        z, o = inputs[0]
        for b0, b1 in inputs[1:]:
            z, o = (z & b0) | (o & b1), (z & b1) | (o & b0)
        if gate_type is GateType.XNOR:
            return (o, z)
        return (z, o)
    raise ValueError(f"cannot evaluate gate type {gate_type}")


def unjustified_planes(
    gate_type: GateType, output: Planes, inputs: Sequence[Planes], mask: int
) -> Planes:
    """Per-plane lane masks of assigned output bits not implied by inputs."""
    f0, f1 = forward(gate_type, inputs, mask)
    return ((output[0] & ~f0) & mask, (output[1] & ~f1) & mask)


def unjustified(gate_type: GateType, output: Planes, inputs: Sequence[Planes], mask: int) -> int:
    """Lanes where the assigned output value is not implied by the inputs.

    A lane is *justified* when every bit assigned to the output is
    reproduced by :func:`forward` over the current input planes.  The
    paper's FPTPG loop runs "as long as there is at least one logic
    value that is not justified".
    """
    miss0, miss1 = unjustified_planes(gate_type, output, inputs, mask)
    return miss0 | miss1


# ---------------------------------------------------------------------------
# backward implication
# ---------------------------------------------------------------------------


def _and_like_backward(
    out0: int, out1: int, inputs: Sequence[Planes], mask: int
) -> List[Planes]:
    """Backward rules of an AND gate with output planes (out0, out1).

    * output 1  -> every input 1,
    * output 0 with all other inputs known 1 -> this input 0
      (the classic unique implication, lane-parallel via prefix and
      suffix products of the 1-planes).
    """
    n = len(inputs)
    additions: List[Planes] = []
    if n == 1:  # degenerate, should not occur for AND but be safe
        return [(out0, out1)]
    prefix = [mask] * (n + 1)
    for i, (_, a1) in enumerate(inputs):
        prefix[i + 1] = prefix[i] & a1
    suffix = [mask] * (n + 1)
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] & inputs[i][1]
    for i in range(n):
        others_one = prefix[i] & suffix[i + 1]
        additions.append((out0 & others_one, out1))
    return additions


def _xor_like_backward(
    out0: int, out1: int, inputs: Sequence[Planes], mask: int
) -> List[Planes]:
    """Backward rules of an XOR gate: all-but-one known fixes the last.

    In lanes where the output and all inputs except input *i* are
    known, input *i* must equal the XOR of the output with the other
    inputs' parity.
    """
    n = len(inputs)
    if n == 1:
        return [(out0, out1)]
    known_pre = [mask] * (n + 1)
    par_pre = [0] * (n + 1)
    for i, (a0, a1) in enumerate(inputs):
        known_pre[i + 1] = known_pre[i] & (a0 | a1)
        par_pre[i + 1] = par_pre[i] ^ a1
    known_suf = [mask] * (n + 1)
    par_suf = [0] * (n + 1)
    for i in range(n - 1, -1, -1):
        a0, a1 = inputs[i]
        known_suf[i] = known_suf[i + 1] & (a0 | a1)
        par_suf[i] = par_suf[i + 1] ^ a1
    additions: List[Planes] = []
    out_known = out0 | out1
    for i in range(n):
        others_known = known_pre[i] & known_suf[i + 1]
        parity = par_pre[i] ^ par_suf[i + 1]  # parity of the other inputs
        active = others_known & out_known
        implied_one = ((out1 & ~parity) | (out0 & parity)) & active
        implied_zero = ((out1 & parity) | (out0 & ~parity)) & active
        additions.append((implied_zero, implied_one))
    return additions


def backward(
    gate_type: GateType, output: Planes, inputs: Sequence[Planes], mask: int
) -> List[Planes]:
    """Bits each input must additionally take, given the output planes.

    Returns one ``Planes`` of additions per input; the engine ORs them
    in and re-queues inputs that changed.  The rules are the *unique*
    (mandatory) implications only — optional choices are left to the
    backtrace/decision machinery, exactly as in a PODEM-style
    generator.
    """
    out0, out1 = output
    if gate_type is GateType.BUF:
        return [(out0, out1)]
    if gate_type is GateType.NOT:
        return [(out1, out0)]
    if gate_type is GateType.AND:
        return _and_like_backward(out0, out1, inputs, mask)
    if gate_type is GateType.NAND:
        return _and_like_backward(out1, out0, inputs, mask)
    if gate_type is GateType.OR:
        swapped = [(a1, a0) for a0, a1 in inputs]
        flipped = _and_like_backward(out1, out0, swapped, mask)
        return [(add1, add0) for add0, add1 in flipped]
    if gate_type is GateType.NOR:
        swapped = [(a1, a0) for a0, a1 in inputs]
        flipped = _and_like_backward(out0, out1, swapped, mask)
        return [(add1, add0) for add0, add1 in flipped]
    if gate_type is GateType.XOR:
        return _xor_like_backward(out0, out1, inputs, mask)
    if gate_type is GateType.XNOR:
        return _xor_like_backward(out1, out0, inputs, mask)
    raise ValueError(f"cannot imply through gate type {gate_type}")
