"""Machine-word helpers for bit-parallel processing.

The paper stores ``L`` logic values in the ``L`` bit lanes of a
machine word (L = 32 on the DEC 5000/200, 64 on the DECstation
3000/500).  Python integers are arbitrary precision, so ``L`` is a
parameter here — a single bitwise expression processes all lanes at
once regardless of ``L``, which is exactly the effect the paper gets
from hardware words.
"""

from __future__ import annotations

from typing import Iterator, List

#: The paper's default machine word length (DECstation 3000/500).
DEFAULT_WORD_LENGTH = 64


def mask_for(width: int) -> int:
    """The all-lanes mask ``(1 << width) - 1``."""
    if width < 1:
        raise ValueError("word length must be >= 1")
    return (1 << width) - 1


def lane_bit(lane: int) -> int:
    """The single-bit word selecting *lane*."""
    if lane < 0:
        raise ValueError("lane must be >= 0")
    return 1 << lane


def broadcast(bit: int, width: int) -> int:
    """All-lanes word of *bit* (0 -> 0, 1 -> mask)."""
    return mask_for(width) if bit else 0


def get_lane(word: int, lane: int) -> int:
    """The bit of *word* in *lane*."""
    return (word >> lane) & 1


def popcount(word: int) -> int:
    """Number of set lanes.

    Lane words are non-negative by construction (every producer masks
    with :func:`mask_for`); a negative word has no well-defined lane
    count in two's complement of unbounded width, so it is rejected
    rather than silently miscounted.
    """
    if word < 0:
        raise ValueError("popcount requires a non-negative lane word")
    return word.bit_count()


def iter_set_lanes(word: int) -> Iterator[int]:
    """Yield the indices of set lanes, ascending."""
    lane = 0
    while word:
        if word & 1:
            yield lane
        word >>= 1
        lane += 1


def lowest_set_lane(word: int) -> int:
    """Index of the lowest set lane; raises on zero."""
    if word == 0:
        raise ValueError("word has no set lanes")
    return (word & -word).bit_length() - 1


def extract_lanes(word: int, offset: int, width: int) -> int:
    """The *width* lanes of *word* starting at *offset*, re-based to lane 0.

    The demultiplexing primitive of request coalescing: when several
    pattern batches share one merged lane slab, each tenant's detection
    mask is the slice of the merged mask at its lane offset.  Inverse
    of placing a ``width``-lane word at ``offset`` (``word << offset``).
    """
    if offset < 0:
        raise ValueError("offset must be >= 0")
    return (word >> offset) & mask_for(width)


def split_masks(width: int) -> List[tuple]:
    """Per-decision lane partitions for APTPG lane splitting.

    For decision ``k`` (0-based), returns ``(zeros, ones)`` where lane
    ``i`` belongs to *ones* iff bit ``k`` of ``i`` is set.  With
    ``log2(width)`` decisions the partitions enumerate every value
    combination across lanes — the paper's "we can consider all
    possible value assignments at log2(L) primary inputs".
    """
    mask = mask_for(width)
    result = []
    k = 0
    while (1 << k) < width:
        ones = 0
        for lane in range(width):
            if (lane >> k) & 1:
                ones |= 1 << lane
        result.append(((~ones) & mask, ones))
        k += 1
    return result


def max_split_decisions(width: int) -> int:
    """How many binary decisions lane splitting can absorb: floor(log2 L)."""
    count = 0
    while (1 << (count + 1)) <= width:
        count += 1
    return count
