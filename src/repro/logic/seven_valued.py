"""The 7-valued bit-plane logic for robust TPG (paper Table 2).

Robust tests must reason about signal *stability* across the two test
vectors, not only final values.  Following Lin & Reddy (the logic the
paper uses), every signal takes one of seven values, encoded in four
bit-planes per the paper's Table 2:

==============  =====  =====  ==========  ============
logic value     0-bit  1-bit  stable-bit  instable-bit
==============  =====  =====  ==========  ============
0s (stable 0)     1      0        1            0
1s (stable 1)     0      1        1            0
0i (falling)      1      0        0            1
1i (rising)       0      1        0            1
0x (final 0)      1      0        0            0
1x (final 1)      0      1        0            0
X                 0      0        0            0
==============  =====  =====  ==========  ============

Semantics over the two-vector test (V1 then V2):

* the 0/1 planes give the settled **final** value (under V2),
* the **stable** bit asserts the signal provably holds its final value
  throughout the test, with no hazard, for *every* delay assignment,
* the **instable** bit asserts the signal provably changes (its
  settled initial value under V1 differs from the final value).

``0-bit & 1-bit`` or ``stable & instable`` in a lane is a conflict.

The forward rules form a conservative hazard calculus: e.g. an AND
output is stable-0 iff some input is stable-0, stable-1 iff all inputs
are stable-1; an XOR output is only stable when all its inputs are
(two opposite transitions through an XOR can glitch even though the
initial and final values agree).  Initial values are derived per lane:
``init1 = (1-bit & stable) | (0-bit & instable)``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..circuit import GateType

#: Number of bit-planes per signal: (zero, one, stable, instable).
N_PLANES = 4

Planes = Tuple[int, int, int, int]

#: The unassigned value (every lane X).
X: Planes = (0, 0, 0, 0)

#: Named single-lane encodings, keyed as in the paper's Table 2.
VALUES = {
    "S0": (1, 0, 1, 0),
    "S1": (0, 1, 1, 0),
    "F": (1, 0, 0, 1),  # 0 with a transition: falling
    "R": (0, 1, 0, 1),  # 1 with a transition: rising
    "U0": (1, 0, 0, 0),  # final 0, history unknown
    "U1": (0, 1, 0, 0),  # final 1, history unknown
    "X": (0, 0, 0, 0),
}

_NAMES = {v: k for k, v in VALUES.items()}


def encode(name: str) -> Planes:
    """Single-lane plane pattern of the named value (see :data:`VALUES`)."""
    try:
        return VALUES[name]
    except KeyError:
        raise ValueError(f"unknown 7-valued name {name!r}") from None


def encode_word(name: str, lanes: int) -> Planes:
    """Plane pattern with the named value in the given lane mask."""
    pattern = encode(name)
    return tuple(lanes if bit else 0 for bit in pattern)  # type: ignore[return-value]


def decode_lane(planes: Planes, lane: int) -> str:
    """Name of the value in one lane ('S0', ..., 'X', or 'C' on conflict)."""
    bits = tuple((p >> lane) & 1 for p in planes)
    if (bits[0] and bits[1]) or (bits[2] and bits[3]):
        return "C"
    return _NAMES.get(bits, "C")


def conflict(planes: Planes) -> int:
    """Lane mask of illegal assignments (0&1 set, or stable&instable)."""
    return (planes[0] & planes[1]) | (planes[2] & planes[3])


def known(planes: Planes) -> int:
    """Lane mask where any information is assigned."""
    return planes[0] | planes[1] | planes[2] | planes[3]


def merge(a: Planes, b: Planes) -> Planes:
    """Union of two assignments (may create conflicts — by design)."""
    return (a[0] | b[0], a[1] | b[1], a[2] | b[2], a[3] | b[3])


def init_planes(p: Planes) -> Tuple[int, int]:
    """Derived (init0, init1) lane masks of the settled initial value."""
    z, o, s, i = p
    return (z & s) | (o & i), (o & s) | (z & i)


# ---------------------------------------------------------------------------
# forward evaluation
# ---------------------------------------------------------------------------


def _and_forward(inputs: Sequence[Planes], mask: int) -> Planes:
    ones = mask
    zeros = 0
    stable0 = 0
    stable1 = mask
    ii0 = 0
    ii1 = mask
    for p in inputs:
        z, o, s, _i = p
        ones &= o
        zeros |= z
        stable0 |= z & s
        stable1 &= o & s
        i0, i1 = init_planes(p)
        ii0 |= i0
        ii1 &= i1
    stable = stable0 | stable1
    instable = (ones & ii0) | (zeros & ii1)
    # stability and instability are mutually exclusive by construction
    # for consistent inputs; inconsistent lanes surface as conflicts.
    return (zeros, ones, stable, instable & ~stable)


def _or_forward(inputs: Sequence[Planes], mask: int) -> Planes:
    ones = 0
    zeros = mask
    stable0 = mask
    stable1 = 0
    ii0 = mask
    ii1 = 0
    for p in inputs:
        z, o, s, _i = p
        ones |= o
        zeros &= z
        stable0 &= z & s
        stable1 |= o & s
        i0, i1 = init_planes(p)
        ii0 &= i0
        ii1 |= i1
    stable = stable0 | stable1
    instable = (ones & ii0) | (zeros & ii1)
    return (zeros, ones, stable, instable & ~stable)


def _xor_pair(a: Planes, b: Planes) -> Planes:
    az, ao, asb, _ = a
    bz, bo, bsb, _ = b
    zeros = (az & bz) | (ao & bo)
    ones = (az & bo) | (ao & bz)
    stable = asb & bsb
    ai0, ai1 = init_planes(a)
    bi0, bi1 = init_planes(b)
    io0 = (ai0 & bi0) | (ai1 & bi1)
    io1 = (ai0 & bi1) | (ai1 & bi0)
    instable = ((ones & io0) | (zeros & io1)) & ~stable
    return (zeros, ones, stable, instable)


def _invert(p: Planes) -> Planes:
    return (p[1], p[0], p[2], p[3])


def forward(gate_type: GateType, inputs: Sequence[Planes], mask: int) -> Planes:
    """Implied output planes of *gate_type* over *inputs*, all lanes."""
    if gate_type is GateType.BUF:
        (a,) = inputs
        return a
    if gate_type is GateType.NOT:
        (a,) = inputs
        return _invert(a)
    if gate_type is GateType.AND:
        return _and_forward(inputs, mask)
    if gate_type is GateType.NAND:
        return _invert(_and_forward(inputs, mask))
    if gate_type is GateType.OR:
        return _or_forward(inputs, mask)
    if gate_type is GateType.NOR:
        return _invert(_or_forward(inputs, mask))
    if gate_type in (GateType.XOR, GateType.XNOR):
        acc = inputs[0]
        for b in inputs[1:]:
            acc = _xor_pair(acc, b)
        if gate_type is GateType.XNOR:
            return _invert(acc)
        return acc
    raise ValueError(f"cannot evaluate gate type {gate_type}")


# ---------------------------------------------------------------------------
# slab-form forward evaluation (vectorized over gate groups)
# ---------------------------------------------------------------------------
#
# The fused numpy execution strategy (:mod:`repro.kernel.fusion`)
# evaluates a whole group of same-type gates at once: each plane
# arrives as a ``(n_gates, arity, n_words)`` uint64 slab and the gate
# semantics reduce over the arity axis.  The rules below are the very
# same plane calculus as the scalar ``forward`` above, expressed with
# ``np.bitwise_*.reduce`` instead of Python folds — the test suite
# asserts bit-identity between the two.

def and_forward_slab(z, o, s, i):
    """AND-group forward over plane slabs; reduce along ``axis=-2``.

    Returns the (zero, one, stable, instable) output planes, one row
    per gate in the group.  Callers handle inversion (NAND) by
    swapping the first two returned planes.
    """
    import numpy as np

    ones = np.bitwise_and.reduce(o, axis=-2)
    zeros = np.bitwise_or.reduce(z, axis=-2)
    zs = z & s
    os_ = o & s
    stable = np.bitwise_or.reduce(zs, axis=-2) | np.bitwise_and.reduce(os_, axis=-2)
    ii0 = np.bitwise_or.reduce(zs | (o & i), axis=-2)
    ii1 = np.bitwise_and.reduce(os_ | (z & i), axis=-2)
    instable = ((ones & ii0) | (zeros & ii1)) & ~stable
    return zeros, ones, stable, instable


def or_forward_slab(z, o, s, i):
    """OR-group forward over plane slabs (dual of the AND rule)."""
    import numpy as np

    ones = np.bitwise_or.reduce(o, axis=-2)
    zeros = np.bitwise_and.reduce(z, axis=-2)
    zs = z & s
    os_ = o & s
    stable = np.bitwise_and.reduce(zs, axis=-2) | np.bitwise_or.reduce(os_, axis=-2)
    ii0 = np.bitwise_and.reduce(zs | (o & i), axis=-2)
    ii1 = np.bitwise_or.reduce(os_ | (z & i), axis=-2)
    instable = ((ones & ii0) | (zeros & ii1)) & ~stable
    return zeros, ones, stable, instable


def xor_forward_slab(z, o, s, i):
    """XOR-group forward over plane slabs: pairwise fold along arity.

    XOR has no reduce form (the instability rule couples initial
    values pairwise), so the fold mirrors ``_xor_pair`` — still one
    vectorized pass per fanin position, not per gate.
    """
    az, ao, asb, ai = z[..., 0, :], o[..., 0, :], s[..., 0, :], i[..., 0, :]
    for k in range(1, z.shape[-2]):
        bz, bo, bs, bi = z[..., k, :], o[..., k, :], s[..., k, :], i[..., k, :]
        ai0 = (az & asb) | (ao & ai)
        ai1 = (ao & asb) | (az & ai)
        bi0 = (bz & bs) | (bo & bi)
        bi1 = (bo & bs) | (bz & bi)
        zeros = (az & bz) | (ao & bo)
        ones = (az & bo) | (ao & bz)
        stable = asb & bs
        instable = (
            (ones & ((ai0 & bi0) | (ai1 & bi1)))
            | (zeros & ((ai0 & bi1) | (ai1 & bi0)))
        ) & ~stable
        az, ao, asb, ai = zeros, ones, stable, instable
    return az, ao, asb, ai


def unjustified_planes(
    gate_type: GateType, output: Planes, inputs: Sequence[Planes], mask: int
) -> Planes:
    """Per-plane lane masks of assigned output bits not implied by inputs."""
    f = forward(gate_type, inputs, mask)
    return tuple((have & ~implied) & mask for have, implied in zip(output, f))  # type: ignore[return-value]


def unjustified(gate_type: GateType, output: Planes, inputs: Sequence[Planes], mask: int) -> int:
    """Lanes where some assigned output bit is not implied by the inputs.

    Every plane participates: a required *stable* bit that the inputs
    do not yet force is an unjustified value (the paper: "the stable
    values have to be justified from the primary inputs").
    """
    miss = 0
    for plane in unjustified_planes(gate_type, output, inputs, mask):
        miss |= plane
    return miss & mask


# ---------------------------------------------------------------------------
# backward implication
# ---------------------------------------------------------------------------


def _and_backward(out: Planes, inputs: Sequence[Planes], mask: int) -> List[Planes]:
    """Unique backward implications through an AND gate.

    Value rules mirror the 3-valued case; additionally:

    * output stable-1 -> every input stable-1,
    * output stable-0 with every other input unable to be stable-0
      (already final-1 or instable) -> this input stable-0,
    * output falling (final 0, instable) -> every input has initial 1:
      inputs known final-0 must be falling, inputs known final-1 must
      be stable,
    * output rising -> every input final 1; if all other inputs are
      stable, this input must be rising.
    """
    oz, oo, os, oi = out
    n = len(inputs)
    stable1 = oo & os
    stable0_needed = oz & os
    falling = oz & oi
    rising = oo & oi

    # prefix/suffix products for the two unique implications
    ones_pre = [mask] * (n + 1)
    cant_s0_pre = [mask] * (n + 1)
    stable_pre = [mask] * (n + 1)
    for i, p in enumerate(inputs):
        z, o, s, ii = p
        ones_pre[i + 1] = ones_pre[i] & o
        cant_s0_pre[i + 1] = cant_s0_pre[i] & (o | ii)
        stable_pre[i + 1] = stable_pre[i] & s
    ones_suf = [mask] * (n + 1)
    cant_s0_suf = [mask] * (n + 1)
    stable_suf = [mask] * (n + 1)
    for i in range(n - 1, -1, -1):
        z, o, s, ii = inputs[i]
        ones_suf[i] = ones_suf[i + 1] & o
        cant_s0_suf[i] = cant_s0_suf[i + 1] & (o | ii)
        stable_suf[i] = stable_suf[i + 1] & s

    additions: List[Planes] = []
    for i, p in enumerate(inputs):
        z, o, s, ii = p
        add_z = 0
        add_o = 0
        add_s = 0
        add_i = 0
        # final-value rules (as in the 3-valued logic)
        add_o |= oo
        others_one = ones_pre[i] & ones_suf[i + 1]
        add_z |= oz & others_one
        # stable-1: all inputs stable 1
        add_s |= stable1
        # stable-0 unique implication
        others_cant = cant_s0_pre[i] & cant_s0_suf[i + 1]
        m = stable0_needed & others_cant
        add_z |= m
        add_s |= m
        # falling output: all inputs initially 1
        add_i |= falling & z
        add_s |= falling & o
        # rising output: all inputs final 1 (covered by oo above);
        # if every other input is stable, this one carries the rise
        others_stable = stable_pre[i] & stable_suf[i + 1]
        add_i |= rising & others_stable
        additions.append((add_z, add_o, add_s, add_i))
    return additions


def _swap_value_planes(p: Planes) -> Planes:
    return (p[1], p[0], p[2], p[3])


def backward(
    gate_type: GateType, output: Planes, inputs: Sequence[Planes], mask: int
) -> List[Planes]:
    """Bits each input must additionally take, given the output planes."""
    if gate_type is GateType.BUF:
        return [output]
    if gate_type is GateType.NOT:
        return [_swap_value_planes(output)]
    if gate_type is GateType.AND:
        return _and_backward(output, inputs, mask)
    if gate_type is GateType.NAND:
        return _and_backward(_swap_value_planes(output), inputs, mask)
    if gate_type is GateType.OR:
        swapped = [_swap_value_planes(p) for p in inputs]
        adds = _and_backward(_swap_value_planes(output), swapped, mask)
        return [_swap_value_planes(a) for a in adds]
    if gate_type is GateType.NOR:
        swapped = [_swap_value_planes(p) for p in inputs]
        adds = _and_backward(output, swapped, mask)
        return [_swap_value_planes(a) for a in adds]
    if gate_type in (GateType.XOR, GateType.XNOR):
        out = output if gate_type is GateType.XOR else _swap_value_planes(output)
        return _xor_backward(out, inputs, mask)
    raise ValueError(f"cannot imply through gate type {gate_type}")


def _xor_backward(out: Planes, inputs: Sequence[Planes], mask: int) -> List[Planes]:
    """Unique backward implications through an XOR gate.

    * value planes: all-but-one known fixes the last input's value,
    * output stable -> every input stable (the only way the forward
      calculus produces a stable XOR output),
    * output instable with all other inputs stable -> this input is
      instable.
    """
    oz, oo, os, oi = out
    n = len(inputs)
    known_pre = [mask] * (n + 1)
    par_pre = [0] * (n + 1)
    stable_pre = [mask] * (n + 1)
    for i, p in enumerate(inputs):
        z, o, s, _ = p
        known_pre[i + 1] = known_pre[i] & (z | o)
        par_pre[i + 1] = par_pre[i] ^ o
        stable_pre[i + 1] = stable_pre[i] & s
    known_suf = [mask] * (n + 1)
    par_suf = [0] * (n + 1)
    stable_suf = [mask] * (n + 1)
    for i in range(n - 1, -1, -1):
        z, o, s, _ = inputs[i]
        known_suf[i] = known_suf[i + 1] & (z | o)
        par_suf[i] = par_suf[i + 1] ^ o
        stable_suf[i] = stable_suf[i + 1] & s

    out_known = oz | oo
    additions: List[Planes] = []
    for i in range(n):
        others_known = known_pre[i] & known_suf[i + 1]
        parity = par_pre[i] ^ par_suf[i + 1]
        active = others_known & out_known
        implied_one = ((oo & ~parity) | (oz & parity)) & active
        implied_zero = ((oo & parity) | (oz & ~parity)) & active
        others_stable = stable_pre[i] & stable_suf[i + 1]
        add_s = os
        add_i = oi & others_stable
        additions.append((implied_zero, implied_one, add_s, add_i))
    return additions
