"""The combinational circuit data structure.

A :class:`Circuit` is a directed acyclic graph of named signals, each
driven either by a primary input or by exactly one gate.  The class is
the substrate every other subsystem builds on: path enumeration walks
its fanout lists, the bit-parallel engines index its signals by dense
integer ids, and the simulators evaluate its gates in topological
order.

Construction goes through :meth:`Circuit.add_input` /
:meth:`Circuit.add_gate` (or the fluent :class:`repro.circuit.builder.
CircuitBuilder`); once :meth:`Circuit.freeze` has been called the
structure is immutable and the derived arrays (levels, fanout lists,
topological order) are available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .gates import GateType, evaluate, gate_type_from_name, max_fanin, min_fanin


class CircuitError(Exception):
    """Raised for structural errors (cycles, missing drivers, ...)."""


@dataclass(frozen=True)
class Gate:
    """One signal of the circuit together with its driver.

    Attributes:
        index: dense id of the signal, assigned in insertion order.
        name: the user-visible signal name (unique within a circuit).
        gate_type: driver type; ``GateType.INPUT`` for primary inputs.
        fanin: signal ids feeding the driver (empty for inputs).
    """

    index: int
    name: str
    gate_type: GateType
    fanin: Tuple[int, ...]

    @property
    def is_input(self) -> bool:
        return self.gate_type is GateType.INPUT


@dataclass
class Circuit:
    """A named combinational circuit.

    Signals are identified by dense integer ids (``gate.index``); the
    mapping name -> id is kept in :attr:`name_to_index`.  Primary
    outputs are an ordered subset of the signals, marked explicitly
    (a signal may be both an internal fanout stem and an output, as in
    the ISCAS benchmarks).
    """

    name: str = "circuit"
    gates: List[Gate] = field(default_factory=list)
    name_to_index: Dict[str, int] = field(default_factory=dict)
    inputs: List[int] = field(default_factory=list)
    outputs: List[int] = field(default_factory=list)
    _frozen: bool = False
    _fanout: Optional[List[Tuple[int, ...]]] = None
    _level: Optional[List[int]] = None
    _order: Optional[List[int]] = None
    # excluded from __eq__/__repr__: holds a back-reference to self via
    # CompiledCircuit.circuit, which would recurse, and numpy arrays,
    # which have no scalar truth value
    _compiled: Optional[object] = field(default=None, compare=False, repr=False)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> int:
        """Add a primary input signal and return its id."""
        return self._add(name, GateType.INPUT, ())

    def add_gate(
        self,
        name: str,
        gate_type: GateType | str,
        fanin: Sequence[int | str],
    ) -> int:
        """Add a gate driving signal *name* and return its id.

        *fanin* entries may be signal ids or names; names must already
        exist, which enforces a topological insertion order and thereby
        acyclicity by construction.
        """
        if isinstance(gate_type, str):
            gate_type = gate_type_from_name(gate_type)
        resolved = tuple(self._resolve(f) for f in fanin)
        lo = min_fanin(gate_type)
        hi = max_fanin(gate_type)
        if len(resolved) < lo or (hi is not None and len(resolved) > hi):
            raise CircuitError(
                f"gate {name!r}: {gate_type.value} cannot take "
                f"{len(resolved)} inputs"
            )
        return self._add(name, gate_type, resolved)

    def mark_output(self, signal: int | str) -> None:
        """Mark an existing signal as a primary output."""
        self._check_mutable()
        index = self._resolve(signal)
        if index not in self.outputs:
            self.outputs.append(index)

    def freeze(self) -> "Circuit":
        """Finalize the structure and compute the derived arrays.

        Freezing memoizes every derived view: fanout lists, levels,
        the topological order, and (lazily, on first use) the compiled
        kernel form returned by :meth:`compiled`.  Returns ``self`` so
        construction can be written fluently.
        """
        if self._frozen:
            return self
        if not self.outputs:
            raise CircuitError(f"circuit {self.name!r} has no outputs")
        self._frozen = True
        self._compute_fanout()
        self._compute_levels()
        return self

    def compiled(self):
        """The cached :class:`repro.kernel.CompiledCircuit` lowering.

        Compiled exactly once per frozen circuit; every simulator and
        the TPG implication engine execute on this shared form instead
        of re-walking the object graph.  Raises ``CircuitError`` when
        the circuit is still mutable.
        """
        self._check_frozen()
        if self._compiled is None:
            from ..kernel.compiled import compile_circuit  # deferred: layering

            self._compiled = compile_circuit(self)
        return self._compiled

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.gates)

    @property
    def num_signals(self) -> int:
        return len(self.gates)

    @property
    def num_gates(self) -> int:
        """Number of actual gates (signals that are not primary inputs)."""
        return len(self.gates) - len(self.inputs)

    @property
    def frozen(self) -> bool:
        return self._frozen

    def gate(self, signal: int | str) -> Gate:
        return self.gates[self._resolve(signal)]

    def signal_name(self, index: int) -> str:
        return self.gates[index].name

    def index_of(self, name: str) -> int:
        try:
            return self.name_to_index[name]
        except KeyError:
            raise CircuitError(f"no signal named {name!r}") from None

    def fanout(self, signal: int | str) -> Tuple[int, ...]:
        """Signal ids whose gates read *signal* (requires freeze)."""
        self._check_frozen()
        assert self._fanout is not None
        return self._fanout[self._resolve(signal)]

    def level(self, signal: int | str) -> int:
        """Logic level: 0 for inputs, 1 + max(fanin levels) otherwise."""
        self._check_frozen()
        assert self._level is not None
        return self._level[self._resolve(signal)]

    @property
    def levels(self) -> List[int]:
        self._check_frozen()
        assert self._level is not None
        return self._level

    @property
    def depth(self) -> int:
        """Largest level in the circuit (length of the longest path)."""
        self._check_frozen()
        assert self._level is not None
        return max(self._level) if self._level else 0

    def topological_order(self) -> List[int]:
        """Signal ids sorted by level (inputs first).

        Insertion order is already topological (fanins must exist when
        a gate is added) but level order groups independent gates,
        which the array-based simulators exploit.
        """
        self._check_frozen()
        assert self._order is not None
        return self._order

    def is_output(self, signal: int | str) -> bool:
        return self._resolve(signal) in set(self.outputs)

    # ------------------------------------------------------------------
    # reference evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Dict[str, int] | Sequence[int]) -> Dict[str, int]:
        """Boolean-evaluate the whole circuit for one input vector.

        *assignment* maps input names to 0/1 (or gives values in
        ``self.inputs`` order).  Returns the value of every signal by
        name.  This is the slow, obviously-correct reference the
        bit-parallel simulators are validated against.
        """
        values: List[int] = [0] * len(self.gates)
        if isinstance(assignment, dict):
            vector = [assignment[self.gates[i].name] for i in self.inputs]
        else:
            vector = list(assignment)
        if len(vector) != len(self.inputs):
            raise CircuitError(
                f"expected {len(self.inputs)} input values, got {len(vector)}"
            )
        for i, value in zip(self.inputs, vector):
            if value not in (0, 1):
                raise CircuitError(f"input value must be 0/1, got {value!r}")
            values[i] = value
        for index in self.topological_order():
            g = self.gates[index]
            if g.is_input:
                continue
            values[index] = evaluate(g.gate_type, [values[f] for f in g.fanin])
        return {g.name: values[g.index] for g in self.gates}

    def output_values(self, assignment: Dict[str, int] | Sequence[int]) -> Tuple[int, ...]:
        """Evaluate and return just the primary output values, in order."""
        values = self.evaluate(assignment)
        return tuple(values[self.gates[o].name] for o in self.outputs)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Structural statistics used by reports and the suites."""
        self._check_frozen()
        counts: Dict[str, int] = {}
        for g in self.gates:
            counts[g.gate_type.value] = counts.get(g.gate_type.value, 0) + 1
        return {
            "signals": self.num_signals,
            "gates": self.num_gates,
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "depth": self.depth,
            **{f"n_{k.lower()}": v for k, v in sorted(counts.items())},
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _add(self, name: str, gate_type: GateType, fanin: Tuple[int, ...]) -> int:
        self._check_mutable()
        if name in self.name_to_index:
            raise CircuitError(f"duplicate signal name {name!r}")
        index = len(self.gates)
        gate = Gate(index=index, name=name, gate_type=gate_type, fanin=fanin)
        self.gates.append(gate)
        self.name_to_index[name] = index
        if gate_type is GateType.INPUT:
            self.inputs.append(index)
        return index

    def _resolve(self, signal: int | str) -> int:
        if isinstance(signal, str):
            return self.index_of(signal)
        if not 0 <= signal < len(self.gates):
            raise CircuitError(f"signal id {signal} out of range")
        return signal

    def _check_mutable(self) -> None:
        if self._frozen:
            raise CircuitError("circuit is frozen")

    def _check_frozen(self) -> None:
        if not self._frozen:
            raise CircuitError("circuit must be frozen first (call freeze())")

    def _compute_fanout(self) -> None:
        fanout: List[List[int]] = [[] for _ in self.gates]
        for g in self.gates:
            for f in g.fanin:
                fanout[f].append(g.index)
        self._fanout = [tuple(f) for f in fanout]

    def _compute_levels(self) -> None:
        level = [0] * len(self.gates)
        for g in self.gates:  # insertion order is topological
            if g.fanin:
                level[g.index] = 1 + max(level[f] for f in g.fanin)
        self._level = level
        self._order = sorted(range(len(self.gates)), key=lambda i: (level[i], i))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Circuit({self.name!r}, inputs={len(self.inputs)}, "
            f"gates={self.num_gates}, outputs={len(self.outputs)})"
        )


def iter_gates_by_level(circuit: Circuit) -> Iterable[Tuple[int, List[int]]]:
    """Yield ``(level, [signal ids])`` pairs in ascending level order."""
    by_level: Dict[int, List[int]] = {}
    for index in circuit.topological_order():
        by_level.setdefault(circuit.level(index), []).append(index)
    for lvl in sorted(by_level):
        yield lvl, by_level[lvl]
