"""Gate-level combinational circuit substrate.

Public API:

* :class:`Circuit`, :class:`Gate`, :class:`GateType` — the DAG model.
* :class:`CircuitBuilder` — fluent construction.
* :func:`parse_bench` / :func:`load_bench` / :func:`write_bench` — the
  ISCAS ``.bench`` netlist format (flip-flops cut into pseudo I/O).
* :mod:`repro.circuit.library` — embedded circuits (c17, the paper's
  Figure 1/2 example, ...).
* :mod:`repro.circuit.generators` / :mod:`repro.circuit.suites` —
  synthetic benchmark circuits and the ISCAS-like suites used by the
  experiment tables.
"""

from .circuit import Circuit, CircuitError, Gate, iter_gates_by_level
from .gates import (
    GateType,
    controlling_value,
    evaluate,
    evaluate_word,
    gate_type_from_name,
    inversion_parity,
    inverts,
    noncontrolling_value,
)
from .builder import CircuitBuilder
from .bench_parser import BenchFormatError, load_bench, parse_bench, save_bench, write_bench
from .validate import assert_valid, validate_circuit
from . import generators, library, suites

__all__ = [
    "Circuit",
    "CircuitError",
    "Gate",
    "GateType",
    "CircuitBuilder",
    "BenchFormatError",
    "assert_valid",
    "controlling_value",
    "evaluate",
    "evaluate_word",
    "gate_type_from_name",
    "generators",
    "inversion_parity",
    "inverts",
    "iter_gates_by_level",
    "library",
    "load_bench",
    "noncontrolling_value",
    "parse_bench",
    "save_bench",
    "suites",
    "validate_circuit",
    "write_bench",
]
