"""Fluent construction helper for :class:`repro.circuit.Circuit`.

The raw ``Circuit`` API wants fanin ids to exist before a gate is
added.  :class:`CircuitBuilder` removes that chore for hand-written
netlists (tests, examples, embedded library circuits): gates may be
declared in any order and are resolved when :meth:`CircuitBuilder.
build` is called.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .circuit import Circuit, CircuitError
from .gates import GateType, gate_type_from_name


@dataclass
class _PendingGate:
    name: str
    gate_type: GateType
    fanin: Tuple[str, ...]


class CircuitBuilder:
    """Collects gate declarations and emits a frozen :class:`Circuit`.

    Example:
        >>> b = CircuitBuilder("half_adder")
        >>> b.inputs("a", "b")
        >>> b.gate("sum", "XOR", ["a", "b"])
        >>> b.gate("carry", "AND", ["a", "b"])
        >>> b.outputs("sum", "carry")
        >>> circuit = b.build()
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._inputs: List[str] = []
        self._gates: Dict[str, _PendingGate] = {}
        self._outputs: List[str] = []

    # ------------------------------------------------------------------
    def inputs(self, *names: str) -> "CircuitBuilder":
        for name in names:
            if name in self._inputs or name in self._gates:
                raise CircuitError(f"duplicate signal {name!r}")
            self._inputs.append(name)
        return self

    def gate(
        self, name: str, gate_type: GateType | str, fanin: Sequence[str]
    ) -> "CircuitBuilder":
        if isinstance(gate_type, str):
            gate_type = gate_type_from_name(gate_type)
        if name in self._inputs or name in self._gates:
            raise CircuitError(f"duplicate signal {name!r}")
        self._gates[name] = _PendingGate(name, gate_type, tuple(fanin))
        return self

    def outputs(self, *names: str) -> "CircuitBuilder":
        self._outputs.extend(names)
        return self

    # convenience single-type helpers keep example netlists short
    def and_(self, name: str, *fanin: str) -> "CircuitBuilder":
        return self.gate(name, GateType.AND, fanin)

    def or_(self, name: str, *fanin: str) -> "CircuitBuilder":
        return self.gate(name, GateType.OR, fanin)

    def nand(self, name: str, *fanin: str) -> "CircuitBuilder":
        return self.gate(name, GateType.NAND, fanin)

    def nor(self, name: str, *fanin: str) -> "CircuitBuilder":
        return self.gate(name, GateType.NOR, fanin)

    def xor(self, name: str, *fanin: str) -> "CircuitBuilder":
        return self.gate(name, GateType.XOR, fanin)

    def xnor(self, name: str, *fanin: str) -> "CircuitBuilder":
        return self.gate(name, GateType.XNOR, fanin)

    def not_(self, name: str, fanin: str) -> "CircuitBuilder":
        return self.gate(name, GateType.NOT, [fanin])

    def buf(self, name: str, fanin: str) -> "CircuitBuilder":
        return self.gate(name, GateType.BUF, [fanin])

    # ------------------------------------------------------------------
    def build(self) -> Circuit:
        """Topologically order the declarations and freeze the circuit."""
        circuit = Circuit(name=self.name)
        for name in self._inputs:
            circuit.add_input(name)

        # iterative DFS emit so deep netlists do not hit the recursion limit
        emitted = set(self._inputs)
        for target in list(self._gates):
            if target in emitted:
                continue
            stack: List[Tuple[str, bool]] = [(target, False)]
            on_stack = {target}
            while stack:
                name, expanded = stack.pop()
                if name in emitted:
                    continue
                pending = self._gates.get(name)
                if pending is None:
                    raise CircuitError(f"signal {name!r} is never driven")
                if expanded:
                    circuit.add_gate(pending.name, pending.gate_type, pending.fanin)
                    emitted.add(name)
                    on_stack.discard(name)
                    continue
                stack.append((name, True))
                for f in pending.fanin:
                    if f in emitted:
                        continue
                    if f in on_stack:
                        raise CircuitError(f"combinational cycle through {f!r}")
                    if f not in self._gates:
                        raise CircuitError(f"signal {f!r} is never driven")
                    on_stack.add(f)
                    stack.append((f, False))

        for name in self._outputs:
            circuit.mark_output(name)
        return circuit.freeze()
