"""Benchmark suites standing in for ISCAS85 and ISCAS89.

The paper's tables are keyed by ISCAS circuit names.  The real
netlists are not distributable here, so each named row maps to a
deterministic synthetic circuit with a comparable structural flavour
(gate-type mix, depth, reconvergence; see DESIGN.md "Substitutions").
Sizes are scaled down so the full experiment tables regenerate in
minutes under CPython rather than hours; the ``scale`` parameter lets
a patient user grow them.

Real ``.bench`` files, when available, can always be swapped in via
:func:`repro.circuit.bench_parser.load_bench` — every experiment
runner accepts arbitrary circuits.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .circuit import Circuit
from .generators import (
    array_multiplier,
    carry_lookahead_adder,
    mux_tree,
    parity_tree,
    random_dag,
    reconvergent_ladder,
    ripple_carry_adder,
    random_dag as _rd,
)

_SuiteEntry = Callable[[int], Circuit]


def _scaled(base: int, scale: int) -> int:
    return max(8, base * scale)


# Each entry: paper circuit name -> factory(scale) producing the
# "-like" substitute.  Gate counts at scale=1 are roughly 1/6 of the
# originals, preserving relative ordering between rows.
_ISCAS85: Dict[str, _SuiteEntry] = {
    "c432": lambda s: random_dag(18, _scaled(40, s), seed=432, profile="nand_heavy",
                                 locality=24, reconvergence=0.35, name="c432_like"),
    "c499": lambda s: parity_tree(_scaled(16, s), name="c499_like"),
    "c880": lambda s: carry_lookahead_adder(_scaled(8, s), name="c880_like"),
    "c1355": lambda s: random_dag(20, _scaled(56, s), seed=1355, profile="xor_rich",
                                  locality=20, reconvergence=0.3, name="c1355_like"),
    "c1908": lambda s: random_dag(16, _scaled(72, s), seed=1908, profile="nand_heavy",
                                  locality=28, reconvergence=0.35, name="c1908_like"),
    "c2670": lambda s: random_dag(32, _scaled(90, s), seed=2670, profile="balanced",
                                  locality=36, reconvergence=0.25, name="c2670_like"),
    "c3540": lambda s: random_dag(24, _scaled(110, s), seed=3540, profile="balanced",
                                  locality=30, reconvergence=0.4, name="c3540_like"),
    "c5315": lambda s: random_dag(40, _scaled(130, s), seed=5315, profile="balanced",
                                  locality=40, reconvergence=0.3, name="c5315_like"),
    "c7552": lambda s: random_dag(48, _scaled(150, s), seed=7552, profile="nand_heavy",
                                  locality=44, reconvergence=0.3, name="c7552_like"),
    # c6288 appears in the paper only as the excluded footnote case
    "c6288": lambda s: array_multiplier(max(4, 4 * s), name="c6288_like"),
}

_ISCAS89: Dict[str, _SuiteEntry] = {
    "s641": lambda s: random_dag(20, _scaled(28, s), seed=641, profile="balanced",
                                 locality=20, reconvergence=0.3, name="s641_like"),
    "s713": lambda s: random_dag(20, _scaled(30, s), seed=713, profile="nand_heavy",
                                 locality=20, reconvergence=0.35, name="s713_like"),
    "s838": lambda s: ripple_carry_adder(_scaled(8, s), name="s838_like"),
    "s938": lambda s: ripple_carry_adder(_scaled(9, s), name="s938_like"),
    "s991": lambda s: mux_tree(3 + min(s, 3), name="s991_like"),
    "s1196": lambda s: random_dag(18, _scaled(40, s), seed=1196, profile="balanced",
                                  locality=22, reconvergence=0.3, name="s1196_like"),
    "s1238": lambda s: random_dag(18, _scaled(42, s), seed=1238, profile="nand_heavy",
                                  locality=22, reconvergence=0.3, name="s1238_like"),
    "s1269": lambda s: reconvergent_ladder(_scaled(10, s), name="s1269_like"),
    "s1423": lambda s: random_dag(24, _scaled(48, s), seed=1423, profile="balanced",
                                  locality=24, reconvergence=0.35, name="s1423_like"),
    "s1494": lambda s: random_dag(12, _scaled(44, s), seed=1494, profile="nand_heavy",
                                  locality=18, reconvergence=0.4, name="s1494_like"),
    "s3271": lambda s: random_dag(26, _scaled(60, s), seed=3271, profile="xor_rich",
                                  locality=26, reconvergence=0.3, name="s3271_like"),
    "s5378": lambda s: random_dag(35, _scaled(75, s), seed=5378, profile="balanced",
                                  locality=32, reconvergence=0.3, name="s5378_like"),
    "s9234": lambda s: random_dag(40, _scaled(90, s), seed=9234, profile="nand_heavy",
                                  locality=36, reconvergence=0.3, name="s9234_like"),
    "s13207": lambda s: random_dag(60, _scaled(110, s), seed=13207, profile="balanced",
                                   locality=40, reconvergence=0.25, name="s13207_like"),
    "s15850": lambda s: random_dag(60, _scaled(120, s), seed=15850, profile="balanced",
                                   locality=44, reconvergence=0.3, name="s15850_like"),
    "s38584": lambda s: random_dag(80, _scaled(140, s), seed=38584, profile="nand_heavy",
                                   locality=48, reconvergence=0.25, name="s38584_like"),
}

#: Extra generated circuits outside the paper's tables.  ``bulk2k`` is
#: the fused-kernel benchmark workload: ~2k gates, wide and shallow
#: (high locality keeps the level population large), where per-gate
#: interpreter overhead — not lane arithmetic — dominates an
#: interpreted simulation pass.
_EXTRA: Dict[str, _SuiteEntry] = {
    "bulk2k": lambda s: random_dag(
        96,
        2048 * max(1, s),
        seed=2048,
        profile="balanced",
        locality=256,
        reconvergence=0.25,
        name="bulk2k",
    ),
}

#: Circuit rows of paper Tables 3 and 4 (ISCAS85, c6288 footnoted out).
TABLE34_CIRCUITS: List[str] = [
    "c432", "c499", "c880", "c1355", "c1908", "c2670", "c3540", "c5315", "c7552",
]

#: Circuit rows of paper Tables 5 and 6 (ISCAS89 subset).
TABLE56_CIRCUITS: List[str] = [
    "s713", "s838", "s938", "s991", "s1269", "s1423",
    "s3271", "s5378", "s9234", "s13207", "s15850",
]

#: Circuit rows of paper Tables 7 and 8 (ISCAS89 subset).
TABLE78_CIRCUITS: List[str] = [
    "s641", "s713", "s1196", "s1238", "s1423", "s1494",
    "s5378", "s13207", "s15850", "s38584",
]


def iscas85_like(name: str, scale: int = 1) -> Circuit:
    """The synthetic stand-in for ISCAS85 circuit *name*."""
    try:
        return _ISCAS85[name](scale)
    except KeyError:
        known = ", ".join(sorted(_ISCAS85))
        raise ValueError(f"unknown ISCAS85 name {name!r}; known: {known}") from None


def iscas89_like(name: str, scale: int = 1) -> Circuit:
    """The synthetic stand-in for ISCAS89 circuit *name*."""
    try:
        return _ISCAS89[name](scale)
    except KeyError:
        known = ", ".join(sorted(_ISCAS89))
        raise ValueError(f"unknown ISCAS89 name {name!r}; known: {known}") from None


def suite_circuit(name: str, scale: int = 1) -> Circuit:
    """Look up *name* in either suite (or the extra generated set)."""
    if name in _ISCAS85:
        return iscas85_like(name, scale)
    if name in _ISCAS89:
        return iscas89_like(name, scale)
    if name in _EXTRA:
        return _EXTRA[name](scale)
    raise ValueError(f"unknown suite circuit {name!r}")
