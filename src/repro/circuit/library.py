"""Embedded benchmark circuits.

Small circuits that are public knowledge are embedded verbatim (c17);
the example circuit of the paper's Figures 1 and 2 is reconstructed so
that the published FPTPG/APTPG walkthroughs reproduce *exactly* (see
``DESIGN.md``, "Substitutions").  Everything here returns a frozen
:class:`repro.circuit.Circuit`.
"""

from __future__ import annotations

from .bench_parser import parse_bench
from .builder import CircuitBuilder
from .circuit import Circuit

#: The ISCAS85 c17 netlist (Brglez & Fujiwara 1985) — the canonical
#: six-NAND example, embedded in its original .bench form.
C17_BENCH = """\
# c17 (ISCAS85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


def c17() -> Circuit:
    """The ISCAS85 c17 benchmark (5 inputs, 6 NAND gates, 2 outputs)."""
    return parse_bench(C17_BENCH, name="c17")


def paper_example() -> Circuit:
    """The example circuit of the paper's Figures 1 and 2 (reconstructed).

    Signal names follow the figures: inputs ``a b c d``, internal
    signals ``p q r s t e``, outputs ``x y``.  The figure artwork did
    not survive text extraction, so gate types were reconstructed to
    reproduce the published walkthrough exactly:

    * FPTPG on the four paths ``b-p-x``, ``b-q-s-x``, ``c-r-s-x``,
      ``c-r-s-y`` (bit levels 0..3, rising transitions) yields: levels
      2 and 3 justified immediately (tested), level 1 a conflict at
      signal ``c`` with no optional assignments (hence the subpath
      ``b-q-s`` with a rising transition at ``b`` is redundant, and so
      is every path containing it), and level 0 one unjustified value
      (``s = 1``) that a single backtrace resolves by assigning
      ``d = 1``.
    * APTPG on path ``a-p-x`` backtraces to the two primary inputs
      ``c`` and ``d``; all four value alternatives are examined in the
      four bit levels at once and at least one level is conflict-free,
      so the path is tested (exactly one of the four alternatives,
      ``c=0, d=0``, conflicts).
    """
    b = CircuitBuilder("paper_example")
    b.inputs("a", "b", "c", "d")
    b.or_("p", "a", "b")
    b.and_("q", "b", "c")
    b.buf("r", "c")
    b.or_("s", "q", "r", "d")
    b.not_("t", "p")
    b.not_("e", "d")
    b.and_("x", "p", "s")
    b.and_("y", "s", "t", "e")
    b.outputs("x", "y")
    return b.build()


def half_adder() -> Circuit:
    """1-bit half adder (sum = a xor b, carry = a and b)."""
    b = CircuitBuilder("half_adder")
    b.inputs("a", "b")
    b.xor("sum", "a", "b")
    b.and_("carry", "a", "b")
    b.outputs("sum", "carry")
    return b.build()


def full_adder() -> Circuit:
    """1-bit full adder over inputs a, b, cin."""
    b = CircuitBuilder("full_adder")
    b.inputs("a", "b", "cin")
    b.xor("p", "a", "b")
    b.xor("sum", "p", "cin")
    b.and_("g", "a", "b")
    b.and_("t", "p", "cin")
    b.or_("cout", "g", "t")
    b.outputs("sum", "cout")
    return b.build()


def mux2() -> Circuit:
    """2-to-1 multiplexer: out = sel ? b : a."""
    b = CircuitBuilder("mux2")
    b.inputs("a", "b", "sel")
    b.not_("nsel", "sel")
    b.and_("ta", "a", "nsel")
    b.and_("tb", "b", "sel")
    b.or_("out", "ta", "tb")
    b.outputs("out")
    return b.build()


def majority3() -> Circuit:
    """3-input majority vote."""
    b = CircuitBuilder("majority3")
    b.inputs("a", "b", "c")
    b.and_("ab", "a", "b")
    b.and_("bc", "b", "c")
    b.and_("ac", "a", "c")
    b.or_("out", "ab", "bc", "ac")
    b.outputs("out")
    return b.build()


def redundant_and_chain() -> Circuit:
    """A tiny circuit with a structurally redundant path.

    ``x = AND(a, NOT(a))`` is constant 0, so no transition can ever
    propagate through the path ``a-n-x-out``; every delay fault on it
    is redundant.  Used by unit tests for redundancy identification.
    """
    b = CircuitBuilder("redundant_and_chain")
    b.inputs("a", "b")
    b.not_("n", "a")
    b.and_("x", "a", "n")
    b.or_("out", "x", "b")
    b.outputs("out")
    return b.build()


#: Name -> factory for every embedded circuit (used by the CLI).
EMBEDDED = {
    "c17": c17,
    "paper_example": paper_example,
    "half_adder": half_adder,
    "full_adder": full_adder,
    "mux2": mux2,
    "majority3": majority3,
    "redundant_and_chain": redundant_and_chain,
}


def load_embedded(name: str) -> Circuit:
    """Instantiate an embedded circuit by *name* (see :data:`EMBEDDED`)."""
    try:
        factory = EMBEDDED[name]
    except KeyError:
        known = ", ".join(sorted(EMBEDDED))
        raise ValueError(f"unknown embedded circuit {name!r}; known: {known}") from None
    return factory()
