"""Gate primitives for combinational circuits.

The path delay fault literature (and the ISCAS benchmark suites the
paper evaluates on) works with a small standard cell set: AND, OR,
NAND, NOR, XOR, XNOR, BUF and NOT, plus explicit INPUT markers.  This
module defines that cell set together with the per-gate attributes the
ATPG algorithms need:

* the *controlling value* (the input value that alone determines the
  output: 0 for AND/NAND, 1 for OR/NOR, none for XOR/XNOR/BUF/NOT),
* the *inversion parity* (whether the output inverts its inputs),
* plain boolean evaluation (used by the reference simulators and the
  test oracles).

Everything here is deliberately value-level and table-driven so the
bit-parallel engines in :mod:`repro.logic` can derive their plane
arithmetic from one authoritative definition.
"""

from __future__ import annotations

import enum
from typing import Sequence


class GateType(enum.Enum):
    """The supported gate primitives.

    ``INPUT`` marks primary inputs (no fanin); ``BUF`` and ``NOT`` are
    single-input; all other types accept two or more inputs.
    """

    INPUT = "INPUT"
    BUF = "BUF"
    NOT = "NOT"
    AND = "AND"
    NAND = "NAND"
    OR = "OR"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GateType.{self.name}"


#: Gate types whose output inverts (an even/odd path-parity step).
INVERTING = frozenset({GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR})

#: Gate types with a controlling value.
_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}

#: Gate types that simply combine with AND/OR semantics.
AND_LIKE = frozenset({GateType.AND, GateType.NAND})
OR_LIKE = frozenset({GateType.OR, GateType.NOR})
XOR_LIKE = frozenset({GateType.XOR, GateType.XNOR})
SINGLE_INPUT = frozenset({GateType.BUF, GateType.NOT})

_BY_NAME = {t.value: t for t in GateType}
# Common aliases found in .bench files and hand-written netlists.
_BY_NAME.update(
    {
        "INV": GateType.NOT,
        "BUFF": GateType.BUF,
        "BUFFER": GateType.BUF,
        "PI": GateType.INPUT,
    }
)


def gate_type_from_name(name: str) -> GateType:
    """Resolve a gate-type *name* (case-insensitive, common aliases).

    Raises ``ValueError`` for unknown names so netlist parsing errors
    surface with a clear message instead of a ``KeyError``.
    """
    try:
        return _BY_NAME[name.strip().upper()]
    except KeyError:
        raise ValueError(f"unknown gate type: {name!r}") from None


def controlling_value(gate_type: GateType) -> int | None:
    """Controlling input value of *gate_type* or ``None`` if it has none.

    A controlling value at any input fixes the gate output regardless
    of the other inputs; path sensitization requires all off-path
    inputs to carry the *non-controlling* value.
    """
    return _CONTROLLING.get(gate_type)


def noncontrolling_value(gate_type: GateType) -> int | None:
    """Non-controlling input value, or ``None`` for XOR-like gates."""
    c = _CONTROLLING.get(gate_type)
    if c is None:
        return None
    return 1 - c


def inverts(gate_type: GateType) -> bool:
    """True if the gate output has inverted polarity w.r.t. its inputs."""
    return gate_type in INVERTING


def inversion_parity(gate_types: Sequence[GateType]) -> int:
    """Number of inverting gates in *gate_types*, modulo 2."""
    return sum(1 for t in gate_types if inverts(t)) & 1


def min_fanin(gate_type: GateType) -> int:
    """Smallest legal fanin count for *gate_type*."""
    if gate_type is GateType.INPUT:
        return 0
    if gate_type in SINGLE_INPUT:
        return 1
    return 2


def max_fanin(gate_type: GateType) -> int | None:
    """Largest legal fanin count, ``None`` meaning unbounded."""
    if gate_type is GateType.INPUT:
        return 0
    if gate_type in SINGLE_INPUT:
        return 1
    return None


def evaluate(gate_type: GateType, inputs: Sequence[int]) -> int:
    """Boolean evaluation of one gate over 0/1 *inputs*.

    This is the reference semantics: the bit-parallel plane algebras
    in :mod:`repro.logic` are tested against it exhaustively.
    """
    if gate_type is GateType.INPUT:
        raise ValueError("INPUT gates have no evaluation")
    if gate_type is GateType.BUF:
        (a,) = inputs
        return a
    if gate_type is GateType.NOT:
        (a,) = inputs
        return 1 - a
    if gate_type in AND_LIKE:
        value = all(inputs)
    elif gate_type in OR_LIKE:
        value = any(inputs)
    elif gate_type in XOR_LIKE:
        value = bool(sum(inputs) & 1)
    else:  # pragma: no cover - enum is closed
        raise ValueError(f"unhandled gate type {gate_type}")
    result = 1 if value else 0
    if inverts(gate_type):
        result = 1 - result
    return result


def evaluate_word(gate_type: GateType, inputs: Sequence[int], mask: int) -> int:
    """Bit-parallel boolean evaluation over integer words.

    Each element of *inputs* is an ``L``-lane word; *mask* is the
    all-lanes mask ``(1 << L) - 1``.  Used by the two-valued logic
    simulator; the multi-valued engines have their own plane rules.
    """
    if gate_type is GateType.BUF:
        (a,) = inputs
        return a & mask
    if gate_type is GateType.NOT:
        (a,) = inputs
        return ~a & mask
    if gate_type in AND_LIKE:
        word = mask
        for a in inputs:
            word &= a
    elif gate_type in OR_LIKE:
        word = 0
        for a in inputs:
            word |= a
    elif gate_type in XOR_LIKE:
        word = 0
        for a in inputs:
            word ^= a
    else:
        raise ValueError(f"unhandled gate type {gate_type}")
    if inverts(gate_type):
        word = ~word
    return word & mask
