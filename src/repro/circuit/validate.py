"""Structural sanity checks for circuits.

The generators and parsers construct circuits by the thousand during
benchmark sweeps; :func:`validate_circuit` is the single choke point
that asserts the invariants every downstream algorithm relies on.
"""

from __future__ import annotations

from typing import List

from .circuit import Circuit, CircuitError
from .gates import GateType, max_fanin, min_fanin


def validate_circuit(circuit: Circuit) -> List[str]:
    """Check structural invariants; return a list of problem strings.

    An empty list means the circuit is well formed.  Checked:

    * the circuit is frozen and has at least one input and output,
    * every gate's fanin ids are in range and precede the gate
      (which implies acyclicity),
    * fanin counts are legal for each gate type,
    * every non-input signal is reachable from some input,
    * every signal reaches some output (no dangling logic), and
    * levels are consistent with fanin levels.
    """
    problems: List[str] = []
    if not circuit.frozen:
        return ["circuit is not frozen"]
    if not circuit.inputs:
        problems.append("circuit has no primary inputs")
    if not circuit.outputs:
        problems.append("circuit has no primary outputs")

    n = circuit.num_signals
    for gate in circuit.gates:
        lo = min_fanin(gate.gate_type)
        hi = max_fanin(gate.gate_type)
        if len(gate.fanin) < lo or (hi is not None and len(gate.fanin) > hi):
            problems.append(
                f"{gate.name}: {gate.gate_type.value} with "
                f"{len(gate.fanin)} inputs"
            )
        for f in gate.fanin:
            if not 0 <= f < n:
                problems.append(f"{gate.name}: fanin id {f} out of range")
            elif f >= gate.index:
                problems.append(
                    f"{gate.name}: fanin {circuit.signal_name(f)} does not "
                    f"precede it (possible cycle)"
                )
        if gate.fanin:
            expected = 1 + max(circuit.level(f) for f in gate.fanin)
            if circuit.level(gate.index) != expected:
                problems.append(f"{gate.name}: inconsistent level")

    # reachability from inputs (forward) and to outputs (backward)
    reachable = [False] * n
    for i in circuit.inputs:
        reachable[i] = True
    for index in circuit.topological_order():
        gate = circuit.gates[index]
        if gate.fanin and all(reachable[f] for f in gate.fanin):
            reachable[index] = True
    for gate in circuit.gates:
        if not reachable[gate.index] and not gate.is_input:
            problems.append(f"{gate.name}: not reachable from the inputs")

    observes = [False] * n
    for o in circuit.outputs:
        observes[o] = True
    for index in reversed(circuit.topological_order()):
        if observes[index]:
            for f in circuit.gates[index].fanin:
                observes[f] = True
    for gate in circuit.gates:
        if not observes[gate.index]:
            problems.append(f"{gate.name}: does not reach any output")

    return problems


def assert_valid(circuit: Circuit) -> Circuit:
    """Raise :class:`CircuitError` if *circuit* fails validation."""
    problems = validate_circuit(circuit)
    if problems:
        preview = "; ".join(problems[:5])
        raise CircuitError(
            f"circuit {circuit.name!r} failed validation "
            f"({len(problems)} problems): {preview}"
        )
    return circuit
