"""Parameterized synthetic circuit generators.

The paper evaluates on the ISCAS85/89 suites, which cannot be shipped
here (see DESIGN.md).  These generators produce deterministic circuits
with the structural features that drive path-delay ATPG behaviour:

* arithmetic carry chains (ripple/lookahead adders) — long paths,
* array multipliers — the c6288-style exponential path blow-up,
* XOR trees — the c499/c1355 flavour,
* reconvergent ladders — tunable path-count explosion with
  redundancies,
* profile-driven random DAGs — everything else, seeded and
  reproducible.

All generators return frozen circuits that pass
:func:`repro.circuit.validate.validate_circuit`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from .builder import CircuitBuilder
from .circuit import Circuit
from .gates import GateType

# ---------------------------------------------------------------------------
# arithmetic
# ---------------------------------------------------------------------------


def ripple_carry_adder(width: int, name: Optional[str] = None) -> Circuit:
    """*width*-bit ripple-carry adder (a + b + cin -> sum, cout).

    The carry chain makes the longest structural path grow linearly in
    *width* — the classic delay-test target.
    """
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"rca{width}")
    b.inputs(*[f"a{i}" for i in range(width)])
    b.inputs(*[f"b{i}" for i in range(width)])
    b.inputs("cin")
    carry = "cin"
    for i in range(width):
        b.xor(f"p{i}", f"a{i}", f"b{i}")
        b.xor(f"sum{i}", f"p{i}", carry)
        b.and_(f"g{i}", f"a{i}", f"b{i}")
        b.and_(f"t{i}", f"p{i}", carry)
        b.or_(f"c{i}", f"g{i}", f"t{i}")
        carry = f"c{i}"
    b.outputs(*[f"sum{i}" for i in range(width)], carry)
    return b.build()


def carry_lookahead_adder(width: int, block: int = 4, name: Optional[str] = None) -> Circuit:
    """*width*-bit adder with *block*-wide carry lookahead groups.

    Wider gates and flatter carry logic than the ripple design; gives
    the suites a second, structurally distinct arithmetic flavour.
    """
    if width < 1 or block < 2:
        raise ValueError("width >= 1 and block >= 2 required")
    b = CircuitBuilder(name or f"cla{width}")
    b.inputs(*[f"a{i}" for i in range(width)])
    b.inputs(*[f"b{i}" for i in range(width)])
    b.inputs("cin")
    for i in range(width):
        b.xor(f"p{i}", f"a{i}", f"b{i}")
        b.and_(f"g{i}", f"a{i}", f"b{i}")
    carry_in = "cin"
    for start in range(0, width, block):
        bits = range(start, min(start + block, width))
        for i in bits:
            b.xor(f"sum{i}", f"p{i}", carry_in if i == start else f"c{i - 1}")
            # c_i = g_i | p_i & c_{i-1}, expanded over the block
            terms: List[str] = [f"g{i}"]
            prefix: List[str] = []
            for j in range(i, start - 1, -1):
                prefix.append(f"p{j}")
                if j == start:
                    src = carry_in
                else:
                    src = f"g{j - 1}"
                term = f"t{i}_{j}"
                b.and_(term, src, *prefix)
                terms.append(term)
            b.or_(f"c{i}", *terms)
        carry_in = f"c{bits[-1]}"
    b.outputs(*[f"sum{i}" for i in range(width)], carry_in)
    return b.build()


def array_multiplier(width: int, name: Optional[str] = None) -> Circuit:
    """*width* x *width* carry-save array multiplier.

    Reproduces the c6288 phenomenon: the number of structural paths
    grows so fast that full path enumeration becomes infeasible (the
    paper excluded c6288 for exactly this reason).
    """
    if width < 2:
        raise ValueError("width must be >= 2")
    b = CircuitBuilder(name or f"mul{width}")
    b.inputs(*[f"a{i}" for i in range(width)])
    b.inputs(*[f"b{i}" for i in range(width)])
    # partial products
    for i in range(width):
        for j in range(width):
            b.and_(f"pp{i}_{j}", f"a{i}", f"b{j}")

    def add_full(name: str, x: str, y: str, z: str) -> tuple:
        b.xor(f"{name}_p", x, y)
        b.xor(f"{name}_s", f"{name}_p", z)
        b.and_(f"{name}_g", x, y)
        b.and_(f"{name}_t", f"{name}_p", z)
        b.or_(f"{name}_c", f"{name}_g", f"{name}_t")
        return f"{name}_s", f"{name}_c"

    def add_half(name: str, x: str, y: str) -> tuple:
        b.xor(f"{name}_s", x, y)
        b.and_(f"{name}_c", x, y)
        return f"{name}_s", f"{name}_c"

    # column-compression: collect partial products per output column
    columns: List[List[str]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(f"pp{i}_{j}")
    outs: List[str] = []
    extra_carries: List[str] = []
    counter = 0
    for col in range(2 * width):
        signals = columns[col]
        while len(signals) > 1:
            if len(signals) >= 3:
                x, y, z = signals[:3]
                rest = signals[3:]
                s, c = add_full(f"fa{counter}", x, y, z)
            else:
                x, y = signals[:2]
                rest = signals[2:]
                s, c = add_half(f"ha{counter}", x, y)
            counter += 1
            signals = rest + [s]
            if col + 1 < 2 * width:
                columns[col + 1].append(c)
            else:
                # the top column's carry cannot occur arithmetically,
                # but it exists structurally; observe it so no logic
                # dangles
                extra_carries.append(c)
        if signals:
            outs.append(signals[0])
    b.outputs(*outs, *extra_carries)
    return b.build()


# ---------------------------------------------------------------------------
# tree / ladder structures
# ---------------------------------------------------------------------------


def parity_tree(width: int, name: Optional[str] = None) -> Circuit:
    """Balanced XOR tree over *width* inputs (c499/c1355 flavour)."""
    if width < 2:
        raise ValueError("width must be >= 2")
    b = CircuitBuilder(name or f"parity{width}")
    b.inputs(*[f"i{k}" for k in range(width)])
    layer = [f"i{k}" for k in range(width)]
    counter = 0
    while len(layer) > 1:
        nxt: List[str] = []
        for k in range(0, len(layer) - 1, 2):
            out = f"x{counter}"
            counter += 1
            b.xor(out, layer[k], layer[k + 1])
            nxt.append(out)
        if len(layer) & 1:
            nxt.append(layer[-1])
        layer = nxt
    b.outputs(layer[0])
    return b.build()


def mux_tree(depth: int, name: Optional[str] = None) -> Circuit:
    """A *depth*-level tree of 2:1 muxes (2^depth data + depth selects)."""
    if depth < 1:
        raise ValueError("depth must be >= 1")
    b = CircuitBuilder(name or f"muxtree{depth}")
    data = [f"d{k}" for k in range(1 << depth)]
    sels = [f"s{k}" for k in range(depth)]
    b.inputs(*data)
    b.inputs(*sels)
    counter = 0
    layer = data
    for lvl in range(depth):
        sel = sels[lvl]
        nsel = f"n{sel}_{lvl}"
        b.not_(nsel, sel)
        nxt: List[str] = []
        for k in range(0, len(layer), 2):
            lo, hi = layer[k], layer[k + 1]
            m = f"m{counter}"
            counter += 1
            b.and_(f"{m}_a", lo, nsel)
            b.and_(f"{m}_b", hi, sel)
            b.or_(m, f"{m}_a", f"{m}_b")
            nxt.append(m)
        layer = nxt
    b.outputs(layer[0])
    return b.build()


def reconvergent_ladder(stages: int, name: Optional[str] = None) -> Circuit:
    """A ladder where every stage doubles the structural path count.

    Stage ``k`` computes ``u = AND(v, ctl_k)`` and ``w = OR(v, ctl_k)``
    then reconverges with ``v' = XOR(u, w)``, which equals
    ``v XOR ctl_k`` (the stage is functionally a staged parity).  Each
    stage multiplies the number of input-output paths through the seed
    by two, giving ``2^stages`` paths.  Used to exercise path-count
    explosion and lane utilisation without large gate counts.
    """
    if stages < 1:
        raise ValueError("stages must be >= 1")
    b = CircuitBuilder(name or f"ladder{stages}")
    b.inputs("seed", *[f"ctl{k}" for k in range(stages)])
    v = "seed"
    for k in range(stages):
        b.and_(f"u{k}", v, f"ctl{k}")
        b.or_(f"w{k}", v, f"ctl{k}")
        b.xor(f"v{k}", f"u{k}", f"w{k}")
        v = f"v{k}"
    b.outputs(v)
    return b.build()


def comparator(width: int, name: Optional[str] = None) -> Circuit:
    """*width*-bit equality + greater-than comparator."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"cmp{width}")
    b.inputs(*[f"a{i}" for i in range(width)])
    b.inputs(*[f"b{i}" for i in range(width)])
    eq_terms: List[str] = []
    gt_terms: List[str] = []
    for i in range(width):
        b.xnor(f"eq{i}", f"a{i}", f"b{i}")
        eq_terms.append(f"eq{i}")
        b.not_(f"nb{i}", f"b{i}")
        higher = [f"eq{j}" for j in range(i + 1, width)]
        b.and_(f"gt{i}", f"a{i}", f"nb{i}", *higher)
        gt_terms.append(f"gt{i}")
    if width == 1:
        b.buf("eq", eq_terms[0])
        b.buf("gt", gt_terms[0])
    else:
        b.and_("eq", *eq_terms)
        b.or_("gt", *gt_terms)
    b.outputs("eq", "gt")
    return b.build()


def decoder(width: int, name: Optional[str] = None) -> Circuit:
    """*width*-to-2^*width* line decoder."""
    if width < 1:
        raise ValueError("width must be >= 1")
    b = CircuitBuilder(name or f"dec{width}")
    b.inputs(*[f"a{i}" for i in range(width)])
    for i in range(width):
        b.not_(f"n{i}", f"a{i}")
    outs: List[str] = []
    for code in range(1 << width):
        terms = [
            (f"a{i}" if (code >> i) & 1 else f"n{i}") for i in range(width)
        ]
        out = f"o{code}"
        if width == 1:
            b.buf(out, terms[0])
        else:
            b.and_(out, *terms)
        outs.append(out)
    b.outputs(*outs)
    return b.build()


# ---------------------------------------------------------------------------
# profile-driven random DAGs
# ---------------------------------------------------------------------------

#: Gate-type mix profiles loosely matching ISCAS circuit families.
PROFILES: Dict[str, Dict[GateType, float]] = {
    "nand_heavy": {
        GateType.NAND: 0.45,
        GateType.NOR: 0.15,
        GateType.AND: 0.1,
        GateType.OR: 0.1,
        GateType.NOT: 0.15,
        GateType.BUF: 0.05,
    },
    "xor_rich": {
        GateType.XOR: 0.35,
        GateType.XNOR: 0.1,
        GateType.AND: 0.2,
        GateType.OR: 0.15,
        GateType.NAND: 0.1,
        GateType.NOT: 0.1,
    },
    "balanced": {
        GateType.AND: 0.22,
        GateType.OR: 0.22,
        GateType.NAND: 0.18,
        GateType.NOR: 0.13,
        GateType.XOR: 0.1,
        GateType.NOT: 0.1,
        GateType.BUF: 0.05,
    },
}


def random_dag(
    n_inputs: int,
    n_gates: int,
    seed: int,
    profile: str = "balanced",
    locality: int = 48,
    reconvergence: float = 0.3,
    max_fanin: int = 3,
    name: Optional[str] = None,
) -> Circuit:
    """Deterministic random circuit with a controlled structure.

    Args:
        n_inputs: number of primary inputs.
        n_gates: number of gates to create.
        seed: PRNG seed; identical arguments give identical circuits.
        profile: gate-type mix, a key of :data:`PROFILES`.
        locality: fanins are drawn from the most recent *locality*
            signals, which controls circuit depth.
        reconvergence: probability that a fanin is drawn from the whole
            history instead of the local window (creates reconvergent
            fanout, the structure that makes path counts explode and
            creates redundant paths).
        max_fanin: largest fanin for AND/OR-family gates.
        name: circuit name (defaults to a descriptive string).
    """
    if n_inputs < 2 or n_gates < 1:
        raise ValueError("need n_inputs >= 2 and n_gates >= 1")
    try:
        weights = PROFILES[profile]
    except KeyError:
        raise ValueError(f"unknown profile {profile!r}") from None
    rng = random.Random(seed)
    types = list(weights)
    cum = list(weights.values())

    circuit = Circuit(name=name or f"rand_{profile}_{n_inputs}x{n_gates}_s{seed}")
    signals: List[int] = [circuit.add_input(f"pi{k}") for k in range(n_inputs)]

    for g in range(n_gates):
        gate_type = rng.choices(types, weights=cum, k=1)[0]
        if gate_type in (GateType.NOT, GateType.BUF):
            fanin_count = 1
        elif gate_type in (GateType.XOR, GateType.XNOR):
            fanin_count = 2
        else:
            fanin_count = rng.randint(2, max_fanin)
        chosen: List[int] = []
        window = signals[-locality:]
        while len(chosen) < fanin_count:
            pool = signals if rng.random() < reconvergence else window
            pick = rng.choice(pool)
            if pick not in chosen:
                chosen.append(pick)
            elif len(set(window) - set(chosen)) == 0 and len(
                set(signals) - set(chosen)
            ) == 0:
                break
        if len(chosen) < max(1, fanin_count if fanin_count == 1 else 2):
            gate_type = GateType.BUF
            chosen = chosen[:1] or [signals[-1]]
        signals.append(circuit.add_gate(f"g{g}", gate_type, chosen))

    # every sink (signal with no reader) becomes a primary output
    readers = set()
    for gate in circuit.gates:
        readers.update(gate.fanin)
    sinks = [g.index for g in circuit.gates if g.index not in readers]
    for index in sinks:
        circuit.mark_output(index)
    return circuit.freeze()


#: Name -> factory for parameterized generators (used by the CLI).
GENERATORS = {
    "rca": ripple_carry_adder,
    "cla": carry_lookahead_adder,
    "mul": array_multiplier,
    "parity": parity_tree,
    "muxtree": mux_tree,
    "ladder": reconvergent_ladder,
    "cmp": comparator,
    "dec": decoder,
}
