"""Reader/writer for the ISCAS ``.bench`` netlist format.

The paper evaluates on the ISCAS85 combinational and ISCAS89 sequential
benchmark suites, which are distributed in the ``.bench`` format:

.. code-block:: text

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)

Sequential circuits additionally contain ``DFF`` pseudo-gates.  The
paper states: *"When sequential circuits are processed, only the
combinational part is considered."*  We do the same: every ``DFF``
output becomes a pseudo primary input and every ``DFF`` input becomes a
pseudo primary output, which is the standard full-scan interpretation.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .circuit import Circuit, CircuitError
from .gates import GateType, gate_type_from_name

_LINE_RE = re.compile(
    r"""^\s*
        (?P<out>[^\s=()]+)\s*=\s*
        (?P<type>[A-Za-z][A-Za-z0-9_]*)\s*
        \(\s*(?P<ins>[^)]*)\)\s*$""",
    re.VERBOSE,
)
_IO_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\(\s*(?P<name>[^)\s]+)\s*\)\s*$", re.I)


class BenchFormatError(CircuitError):
    """Raised when a ``.bench`` file cannot be parsed."""

    def __init__(self, message: str, line_no: int | None = None):
        if line_no is not None:
            message = f"line {line_no}: {message}"
        super().__init__(message)
        self.line_no = line_no


def parse_bench(text: str, name: str = "bench") -> Circuit:
    """Parse ``.bench`` *text* into a frozen :class:`Circuit`.

    Flip-flops are cut: ``Q = DFF(D)`` introduces pseudo input ``Q``
    and marks ``D`` as a pseudo output, so the returned circuit is
    purely combinational.
    """
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Tuple[str, str, List[str], int]] = []
    dff_pairs: List[Tuple[str, str]] = []  # (Q, D)

    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            kind = io_match.group("kind").upper()
            signal = io_match.group("name")
            (inputs if kind == "INPUT" else outputs).append(signal)
            continue
        gate_match = _LINE_RE.match(line)
        if not gate_match:
            raise BenchFormatError(f"unparseable line: {raw.strip()!r}", line_no)
        out = gate_match.group("out")
        gtype = gate_match.group("type").upper()
        ins = [s.strip() for s in gate_match.group("ins").split(",") if s.strip()]
        if gtype == "DFF":
            if len(ins) != 1:
                raise BenchFormatError(f"DFF must have one input, got {ins}", line_no)
            dff_pairs.append((out, ins[0]))
            continue
        try:
            gate_type_from_name(gtype)
        except ValueError as exc:
            raise BenchFormatError(str(exc), line_no) from None
        gates.append((out, gtype, ins, line_no))

    circuit = Circuit(name=name)
    for signal in inputs:
        circuit.add_input(signal)
    for q, _d in dff_pairs:
        circuit.add_input(q)  # flip-flop output feeds the combinational core

    pending: Dict[str, Tuple[str, List[str], int]] = {}
    for out, gtype, ins, line_no in gates:
        if out in pending or out in circuit.name_to_index:
            raise BenchFormatError(f"signal {out!r} driven twice", line_no)
        pending[out] = (gtype, ins, line_no)

    # emit in dependency order (iterative DFS; .bench files list gates
    # in arbitrary order)
    emitted = set(circuit.name_to_index)
    for target in list(pending):
        if target in emitted:
            continue
        stack: List[Tuple[str, bool]] = [(target, False)]
        on_stack = {target}
        while stack:
            signal, expanded = stack.pop()
            if signal in emitted:
                continue
            entry = pending.get(signal)
            if entry is None:
                raise BenchFormatError(f"signal {signal!r} is never driven")
            gtype, ins, line_no = entry
            if expanded:
                # single-input AND/OR degenerate to BUF; NAND/NOR to NOT
                effective = gtype
                if len(ins) == 1 and gtype in ("AND", "OR"):
                    effective = "BUF"
                elif len(ins) == 1 and gtype in ("NAND", "NOR"):
                    effective = "NOT"
                try:
                    circuit.add_gate(signal, effective, ins)
                except CircuitError as exc:
                    raise BenchFormatError(str(exc), line_no) from None
                emitted.add(signal)
                on_stack.discard(signal)
                continue
            stack.append((signal, True))
            for f in ins:
                if f in emitted:
                    continue
                if f in on_stack:
                    raise BenchFormatError(f"combinational cycle through {f!r}")
                if f not in pending:
                    raise BenchFormatError(
                        f"signal {f!r} used by {signal!r} is never driven", line_no
                    )
                on_stack.add(f)
                stack.append((f, False))

    for signal in outputs:
        circuit.mark_output(signal)
    for _q, d in dff_pairs:
        circuit.mark_output(d)  # flip-flop input is observed by the scan chain
    return circuit.freeze()


def load_bench(path: str | Path) -> Circuit:
    """Parse the ``.bench`` file at *path*."""
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(circuit: Circuit) -> str:
    """Serialize *circuit* back to ``.bench`` text.

    ``parse_bench(write_bench(c))`` reproduces the structure exactly
    (round-trip property covered by the tests).
    """
    lines: List[str] = [f"# {circuit.name}"]
    for i in circuit.inputs:
        lines.append(f"INPUT({circuit.signal_name(i)})")
    for o in circuit.outputs:
        lines.append(f"OUTPUT({circuit.signal_name(o)})")
    for gate in circuit.gates:
        if gate.is_input:
            continue
        ins = ", ".join(circuit.signal_name(f) for f in gate.fanin)
        type_name = {GateType.BUF: "BUFF", GateType.NOT: "NOT"}.get(
            gate.gate_type, gate.gate_type.value
        )
        lines.append(f"{gate.name} = {type_name}({ins})")
    return "\n".join(lines) + "\n"


def save_bench(circuit: Circuit, path: str | Path) -> None:
    """Write *circuit* to a ``.bench`` file at *path*."""
    Path(path).write_text(write_bench(circuit))
