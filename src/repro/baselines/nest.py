"""Non-enumerative path delay fault coverage estimation (NEST-like).

NEST (Pomeranz, Reddy & Uppaluri, DAC 1993) estimates path delay fault
coverage without enumerating paths — essential when circuits have more
paths than can be listed.  The paper declines a direct numeric
comparison ("always keeping in mind the different intentions of the
two tools"); we reproduce the capability itself:

For one two-vector test, the set of detected paths forms a subgraph:
an edge (driver -> gate) can lie on a detected path iff every *other*
input of the gate satisfies the off-path condition for the chosen test
class under the simulated 7-valued values.  Counting source-to-sink
paths in that subgraph is a linear-time DP — no enumeration.

Across a test *set*, the exact union requires per-path bookkeeping, so
the estimator reports the standard bounds:

* ``lower_bound`` — the largest single-pattern count (all those paths
  are definitely distinct detections),
* ``upper_bound`` — the sum over patterns (counts overlaps multiple
  times),
* ``exact_union`` — optional, enumeration-based, for circuits whose
  path count is below a cap (used to validate the bounds in tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..circuit import Circuit, controlling_value
from ..paths import TestClass, iter_paths
from ..sim.delay_sim import PatternLike, simulate_planes


@dataclass
class CoverageEstimate:
    """Non-enumerative coverage bounds for a test set."""

    per_pattern: List[int]
    lower_bound: int
    upper_bound: int
    exact_union: Optional[int] = None

    @property
    def n_patterns(self) -> int:
        return len(self.per_pattern)


class NestEstimator:
    """Count detected paths per pattern without enumerating them."""

    def __init__(self, circuit: Circuit, test_class: TestClass = TestClass.NONROBUST):
        self.circuit = circuit
        self.test_class = test_class

    # ------------------------------------------------------------------
    def _edge_sensitized(self, values, lane: int, gate_index: int, driver: int) -> bool:
        """May (driver -> gate) lie on a detected path in this lane?"""
        gate = self.circuit.gates[gate_index]
        control = controlling_value(gate.gate_type)
        robust = self.test_class is TestClass.ROBUST
        bit = 1 << lane
        # the on-path input's final value decides the off-path rule
        dz, do, _ds, _di = values[driver]
        on_final = 1 if (do & bit) else 0
        for fanin_signal in gate.fanin:
            if fanin_signal == driver:
                continue
            fz, fo, fs, _fi = values[fanin_signal]
            if control is None:
                if robust and not (fs & bit):
                    return False
                continue
            nc = 1 - control
            has_nc = fo if nc == 1 else fz
            if not (has_nc & bit):
                return False
            if robust and on_final == nc and not (fs & bit):
                return False
        return True

    def count_detected_paths(self, pattern: PatternLike) -> int:
        """Paths detected by one pattern — a DP, not an enumeration."""
        values, width = simulate_planes(self.circuit, [pattern])
        if width == 0:
            return 0
        lane = 0
        bit = 1 << lane
        circuit = self.circuit
        out_set = set(circuit.outputs)
        # paths_from[s]: detected-subgraph paths from s to any output
        paths_from = [0] * circuit.num_signals
        for index in reversed(circuit.topological_order()):
            total = 1 if index in out_set else 0
            for g in circuit.fanout(index):
                if paths_from[g] and self._edge_sensitized(values, lane, g, index):
                    total += paths_from[g]
            paths_from[index] = total
        # launch condition: the path input must actually transition
        total = 0
        for pi in circuit.inputs:
            _z, _o, _s, i = values[pi]
            if i & bit:
                total += paths_from[pi]
        return total

    # ------------------------------------------------------------------
    def estimate(
        self,
        patterns: Sequence[PatternLike],
        exact_cap: Optional[int] = None,
    ) -> CoverageEstimate:
        """Coverage bounds over a test set.

        With ``exact_cap`` set, circuits whose structural path count
        does not exceed the cap also get the exact union via (bounded)
        enumeration — the validation mode.
        """
        per_pattern = [self.count_detected_paths(p) for p in patterns]
        lower = max(per_pattern, default=0)
        upper = sum(per_pattern)
        exact = None
        if exact_cap is not None:
            exact = self._exact_union(patterns, exact_cap)
        return CoverageEstimate(per_pattern, lower, upper, exact)

    def _exact_union(self, patterns: Sequence[PatternLike], cap: int) -> Optional[int]:
        paths = list(iter_paths(self.circuit, max_paths=cap + 1))
        if len(paths) > cap:
            return None
        detected: Set[Tuple[int, ...]] = set()
        for pattern in patterns:
            values, width = simulate_planes(self.circuit, [pattern])
            if width == 0:
                continue
            for path in paths:
                z, o, s, i = values[path[0]]
                if not (i & 1):
                    continue
                if all(
                    self._edge_sensitized(values, 0, path[k + 1], path[k])
                    for k in range(len(path) - 1)
                ):
                    detected.add(path)
        return len(detected)
