"""BDD-based path delay test generation (the TSUNAMI-D-like baseline).

TSUNAMI-D (Bhattacharya, Agrawal & Agrawal, DAC 1992) generates delay
tests from Boolean expressions; the paper's Tables 7/8 use it as the
BDD-flavoured comparison point.  This baseline reproduces that
approach's character:

* every circuit signal gets an ROBDD over the primary-input variables,
* a fault's sensitization condition is one conjunction over its
  off-path constraints, and ``satisfy_one`` yields the pattern,
* redundancy is exact (condition == FALSE) — *within its test-class
  approximation* (see below),
* the whole method lives or dies with BDD size: a node limit turns
  blow-up into an abort, which is how the original degrades on the
  larger circuits.

**Test-class deviation.**  For robust tests this baseline encodes
*static* stability over the two vectors (same settled value under V1
and V2) and cannot see hazards, so it admits slightly more tests than
the hazard-aware 7-valued logic of the main engine.  The paper notes
exactly this about TSUNAMI-D: "TSUNAMI-D is based on a slightly
deviated test class compared to TIP and DYNAMITE".
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit import Circuit, GateType, controlling_value
from ..core.patterns import TestPattern
from ..core.results import FaultRecord, FaultStatus, TpgReport
from ..paths import PathDelayFault, TestClass
from .bdd import FALSE, Bdd, BddLimitExceeded


def build_signal_bdds(circuit: Circuit, bdd: Bdd, var_offset: int = 0) -> List[int]:
    """One BDD node per signal, inputs mapped to vars starting at offset."""
    nodes: List[int] = [FALSE] * circuit.num_signals
    for position, pi in enumerate(circuit.inputs):
        nodes[pi] = bdd.var(var_offset + position)
    for index in circuit.topological_order():
        gate = circuit.gates[index]
        if gate.is_input:
            continue
        operands = [nodes[f] for f in gate.fanin]
        t = gate.gate_type
        if t is GateType.BUF:
            node = operands[0]
        elif t is GateType.NOT:
            node = bdd.not_(operands[0])
        elif t in (GateType.AND, GateType.NAND):
            node = operands[0]
            for other in operands[1:]:
                node = bdd.and_(node, other)
            if t is GateType.NAND:
                node = bdd.not_(node)
        elif t in (GateType.OR, GateType.NOR):
            node = operands[0]
            for other in operands[1:]:
                node = bdd.or_(node, other)
            if t is GateType.NOR:
                node = bdd.not_(node)
        elif t in (GateType.XOR, GateType.XNOR):
            node = operands[0]
            for other in operands[1:]:
                node = bdd.xor(node, other)
            if t is GateType.XNOR:
                node = bdd.not_(node)
        else:  # pragma: no cover - closed enum
            raise ValueError(f"unhandled gate type {t}")
        nodes[index] = node
    return nodes


class BddPathAtpg:
    """Path delay ATPG via sensitization-condition BDDs."""

    def __init__(self, circuit: Circuit, node_limit: int = 200_000):
        self.circuit = circuit
        self.node_limit = node_limit
        self._nonrobust: Optional[Tuple[Bdd, List[int]]] = None
        self._robust: Optional[Tuple[Bdd, List[int], List[int]]] = None

    # ------------------------------------------------------------------
    def _nonrobust_bdds(self) -> Tuple[Bdd, List[int]]:
        if self._nonrobust is None:
            bdd = Bdd(len(self.circuit.inputs), node_limit=self.node_limit)
            nodes = build_signal_bdds(self.circuit, bdd)
            self._nonrobust = (bdd, nodes)
        return self._nonrobust

    def _robust_bdds(self) -> Tuple[Bdd, List[int], List[int]]:
        if self._robust is None:
            n = len(self.circuit.inputs)
            bdd = Bdd(2 * n, node_limit=self.node_limit)
            v1_nodes = build_signal_bdds(self.circuit, bdd, var_offset=0)
            v2_nodes = build_signal_bdds(self.circuit, bdd, var_offset=n)
            self._robust = (bdd, v1_nodes, v2_nodes)
        return self._robust

    # ------------------------------------------------------------------
    def generate(
        self, fault: PathDelayFault, test_class: TestClass
    ) -> Tuple[FaultStatus, Optional[TestPattern]]:
        """Classify one fault; returns (status, pattern or None)."""
        try:
            if test_class is TestClass.ROBUST:
                return self._generate_robust(fault)
            return self._generate_nonrobust(fault)
        except BddLimitExceeded:
            return FaultStatus.ABORTED, None

    def _literal(self, bdd: Bdd, node: int, value: int) -> int:
        return node if value else bdd.not_(node)

    def _generate_nonrobust(
        self, fault: PathDelayFault
    ) -> Tuple[FaultStatus, Optional[TestPattern]]:
        bdd, nodes = self._nonrobust_bdds()
        finals = fault.final_values(self.circuit)
        condition = self._literal(bdd, nodes[fault.input_signal], finals[0])
        for position, signal in enumerate(fault.signals):
            if position == 0:
                continue
            gate = self.circuit.gates[signal]
            on_path = fault.signals[position - 1]
            control = controlling_value(gate.gate_type)
            for fanin_signal in gate.fanin:
                if fanin_signal == on_path or control is None:
                    continue  # XOR side inputs carry no final-value constraint
                condition = bdd.and_(
                    condition,
                    self._literal(bdd, nodes[fanin_signal], 1 - control),
                )
            if condition == FALSE:
                return FaultStatus.REDUNDANT, None
        model = bdd.satisfy_one(condition)
        if model is None:
            return FaultStatus.REDUNDANT, None
        v2 = [model.get(k, 0) for k in range(len(self.circuit.inputs))]
        v1 = list(v2)
        launch = self.circuit.inputs.index(fault.input_signal)
        v1[launch] = 1 - v2[launch]
        return FaultStatus.TESTED, TestPattern(tuple(v1), tuple(v2), fault)

    def _generate_robust(
        self, fault: PathDelayFault
    ) -> Tuple[FaultStatus, Optional[TestPattern]]:
        from ..core.sensitize import path_final_values, xor_side_signals

        bdd, v1_nodes, v2_nodes = self._robust_bdds()
        circuit = self.circuit
        pi = fault.input_signal
        # launch: V1 value, V2 value at the path input
        launch = bdd.and_(
            self._literal(bdd, v1_nodes[pi], fault.transition.initial),
            self._literal(bdd, v2_nodes[pi], fault.transition.final),
        )
        # the stability placement depends on the XOR side polarities,
        # so the full condition is the disjunction over all of them
        sides = xor_side_signals(circuit, fault)
        if len(sides) > 8:
            return FaultStatus.ABORTED, None
        condition = FALSE
        for combo in range(1 << len(sides)):
            xor_sides = {s: (combo >> k) & 1 for k, s in enumerate(sides)}
            condition = bdd.or_(
                condition,
                self._robust_combo_condition(
                    bdd, v1_nodes, v2_nodes, fault, launch, xor_sides
                ),
            )
        model = bdd.satisfy_one(condition)
        if model is None:
            return FaultStatus.REDUNDANT, None
        n = len(circuit.inputs)
        v1 = [model.get(k, 0) for k in range(n)]
        v2 = [model.get(n + k, v1[k]) for k in range(n)]
        return FaultStatus.TESTED, TestPattern(tuple(v1), tuple(v2), fault)

    def _robust_combo_condition(
        self, bdd, v1_nodes, v2_nodes, fault, launch, xor_sides
    ) -> int:
        from ..core.sensitize import path_final_values

        circuit = self.circuit
        finals = path_final_values(circuit, fault, xor_sides)
        condition = launch
        for position, signal in enumerate(fault.signals):
            if position == 0:
                continue
            gate = circuit.gates[signal]
            on_path = fault.signals[position - 1]
            on_path_final = finals[position - 1]
            control = controlling_value(gate.gate_type)
            for fanin_signal in gate.fanin:
                if fanin_signal == on_path:
                    continue
                if control is None:
                    # XOR side: statically stable at its chosen polarity
                    value = xor_sides.get(fanin_signal, 0)
                    condition = bdd.and_(
                        condition,
                        bdd.and_(
                            self._literal(bdd, v1_nodes[fanin_signal], value),
                            self._literal(bdd, v2_nodes[fanin_signal], value),
                        ),
                    )
                    continue
                nc = 1 - control
                condition = bdd.and_(
                    condition, self._literal(bdd, v2_nodes[fanin_signal], nc)
                )
                if on_path_final == nc:
                    # stable non-controlling: same value under V1 too
                    condition = bdd.and_(
                        condition, self._literal(bdd, v1_nodes[fanin_signal], nc)
                    )
            if condition == FALSE:
                return FALSE
        return condition


def generate_tests_bdd(
    circuit: Circuit,
    faults: Sequence[PathDelayFault],
    test_class: TestClass = TestClass.NONROBUST,
    node_limit: int = 200_000,
) -> TpgReport:
    """Run the BDD baseline over a fault list; returns a TpgReport."""
    report = TpgReport(
        circuit_name=circuit.name, test_class=test_class, width=1
    )
    atpg = BddPathAtpg(circuit, node_limit=node_limit)
    t0 = time.perf_counter()
    for fault in faults:
        status, pattern = atpg.generate(fault, test_class)
        report.records.append(FaultRecord(fault, status, pattern, mode="bdd"))
    report.seconds_generate = time.perf_counter() - t0
    return report
