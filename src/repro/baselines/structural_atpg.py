"""Structural single-bit path delay ATPG (the DYNAMITE-like baseline).

DYNAMITE (Fuchs, Fink & Schulz, TCAD 1991) is the structural
comparison point of the paper's Tables 7/8: a conventional
one-fault-at-a-time generator with test classes.  This baseline keeps
that character deliberately:

* strictly single bit level (one fault, one alternative at a time),
* forward-only implications (no unique backward implications), which
  matches the older generation of structural tools and makes the
  engine visibly weaker than TIP's "best suited implication
  procedure",
* depth-based backtrace guidance instead of SCOAP, and
* conventional backtracking with a backtrack limit.

Because it shares the sensitization rules and logic algebras with the
main engine, the comparison isolates exactly the paper's claims: the
value of bit-parallel lanes and strong bit-parallel implications.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..circuit import Circuit
from ..core.aptpg import run_aptpg
from ..core.controllability import Controllability
from ..core.results import FaultRecord, FaultStatus, TpgReport
from ..paths import PathDelayFault, TestClass
from ..sim.delay_sim import DelayFaultSimulator


def depth_controllability(circuit: Circuit) -> Controllability:
    """Depth-based guidance: cost of a signal is its logic level.

    The classic structural heuristic before SCOAP-style measures:
    prefer shallow cones when justifying values.
    """
    levels = [circuit.level(i) + 1 for i in range(circuit.num_signals)]
    return Controllability(cc0=list(levels), cc1=list(levels))


def generate_tests_structural(
    circuit: Circuit,
    faults: Sequence[PathDelayFault],
    test_class: TestClass = TestClass.NONROBUST,
    backtrack_limit: int = 64,
    drop_faults: bool = True,
) -> TpgReport:
    """Run the structural baseline over a fault list.

    One APTPG pass per fault with ``width=1`` (no lane alternatives),
    forward-only implications and depth guidance; fault dropping by
    PPSFP after each generated pattern (DYNAMITE also used fault
    simulation).
    """
    report = TpgReport(circuit_name=circuit.name, test_class=test_class, width=1)
    guidance = depth_controllability(circuit)
    simulator = DelayFaultSimulator(circuit, test_class)
    records: List[Optional[FaultRecord]] = [None] * len(faults)
    fresh_patterns: List = []

    def drop() -> None:
        if not drop_faults or not fresh_patterns:
            return
        t0 = time.perf_counter()
        candidates = [i for i, r in enumerate(records) if r is None]
        hits = simulator.detected_faults(
            fresh_patterns, [faults[i] for i in candidates]
        )
        for i in candidates:
            if hits[faults[i]]:
                records[i] = FaultRecord(
                    faults[i], FaultStatus.SIMULATED, mode="simulation"
                )
        report.seconds_simulate += time.perf_counter() - t0
        fresh_patterns.clear()

    t_start = time.perf_counter()
    for index, fault in enumerate(faults):
        if records[index] is not None:
            continue
        outcome = run_aptpg(
            circuit,
            fault,
            test_class,
            width=1,
            controllability=guidance,
            backtrack_limit=backtrack_limit,
            use_backward=False,
        )
        report.seconds_sensitize += outcome.seconds_sensitize
        report.decisions += outcome.decisions
        report.backtracks += outcome.backtracks
        report.implication_passes += outcome.state.implication_passes
        records[index] = FaultRecord(
            fault, outcome.status, outcome.pattern, mode="structural"
        )
        if outcome.pattern is not None:
            fresh_patterns.append(outcome.pattern)
            if len(fresh_patterns) >= 32:
                drop()
    drop()

    total = time.perf_counter() - t_start
    report.seconds_generate = max(
        0.0, total - report.seconds_sensitize - report.seconds_simulate
    )
    report.records = [r for r in records if r is not None]
    return report
