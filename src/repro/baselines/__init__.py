"""Comparison baselines: BDD-based (TSUNAMI-D-like), structural
single-bit (DYNAMITE-like), non-enumerative estimation (NEST-like)."""

from .bdd import FALSE, TRUE, Bdd, BddLimitExceeded
from .bdd_atpg import BddPathAtpg, build_signal_bdds, generate_tests_bdd
from .structural_atpg import depth_controllability, generate_tests_structural
from .nest import CoverageEstimate, NestEstimator

__all__ = [
    "Bdd",
    "BddLimitExceeded",
    "BddPathAtpg",
    "CoverageEstimate",
    "FALSE",
    "NestEstimator",
    "TRUE",
    "build_signal_bdds",
    "depth_controllability",
    "generate_tests_bdd",
    "generate_tests_structural",
]
