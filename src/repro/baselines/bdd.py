"""A reduced ordered binary decision diagram (ROBDD) package.

Substrate for the TSUNAMI-D-like comparison baseline (the paper's
Tables 7 and 8 compare against TSUNAMI-D, "an efficient BDD-based
approach").  Classic Bryant-style implementation:

* hash-consed nodes ``(var, low, high)`` with the two terminals,
* the ``ite`` (if-then-else) operator with a computed table,
* restriction, satisfiability, model counting and evaluation.

A configurable node limit makes BDD blow-up a first-class outcome —
the experiments report it as an abort, which is exactly how BDD-based
ATPG degrades on large circuits ("BDDs are known to be best suited for
test generation as long as the BDD can be constructed").
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

#: Terminal node ids.
FALSE = 0
TRUE = 1


class BddLimitExceeded(Exception):
    """Raised when the node limit is hit (BDD blow-up)."""


class Bdd:
    """An ROBDD manager over variables ``0 .. num_vars - 1``.

    Variable order is the numeric order; callers map their problem
    variables (e.g. primary inputs) onto indices however they like.
    """

    def __init__(self, num_vars: int, node_limit: Optional[int] = None):
        if num_vars < 0:
            raise ValueError("num_vars must be >= 0")
        self.num_vars = num_vars
        self.node_limit = node_limit
        # nodes[id] = (var, low, high); terminals get var = num_vars
        self._nodes: List[Tuple[int, int, int]] = [
            (num_vars, FALSE, FALSE),
            (num_vars, TRUE, TRUE),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------
    def _mk(self, var: int, low: int, high: int) -> int:
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is not None:
            return node
        if self.node_limit is not None and len(self._nodes) >= self.node_limit:
            raise BddLimitExceeded(
                f"BDD exceeded {self.node_limit} nodes"
            )
        node = len(self._nodes)
        self._nodes.append(key)
        self._unique[key] = node
        return node

    def var_of(self, node: int) -> int:
        return self._nodes[node][0]

    def cofactors(self, node: int) -> Tuple[int, int]:
        _var, low, high = self._nodes[node]
        return low, high

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    def var(self, index: int) -> int:
        """The function of variable *index*."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable {index} out of range")
        return self._mk(index, FALSE, TRUE)

    def nvar(self, index: int) -> int:
        """The negation of variable *index*."""
        return self._mk(index, TRUE, FALSE)

    def const(self, value: bool) -> int:
        return TRUE if value else FALSE

    # ------------------------------------------------------------------
    # the ite operator and derived connectives
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """if *f* then *g* else *h* (the universal connective)."""
        if f == TRUE:
            return g
        if f == FALSE:
            return h
        if g == h:
            return g
        if g == TRUE and h == FALSE:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self.var_of(f), self.var_of(g), self.var_of(h))
        f0, f1 = self._cofactor_pair(f, top)
        g0, g1 = self._cofactor_pair(g, top)
        h0, h1 = self._cofactor_pair(h, top)
        low = self.ite(f0, g0, h0)
        high = self.ite(f1, g1, h1)
        result = self._mk(top, low, high)
        self._ite_cache[key] = result
        return result

    def _cofactor_pair(self, node: int, var: int) -> Tuple[int, int]:
        if self.var_of(node) == var:
            return self.cofactors(node)
        return node, node

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, FALSE)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, TRUE, g)

    def not_(self, f: int) -> int:
        return self.ite(f, FALSE, TRUE)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def xnor(self, f: int, g: int) -> int:
        return self.ite(f, g, self.not_(g))

    def implies(self, f: int, g: int) -> int:
        return self.ite(f, g, TRUE)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def restrict(self, f: int, var: int, value: int) -> int:
        """Cofactor of *f* with *var* fixed to *value*."""
        if f in (TRUE, FALSE):
            return f
        v, low, high = self._nodes[f]
        if v > var:
            return f
        if v == var:
            return high if value else low
        return self._mk(
            v,
            self.restrict(low, var, value),
            self.restrict(high, var, value),
        )

    def evaluate(self, f: int, assignment: Dict[int, int]) -> bool:
        """Evaluate under a full variable assignment."""
        node = f
        while node not in (TRUE, FALSE):
            var, low, high = self._nodes[node]
            node = high if assignment.get(var, 0) else low
        return node == TRUE

    def satisfy_one(self, f: int) -> Optional[Dict[int, int]]:
        """One satisfying assignment (unmentioned variables are free)."""
        if f == FALSE:
            return None
        assignment: Dict[int, int] = {}
        node = f
        while node != TRUE:
            var, low, high = self._nodes[node]
            if low != FALSE:
                assignment[var] = 0
                node = low
            else:
                assignment[var] = 1
                node = high
        return assignment

    def count_sat(self, f: int) -> int:
        """Number of satisfying assignments over all variables."""
        cache: Dict[int, int] = {}

        def count_from(node: int) -> int:
            """Models over the variables indexed >= var_of(node)."""
            if node == FALSE:
                return 0
            if node == TRUE:
                return 1
            if node in cache:
                return cache[node]
            var, low, high = self._nodes[node]
            total = (count_from(low) << (self.var_of(low) - var - 1)) + (
                count_from(high) << (self.var_of(high) - var - 1)
            )
            cache[node] = total
            return total

        return count_from(f) << self.var_of(f) if f != FALSE else 0

    def iter_models(self, f: int) -> Iterator[Dict[int, int]]:
        """Yield all satisfying assignments (partial: free vars omitted)."""
        if f == FALSE:
            return
        stack: List[Tuple[int, Dict[int, int]]] = [(f, {})]
        while stack:
            node, partial = stack.pop()
            if node == TRUE:
                yield partial
                continue
            if node == FALSE:
                continue
            var, low, high = self._nodes[node]
            stack.append((low, {**partial, var: 0}))
            stack.append((high, {**partial, var: 1}))

    def size_of(self, f: int) -> int:
        """Number of reachable nodes of function *f* (incl. terminals)."""
        seen = set()
        stack = [f]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node not in (TRUE, FALSE):
                _var, low, high = self._nodes[node]
                stack.extend((low, high))
        return len(seen)
