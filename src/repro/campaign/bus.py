"""The global drop bus: cross-shard collateral fault dropping.

The paper's practical speed-up comes from running PPSFP "after every L
generated test patterns" and dropping every pending fault the fresh
patterns happen to detect.  In a sharded campaign the bus is what
makes that *global*: all shards' fresh patterns of a round are merged
(in deterministic batch order) and one batched simulation pass runs
over every still-pending fault — window faults and deferred APTPG
queue entries alike — so collateral detection crosses shard boundaries
exactly as it does in the serial engine.

The bus also owns the two scalability mechanisms around the pattern
set:

* **admission dropping** — a fault newly pulled from the streamed
  universe is first checked against the whole retained pattern set
  (one bulk PPSFP pass on the numpy backend); faults already covered
  never enter the pending window.  This is equivalent to having kept
  the fault pending through every earlier round (the union of the
  per-round checks), which is what makes the bounded window
  semantics-preserving.
* **incremental compaction** — when enabled, the retained set is
  periodically re-compacted with reverse-order dropping
  (:mod:`repro.core.compaction`) against its targets *plus* every
  collaterally dropped fault (the coverage obligations), so the final
  set still detects everything the report claims, while bounding the
  memory and admission-check cost of long campaigns.

One :class:`repro.sim.delay_sim.DelayFaultSimulator` instance is
reused for every admission check and drop round — the compiled kernel
and backend selection are paid once per campaign.  The ``backend``
knob passes straight through to the simulator, so a campaign run with
``sim_backend="native"`` does all its admission and drop PPSFP inside
the circuit's compiled-C module (building it once up front).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..circuit import Circuit
from ..core.patterns import TestPattern
from ..paths import PathDelayFault, TestClass
from ..sim.delay_sim import DelayFaultSimulator


class DropBus:
    """Merges fresh patterns and drops detected pending faults."""

    def __init__(
        self,
        circuit: Circuit,
        test_class: TestClass,
        *,
        backend: str = "auto",
        fusion: str = "auto",
        enabled: bool = True,
        compact_every: Optional[int] = None,
    ):
        self.simulator = DelayFaultSimulator(
            circuit, test_class, backend=backend, fusion=fusion
        )
        self.circuit = circuit
        self.test_class = test_class
        self.enabled = enabled
        self.compact_every = compact_every
        self.patterns: List[TestPattern] = []
        self.seconds_simulate = 0.0
        self.compactions = 0
        self.patterns_compacted_away = 0
        self._since_compaction = 0
        # Coverage obligations: faults settled as SIMULATED were
        # detected by the retained set at drop time, so compaction
        # must keep them covered even though no retained pattern
        # *targets* them.  Only tracked when compaction is on (the
        # list grows with every drop).
        self.obligations: List[PathDelayFault] = []

    # ------------------------------------------------------------ rounds
    def absorb(
        self,
        fresh: Sequence[TestPattern],
        pending: Dict[int, PathDelayFault],
    ) -> List[int]:
        """Retain *fresh* patterns; return pending indices they detect.

        *pending* is the campaign's live index->fault map (already
        stripped of settled faults, so no rescan of the full universe
        happens here — the set only ever shrinks).
        """
        dropped: List[int] = []
        if fresh and self.enabled and pending:
            t0 = time.perf_counter()
            indices = list(pending)
            masks = self.simulator.detection_masks(
                list(fresh), [pending[i] for i in indices]
            )
            dropped = [i for i, mask in zip(indices, masks) if mask]
            self.seconds_simulate += time.perf_counter() - t0
            if self.compact_every is not None:
                self.obligations.extend(pending[i] for i in dropped)
        self.patterns.extend(fresh)
        self._since_compaction += len(fresh)
        self._maybe_compact()
        return dropped

    def admit(
        self, arrivals: Sequence[Tuple[int, PathDelayFault]]
    ) -> Tuple[List[Tuple[int, PathDelayFault]], List[int]]:
        """Split newly streamed faults into (still pending, dropped).

        Checks each arrival against the full retained pattern set in
        one bulk pass; order is preserved for the pending survivors.
        """
        if not arrivals or not self.enabled or not self.patterns:
            return list(arrivals), []
        t0 = time.perf_counter()
        masks = self.simulator.detection_masks(
            self.patterns, [fault for _index, fault in arrivals]
        )
        self.seconds_simulate += time.perf_counter() - t0
        fresh: List[Tuple[int, PathDelayFault]] = []
        dropped: List[int] = []
        for (index, fault), mask in zip(arrivals, masks):
            if mask:
                dropped.append(index)
                if self.compact_every is not None:
                    self.obligations.append(fault)
            else:
                fresh.append((index, fault))
        return fresh, dropped

    # ------------------------------------------------------------ compaction
    def _maybe_compact(self) -> None:
        if self.compact_every is None:
            return
        if self._since_compaction < self.compact_every:
            return
        from ..core.compaction import reverse_order_compaction

        # The compacted set must preserve detection of every fault the
        # campaign has claimed: the retained patterns' own targets AND
        # every collaterally dropped (SIMULATED) fault.
        targets = [p.fault for p in self.patterns if p.fault is not None]
        targets.extend(self.obligations)
        if not targets:
            self._since_compaction = 0
            return
        t0 = time.perf_counter()
        before = len(self.patterns)
        kept = reverse_order_compaction(
            self.circuit,
            self.patterns,
            targets,
            self.test_class,
            backend=self.simulator.backend,
            fusion=self.simulator.fusion,
        )
        self.seconds_simulate += time.perf_counter() - t0
        # A removed pattern's target is still covered by the kept set,
        # but it leaves the target list — record it as an obligation so
        # the *next* pass cannot drop whichever pattern now covers it.
        kept_ids = {id(p) for p in kept}
        self.obligations.extend(
            p.fault
            for p in self.patterns
            if id(p) not in kept_ids and p.fault is not None
        )
        self.patterns = list(kept)
        self.compactions += 1
        self.patterns_compacted_away += before - len(self.patterns)
        self._since_compaction = 0
