"""Shard execution: lane-width batches across a process pool.

The campaign schedule (see :mod:`repro.campaign.runner`) is a sequence
of *rounds*; each round is ``shards`` independent units of generation
work — FPTPG batches of up to ``width`` faults, or single-fault APTPG
searches.  This module executes one round's shards, either in-process
(:class:`SerialExecutor`) or on a :mod:`multiprocessing` pool
(:class:`PoolExecutor`).

Each pool worker receives the circuit once, at initialization, and
rebuilds the shared :class:`repro.kernel.CompiledCircuit` plus the
controllability tables exactly once; per-shard messages carry only the
fault structures in and plain :class:`ShardResult` rows out (never a
``TpgState``), so IPC stays proportional to the work, not the
circuit.  ``Pool.map`` preserves submission order, which keeps the
campaign's outcome independent of worker count and timing.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..circuit import Circuit
from ..core.aptpg import run_aptpg
from ..core.controllability import Controllability, compute_controllability
from ..core.fptpg import run_fptpg
from ..core.patterns import TestPattern
from ..core.results import FaultStatus
from ..paths import PathDelayFault, TestClass


@dataclass
class ShardResult:
    """Outcome of one generation shard, cheap to pickle.

    For an FPTPG shard the lists are parallel to the batch's faults;
    for an APTPG shard they have length one.
    """

    statuses: List[FaultStatus]
    patterns: List[Optional[TestPattern]]
    decisions: int = 0
    backtracks: int = 0
    implication_passes: int = 0
    seconds_sensitize: float = 0.0


@dataclass
class _WorkerContext:
    """Per-process generation state, built once per worker."""

    circuit: Circuit
    test_class: TestClass
    width: int
    use_backward: bool
    backtrack_limit: int
    fusion: str = "auto"
    controllability: Controllability = field(init=False)

    def __post_init__(self) -> None:
        self.circuit.compiled()  # lower the netlist once per process
        self.controllability = compute_controllability(self.circuit)

    # ------------------------------------------------------------ shards
    def fptpg_shard(self, faults: Sequence[PathDelayFault]) -> ShardResult:
        outcome = run_fptpg(
            self.circuit,
            list(faults),
            self.test_class,
            self.width,
            self.controllability,
            use_backward=self.use_backward,
            fusion=self.fusion,
        )
        return ShardResult(
            statuses=list(outcome.statuses),
            patterns=list(outcome.patterns),
            decisions=outcome.decisions,
            implication_passes=outcome.state.implication_passes,
            seconds_sensitize=outcome.seconds_sensitize,
        )

    def aptpg_shard(self, fault: PathDelayFault) -> ShardResult:
        outcome = run_aptpg(
            self.circuit,
            fault,
            self.test_class,
            self.width,
            self.controllability,
            backtrack_limit=self.backtrack_limit,
            use_backward=self.use_backward,
            fusion=self.fusion,
        )
        return ShardResult(
            statuses=[outcome.status],
            patterns=[outcome.pattern],
            decisions=outcome.decisions,
            backtracks=outcome.backtracks,
            implication_passes=outcome.state.implication_passes,
            seconds_sensitize=outcome.seconds_sensitize,
        )


# ---------------------------------------------------------------------------
# pool worker plumbing (module-level for picklability)
# ---------------------------------------------------------------------------

_WORKER: Optional[_WorkerContext] = None


def _init_worker(
    circuit: Circuit,
    test_class: TestClass,
    width: int,
    use_backward: bool,
    backtrack_limit: int,
    fusion: str,
) -> None:
    global _WORKER
    _WORKER = _WorkerContext(
        circuit, test_class, width, use_backward, backtrack_limit, fusion
    )


def _pool_fptpg(faults: Sequence[PathDelayFault]) -> ShardResult:
    assert _WORKER is not None, "worker pool not initialized"
    return _WORKER.fptpg_shard(faults)


def _pool_aptpg(fault: PathDelayFault) -> ShardResult:
    assert _WORKER is not None, "worker pool not initialized"
    return _WORKER.aptpg_shard(fault)


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------


class SerialExecutor:
    """Run every shard in the calling process (workers = 1)."""

    def __init__(
        self,
        circuit: Circuit,
        test_class: TestClass,
        width: int,
        use_backward: bool,
        backtrack_limit: int,
        fusion: str = "auto",
    ):
        self._context = _WorkerContext(
            circuit, test_class, width, use_backward, backtrack_limit, fusion
        )

    def run_fptpg(
        self, batches: Sequence[Sequence[PathDelayFault]]
    ) -> List[ShardResult]:
        return [self._context.fptpg_shard(batch) for batch in batches]

    def run_aptpg(
        self, faults: Sequence[PathDelayFault]
    ) -> List[ShardResult]:
        return [self._context.aptpg_shard(fault) for fault in faults]

    def close(self) -> None:
        pass


class PoolExecutor:
    """Run shards on a multiprocessing pool (workers >= 2).

    Prefers the ``fork`` start method (workers inherit the already
    compiled circuit copy-on-write); falls back to the platform
    default, where the initializer rebuilds it from the pickled
    circuit.
    """

    def __init__(
        self,
        circuit: Circuit,
        test_class: TestClass,
        width: int,
        use_backward: bool,
        backtrack_limit: int,
        workers: int,
        fusion: str = "auto",
    ):
        circuit.compiled()  # compile before fork so children inherit it
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        self._pool = context.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(
                circuit, test_class, width, use_backward, backtrack_limit, fusion
            ),
        )

    def run_fptpg(
        self, batches: Sequence[Sequence[PathDelayFault]]
    ) -> List[ShardResult]:
        return self._pool.map(_pool_fptpg, [list(b) for b in batches])

    def run_aptpg(
        self, faults: Sequence[PathDelayFault]
    ) -> List[ShardResult]:
        return self._pool.map(_pool_aptpg, list(faults))

    def close(self) -> None:
        self._pool.close()
        self._pool.join()


def make_executor(
    circuit: Circuit,
    test_class: TestClass,
    width: int,
    use_backward: bool,
    backtrack_limit: int,
    workers: int,
    fusion: str = "auto",
):
    """The executor for *workers* processes (1 = in-process)."""
    if workers <= 1:
        return SerialExecutor(
            circuit, test_class, width, use_backward, backtrack_limit, fusion
        )
    return PoolExecutor(
        circuit, test_class, width, use_backward, backtrack_limit, workers,
        fusion,
    )
