"""Shard execution: supervised lane-width batches across a process pool.

The campaign schedule (see :mod:`repro.campaign.runner`) is a sequence
of *rounds*; each round is ``shards`` independent units of generation
work — FPTPG batches of up to ``width`` faults, or single-fault APTPG
searches.  This module executes one round's shards, either in-process
(:class:`SerialExecutor`) or on a :mod:`multiprocessing` pool
(:class:`PoolExecutor`).

Each pool worker receives the circuit once, at initialization, and
rebuilds the shared :class:`repro.kernel.CompiledCircuit` plus the
controllability tables exactly once; per-shard messages carry only the
fault structures in and plain :class:`ShardResult` rows out (never a
``TpgState``), so IPC stays proportional to the work, not the circuit.
Shards are submitted with ``apply_async`` and collected *in submission
order*, which keeps the campaign's outcome independent of worker count
and timing.

**Supervision.**  Long campaigns must survive losing pieces.  Every
shard runs under a :class:`Supervision` policy:

* a per-shard wall-clock **deadline** (``shard_deadline_s``) catches
  both hung shards and killed worker processes — in either case the
  shard's result never arrives, the pool is torn down and rebuilt
  (``worker_restarts``), and every uncollected shard of the round is
  resubmitted;
* a shard that **raises** is retried with exponential backoff plus
  deterministic jitter (``shard_retries``), because generation is a
  pure function of the shard payload — a successful retry is
  bit-identical to a never-failed run;
* a shard still failing after ``shard_attempts`` attempts is
  **quarantined** (``quarantined_shards``): its :class:`ShardResult`
  carries ``skipped_error`` statuses and an error envelope instead of
  crashing the round, and the runner settles its faults accordingly.

Failures are injected deterministically through :mod:`repro.chaos`
(sites ``shard_crash`` / ``shard_hang`` / ``shard_error``): the
*submitting* process decides per submission, and the decision travels
to the worker inside the task payload, so schedules are independent of
which worker picks up which shard.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..chaos import ChaosError, shard_action
from ..circuit import Circuit
from ..core.aptpg import run_aptpg
from ..core.controllability import Controllability, compute_controllability
from ..core.fptpg import run_fptpg
from ..core.patterns import TestPattern
from ..core.results import FaultStatus
from ..paths import PathDelayFault, TestClass

#: How long an injected ``shard_hang`` sleeps.  The supervising parent
#: is expected to kill it at the shard deadline long before this; the
#: cap just bounds the damage if a hang is injected without one.
_HANG_SECONDS = 60.0


@dataclass
class Supervision:
    """Worker-supervision policy (never outcome-relevant).

    Attributes:
        deadline_s: per-shard wall-clock deadline; a shard whose
            result hasn't arrived by then is presumed lost (hung or
            its worker died) and the pool is rebuilt.  ``None``
            disables the watchdog (the pre-supervision behavior).
        attempts: submission attempts per shard before quarantine.
        retry_base_ms: exponential-backoff base — retry *n* sleeps
            ``retry_base_ms * 2**(n-1)`` plus deterministic jitter.
    """

    deadline_s: Optional[float] = None
    attempts: int = 3
    retry_base_ms: float = 50.0

    def backoff_s(self, shard_index: int, attempt: int) -> float:
        """Backoff before re-submitting *shard_index*'s *attempt*-th try.

        The jitter term decorrelates retries without randomness: a
        Knuth-hash of (shard, attempt) spreads sleeps over +0..25% of
        the base, identically on every run.
        """
        if self.retry_base_ms <= 0:
            return 0.0
        base = (self.retry_base_ms / 1000.0) * (2 ** max(0, attempt - 1))
        jitter = ((shard_index * 2654435761 + attempt * 40503) % 1024) / 4096.0
        return base * (1.0 + jitter)


@dataclass
class ShardResult:
    """Outcome of one generation shard, cheap to pickle.

    For an FPTPG shard the lists are parallel to the batch's faults;
    for an APTPG shard they have length one.  A quarantined shard
    (supervision gave up after repeated failures) carries
    ``skipped_error`` statuses, no patterns, and the ``error``
    envelope describing the last failure.
    """

    statuses: List[FaultStatus]
    patterns: List[Optional[TestPattern]]
    decisions: int = 0
    backtracks: int = 0
    implication_passes: int = 0
    seconds_sensitize: float = 0.0
    error: Optional[dict] = None


def _quarantined(n_faults: int, error: dict) -> ShardResult:
    """The ShardResult of a shard supervision gave up on."""
    return ShardResult(
        statuses=[FaultStatus.SKIPPED_ERROR] * n_faults,
        patterns=[None] * n_faults,
        error=error,
    )


def _error_envelope(exc: BaseException, attempts: int) -> dict:
    return {
        "error": type(exc).__name__,
        "detail": str(exc),
        "attempts": attempts,
    }


def _apply_chaos_action(action: Optional[str]) -> None:
    """Execute an injected failure inside the worker process."""
    if action is None:
        return
    if action == "shard_crash":
        os._exit(3)  # die without cleanup, like a real killed worker
    if action == "shard_hang":
        time.sleep(_HANG_SECONDS)
        return
    raise ChaosError(f"chaos: injected fault at site {action!r}")


@dataclass
class _WorkerContext:
    """Per-process generation state, built once per worker."""

    circuit: Circuit
    test_class: TestClass
    width: int
    use_backward: bool
    backtrack_limit: int
    fusion: str = "auto"
    controllability: Controllability = field(init=False)

    def __post_init__(self) -> None:
        self.circuit.compiled()  # lower the netlist once per process
        self.controllability = compute_controllability(self.circuit)

    # ------------------------------------------------------------ shards
    def fptpg_shard(self, faults: Sequence[PathDelayFault]) -> ShardResult:
        outcome = run_fptpg(
            self.circuit,
            list(faults),
            self.test_class,
            self.width,
            self.controllability,
            use_backward=self.use_backward,
            fusion=self.fusion,
        )
        return ShardResult(
            statuses=list(outcome.statuses),
            patterns=list(outcome.patterns),
            decisions=outcome.decisions,
            implication_passes=outcome.state.implication_passes,
            seconds_sensitize=outcome.seconds_sensitize,
        )

    def aptpg_shard(self, fault: PathDelayFault) -> ShardResult:
        outcome = run_aptpg(
            self.circuit,
            fault,
            self.test_class,
            self.width,
            self.controllability,
            backtrack_limit=self.backtrack_limit,
            use_backward=self.use_backward,
            fusion=self.fusion,
        )
        return ShardResult(
            statuses=[outcome.status],
            patterns=[outcome.pattern],
            decisions=outcome.decisions,
            backtracks=outcome.backtracks,
            implication_passes=outcome.state.implication_passes,
            seconds_sensitize=outcome.seconds_sensitize,
        )


# ---------------------------------------------------------------------------
# pool worker plumbing (module-level for picklability)
# ---------------------------------------------------------------------------

_WORKER: Optional[_WorkerContext] = None


def _init_worker(
    circuit: Circuit,
    test_class: TestClass,
    width: int,
    use_backward: bool,
    backtrack_limit: int,
    fusion: str,
) -> None:
    global _WORKER
    _WORKER = _WorkerContext(
        circuit, test_class, width, use_backward, backtrack_limit, fusion
    )


def _pool_fptpg(task) -> ShardResult:
    faults, action = task
    assert _WORKER is not None, "worker pool not initialized"
    _apply_chaos_action(action)
    return _WORKER.fptpg_shard(faults)


def _pool_aptpg(task) -> ShardResult:
    fault, action = task
    assert _WORKER is not None, "worker pool not initialized"
    _apply_chaos_action(action)
    return _WORKER.aptpg_shard(fault)


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------


class SerialExecutor:
    """Run every shard in the calling process (workers = 1).

    The same retry/quarantine policy applies as on the pool; injected
    ``shard_crash``/``shard_hang`` actions degrade to an in-process
    raise (the calling process cannot kill or stall itself without
    taking the campaign down — the pool executor is where those two
    are meaningful).
    """

    def __init__(
        self,
        circuit: Circuit,
        test_class: TestClass,
        width: int,
        use_backward: bool,
        backtrack_limit: int,
        fusion: str = "auto",
        supervision: Optional[Supervision] = None,
    ):
        self._context = _WorkerContext(
            circuit, test_class, width, use_backward, backtrack_limit, fusion
        )
        self.supervision = supervision or Supervision()
        self.worker_restarts = 0
        self.shard_retries = 0
        self.quarantined_shards = 0

    def _supervised(
        self, run: Callable[[], ShardResult], index: int, n_faults: int
    ) -> ShardResult:
        policy = self.supervision
        for attempt in range(1, policy.attempts + 1):
            action = shard_action()
            try:
                if action is not None:
                    raise ChaosError(
                        f"chaos: injected fault at site {action!r}"
                    )
                return run()
            except Exception as exc:  # noqa: BLE001 - supervision boundary
                if attempt >= policy.attempts:
                    self.quarantined_shards += 1
                    return _quarantined(n_faults, _error_envelope(exc, attempt))
                self.shard_retries += 1
                backoff = policy.backoff_s(index, attempt)
                if backoff:
                    time.sleep(backoff)
        raise AssertionError("unreachable")  # pragma: no cover

    def run_fptpg(
        self, batches: Sequence[Sequence[PathDelayFault]]
    ) -> List[ShardResult]:
        return [
            self._supervised(
                lambda b=batch: self._context.fptpg_shard(b), k, len(batch)
            )
            for k, batch in enumerate(batches)
        ]

    def run_aptpg(
        self, faults: Sequence[PathDelayFault]
    ) -> List[ShardResult]:
        return [
            self._supervised(
                lambda f=fault: self._context.aptpg_shard(f), k, 1
            )
            for k, fault in enumerate(faults)
        ]

    def close(self) -> None:
        pass


class PoolExecutor:
    """Run shards on a supervised multiprocessing pool (workers >= 2).

    Prefers the ``fork`` start method (workers inherit the already
    compiled circuit copy-on-write); falls back to the platform
    default, where the initializer rebuilds it from the pickled
    circuit.

    Shards are submitted with ``apply_async`` and collected in
    submission order under the supervision policy's per-shard
    deadline.  A missed deadline means the shard's worker hung or
    died: the whole pool is terminated and rebuilt (in-flight results
    of the round are lost and resubmitted — regeneration is
    deterministic, so nothing changes but wall-clock), while a raised
    exception retries just that shard with backoff.  Either way a
    shard that keeps failing is quarantined rather than allowed to
    take the campaign down.
    """

    def __init__(
        self,
        circuit: Circuit,
        test_class: TestClass,
        width: int,
        use_backward: bool,
        backtrack_limit: int,
        workers: int,
        fusion: str = "auto",
        supervision: Optional[Supervision] = None,
    ):
        circuit.compiled()  # compile before fork so children inherit it
        self._initargs = (
            circuit, test_class, width, use_backward, backtrack_limit, fusion
        )
        self._workers = workers
        self.supervision = supervision or Supervision()
        self.worker_restarts = 0
        self.shard_retries = 0
        self.quarantined_shards = 0
        self._pool = self._make_pool()

    def _make_pool(self):
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        return context.Pool(
            processes=self._workers,
            initializer=_init_worker,
            initargs=self._initargs,
        )

    def _rebuild_pool(self) -> None:
        """Tear down the (hung/broken) pool and start a fresh one."""
        self.worker_restarts += 1
        try:
            self._pool.terminate()
            self._pool.join()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        self._pool = self._make_pool()

    def _execute(self, fn, payloads: List) -> List[ShardResult]:
        """Run one round's shards under supervision, order-preserving."""
        policy = self.supervision
        n = len(payloads)
        results: List[Optional[ShardResult]] = [None] * n
        attempts = [0] * n
        pending = set(range(n))

        def submit(index: int):
            attempts[index] += 1
            return self._pool.apply_async(
                fn, ((payloads[index], shard_action()),)
            )

        futures = {index: submit(index) for index in range(n)}
        while pending:
            index = min(pending)  # collect in submission order
            try:
                results[index] = futures[index].get(timeout=policy.deadline_s)
                pending.discard(index)
                continue
            except multiprocessing.TimeoutError:
                # hung shard or dead worker: the result will never
                # arrive.  Rebuild the pool; every uncollected shard
                # of the round is lost with it and resubmitted.
                self._rebuild_pool()
                if attempts[index] >= policy.attempts:
                    self.quarantined_shards += 1
                    results[index] = _quarantined(
                        _payload_size(payloads[index]),
                        {
                            "error": "ShardTimeout",
                            "detail": (
                                f"shard exceeded the {policy.deadline_s}s "
                                f"deadline {attempts[index]} time(s)"
                            ),
                            "attempts": attempts[index],
                        },
                    )
                    pending.discard(index)
                else:
                    self.shard_retries += 1
                futures = {j: submit(j) for j in sorted(pending)}
            except Exception as exc:  # noqa: BLE001 - supervision boundary
                # the shard raised inside a healthy worker: retry it
                # alone, with backoff, then quarantine
                if attempts[index] >= policy.attempts:
                    self.quarantined_shards += 1
                    results[index] = _quarantined(
                        _payload_size(payloads[index]),
                        _error_envelope(exc, attempts[index]),
                    )
                    pending.discard(index)
                else:
                    self.shard_retries += 1
                    backoff = policy.backoff_s(index, attempts[index])
                    if backoff:
                        time.sleep(backoff)
                    futures[index] = submit(index)
        return results  # type: ignore[return-value] - all slots filled

    def run_fptpg(
        self, batches: Sequence[Sequence[PathDelayFault]]
    ) -> List[ShardResult]:
        return self._execute(_pool_fptpg, [list(b) for b in batches])

    def run_aptpg(
        self, faults: Sequence[PathDelayFault]
    ) -> List[ShardResult]:
        return self._execute(_pool_aptpg, list(faults))

    def close(self) -> None:
        self._pool.close()
        self._pool.join()


def _payload_size(payload) -> int:
    """Fault count of a shard payload (batch list vs single fault)."""
    return len(payload) if isinstance(payload, list) else 1


def make_executor(
    circuit: Circuit,
    test_class: TestClass,
    width: int,
    use_backward: bool,
    backtrack_limit: int,
    workers: int,
    fusion: str = "auto",
    supervision: Optional[Supervision] = None,
):
    """The executor for *workers* processes (1 = in-process)."""
    if workers <= 1:
        return SerialExecutor(
            circuit, test_class, width, use_backward, backtrack_limit, fusion,
            supervision,
        )
    return PoolExecutor(
        circuit, test_class, width, use_backward, backtrack_limit, workers,
        fusion, supervision,
    )
