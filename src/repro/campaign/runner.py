"""The staged ATPG campaign: stream -> shard -> generate -> drop.

``run_campaign`` turns the paper's engine into a managed pipeline:

1. **Admission.**  Faults are pulled from a lazily streamed
   :class:`FaultUniverse` until the pending window is full, each one
   first drop-checked against the retained pattern set (faults already
   covered are settled as SIMULATED without ever being scheduled).
2. **FPTPG rounds.**  The next ``shards`` lane-width batches of
   pending faults are generated *independently* — in-process or on a
   worker pool — then the round's fresh patterns are merged on the
   global drop bus, which runs one batched PPSFP pass over every
   still-pending fault (window and deferred queue alike).
3. **APTPG rounds.**  Once the stream is drained (or the window is
   saturated with deferred faults), rounds of ``shards`` single-fault
   APTPG searches run the hard residue, again followed by the bus.
4. **Checkpointing.**  Progress is serialized every few rounds; an
   interrupted campaign resumes from the snapshot, re-entering the
   stream by position.

The schedule — window fills, batch composition, drop cadence — is a
pure function of :class:`CampaignOptions`; worker count and timing
never influence which faults share a batch or when drops are applied.
A campaign with ``workers=8`` therefore produces bit-identical
per-fault statuses to ``workers=1``, and the serial engine
(:func:`repro.core.engine.generate_tests`) is literally a 1-worker
campaign over a pre-materialized universe.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .. import chaos
from ..api import integrity
from ..api.options import Options
from ..circuit import Circuit
from ..core.patterns import TestPattern
from ..core.results import FaultRecord, FaultStatus
from ..paths import PathDelayFault, TestClass
from .bus import DropBus
from .report import (
    CampaignReport,
    checkpoint_payload,
    load_checkpoint,
    restore_from_payload,
    schedule_fingerprint,
    write_checkpoint,
)
from .scheduler import Supervision, make_executor
from .universe import FaultUniverse

#: Admission checks run in bounded slices so an unbounded-window pull
#: of a huge universe never builds one giant simulation batch.
_ADMIT_CHUNK = 4096


class CampaignControl:
    """Host hooks into a running campaign (cancellation and progress).

    The service's job queue passes one of these so a long-running
    campaign can be observed and stopped at round boundaries without
    the runner knowing anything about jobs or HTTP:

    * :meth:`should_stop` is polled once per loop iteration; returning
      ``True`` makes the runner flush a checkpoint (when one is
      configured) and return the partial report with
      ``complete=False`` — exactly the state a later ``resume=True``
      run continues from.
    * :meth:`on_round` receives a small progress dict after every
      generation round (``rounds``, ``settled``, ``streamed``,
      ``pending``, ``patterns``).

    The default implementation never stops and ignores progress;
    subclass and override what you need.
    """

    def should_stop(self) -> bool:
        return False

    def on_round(self, progress: Dict[str, int]) -> None:  # pragma: no cover
        pass


class _Campaign:
    """One campaign run's mutable state and round loop."""

    def __init__(
        self,
        circuit: Circuit,
        universe: FaultUniverse,
        test_class: TestClass,
        options: Options,
        control: Optional[CampaignControl] = None,
    ):
        options.validate()
        self.control = control
        self.circuit = circuit
        self.universe = universe
        self.options = options
        self.test_class = test_class
        self.report = CampaignReport(
            circuit_name=circuit.name,
            test_class=test_class,
            options=options,
            records={} if options.keep_records else None,
        )
        self.bus = DropBus(
            circuit,
            test_class,
            backend=options.sim_backend,
            fusion=options.fusion,
            enabled=options.drop_faults,
            compact_every=options.compact_every,
        )
        # Live pending set: index -> fault, insertion (= stream) order,
        # O(1) removal.  Settled faults leave immediately, so drop
        # rounds never rescan the full universe (the seed engine's
        # quadratic `[i for i in pending if i not in records]` is gone).
        self.pending: Dict[int, PathDelayFault] = {}
        # FPTPG work cursor: indices admitted but not yet batched, in
        # stream order.  Rounds pop from the head (dropped entries are
        # skipped lazily), so target selection never rescans pending.
        self.backlog: Deque[int] = deque()
        self.queued: set = set()
        self.queue: List[int] = []
        self.queue_head = 0
        self.stream_position = 0
        self.exhausted = False

    # ------------------------------------------------------------ helpers
    def settle(
        self,
        index: int,
        fault: Optional[PathDelayFault],
        status: FaultStatus,
        pattern: Optional[TestPattern],
        mode: str,
    ) -> None:
        self.report.statuses[index] = status
        self.report.modes[index] = mode
        if self.report.records is not None:
            self.report.records[index] = FaultRecord(fault, status, pattern, mode)
        self.pending.pop(index, None)
        self.queued.discard(index)

    def _settle_quarantined(
        self, indices: Sequence[int], envelope: Dict[str, object]
    ) -> None:
        """Settle a quarantined shard's faults as ``skipped_error``."""
        for index in indices:
            self.report.errors[index] = dict(envelope)
            self.settle(
                index,
                self.pending.get(index),
                FaultStatus.SKIPPED_ERROR,
                None,
                "error",
            )

    def _note_pending_peak(self) -> None:
        if len(self.pending) > self.report.stats.peak_pending:
            self.report.stats.peak_pending = len(self.pending)

    # ------------------------------------------------------------ admission
    def _admit(self, arrivals: List[Tuple[int, PathDelayFault]]) -> None:
        survivors, dropped = self.bus.admit(arrivals)
        lookup = dict(arrivals)
        for index in dropped:
            self.settle(
                index, lookup[index], FaultStatus.SIMULATED, None, "simulation"
            )
        self.report.stats.admitted_dropped += len(dropped)
        for index, fault in survivors:
            self.pending[index] = fault
            if self.options.use_fptpg:
                self.backlog.append(index)
            else:  # ablation: straight to the APTPG queue
                self.queued.add(index)
                self.queue.append(index)
        self._note_pending_peak()

    def pull(self, stream) -> None:
        """Fill the pending window from the stream (admission-checked)."""
        window = self.options.window
        batch: List[Tuple[int, PathDelayFault]] = []
        while not self.exhausted:
            if window is not None and len(self.pending) + len(batch) >= window:
                break
            try:
                index, fault = next(stream)
            except StopIteration:
                self.exhausted = True
                break
            self.stream_position = index + 1
            self.report.stats.streamed += 1
            batch.append((index, fault))
            if len(batch) >= _ADMIT_CHUNK:
                self._admit(batch)
                batch = []
        if batch:
            self._admit(batch)

    # ------------------------------------------------------------ rounds
    def _apply_drops(self, dropped: Sequence[int]) -> None:
        for index in dropped:
            self.settle(
                index,
                self.pending[index],
                FaultStatus.SIMULATED,
                None,
                "simulation",
            )

    def fptpg_round(self, executor) -> bool:
        """Generate one round of up to ``shards`` lane-width batches."""
        options = self.options
        capacity = options.shards * options.width
        targets: List[int] = []
        while self.backlog and len(targets) < capacity:
            index = self.backlog.popleft()
            if index in self.pending:  # not dropped in the meantime
                targets.append(index)
        if not targets:
            return False
        batches = [
            targets[start : start + options.width]
            for start in range(0, len(targets), options.width)
        ]
        results = executor.run_fptpg(
            [[self.pending[i] for i in batch] for batch in batches]
        )
        stats = self.report.stats
        fresh: List[TestPattern] = []
        for batch, result in zip(batches, results):
            if result.error is not None:
                # quarantined shard: its faults are settled as
                # skipped_error with the envelope, never retried again
                self._settle_quarantined(batch, result.error)
                continue
            stats.decisions += result.decisions
            stats.implication_passes += result.implication_passes
            stats.seconds_sensitize += result.seconds_sensitize
            for index, status, pattern in zip(
                batch, result.statuses, result.patterns
            ):
                if status is FaultStatus.TESTED:
                    self.settle(index, self.pending[index], status, pattern, "fptpg")
                    fresh.append(pattern)
                elif status is FaultStatus.REDUNDANT:
                    self.settle(index, self.pending[index], status, None, "fptpg")
                else:  # deferred to APTPG; stays pending (and droppable)
                    self.queued.add(index)
                    self.queue.append(index)
        self._apply_drops(self.bus.absorb(fresh, self.pending))
        stats.rounds += 1
        stats.fptpg_rounds += 1
        return True

    def aptpg_round(self, executor) -> bool:
        """Run one round of up to ``shards`` single-fault searches."""
        targets: List[int] = []
        while self.queue_head < len(self.queue) and len(targets) < self.options.shards:
            index = self.queue[self.queue_head]
            self.queue_head += 1
            if index in self.pending:  # not dropped in the meantime
                targets.append(index)
        if not targets:
            return False
        results = executor.run_aptpg([self.pending[i] for i in targets])
        stats = self.report.stats
        fresh: List[TestPattern] = []
        for index, result in zip(targets, results):
            if result.error is not None:
                self._settle_quarantined([index], result.error)
                continue
            stats.decisions += result.decisions
            stats.backtracks += result.backtracks
            stats.implication_passes += result.implication_passes
            stats.seconds_sensitize += result.seconds_sensitize
            status = result.statuses[0]
            pattern = result.patterns[0]
            self.settle(index, self.pending[index], status, pattern, "aptpg")
            if pattern is not None:
                fresh.append(pattern)
        self._apply_drops(self.bus.absorb(fresh, self.pending))
        stats.rounds += 1
        stats.aptpg_rounds += 1
        return True

    # ------------------------------------------------------------ checkpoint
    def _pattern_positions(self) -> Dict[int, int]:
        if self.report.records is None:
            return {}
        positions = {id(p): k for k, p in enumerate(self.bus.patterns)}
        return {
            index: positions[id(record.pattern)]
            for index, record in self.report.records.items()
            if record.pattern is not None and id(record.pattern) in positions
        }

    def save_checkpoint(self) -> None:
        path = self.options.checkpoint
        if path is None:
            return
        self.report.patterns = self.bus.patterns
        payload = checkpoint_payload(
            self.report,
            self.pending,
            self.queue[self.queue_head :],
            self.stream_position,
            self.exhausted,
            self._pattern_positions(),
            schedule_fingerprint(self.options, self.universe.describe()),
            self.bus.obligations,
        )
        write_checkpoint(path, payload)

    def try_resume(self) -> bool:
        options = self.options
        if not options.resume or options.checkpoint is None:
            return False
        if not integrity.recoverable(options.checkpoint):
            return False
        payload = load_checkpoint(options.checkpoint)
        for key, want in (
            ("circuit", self.circuit.name),
            ("test_class", self.test_class.value),
            ("width", options.width),
            ("shards", options.shards),
        ):
            if payload[key] != want:
                raise ValueError(
                    f"checkpoint {options.checkpoint!r} was written for "
                    f"{key}={payload[key]!r}, not {want!r}"
                )
        fingerprint = schedule_fingerprint(options, self.universe.describe())
        saved = payload["schedule"]
        if saved != fingerprint:
            changed = sorted(
                key
                for key in set(saved) | set(fingerprint)
                if saved.get(key) != fingerprint.get(key)
            )
            raise ValueError(
                f"checkpoint {options.checkpoint!r} was written under a "
                f"different schedule/universe configuration (changed: "
                f"{', '.join(changed)}); resuming would attach recorded "
                f"statuses to different faults"
            )
        pending, queue, position, exhausted, obligations = restore_from_payload(
            payload, self.report
        )
        self.bus.obligations = obligations
        self.pending = pending
        self.queued = set(queue)
        # pending serializes in stream order, so the rebuilt backlog
        # preserves the batching cursor of the interrupted run
        self.backlog = deque(i for i in pending if i not in self.queued)
        self.queue = queue
        self.queue_head = 0
        self.stream_position = position
        self.exhausted = exhausted
        self.bus.patterns = self.report.patterns
        self.bus.seconds_simulate = self.report.stats.seconds_simulate
        self.bus.compactions = self.report.stats.compactions
        self.bus.patterns_compacted_away = (
            self.report.stats.patterns_compacted_away
        )
        self.report.complete = bool(payload["complete"])
        return True

    def _progress(self) -> Dict[str, int]:
        return {
            "rounds": self.report.stats.rounds,
            "settled": len(self.report.statuses),
            "streamed": self.report.stats.streamed,
            "pending": len(self.pending),
            "patterns": len(self.bus.patterns),
        }

    # ------------------------------------------------------------ main loop
    def run(self) -> CampaignReport:
        if self.options.chaos is None:
            return self._run()
        # scoped install: pool workers inherit the controller at fork,
        # and the process is clean again once the campaign returns
        chaos.install(self.options.chaos)
        try:
            return self._run()
        finally:
            chaos.uninstall()

    def _run(self) -> CampaignReport:
        options = self.options
        control = self.control
        t_start = time.perf_counter()
        resumed = self.try_resume()
        if resumed and self.report.complete:
            return self.report
        stream = self.universe.stream(start=self.stream_position)
        executor = make_executor(
            self.circuit,
            self.test_class,
            options.width,
            options.unique_backward,
            options.backtrack_limit,
            options.workers,
            options.fusion,
            supervision=Supervision(
                deadline_s=options.shard_deadline_s,
                attempts=options.shard_attempts,
                retry_base_ms=options.retry_base_ms,
            ),
        )
        # supervision counters restored from a checkpoint are the
        # baseline; the executor counts this run's incidents on top
        base = (
            self.report.stats.worker_restarts,
            self.report.stats.shard_retries,
            self.report.stats.quarantined_shards,
        )

        def sync_supervision_stats() -> None:
            stats = self.report.stats
            stats.worker_restarts = base[0] + executor.worker_restarts
            stats.shard_retries = base[1] + executor.shard_retries
            stats.quarantined_shards = base[2] + executor.quarantined_shards

        rounds_since_checkpoint = 0
        stopped = False
        try:
            while True:
                if control is not None and control.should_stop():
                    stopped = True
                    break
                self.pull(stream)
                progressed = False
                if options.use_fptpg:
                    progressed = self.fptpg_round(executor)
                if not progressed and options.use_aptpg:
                    progressed = self.aptpg_round(executor)
                if progressed:
                    if control is not None:
                        control.on_round(self._progress())
                    rounds_since_checkpoint += 1
                    if rounds_since_checkpoint >= options.checkpoint_every:
                        self.report.stats.seconds_simulate = (
                            self.bus.seconds_simulate
                        )
                        sync_supervision_stats()
                        self.save_checkpoint()
                        rounds_since_checkpoint = 0
                    continue
                if not self.exhausted:
                    if (
                        options.window is not None
                        and len(self.pending) >= options.window
                    ):
                        # Window saturated with faults nothing can run
                        # (deferred residue with APTPG disabled): settle
                        # them so the stream can advance.
                        for index in list(self.pending):
                            self.settle(
                                index,
                                self.pending[index],
                                FaultStatus.DEFERRED,
                                None,
                                "fptpg",
                            )
                    continue
                break
        finally:
            executor.close()
        if stopped:
            # interrupted at a round boundary: flush a resumable
            # snapshot (pending faults stay pending) and hand back the
            # partial report — complete stays False
            self.report.patterns = self.bus.patterns
            stats = self.report.stats
            stats.seconds_simulate = self.bus.seconds_simulate
            stats.compactions = self.bus.compactions
            stats.patterns_compacted_away = self.bus.patterns_compacted_away
            stats.seconds_wall += time.perf_counter() - t_start
            sync_supervision_stats()
            self.save_checkpoint()
            return self.report
        # residue: deferred faults that APTPG never ran (ablations)
        for index in list(self.pending):
            self.settle(
                index, self.pending[index], FaultStatus.DEFERRED, None, "fptpg"
            )
        self.report.patterns = self.bus.patterns
        stats = self.report.stats
        stats.seconds_simulate = self.bus.seconds_simulate
        stats.compactions = self.bus.compactions
        stats.patterns_compacted_away = self.bus.patterns_compacted_away
        stats.seconds_wall += time.perf_counter() - t_start
        sync_supervision_stats()
        self.report.complete = True
        self.save_checkpoint()
        return self.report


def execute_campaign(
    circuit: Circuit,
    faults: Optional[Sequence[PathDelayFault]] = None,
    test_class: TestClass = TestClass.NONROBUST,
    options: Optional[Options] = None,
    universe: Optional[FaultUniverse] = None,
    control: Optional[CampaignControl] = None,
) -> CampaignReport:
    """Run a staged ATPG campaign over *circuit* (the implementation).

    Provide either *faults* (a materialized list, engine-style) or a
    *universe* (the streaming path); with neither, the full structural
    fault universe of the circuit is streamed.  This is what
    :meth:`repro.api.AtpgSession.campaign` (and the deprecated
    :func:`run_campaign` shim) executes.  An optional
    :class:`CampaignControl` lets the host observe round progress and
    stop the run at a round boundary with a resumable checkpoint (the
    service's job queue uses this for cancel and graceful shutdown).
    """
    options = options or Options()
    if universe is None:
        if faults is not None:
            universe = FaultUniverse.from_faults(faults)
        else:
            universe = FaultUniverse.from_circuit(circuit)
    elif faults is not None:
        raise ValueError("pass either faults or universe, not both")
    circuit.compiled()  # lower once; workers rebuild from the same form
    return _Campaign(circuit, universe, test_class, options, control).run()


def run_campaign(
    circuit: Circuit,
    faults: Optional[Sequence[PathDelayFault]] = None,
    test_class: TestClass = TestClass.NONROBUST,
    options: Optional[Options] = None,
    universe: Optional[FaultUniverse] = None,
) -> CampaignReport:
    """Run a staged ATPG campaign over *circuit*.

    .. deprecated:: 1.2.0
        Use :meth:`repro.api.AtpgSession.campaign`, which runs the
        identical pipeline behind one session-owned compiled circuit.
    """
    warnings.warn(
        "run_campaign is deprecated; use repro.api.AtpgSession.campaign",
        DeprecationWarning,
        stacklevel=2,
    )
    return execute_campaign(
        circuit,
        faults=faults,
        test_class=test_class,
        options=options,
        universe=universe,
    )
