"""Campaign options, progress accounting, and checkpoint/resume.

A campaign is a long-running job: the report doubles as a durable
progress record.  :meth:`CampaignReport.to_payload` emits a fully
JSON-serializable snapshot — settled statuses, the retained pattern
set, the unsettled pending window, the APTPG queue, and the stream
position — and :func:`load_checkpoint` restores it, so an interrupted
run restarts exactly where it stopped (the fault stream is
deterministic and resumes by position; see
:class:`repro.campaign.universe.FaultUniverse`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..api import integrity
from ..api.options import DEFAULT_SHARDS, Options
from ..paths import PathDelayFault, TestClass, Transition
from ..core.patterns import TestPattern
from ..core.results import FaultRecord, FaultStatus, TpgReport

CHECKPOINT_VERSION = 3

__all__ = [
    "CHECKPOINT_VERSION",
    "DEFAULT_SHARDS",
    "CampaignOptions",
    "CampaignReport",
    "CampaignStats",
    "checkpoint_payload",
    "load_checkpoint",
    "restore_from_payload",
    "schedule_fingerprint",
    "write_checkpoint",
]


@dataclass
class CampaignOptions(Options):
    """Deprecated alias for the unified :class:`repro.api.Options`.

    The staged-campaign tunables are all still here — they *are* the
    unified model (``width``/``shards``/``window``/``workers``/
    checkpointing/compaction, see :mod:`repro.api.options` for the
    layer-by-layer documentation).  Construction warns; use
    ``repro.api.Options`` in new code.
    """

    def __post_init__(self) -> None:
        warnings.warn(
            "CampaignOptions is deprecated; use repro.api.Options "
            "(the unified layered options model)",
            DeprecationWarning,
            stacklevel=2,
        )


@dataclass
class CampaignStats:
    """Counters accumulated over the campaign's lifetime."""

    rounds: int = 0
    fptpg_rounds: int = 0
    aptpg_rounds: int = 0
    peak_pending: int = 0
    streamed: int = 0
    admitted_dropped: int = 0
    compactions: int = 0
    patterns_compacted_away: int = 0
    decisions: int = 0
    backtracks: int = 0
    implication_passes: int = 0
    seconds_sensitize: float = 0.0
    seconds_simulate: float = 0.0
    seconds_wall: float = 0.0
    worker_restarts: int = 0
    shard_retries: int = 0
    quarantined_shards: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "rounds": self.rounds,
            "fptpg_rounds": self.fptpg_rounds,
            "aptpg_rounds": self.aptpg_rounds,
            "peak_pending": self.peak_pending,
            "streamed": self.streamed,
            "admitted_dropped": self.admitted_dropped,
            "compactions": self.compactions,
            "patterns_compacted_away": self.patterns_compacted_away,
            "decisions": self.decisions,
            "backtracks": self.backtracks,
            "implication_passes": self.implication_passes,
            "seconds_sensitize": self.seconds_sensitize,
            "seconds_simulate": self.seconds_simulate,
            "seconds_wall": self.seconds_wall,
            "worker_restarts": self.worker_restarts,
            "shard_retries": self.shard_retries,
            "quarantined_shards": self.quarantined_shards,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignStats":
        stats = cls()
        for key, value in data.items():
            if hasattr(stats, key):
                setattr(stats, key, value)
        return stats


@dataclass
class CampaignReport:
    """Outcome (and durable progress record) of one campaign.

    ``statuses`` and ``modes`` are keyed by stream index and always
    present; ``records`` carries full :class:`FaultRecord` objects
    when ``keep_records`` was on (required by
    :meth:`as_tpg_report`).  ``patterns`` is the retained test set in
    generation order (post incremental compaction, if enabled).
    """

    circuit_name: str
    test_class: TestClass
    options: Options
    statuses: Dict[int, FaultStatus] = field(default_factory=dict)
    modes: Dict[int, str] = field(default_factory=dict)
    records: Optional[Dict[int, FaultRecord]] = None
    patterns: List[TestPattern] = field(default_factory=list)
    stats: CampaignStats = field(default_factory=CampaignStats)
    complete: bool = False
    #: stream index -> error envelope of a quarantined shard's faults
    #: (those faults' statuses are ``skipped_error``).
    errors: Dict[int, Dict[str, object]] = field(default_factory=dict)

    # ------------------------------------------------------------ queries
    @property
    def n_faults(self) -> int:
        return len(self.statuses)

    def count(self, status: FaultStatus) -> int:
        return sum(1 for s in self.statuses.values() if s is status)

    @property
    def n_detected(self) -> int:
        return sum(
            1
            for s in self.statuses.values()
            if s in (FaultStatus.TESTED, FaultStatus.SIMULATED)
        )

    def detected_indices(self) -> List[int]:
        """Stream indices of faults with a test (generated or dropped)."""
        return sorted(
            i
            for i, s in self.statuses.items()
            if s in (FaultStatus.TESTED, FaultStatus.SIMULATED)
        )

    @property
    def efficiency(self) -> float:
        """The paper's metric: 100 * (1 - aborted/faults)."""
        if not self.statuses:
            return 100.0
        unsettled = self.count(FaultStatus.ABORTED) + self.count(
            FaultStatus.DEFERRED
        )
        return (1.0 - unsettled / self.n_faults) * 100.0

    def summary(self) -> Dict[str, object]:
        """A flat dict for table rendering / JSON output."""
        wall = self.stats.seconds_wall
        return {
            "circuit": self.circuit_name,
            "class": self.test_class.value,
            "L": self.options.width,
            "shards": self.options.shards,
            "workers": self.options.workers,
            "faults": self.n_faults,
            "tested": self.count(FaultStatus.TESTED),
            "simulated": self.count(FaultStatus.SIMULATED),
            "redundant": self.count(FaultStatus.REDUNDANT),
            "aborted": self.count(FaultStatus.ABORTED)
            + self.count(FaultStatus.DEFERRED),
            "patterns": len(self.patterns),
            "efficiency_%": round(self.efficiency, 4),
            "faults_per_s": round(self.n_faults / wall, 1) if wall > 0 else None,
            "time_s": round(wall, 4),
        }

    # ------------------------------------------------------------ adapters
    def as_tpg_report(self) -> TpgReport:
        """Adapt to the engine's :class:`TpgReport` (fault order kept).

        Requires ``keep_records``; this is how ``generate_tests``
        preserves its public API on top of the campaign.
        """
        if self.records is None:
            raise ValueError("as_tpg_report needs a campaign with keep_records")
        report = TpgReport(
            circuit_name=self.circuit_name,
            test_class=self.test_class,
            width=self.options.width,
        )
        report.records = [self.records[i] for i in sorted(self.records)]
        report.decisions = self.stats.decisions
        report.backtracks = self.stats.backtracks
        report.implication_passes = self.stats.implication_passes
        report.seconds_sensitize = self.stats.seconds_sensitize
        report.seconds_simulate = self.stats.seconds_simulate
        report.seconds_generate = max(
            0.0,
            self.stats.seconds_wall
            - self.stats.seconds_sensitize
            - self.stats.seconds_simulate,
        )
        return report


# ---------------------------------------------------------------------------
# checkpoint serialization
# ---------------------------------------------------------------------------


def _fault_payload(fault: PathDelayFault) -> List[object]:
    return [list(fault.signals), fault.transition.value]


def _fault_from_payload(payload: List[object]) -> PathDelayFault:
    return PathDelayFault(tuple(payload[0]), Transition(payload[1]))


def _pattern_payload(pattern: TestPattern) -> List[object]:
    fault = _fault_payload(pattern.fault) if pattern.fault is not None else None
    return [list(pattern.v1), list(pattern.v2), fault]


def _pattern_from_payload(payload: List[object]) -> TestPattern:
    fault = _fault_from_payload(payload[2]) if payload[2] is not None else None
    return TestPattern(tuple(payload[0]), tuple(payload[1]), fault)


def schedule_fingerprint(
    options: Options, universe_config: Dict[str, object]
) -> Dict[str, object]:
    """The option subset that determines per-fault outcomes.

    Stored in every checkpoint and compared on resume: continuing an
    interrupted campaign under a different schedule (or a differently
    filtered fault stream, whose indices would denote different
    faults) would silently corrupt the merged report.  ``sim_backend``
    and ``workers`` are deliberately absent — they never change
    outcomes.  A universe ``predicate`` is only visible as a boolean
    (callables don't serialize), so swapping one filter function for
    another between runs cannot be detected.
    """
    return {
        "window": options.window,
        "drop_faults": options.drop_faults,
        "use_fptpg": options.use_fptpg,
        "use_aptpg": options.use_aptpg,
        "unique_backward": options.unique_backward,
        "backtrack_limit": options.backtrack_limit,
        "compact_every": options.compact_every,
        "universe": dict(universe_config),
    }


def checkpoint_payload(
    report: CampaignReport,
    pending: Dict[int, PathDelayFault],
    queue: List[int],
    stream_position: int,
    exhausted: bool,
    pattern_index: Dict[int, int],
    fingerprint: Dict[str, object],
    obligations: List[PathDelayFault],
) -> Dict[str, object]:
    """Snapshot everything a resumed run needs.

    Settled faults are stored as ``[index, status, mode,
    pattern_index]`` — the fault structure itself is not repeated
    (statuses never change once settled), which keeps checkpoints of
    million-fault campaigns proportional to the pattern set plus one
    small row per fault.

    The payload is stamped with the shared wire-format envelope
    (``schema``/``schema_version``, see :mod:`repro.api.schemas`), so
    checkpoints validate against the same registry as every other
    artifact; ``version`` is kept as the campaign-level alias of the
    schema version.
    """
    return {
        "schema": "repro/campaign-checkpoint",
        "schema_version": CHECKPOINT_VERSION,
        "version": CHECKPOINT_VERSION,
        "circuit": report.circuit_name,
        "test_class": report.test_class.value,
        "width": report.options.width,
        "shards": report.options.shards,
        "schedule": fingerprint,
        "stream_position": stream_position,
        "exhausted": exhausted,
        "complete": report.complete,
        "settled": [
            [
                index,
                report.statuses[index].value,
                report.modes.get(index, ""),
                pattern_index.get(index),
            ]
            for index in sorted(report.statuses)
        ],
        "pending": [
            [index] + _fault_payload(fault)
            for index, fault in pending.items()
        ],
        "queue": list(queue),
        "patterns": [_pattern_payload(p) for p in report.patterns],
        "obligations": [_fault_payload(f) for f in obligations],
        "stats": report.stats.as_dict(),
        "errors": [
            [index, dict(report.errors[index])]
            for index in sorted(report.errors)
        ],
    }


def write_checkpoint(path: str, payload: Dict[str, object]) -> None:
    """Checksummed, generation-rotated write (see :mod:`..api.integrity`).

    The previous checkpoint survives as ``<path>.prev``, and the new
    generation embeds a sha256 digest, so a corrupted write is both
    detectable and recoverable on resume.
    """
    integrity.write_json_rotated(path, payload)


def load_checkpoint(path: str) -> Dict[str, object]:
    """Load the newest *verifiable* generation of a checkpoint.

    A primary file that is missing, truncated, unparseable, or fails
    its checksum falls back to ``<path>.prev``; only when both
    generations are unusable does the load fail
    (:class:`repro.api.integrity.IntegrityError`).
    """
    payload, used_previous = integrity.load_json_verified(path)
    if used_previous:
        warnings.warn(
            f"checkpoint {path!r} was corrupt or missing; resumed from "
            f"the previous generation {integrity.previous_path(path)!r}",
            RuntimeWarning,
            stacklevel=2,
        )
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {path!r} has version {version}, expected "
            f"{CHECKPOINT_VERSION}"
        )
    return payload


def restore_from_payload(
    payload: Dict[str, object],
    report: CampaignReport,
) -> Tuple[Dict[int, PathDelayFault], List[int], int, bool, List[PathDelayFault]]:
    """Rehydrate *report* in place; returns (pending, queue, position,
    exhausted, obligations).

    Pre-resume records carry ``fault=None`` (the checkpoint stores
    settled faults as status rows, not structures); ``as_tpg_report``
    over a resumed campaign therefore reports statuses and patterns
    but not the original fault objects for pre-resume indices.
    """
    report.patterns = [_pattern_from_payload(p) for p in payload["patterns"]]
    for index, status_value, mode, pat_index in payload["settled"]:
        index = int(index)
        status = FaultStatus(status_value)
        report.statuses[index] = status
        report.modes[index] = mode
        if report.records is not None:
            pattern = (
                report.patterns[pat_index] if pat_index is not None else None
            )
            report.records[index] = FaultRecord(None, status, pattern, mode)
    pending = {
        int(row[0]): _fault_from_payload(row[1:]) for row in payload["pending"]
    }
    queue = [int(i) for i in payload["queue"]]
    report.stats = CampaignStats.from_dict(payload["stats"])
    report.errors = {
        int(index): dict(envelope)
        for index, envelope in payload.get("errors", [])
    }
    obligations = [_fault_from_payload(row) for row in payload["obligations"]]
    return (
        pending,
        queue,
        int(payload["stream_position"]),
        bool(payload["exhausted"]),
        obligations,
    )
