"""Lazily streamed fault universes.

The paper's Table 3 is a catalogue of path explosion: c3540 has 5.7e7
functional paths and c6288 is excluded outright with ~1e20.  Any
production campaign therefore cannot start from a materialized fault
list — the universe of faults must be *streamed*.

A :class:`FaultUniverse` is a restartable, filtered, budget-capped
stream over :func:`repro.paths.enumerate.iter_faults` (or any other
deterministic fault source).  Three properties make it the substrate
of the campaign scheduler:

* **laziness** — faults are produced one at a time; the scheduler
  pulls only enough to fill its pending window, so peak memory is
  bounded by the window, not the universe size,
* **determinism** — the underlying enumeration order is fixed, and
  stream indices number the *accepted* faults, so position ``k``
  always denotes the same fault,
* **restartability** — ``stream(start=k)`` re-enumerates and skips,
  which is what checkpoint/resume uses to continue an interrupted
  campaign exactly where it stopped.
"""

from __future__ import annotations

from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..circuit import Circuit
from ..paths import PathDelayFault, Transition
from ..paths.enumerate import iter_faults

#: A factory returning a fresh deterministic fault iterable each call.
FaultSource = Callable[[], Iterable[PathDelayFault]]


class FaultUniverse:
    """A restartable stream of path delay faults with filtering and caps.

    Args:
        source: zero-argument factory producing a fresh, deterministic
            iterable of faults on every call (restarts re-invoke it).
        max_faults: budget cap — the stream ends after this many
            *accepted* faults.
        min_length / max_length: keep only faults whose path length
            (number of on-path gates) lies in the inclusive range.
        predicate: arbitrary extra filter ``fault -> bool``.
        dedup: drop repeated ``(signals, transition)`` pairs.  Costs
            one set entry per accepted fault, so leave it off for pure
            structural enumerations (which never repeat) and reserve it
            for user-supplied lists.
    """

    def __init__(
        self,
        source: FaultSource,
        *,
        max_faults: Optional[int] = None,
        min_length: Optional[int] = None,
        max_length: Optional[int] = None,
        predicate: Optional[Callable[[PathDelayFault], bool]] = None,
        dedup: bool = False,
    ):
        self._source = source
        self.max_faults = max_faults
        self.min_length = min_length
        self.max_length = max_length
        self.predicate = predicate
        self.dedup = dedup

    # ------------------------------------------------------------ builders
    @classmethod
    def from_circuit(
        cls,
        circuit: Circuit,
        *,
        transitions: Sequence[Transition] = (
            Transition.RISING,
            Transition.FALLING,
        ),
        from_inputs: Optional[Sequence[int]] = None,
        to_outputs: Optional[Sequence[int]] = None,
        **options,
    ) -> "FaultUniverse":
        """Stream every structural fault of *circuit* in DFS order.

        This is the production entry point: nothing is materialized,
        even on path-explosive circuits — enumeration advances only as
        far as the campaign consumes.
        """
        transitions = tuple(transitions)

        def source() -> Iterable[PathDelayFault]:
            return iter_faults(
                circuit,
                transitions=transitions,
                from_inputs=from_inputs,
                to_outputs=to_outputs,
            )

        return cls(source, **options)

    @classmethod
    def from_faults(
        cls, faults: Sequence[PathDelayFault], **options
    ) -> "FaultUniverse":
        """Wrap an existing fault list (the engine-compatibility path)."""
        frozen = tuple(faults)
        return cls(lambda: frozen, **options)

    # ------------------------------------------------------------ streaming
    def _accepted(self) -> Iterator[PathDelayFault]:
        seen = set() if self.dedup else None
        for fault in self._source():
            if self.min_length is not None and fault.length < self.min_length:
                continue
            if self.max_length is not None and fault.length > self.max_length:
                continue
            if self.predicate is not None and not self.predicate(fault):
                continue
            if seen is not None:
                key = (fault.signals, fault.transition)
                if key in seen:
                    continue
                seen.add(key)
            yield fault

    def stream(self, start: int = 0) -> Iterator[Tuple[int, PathDelayFault]]:
        """Yield ``(index, fault)`` pairs, skipping the first *start*.

        Indices number accepted faults from 0 and are stable across
        restarts; resume cost is one filtered re-enumeration up to
        *start* (no generation or simulation is repeated).
        """
        produced = 0
        for fault in self._accepted():
            if self.max_faults is not None and produced >= self.max_faults:
                return
            if produced >= start:
                yield produced, fault
            produced += 1
            if self.max_faults is not None and produced >= self.max_faults:
                return

    def head(self, count: int) -> List[PathDelayFault]:
        """The first *count* accepted faults (testing/diagnostics)."""
        out: List[PathDelayFault] = []
        for _index, fault in self.stream():
            out.append(fault)
            if len(out) >= count:
                break
        return out

    def describe(self) -> dict:
        """Configuration summary for reports and checkpoints."""
        return {
            "max_faults": self.max_faults,
            "min_length": self.min_length,
            "max_length": self.max_length,
            "filtered": self.predicate is not None,
            "dedup": self.dedup,
        }
