"""Staged ATPG campaigns: streaming fault universe, sharded
generation, global fault dropping, checkpoint/resume.

Public API:

* :func:`run_campaign` with :class:`CampaignOptions` — the managed
  pipeline (the serial engine is a 1-worker instance of it),
* :class:`FaultUniverse` — lazily streamed, filtered, budget-capped
  fault sources,
* :class:`CampaignReport` / :class:`CampaignStats` — results and the
  durable progress record behind checkpoint/resume,
* :class:`DropBus` — cross-shard collateral dropping and incremental
  compaction.
"""

from .bus import DropBus
from .report import (
    DEFAULT_SHARDS,
    CampaignOptions,
    CampaignReport,
    CampaignStats,
)
from .runner import CampaignControl, execute_campaign, run_campaign
from .scheduler import PoolExecutor, SerialExecutor, ShardResult
from .universe import FaultUniverse

__all__ = [
    "CampaignControl",
    "CampaignOptions",
    "execute_campaign",
    "CampaignReport",
    "CampaignStats",
    "DEFAULT_SHARDS",
    "DropBus",
    "FaultUniverse",
    "PoolExecutor",
    "SerialExecutor",
    "ShardResult",
    "run_campaign",
]
