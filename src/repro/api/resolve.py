"""Shared circuit / test-class resolution.

Every front-door entry — the five ``tip`` subcommands, the
:class:`repro.api.AtpgSession` constructors, and the service's JSON
requests — used to re-implement "turn this user-supplied string into
a frozen :class:`Circuit`" independently.  This module is the single
implementation all of them call.

A *circuit spec* is one of:

* a path to an ISCAS ``.bench`` file (recognized by suffix),
* the name of an embedded circuit (``c17``, ``paper_example``, ...),
* an ISCAS suite name (``c432``, ``s1423``, ...), optionally scaled.

A *test-class spec* is a :class:`TestClass`, or its string value
(``"robust"`` / ``"nonrobust"``, case-insensitive).
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional, Union

from ..circuit import Circuit, load_bench, parse_bench
from ..circuit.library import EMBEDDED, load_embedded
from ..circuit.suites import suite_circuit
from ..paths import TestClass


class ResolutionError(ValueError):
    """Raised when a spec cannot be interpreted."""


def resolve_circuit(spec: str, scale: int = 1) -> Circuit:
    """Interpret a circuit spec: file path, embedded name, suite name.

    Raises :class:`ResolutionError` (a ``ValueError``) for unknown
    specs; the CLI converts that into a clean ``SystemExit``.
    """
    if spec.endswith(".bench"):
        return load_bench(spec)
    if spec in EMBEDDED:
        return load_embedded(spec)
    try:
        return suite_circuit(spec, scale)
    except ValueError:
        pass
    known = ", ".join(sorted(EMBEDDED))
    raise ResolutionError(
        f"unknown circuit {spec!r}: expected a .bench file, an embedded "
        f"circuit ({known}) or an ISCAS suite name (c432, s1423, ...)"
    )


def resolve_circuit_request(
    spec: Optional[str] = None,
    bench: Optional[str] = None,
    scale: int = 1,
    name: str = "bench",
) -> Circuit:
    """Resolve the service's two circuit transports.

    Requests name a circuit either by *spec* (resolved exactly like
    the CLI) or by inline *bench* netlist text; exactly one must be
    given.
    """
    if (spec is None) == (bench is None):
        raise ResolutionError(
            "provide exactly one of 'circuit' (a spec) or 'bench' "
            "(inline netlist text)"
        )
    if bench is not None:
        return parse_bench(bench, name=name)
    return resolve_circuit(spec, scale)


def resolve_test_class(value: Union[str, TestClass, None]) -> TestClass:
    """Interpret a test-class spec; ``None`` means nonrobust."""
    if value is None:
        return TestClass.NONROBUST
    if isinstance(value, TestClass):
        return value
    try:
        return TestClass(str(value).lower())
    except ValueError:
        raise ResolutionError(
            f"unknown test class {value!r}: expected 'robust' or 'nonrobust'"
        ) from None


def circuit_fingerprint(circuit: Circuit) -> str:
    """A stable hash of the circuit *structure* (the session-cache key).

    Computed from the canonical JSON of name, gate list (name, type,
    fanin ids), and output ids — everything :class:`Circuit` equality
    observes, nothing derived.  Two parses of the same netlist text
    fingerprint identically, so a service request for an
    already-lowered circuit reuses the cached session instead of
    re-compiling.
    """
    canonical = {
        "name": circuit.name,
        "gates": [
            [g.name, g.gate_type.value, list(g.fanin)] for g in circuit.gates
        ],
        "outputs": list(circuit.outputs),
    }
    blob = json.dumps(canonical, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()
