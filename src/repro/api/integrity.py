"""Checkpoint integrity: sha256 checksums + generation-rotated writes.

Atomic tmp-file-plus-rename writes guarantee a reader never sees a
*partial* write, but they cannot protect against what happens after
the rename: disk corruption, a torn filesystem journal, or an
operator truncating the file.  A multi-hour campaign whose only
checkpoint is unreadable restarts from zero.

This module closes that gap with two mechanisms used together by the
campaign checkpoints and the service's per-job records:

* **Checksums.**  :func:`attach_checksum` embeds a sha256 digest of
  the canonical JSON body under the ``"sha256"`` key;
  :func:`verify_checksum` recomputes and compares.  Payloads written
  before checksumming existed (no key) verify trivially — old files
  stay readable.
* **Generation rotation.**  :func:`write_json_rotated` moves the
  current file to ``<path>.prev`` before renaming the fresh write
  into place, so two generations exist on disk at all times.
  :func:`load_json_verified` reads the primary, falls back to
  ``.prev`` when the primary is missing/unparseable/checksum-bad, and
  raises :class:`IntegrityError` only when *both* generations are
  gone or corrupt.

The ``torn_checkpoint`` chaos site (:mod:`repro.chaos`) fires inside
:func:`write_json_rotated`, truncating the bytes that land in the
primary file — the deterministic stand-in for disk corruption the
recovery tests drive.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional, Tuple

from .. import chaos

#: The embedded digest key; excluded from its own digest.
CHECKSUM_KEY = "sha256"

#: Suffix of the rotated previous generation.
PREVIOUS_SUFFIX = ".prev"


class IntegrityError(ValueError):
    """Raised when no generation of a file passes verification."""


def payload_digest(payload: Dict) -> str:
    """sha256 over the canonical JSON body (checksum key excluded)."""
    body = {k: v for k, v in payload.items() if k != CHECKSUM_KEY}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def attach_checksum(payload: Dict) -> Dict:
    """A copy of *payload* with its ``sha256`` digest embedded."""
    stamped = dict(payload)
    stamped[CHECKSUM_KEY] = payload_digest(payload)
    return stamped


def verify_checksum(payload: Dict, path: str = "<payload>") -> None:
    """Raise :class:`IntegrityError` on digest mismatch.

    A payload without a checksum key passes (pre-integrity files stay
    loadable); a payload *with* one must match exactly.
    """
    recorded = payload.get(CHECKSUM_KEY)
    if recorded is None:
        return
    actual = payload_digest(payload)
    if recorded != actual:
        raise IntegrityError(
            f"{path}: checksum mismatch (recorded {recorded[:12]}…, "
            f"actual {actual[:12]}…) — file is corrupt"
        )


def previous_path(path: str) -> str:
    return path + PREVIOUS_SUFFIX


def write_json_rotated(
    path: str, payload: Dict, indent: Optional[int] = None
) -> None:
    """Checksummed, atomic, generation-rotated JSON write.

    The existing file (if any) becomes ``<path>.prev`` before the new
    generation is renamed into place, so a corrupted write never
    destroys the last good state.  Each step is atomic; a crash
    between the two renames leaves only ``.prev``, which the loader
    accepts.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    text = json.dumps(attach_checksum(payload), indent=indent)
    if chaos.should_fire("torn_checkpoint"):
        text = text[: len(text) // 2]  # the write "tears": half the bytes
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.write("\n")
        if os.path.exists(path):
            os.replace(path, previous_path(path))
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_json_verified(
    path: str, fallback: bool = True
) -> Tuple[Dict, bool]:
    """Load and verify *path*; returns ``(payload, used_previous)``.

    The primary file must parse as JSON and (when a checksum is
    embedded) match its digest; otherwise, with *fallback*, the
    ``.prev`` generation is tried under the same rules.  Raises
    :class:`IntegrityError` when no candidate survives.
    """
    candidates = [path]
    if fallback:
        candidates.append(previous_path(path))
    failures = []
    for candidate in candidates:
        if not os.path.exists(candidate):
            failures.append(f"{candidate}: missing")
            continue
        try:
            with open(candidate) as handle:
                payload = json.load(handle)
            verify_checksum(payload, path=candidate)
            return payload, candidate != path
        except (OSError, json.JSONDecodeError, IntegrityError) as exc:
            failures.append(str(exc))
    raise IntegrityError(
        f"no readable generation of {path!r} ({'; '.join(failures)})"
    )


def recoverable(path: str) -> bool:
    """True iff some generation of *path* exists on disk."""
    return os.path.exists(path) or os.path.exists(previous_path(path))
